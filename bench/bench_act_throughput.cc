// Figure 5b: single-threaded worker act (inference) throughput on a vector
// of Pong environments, comparing:
//   * TF RLgraph   — static-graph backend (op-registry dispatch),
//   * PT RLgraph   — define-by-run backend with fast-path edge contraction,
//   * PT RLgraph (no fast path) — ablation: full component-dispatch chain,
//   * PT hand-tuned — bare-bones imperative actor without the framework.
//
// Paper shape targets: the static backend overtakes define-by-run as the
// env vector (act batch) grows; fast-path contraction narrows the gap
// between define-by-run and hand-tuned; all overheads wash out at large
// batch where network compute dominates.
#include <cstdio>

#include "agents/dqn_agent.h"
#include "baselines/hand_tuned_actor.h"
#include "bench_common.h"
#include "env/vector_env.h"

namespace rlgraph {
namespace {

struct Row {
  std::string impl;
  int64_t envs;
  double frames_per_second;
  int64_t executor_calls;
  // Static-backend plan-cache counters (zero elsewhere): compiles include
  // shape-specialized recompiles, hits are steady-state lookups.
  int64_t plan_compiles = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_evictions = 0;
  int64_t plan_specializations = 0;
  // Fused composite-kernel dispatches (MatMul+bias+activation collapsed to
  // one FusedDense step, etc.); zero when pattern fusion is off or the
  // backend is define-by-run.
  int64_t fused_dispatches = 0;
};

Row run_agent(const std::string& backend, bool fast_path, bool specialize,
              int64_t num_envs, double seconds) {
  Json cfg = bench::pong_agent_config();
  cfg["backend"] = Json(backend);
  cfg["fast_path"] = Json(fast_path);
  cfg["specialize_shapes"] = Json(specialize);
  VectorEnv env(bench::pong_env_spec(), num_envs, 7);
  DQNAgent agent(cfg, env.state_space(), env.action_space());
  agent.build();

  Tensor obs = env.reset();
  // Warmup (traces the fast path / compiles the specialized batch-N plan
  // on the first call).
  for (int i = 0; i < 5; ++i) {
    Tensor actions = agent.get_actions(obs);
    obs = env.step(actions).observations;
  }
  int64_t calls_before = agent.executor().execution_calls();
  int64_t frames = 0;
  Stopwatch watch;
  while (watch.elapsed_seconds() < seconds) {
    Tensor actions = agent.get_actions(obs);
    VectorStepResult r = env.step(actions);
    frames += r.env_frames;
    obs = r.observations;
  }
  std::string name =
      backend == "static"
          ? (specialize ? "TF RLgraph (specialized)" : "TF RLgraph (dynamic)")
          : (fast_path ? "PT RLgraph (fast-path)" : "PT RLgraph (dispatch)");
  Row row{name, num_envs, frames / watch.elapsed_seconds(),
          agent.executor().execution_calls() - calls_before};
  if (Session* session = agent.executor().session()) {
    row.plan_compiles = session->plan_compiles();
    row.plan_cache_hits = session->plan_cache_hits();
    row.plan_cache_evictions = session->plan_cache_evictions();
    row.plan_specializations = session->plan_specializations();
  }
  row.fused_dispatches = agent.executor().fused_dispatches();
  return row;
}

Row run_hand_tuned(int64_t num_envs, double seconds) {
  Json cfg = bench::pong_agent_config();
  VectorEnv env(bench::pong_env_spec(), num_envs, 7);
  HandTunedActor actor(cfg.at("network"), env.state_space(),
                       env.num_actions());
  Tensor obs = env.reset();
  int64_t frames = 0;
  Stopwatch watch;
  while (watch.elapsed_seconds() < seconds) {
    Tensor actions = actor.act(obs);
    VectorStepResult r = env.step(actions);
    frames += r.env_frames;
    obs = r.observations;
  }
  return Row{"PT hand-tuned", num_envs, frames / watch.elapsed_seconds(), 0};
}

}  // namespace
}  // namespace rlgraph

int main(int argc, char** argv) {
  using namespace rlgraph;
  bench::Reporter reporter("act_throughput", argc, argv);
  bench::TraceFlag trace_flag(argc, argv);
  bench::print_header(
      "Figure 5b: worker act throughput vs. number of parallel Pong envs");
  std::vector<int64_t> env_counts{1, 2, 4, 8, 16, 32};
  double seconds = bench::bench_scale() == bench::Scale::kQuick ? 0.5 : 1.5;
  if (bench::bench_scale() == bench::Scale::kQuick) {
    env_counts = {1, 4, 16};
  }
  std::printf("%-26s %8s %14s %10s %8s %s\n", "implementation", "envs",
              "env_frames/s", "exec_calls", "fused",
              "plan compiles/hits/evict/spec");
  for (int64_t envs : env_counts) {
    std::vector<Row> rows{
        run_agent("static", true, /*specialize=*/true, envs, seconds),
        run_agent("static", true, /*specialize=*/false, envs, seconds),
        run_agent("define_by_run", true, /*specialize=*/true, envs, seconds),
        run_agent("define_by_run", false, /*specialize=*/true, envs, seconds),
        run_hand_tuned(envs, seconds),
    };
    for (const Row& r : rows) {
      std::printf("%-26s %8lld %14.0f %10lld %8lld %lld/%lld/%lld/%lld\n",
                  r.impl.c_str(), static_cast<long long>(r.envs),
                  r.frames_per_second,
                  static_cast<long long>(r.executor_calls),
                  static_cast<long long>(r.fused_dispatches),
                  static_cast<long long>(r.plan_compiles),
                  static_cast<long long>(r.plan_cache_hits),
                  static_cast<long long>(r.plan_cache_evictions),
                  static_cast<long long>(r.plan_specializations));
      Json params;
      params["impl"] = Json(r.impl);
      params["envs"] = Json(r.envs);
      params["exec_calls"] = Json(r.executor_calls);
      params["fused_dispatches"] = Json(r.fused_dispatches);
      params["plan_compiles"] = Json(r.plan_compiles);
      params["plan_cache_hits"] = Json(r.plan_cache_hits);
      params["plan_cache_evictions"] = Json(r.plan_cache_evictions);
      params["plan_specializations"] = Json(r.plan_specializations);
      reporter.record("act_fps", r.frames_per_second, "env_frames/s",
                      std::move(params));
    }
    std::printf("\n");
  }
  return 0;
}
