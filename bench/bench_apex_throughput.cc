// Figure 6: distributed Ape-X sample throughput vs. number of workers,
// RLgraph's Ray executor vs. the RLlib-like baseline.
//
// Paper shape targets: RLgraph outperforms RLlib-like at every worker count
// (paper: 185% at 16 workers, 60% at 256); throughput grows with workers
// until the host saturates (this host has ONE core, so saturation arrives
// early and extra workers only add scheduling overhead — see
// EXPERIMENTS.md).
#include <cstdio>

#include "baselines/rllib_like.h"
#include "bench_common.h"
#include "execution/apex_executor.h"

int main(int argc, char** argv) {
  using namespace rlgraph;
  bench::Reporter reporter("apex_throughput", argc, argv);
  bench::TraceFlag trace_flag(argc, argv);
  bench::print_header(
      "Figure 6: distributed Ape-X sample throughput on synthetic Pong");

  std::vector<int> worker_counts{2, 4, 8, 16};
  double seconds = 5.0;
  switch (bench::bench_scale()) {
    case bench::Scale::kQuick:
      worker_counts = {2, 4};
      seconds = 2.0;
      break;
    case bench::Scale::kFull:
      worker_counts = {2, 4, 8, 16, 32, 64};
      seconds = 8.0;
      break;
    default:
      break;
  }

  std::printf("%-12s %10s %14s %14s %8s\n", "impl", "workers",
              "env_frames/s", "learner_upd", "tasks");
  std::vector<double> rlgraph_fps, rllib_fps;
  for (int workers : worker_counts) {
    ApexConfig cfg;
    cfg.agent_config = bench::pong_agent_config();
    cfg.env_spec = bench::pong_env_spec();
    cfg.num_workers = workers;
    cfg.envs_per_worker = 4;  // paper: 4 envs per worker
    cfg.num_replay_shards = 4;
    cfg.worker_sample_size = 100;
    cfg.n_step = 3;
    cfg.min_shard_records = 200;
    auto report = [&](const char* impl, const ApexResult& r) {
      Json params;
      params["impl"] = Json(impl);
      params["workers"] = Json(workers);
      params["learner_updates"] = Json(r.learner_updates);
      params["sample_tasks"] = Json(r.sample_tasks);
      reporter.record("apex_fps", r.frames_per_second, "env_frames/s",
                      std::move(params));
    };
    {
      ApexExecutor exec(cfg);
      ApexResult r = exec.run(seconds);
      rlgraph_fps.push_back(r.frames_per_second);
      std::printf("%-12s %10d %14.0f %14lld %8lld\n", "RLgraph", workers,
                  r.frames_per_second,
                  static_cast<long long>(r.learner_updates),
                  static_cast<long long>(r.sample_tasks));
      report("RLgraph", r);
    }
    {
      ApexExecutor exec(baselines::rllib_like(cfg));
      ApexResult r = exec.run(seconds);
      rllib_fps.push_back(r.frames_per_second);
      std::printf("%-12s %10d %14.0f %14lld %8lld\n", "RLlib-like", workers,
                  r.frames_per_second,
                  static_cast<long long>(r.learner_updates),
                  static_cast<long long>(r.sample_tasks));
      report("RLlib-like", r);
    }
  }

  std::printf("\nRLgraph / RLlib-like throughput ratio per worker count:\n");
  for (size_t i = 0; i < worker_counts.size(); ++i) {
    std::printf("  %3d workers: %.2fx (paper: 2.85x at 16, 1.6x at 256)\n",
                worker_counts[i],
                rllib_fps[i] > 0 ? rlgraph_fps[i] / rllib_fps[i] : 0.0);
  }
  return 0;
}
