// Figure 5a: one-time build overhead of RLgraph's abstractions on both
// backends — component-graph trace (assembly phase) and main build phase —
// for a single memory component and a full dueling-DQN-with-prioritized-
// replay architecture.
//
// Paper shape targets: sub-second builds; the define-by-run backend builds
// faster than the static backend (no graph/placeholder construction); a
// single component builds far faster than the full architecture.
#include <benchmark/benchmark.h>

#include "agents/dqn_agent.h"
#include "bench_common.h"
#include "components/memories.h"
#include "core/graph_executor.h"
#include "env/pong_sim.h"

namespace rlgraph {
namespace {

ExecutorOptions options_for(Backend backend) {
  ExecutorOptions opts;
  opts.backend = backend;
  return opts;
}

// Build a single prioritized-replay component as its own sub-graph (the
// modular performance-testing scenario).
void BM_BuildMemoryComponent(benchmark::State& state) {
  Backend backend = static_cast<Backend>(state.range(0));
  SpacePtr record =
      Tuple({FloatBox(Shape{24, 24, 1}), IntBox(3), FloatBox(), BoolBox()})
          ->with_batch_rank();
  double trace_total = 0, build_total = 0;
  for (auto _ : state) {
    auto root = std::make_shared<Component>("test-root");
    auto* mem = root->add_component(
        std::make_shared<PrioritizedReplay>("memory", 4096));
    root->register_api("insert", [mem](BuildContext& ctx, const OpRecs& in) {
      return mem->call_api(ctx, "insert_records", in);
    });
    root->register_api("sample", [mem](BuildContext& ctx, const OpRecs& in) {
      return mem->call_api(ctx, "get_records", in);
    });
    GraphExecutor exec(root,
                       {{"insert", {record, FloatBox()->with_batch_rank()}},
                        {"sample", {IntBox(1 << 30)}}},
                       options_for(backend));
    exec.build();
    trace_total += exec.stats().trace_seconds;
    build_total += exec.stats().build_seconds;
  }
  state.counters["trace_s"] = trace_total / state.iterations();
  state.counters["build_s"] = build_total / state.iterations();
}

// Build the full DQN agent architecture.
void BM_BuildDqnArchitecture(benchmark::State& state) {
  Backend backend = static_cast<Backend>(state.range(0));
  Json config = bench::pong_agent_config();
  config["backend"] =
      Json(backend == Backend::kStatic ? "static" : "define_by_run");
  PongSim env(PongSim::Config{24, 24, 4, 21, 0.5});
  double trace_total = 0, build_total = 0;
  int components = 0;
  for (auto _ : state) {
    DQNAgent agent(config, env.state_space(), env.action_space());
    agent.build();
    trace_total += agent.executor().stats().trace_seconds;
    build_total += agent.executor().stats().build_seconds;
    components = agent.executor().stats().num_components;
  }
  state.counters["trace_s"] = trace_total / state.iterations();
  state.counters["build_s"] = build_total / state.iterations();
  state.counters["components"] = components;
}

BENCHMARK(BM_BuildMemoryComponent)
    ->Arg(static_cast<int>(Backend::kStatic))
    ->Arg(static_cast<int>(Backend::kImperative))
    ->Unit(benchmark::kMillisecond)
    ->ArgName("backend(0=static,1=dbr)");
BENCHMARK(BM_BuildDqnArchitecture)
    ->Arg(static_cast<int>(Backend::kStatic))
    ->Arg(static_cast<int>(Backend::kImperative))
    ->Unit(benchmark::kMillisecond)
    ->ArgName("backend(0=static,1=dbr)");

}  // namespace
}  // namespace rlgraph

int main(int argc, char** argv) {
  rlgraph::bench::print_header(
      "Figure 5a: build overhead (trace = component-graph assembly, "
      "build = op/variable creation)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
