// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace rlgraph {
namespace bench {

// The "Atari-scale" DQN/Ape-X agent config used across benchmarks: conv
// stack + dueling head + prioritized replay (the paper's reference
// architecture, scaled to this host's synthetic Pong resolution).
inline Json pong_agent_config() {
  return Json::parse(R"({
    "type": "apex",
    "network": [
      {"type": "conv2d", "filters": 4, "kernel": 4, "stride": 2,
       "activation": "relu"},
      {"type": "conv2d", "filters": 8, "kernel": 3, "stride": 2,
       "activation": "relu"},
      {"type": "dense", "units": 32, "activation": "relu"}
    ],
    "preprocessor": [{"type": "rescale", "scale": 1.0}],
    "memory": {"type": "prioritized", "capacity": 20000,
               "alpha": 0.6, "beta": 0.4},
    "optimizer": {"type": "adam", "learning_rate": 0.0005},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": 20000},
    "update": {"batch_size": 32, "sync_interval": 100, "min_records": 200},
    "discount": 0.99, "double_q": true, "dueling_q": true, "n_step": 3
  })");
}

inline Json pong_env_spec(int64_t size = 16) {
  Json spec;
  spec["type"] = Json("pong");
  spec["height"] = Json(size);
  spec["width"] = Json(size);
  spec["frame_skip"] = Json(static_cast<int64_t>(4));
  return spec;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

// Benchmark scale from the environment: RLGRAPH_BENCH_SCALE=quick|full
// (default: a medium sweep that finishes in a couple of minutes).
enum class Scale { kQuick, kMedium, kFull };
inline Scale bench_scale() {
  const char* env = std::getenv("RLGRAPH_BENCH_SCALE");
  if (env == nullptr) return Scale::kMedium;
  std::string s(env);
  if (s == "quick") return Scale::kQuick;
  if (s == "full") return Scale::kFull;
  return Scale::kMedium;
}

// Machine-readable results: pass `--json out.json` (or `--json=out.json`)
// to any benchmark binary and every record() lands in that file as
//   {"benchmark": ..., "scale": ..., "results": [
//      {"name": ..., "value": ..., "unit": ..., "params": {...}}, ...]}
// written once at scope exit. Without the flag, record() is a no-op beyond
// the usual stdout table, so CI and humans share one binary.
class Reporter {
 public:
  Reporter(const std::string& benchmark, int argc, char** argv)
      : benchmark_(benchmark) {
    for (int i = 1; i < argc; ++i) {
      std::string arg(argv[i]);
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[i + 1];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      }
    }
  }

  ~Reporter() {
    if (path_.empty()) return;
    Json doc;
    doc["benchmark"] = Json(benchmark_);
    Scale s = bench_scale();
    doc["scale"] = Json(s == Scale::kQuick
                            ? "quick"
                            : (s == Scale::kFull ? "full" : "medium"));
    doc["results"] = Json(rows_);
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    out << doc.dump(2) << "\n";
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  bool enabled() const { return !path_.empty(); }

  void record(const std::string& name, double value, const std::string& unit,
              Json params = Json(JsonObject{})) {
    if (path_.empty()) return;
    Json row;
    row["name"] = Json(name);
    row["value"] = Json(value);
    row["unit"] = Json(unit);
    row["params"] = std::move(params);
    rows_.push_back(std::move(row));
  }

 private:
  std::string benchmark_;
  std::string path_;
  JsonArray rows_;
};

// Opt-in tracing: pass `--trace out.json` (or `--trace=out.json`) to any
// benchmark binary to capture a Chrome trace_event file of the run, plus a
// per-span summary table on stderr at scope exit. Without the flag (and
// without RLGRAPH_TRACE in the environment) tracing stays disabled and the
// instrumented code paths cost a single relaxed atomic load.
class TraceFlag {
 public:
  TraceFlag(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg(argv[i]);
      if (arg == "--trace" && i + 1 < argc) {
        path_ = argv[i + 1];
      } else if (arg.rfind("--trace=", 0) == 0) {
        path_ = arg.substr(8);
      }
    }
    if (!path_.empty()) trace::start(path_);
  }

  ~TraceFlag() {
    if (path_.empty()) return;
    std::string summary = trace::stop();
    std::fprintf(stderr, "%s\ntrace written to %s\n", summary.c_str(),
                 path_.c_str());
  }

  TraceFlag(const TraceFlag&) = delete;
  TraceFlag& operator=(const TraceFlag&) = delete;

  bool enabled() const { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace bench
}  // namespace rlgraph
