// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"

namespace rlgraph {
namespace bench {

// The "Atari-scale" DQN/Ape-X agent config used across benchmarks: conv
// stack + dueling head + prioritized replay (the paper's reference
// architecture, scaled to this host's synthetic Pong resolution).
inline Json pong_agent_config() {
  return Json::parse(R"({
    "type": "apex",
    "network": [
      {"type": "conv2d", "filters": 4, "kernel": 4, "stride": 2,
       "activation": "relu"},
      {"type": "conv2d", "filters": 8, "kernel": 3, "stride": 2,
       "activation": "relu"},
      {"type": "dense", "units": 32, "activation": "relu"}
    ],
    "preprocessor": [{"type": "rescale", "scale": 1.0}],
    "memory": {"type": "prioritized", "capacity": 20000,
               "alpha": 0.6, "beta": 0.4},
    "optimizer": {"type": "adam", "learning_rate": 0.0005},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": 20000},
    "update": {"batch_size": 32, "sync_interval": 100, "min_records": 200},
    "discount": 0.99, "double_q": true, "dueling_q": true, "n_step": 3
  })");
}

inline Json pong_env_spec(int64_t size = 16) {
  Json spec;
  spec["type"] = Json("pong");
  spec["height"] = Json(size);
  spec["width"] = Json(size);
  spec["frame_skip"] = Json(static_cast<int64_t>(4));
  return spec;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

// Benchmark scale from the environment: RLGRAPH_BENCH_SCALE=quick|full
// (default: a medium sweep that finishes in a couple of minutes).
enum class Scale { kQuick, kMedium, kFull };
inline Scale bench_scale() {
  const char* env = std::getenv("RLGRAPH_BENCH_SCALE");
  if (env == nullptr) return Scale::kMedium;
  std::string s(env);
  if (s == "quick") return Scale::kQuick;
  if (s == "full") return Scale::kFull;
  return Scale::kMedium;
}

}  // namespace bench
}  // namespace rlgraph
