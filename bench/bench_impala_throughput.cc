// Figure 9: IMPALA environment-frame throughput vs. number of actors on the
// DeepMind-Lab-style environment, RLgraph vs. the DM-reference-like
// baseline — plus the single-actor redundant-assignment ablation (the paper
// reports removing DM's unneeded actor-side variable assignments yielded
// ~20% in a single-worker setting).
//
// Paper shape targets: RLgraph ~10-15% above the DM-like baseline until
// both become update-bound; throughput rises with actors until the host
// saturates (single core here — see EXPERIMENTS.md).
#include <cstdio>

#include "baselines/dm_impala_like.h"
#include "bench_common.h"
#include "execution/impala_pipeline.h"

namespace rlgraph {
namespace {

Json impala_agent_config() {
  return Json::parse(R"({
    "network": [
      {"type": "conv2d", "filters": 8, "kernel": 4, "stride": 2,
       "activation": "relu"},
      {"type": "conv2d", "filters": 16, "kernel": 3, "stride": 2,
       "activation": "relu"},
      {"type": "dense", "units": 64, "activation": "relu"}
    ],
    "rollout_length": 20, "discount": 0.99,
    "value_coef": 0.5, "entropy_coef": 0.01,
    "optimizer": {"type": "adam", "learning_rate": 0.0005}
  })");
}

Json dmlab_env_spec() {
  return Json::parse(R"({"type": "dmlab", "height": 24, "width": 32,
                         "render_cost": 4000, "episode_length": 300,
                         "frame_skip": 4})");
}


}  // namespace
}  // namespace rlgraph

int main(int argc, char** argv) {
  using namespace rlgraph;
  bench::Reporter reporter("impala_throughput", argc, argv);
  bench::TraceFlag trace_flag(argc, argv);
  bench::print_header(
      "Figure 9: IMPALA throughput on the DM-Lab-style arena");

  std::vector<int> actor_counts{1, 2, 4, 8};
  double seconds = 5.0;
  if (bench::bench_scale() == bench::Scale::kQuick) {
    actor_counts = {1, 2};
    seconds = 2.5;
  } else if (bench::bench_scale() == bench::Scale::kFull) {
    actor_counts = {1, 2, 4, 8, 16};
    seconds = 8.0;
  }

  std::printf("%-14s %8s %14s %10s %10s\n", "impl", "actors",
              "env_frames/s", "rollouts", "updates");
  std::vector<double> ours, dm;
  for (int actors : actor_counts) {
    ImpalaConfig cfg;
    cfg.agent_config = impala_agent_config();
    cfg.env_spec = dmlab_env_spec();
    cfg.num_actors = actors;
    cfg.envs_per_actor = 4;
    cfg.queue_capacity = 8;
    auto report = [&](const char* impl, const ImpalaResult& r) {
      Json params;
      params["impl"] = Json(impl);
      params["actors"] = Json(actors);
      params["rollouts"] = Json(r.rollouts);
      params["learner_updates"] = Json(r.learner_updates);
      reporter.record("impala_fps", r.frames_per_second, "env_frames/s",
                      std::move(params));
    };
    {
      ImpalaPipeline pipeline(cfg);
      ImpalaResult r = pipeline.run(seconds);
      ours.push_back(r.frames_per_second);
      std::printf("%-14s %8d %14.0f %10lld %10lld\n", "RLgraph", actors,
                  r.frames_per_second, static_cast<long long>(r.rollouts),
                  static_cast<long long>(r.learner_updates));
      report("RLgraph", r);
    }
    {
      ImpalaPipeline pipeline(baselines::dm_impala_like(cfg));
      ImpalaResult r = pipeline.run(seconds);
      dm.push_back(r.frames_per_second);
      std::printf("%-14s %8d %14.0f %10lld %10lld\n", "DM-like", actors,
                  r.frames_per_second, static_cast<long long>(r.rollouts),
                  static_cast<long long>(r.learner_updates));
      report("DM-like", r);
    }
  }
  std::printf("\nRLgraph / DM-like throughput ratio (paper: ~1.10-1.15 until "
              "update-bound):\n");
  for (size_t i = 0; i < actor_counts.size(); ++i) {
    std::printf("  %2d actors: %.2fx\n", actor_counts[i],
                dm[i] > 0 ? ours[i] / dm[i] : 0.0);
  }

  // Ablation: single actor with only the redundant assigns flipped (the
  // paper's ~20% single-worker effect).
  std::printf("\nAblation: actor-side redundant variable assignments "
              "(1 actor, no learner updates):\n");
  ImpalaConfig cfg;
  cfg.agent_config = impala_agent_config();
  cfg.env_spec = dmlab_env_spec();
  cfg.num_actors = 1;
  cfg.envs_per_actor = 4;
  cfg.learner_updates = false;
  double clean, noisy;
  {
    ImpalaPipeline p(cfg);
    clean = p.run(seconds).frames_per_second;
  }
  {
    ImpalaConfig noisy_cfg = cfg;
    noisy_cfg.redundant_assigns = true;
    ImpalaPipeline p(noisy_cfg);
    noisy = p.run(seconds).frames_per_second;
  }
  std::printf("  without assigns: %.0f frames/s\n  with assigns:    %.0f "
              "frames/s\n  removing them yields %.0f%% (paper: ~20%%)\n",
              clean, noisy, noisy > 0 ? (clean / noisy - 1.0) * 100 : 0.0);
  return 0;
}
