// Figure 7b: learning curves (mean worker episode reward vs. wall-clock) on
// the Pong-scale Catch environment (episode return in [-21, 21], matching
// the paper's Pong reward axis), distributed Ape-X: RLgraph vs. RLlib-like.
//
// Paper shape target: in line with throughput, RLgraph reaches high scores
// substantially faster than the RLlib-like baseline under identical
// hyper-parameters.
#include <cstdio>

#include "baselines/rllib_like.h"
#include "bench_common.h"
#include "execution/apex_executor.h"

namespace rlgraph {
namespace {

Json catch_agent_config() {
  return Json::parse(R"({
    "type": "apex",
    "network": [{"type": "dense", "units": 64, "activation": "relu"},
                {"type": "dense", "units": 64, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 20000,
               "alpha": 0.6, "beta": 0.4},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 1.0, "eps_end": 0.02, "decay_steps": 6000},
    "update": {"batch_size": 32, "sync_interval": 100, "min_records": 500},
    "discount": 0.98, "double_q": true, "dueling_q": true, "n_step": 3
  })");
}

void run(const char* label, const ApexConfig& cfg, double seconds) {
  ApexExecutor exec(cfg);
  ApexResult r = exec.run(seconds);
  std::printf("\n%s: %.0f env frames/s, %lld updates; reward timeline "
              "(seconds, mean episode reward in [-21, 21]):\n",
              label, r.frames_per_second,
              static_cast<long long>(r.learner_updates));
  // Thin the timeline to ~16 rows.
  size_t stride = std::max<size_t>(1, r.reward_timeline.size() / 16);
  for (size_t i = 0; i < r.reward_timeline.size(); i += stride) {
    std::printf("  t=%7.2fs  reward=%7.2f\n", r.reward_timeline[i].first,
                r.reward_timeline[i].second);
  }
  if (!r.reward_timeline.empty()) {
    std::printf("  final: t=%7.2fs  reward=%7.2f\n",
                r.reward_timeline.back().first,
                r.reward_timeline.back().second);
  }
}

}  // namespace
}  // namespace rlgraph

int main() {
  using namespace rlgraph;
  bench::print_header(
      "Figure 7b: Ape-X learning curves on Catch-21 (Pong-scale rewards)");

  double seconds = 45.0;
  if (bench::bench_scale() == bench::Scale::kQuick) seconds = 10.0;
  if (bench::bench_scale() == bench::Scale::kFull) seconds = 120.0;

  ApexConfig cfg;
  cfg.agent_config = catch_agent_config();
  cfg.env_spec = Json::parse(
      R"({"type": "catch", "height": 10, "width": 8,
          "rounds_per_episode": 21})");
  cfg.num_workers = 4;
  cfg.envs_per_worker = 4;
  cfg.num_replay_shards = 2;
  cfg.worker_sample_size = 100;
  cfg.n_step = 3;
  cfg.discount = 0.98;
  cfg.min_shard_records = 300;
  // Sample-bound regime (the paper's): each record is replayed at most
  // ~replay_ratio times, so learning progress tracks sampling throughput
  // rather than raw learner speed (which on this single-core host would
  // otherwise be the shared bottleneck for both implementations).
  cfg.replay_ratio = 0.15;
  cfg.seed = 11;

  run("RLgraph", cfg, seconds);
  run("RLlib-like", baselines::rllib_like(cfg), seconds);
  std::printf(
      "\nShape check: RLgraph's curve should climb toward +21 earlier than "
      "the RLlib-like baseline's (same algorithm and hyper-parameters).\n");
  return 0;
}
