// Figure 8: synchronous multi-device update strategy — learning progress
// vs. update wall-clock with 1 vs. 2 device towers, plus the
// graph-optimization ablation from DESIGN.md.
//
// The host is single-core, so the 2-tower timeline uses the simulated
// parallel-device wall-clock (max over concurrent towers + serial
// coordination; see EXPERIMENTS.md). Paper shape target: the 2-GPU strategy
// converges faster in wall-clock.
#include <cstdio>

#include "bench_common.h"
#include "env/catch_env.h"
#include "env/vector_env.h"
#include "execution/multi_device.h"

namespace rlgraph {
namespace {

Json catch_agent_config(bool optimize_graph = true) {
  Json cfg = Json::parse(R"({
    "type": "dqn",
    "network": [{"type": "dense", "units": 64, "activation": "relu"},
                {"type": "dense", "units": 64, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 20000},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 1.0, "eps_end": 0.02, "decay_steps": 4000},
    "update": {"batch_size": 64, "sync_interval": 100, "min_records": 500},
    "discount": 0.98, "double_q": true, "dueling_q": true
  })");
  cfg["optimize_graph"] = Json(optimize_graph);
  return cfg;
}

void run_devices(int num_devices, double update_budget_seconds) {
  Json env_spec = Json::parse(
      R"({"type": "catch", "height": 10, "width": 8,
          "rounds_per_episode": 21})");
  VectorEnv env(env_spec, 4, 5);
  MultiDeviceSyncTrainer trainer(catch_agent_config(), env.state_space(),
                                 env.action_space(), num_devices);
  DQNAgent& agent = trainer.main_agent();

  std::printf("\n%d device tower(s): (simulated update seconds, mean "
              "episode reward)\n", num_devices);
  Tensor obs = env.reset();
  std::vector<double> recent;
  double next_report = 0.5;
  while (trainer.simulated_update_seconds() < update_budget_seconds) {
    // Collect a few steps, then update.
    for (int s = 0; s < 4; ++s) {
      Tensor actions = agent.get_actions(obs);
      Tensor pre = agent.last_preprocessed();
      VectorStepResult r = env.step(actions);
      agent.observe(pre, actions, r.rewards, r.observations, r.terminals);
      obs = r.observations;
    }
    trainer.update();
    for (double ret : env.drain_episode_returns()) {
      recent.push_back(ret);
      if (recent.size() > 64) recent.erase(recent.begin());
    }
    if (trainer.simulated_update_seconds() >= next_report &&
        !recent.empty()) {
      std::printf("  t=%6.2fs  reward=%7.2f  (updates=%lld)\n",
                  trainer.simulated_update_seconds(), bench::mean(recent),
                  static_cast<long long>(trainer.updates_done()));
      next_report += 0.5;
    }
  }
  std::printf("  final: %lld updates in %.2fs simulated "
              "(%.2fs measured single-core), reward=%.2f\n",
              static_cast<long long>(trainer.updates_done()),
              trainer.simulated_update_seconds(),
              trainer.measured_update_seconds(),
              recent.empty() ? 0.0 : bench::mean(recent));
}

void graph_optimization_ablation() {
  std::printf("\nAblation: graph-optimization passes (update step "
              "latency)\n");
  Json env_spec = Json::parse(R"({"type": "catch"})");
  for (bool optimize : {true, false}) {
    VectorEnv env(env_spec, 2, 3);
    DQNAgent agent(catch_agent_config(optimize), env.state_space(),
                   env.action_space());
    agent.build();
    // Warm memory.
    Tensor obs = env.reset();
    while (agent.memory_size() < 600) {
      Tensor actions = agent.get_actions(obs);
      Tensor pre = agent.last_preprocessed();
      VectorStepResult r = env.step(actions);
      agent.observe(pre, actions, r.rewards, r.observations, r.terminals);
      obs = r.observations;
    }
    Stopwatch watch;
    int updates = 0;
    while (watch.elapsed_seconds() < 2.0) {
      agent.update();
      ++updates;
    }
    std::printf("  optimize=%-5s  nodes %4d -> %4d   updates/s = %.1f\n",
                optimize ? "on" : "off",
                agent.executor().stats().graph_nodes_before,
                agent.executor().stats().graph_nodes_after,
                updates / watch.elapsed_seconds());
  }
}

}  // namespace
}  // namespace rlgraph

int main() {
  using namespace rlgraph;
  bench::print_header(
      "Figure 8: synchronous multi-device strategy on Catch-21");
  double budget = 12.0;
  if (bench::bench_scale() == bench::Scale::kQuick) budget = 4.0;
  if (bench::bench_scale() == bench::Scale::kFull) budget = 40.0;
  run_devices(1, budget);
  run_devices(2, budget);
  std::printf(
      "\nShape check: with 2 towers the update batch is split in half per "
      "tower and the halves run concurrently, so each update costs ~half "
      "the simulated wall-clock and the reward curve climbs faster per "
      "simulated second (paper Fig. 8).\n");
  graph_optimization_ablation();
  return 0;
}
