// Continuous-control learning curve (DESIGN.md §4k, not a paper figure):
// squashed-Gaussian SAC on the deterministic pendulum swing-up env. Prints
// episode return, the 20-episode mean, and the auto-tuned entropy
// coefficient — the EXPERIMENTS.md reward-vs-steps table comes from this
// binary at medium scale. Fixed seeds throughout, so rows are reproducible
// run to run.
#include <chrono>
#include <cstdio>
#include <deque>
#include <numeric>

#include "agents/sac_agent.h"
#include "bench_common.h"
#include "env/pendulum_env.h"

namespace rlgraph {
namespace {

Json sac_config() {
  return Json::parse(R"({
    "type": "sac",
    "network": [{"type": "dense", "units": 64, "activation": "relu"},
                {"type": "dense", "units": 64, "activation": "relu"}],
    "optimizer": {"type": "adam", "learning_rate": 0.003},
    "memory": {"capacity": 20000},
    "update": {"batch_size": 64, "min_records": 500},
    "seed": 11
  })");
}

void run(int episodes) {
  PendulumEnv env(PendulumEnv::Config{});
  env.seed(3);
  SacAgent agent(sac_config(), env.state_space(), env.action_space());
  const auto t_build = std::chrono::steady_clock::now();
  agent.build();
  std::printf("build: %.1f ms\n",
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t_build)
                  .count());

  std::printf("%-8s %-8s %-10s %-10s %-8s\n", "episode", "steps", "return",
              "mean20", "alpha");
  std::deque<double> window;
  const auto t0 = std::chrono::steady_clock::now();
  Tensor obs = env.reset();
  double ep_return = 0.0;
  int64_t steps = 0;
  int episode = 0;
  while (episode < episodes) {
    Tensor batch = obs.reshaped(Shape{1, 3});
    Tensor action = agent.get_actions(batch, /*explore=*/true);
    StepResult r = env.step_continuous(action);
    agent.observe(batch, action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(Shape{1, 3}),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    ep_return += r.reward;
    ++steps;
    agent.update();
    obs = r.observation;
    if (r.terminal) {
      ++episode;
      window.push_back(ep_return);
      if (window.size() > 20) window.pop_front();
      const double mean =
          std::accumulate(window.begin(), window.end(), 0.0) / window.size();
      if (episode <= 5 || episode % 5 == 0) {
        std::printf("%-8d %-8lld %-10.1f %-10.1f %-8.3f\n", episode,
                    static_cast<long long>(steps), ep_return, mean,
                    agent.alpha());
      }
      ep_return = 0.0;
      obs = env.reset();
    }
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  std::printf("trained %lld env steps in %.1f s (%.0f steps/s)\n",
              static_cast<long long>(steps), secs,
              static_cast<double>(steps) / secs);
}

}  // namespace
}  // namespace rlgraph

int main() {
  using namespace rlgraph;
  bench::print_header("SAC on pendulum: continuous-control learning curve");
  int episodes = 60;
  if (bench::bench_scale() == bench::Scale::kQuick) episodes = 3;
  if (bench::bench_scale() == bench::Scale::kFull) episodes = 100;
  run(episodes);
  return 0;
}
