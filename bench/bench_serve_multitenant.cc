// Multi-tenant serving under a heavy-tailed open-loop load: admission
// quotas + DRR fair queueing end to end.
//
// Three tenants share one PolicyServer. "hot" is offered ~10x its admission
// quota; "silver" and "bronze" stay within theirs. The control plane must
// shed hot's excess at hot's own token bucket (tenant-scoped
// OverloadedError, serve/shed_total{reason=tenant_quota}) while the
// in-quota tenants' attained QPS and p99 ride as if hot were idle — the
// fairness property the DRR batcher and per-tenant buckets exist for.
//
// `--smoke` runs the load-smoke CI variant: fixed seed, ~2s, and hard
// assertions — every generated arrival accounted for exactly once
// (conservation: no request lost or double-answered), SLO counters
// populated, hot shed tenant-scoped, in-quota tenants unharmed. Exit 1 on
// any violation, so the bench-smoke ctest label catches control-plane
// regressions.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "load_harness.h"
#include "serve/policy_server.h"

namespace rlgraph {
namespace {

using namespace std::chrono_literals;

Json serve_agent_config() {
  return Json::parse(R"({
    "type": "dqn",
    "backend": "static",
    "network": [{"type": "dense", "units": 32, "activation": "relu"}],
    "memory": {"type": "replay", "capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 0.1, "eps_end": 0.1, "decay_steps": 100},
    "update": {"batch_size": 16, "sync_interval": 50, "min_records": 32},
    "discount": 0.99
  })");
}

constexpr int64_t kObsDim = 16;
constexpr int64_t kNumActions = 4;

std::vector<Tensor> make_observations(int n) {
  Rng rng(7);
  std::vector<Tensor> obs;
  obs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> v(kObsDim);
    for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    obs.push_back(Tensor::from_floats(Shape{kObsDim}, v));
  }
  return obs;
}

struct Check {
  bool ok = true;
  void expect(bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  }
};

}  // namespace
}  // namespace rlgraph

int main(int argc, char** argv) {
  using namespace rlgraph;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::Reporter reporter("serve_multitenant", argc, argv);
  bench::TraceFlag trace_flag(argc, argv);
  bench::Scale scale = bench::bench_scale();
  const double seconds =
      smoke ? 1.5
            : (scale == bench::Scale::kQuick
                   ? 1.0
                   : (scale == bench::Scale::kFull ? 8.0 : 3.0));

  // hot: quota 150 qps but offered ~10x that. silver/bronze: generous
  // quotas they stay under. DRR weights give silver 2 slots per round to
  // hot/bronze's 1 — weight shapes batch composition, quotas shape
  // admission.
  const double hot_quota = 150.0;
  serve::PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 32;
  cfg.batcher.max_queue_delay = 200us;
  cfg.batcher.queue_capacity = 2048;
  cfg.batcher.tenant_queue_capacity = 512;
  cfg.default_deadline = std::chrono::microseconds(100000);
  {
    serve::TenantConfig hot;
    hot.quota_qps = hot_quota;
    hot.burst = hot_quota;  // one second of quota
    cfg.tenants["hot"] = hot;
    serve::TenantConfig silver;
    silver.quota_qps = 2000.0;
    silver.weight = 2;
    cfg.tenants["silver"] = silver;
    serve::TenantConfig bronze;
    bronze.quota_qps = 2000.0;
    cfg.tenants["bronze"] = bronze;
  }

  SpacePtr obs_space = FloatBox(Shape{kObsDim});
  serve::PolicyServer server(serve_agent_config(), obs_space,
                             IntBox(kNumActions), cfg);
  server.start();

  bench::print_header("multi-tenant serving: quotas + DRR under heavy tail");

  bench::LoadConfig load;
  load.observations = make_observations(64);
  load.duration_seconds = seconds;
  load.seed = 1234;  // fixed: the load-smoke run must be reproducible
  load.collector_threads = 2;
  // Offered mix: hot floods at ~10x its quota; silver and bronze offer
  // 300/150 qps, comfortably inside theirs.
  const double hot_offered = 10.0 * hot_quota;
  const double silver_offered = 300.0;
  const double bronze_offered = 150.0;
  const double total = hot_offered + silver_offered + bronze_offered;
  {
    bench::LoadStreamSpec hot;
    hot.name = "hot";
    hot.tenant = "hot";
    hot.share = hot_offered / total;
    load.streams.push_back(hot);
    bench::LoadStreamSpec silver;
    silver.name = "silver";
    silver.tenant = "silver";
    silver.share = silver_offered / total;
    load.streams.push_back(silver);
    bench::LoadStreamSpec bronze;
    bronze.name = "bronze";
    bronze.tenant = "bronze";
    bronze.share = bronze_offered / total;
    load.streams.push_back(bronze);
  }
  load.offered_qps = total;

  bench::LoadReport report = bench::run_open_loop(server, load);
  std::printf("%s", report.table().c_str());

  MetricRegistry& m = server.metrics();
  const int64_t quota_sheds =
      m.counter("serve/shed_total{reason=tenant_quota}");
  const int64_t hot_sheds = m.counter("serve/tenant_shed{tenant=hot}");
  std::printf(
      "shed split: tenant_quota %lld  tenant_queue %lld  overload %lld  "
      "deadline %lld  (hot tenant-scoped %lld)\n",
      static_cast<long long>(quota_sheds),
      static_cast<long long>(m.counter("serve/shed_total{reason=tenant_queue}")),
      static_cast<long long>(m.counter("serve/shed_total{reason=overload}")),
      static_cast<long long>(m.counter("serve/shed_total{reason=deadline}")),
      static_cast<long long>(hot_sheds));
  server.shutdown();

  if (reporter.enabled()) {
    Json params;
    params["hot_quota_qps"] = Json(hot_quota);
    reporter.record("offered_qps", report.generated_qps, "req/s", params);
    reporter.record("attained_qps", report.attained_qps, "req/s", params);
    reporter.record("quota_sheds", static_cast<double>(quota_sheds), "req",
                    params);
    for (const bench::StreamStats& s : report.streams) {
      Json sp;
      sp["tenant"] = Json(s.name);
      reporter.record("tenant_offered_qps", s.offered_qps, "req/s", sp);
      reporter.record("tenant_attained_qps", s.attained_qps, "req/s", sp);
      reporter.record("tenant_p50", s.p50, "s", sp);
      reporter.record("tenant_p99", s.p99, "s", sp);
      reporter.record("tenant_shed", static_cast<double>(s.shed), "req", sp);
      reporter.record("tenant_timeout", static_cast<double>(s.timeout),
                      "req", sp);
    }
  }

  if (!smoke) return 0;

  // --- load-smoke assertions -------------------------------------------------
  Check check;
  check.expect(report.conserved(),
               "conservation: offered != completed + shed + timeout + failed "
               "(a request was lost or double-answered)");
  const bench::StreamStats* hot = report.stream("hot");
  const bench::StreamStats* silver = report.stream("silver");
  const bench::StreamStats* bronze = report.stream("bronze");
  check.expect(hot != nullptr && silver != nullptr && bronze != nullptr,
               "per-tenant SLO stats populated");
  if (check.ok) {
    check.expect(report.offered > 0 && report.completed > 0,
                 "SLO counters populated (offered/completed > 0)");
    check.expect(hot->shed > 0,
                 "hot tenant at 10x quota was never shed at its bucket");
    // Token bucket: hot's admissions are bounded by quota * time + burst.
    check.expect(hot->completed + hot->timeout + hot->failed <=
                     static_cast<int64_t>(hot_quota * report.duration_seconds +
                                          hot_quota + 1),
                 "hot tenant was admitted beyond quota + burst");
    // In-quota tenants unharmed by the CONTROL PLANE: nothing shed, and
    // (nearly) every request admitted. Deadline timeouts are counted as
    // admitted-but-late — under instrumented (TSAN/ASAN) builds the box
    // genuinely cannot serve this rate inside the 100ms deadline, and that
    // is a capacity property, not a fairness one.
    check.expect(silver->shed == 0 && bronze->shed == 0,
                 "in-quota tenant was shed while hot tenant flooded");
    check.expect(
        silver->completed + silver->timeout >= (silver->offered * 9) / 10 &&
            bronze->completed + bronze->timeout >= (bronze->offered * 9) / 10,
        "in-quota tenant admitted < 90% of offered under hot-tenant flood");
    check.expect(silver->completed > 0 && bronze->completed > 0,
                 "in-quota tenant completed nothing");
    check.expect(silver->p99 > 0.0 && bronze->p99 > 0.0,
                 "in-quota tenant latency histograms empty");
    check.expect(quota_sheds > 0 && hot_sheds > 0,
                 "tenant-quota shed counters not populated");
  }
  if (!check.ok) return 1;
  std::printf("load-smoke OK: %lld arrivals conserved, hot shed %lld "
              "tenant-scoped, in-quota tenants unharmed\n",
              static_cast<long long>(report.offered),
              static_cast<long long>(hot->shed));
  return 0;
}
