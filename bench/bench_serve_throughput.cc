// Serving-path benchmark: dynamic batching vs. one-request-at-a-time act().
//
// Baseline: the same PolicyServer with batching disabled (max_batch_size=1)
// — every act() request pays its own dispatch round-trip (shard wakeup,
// full per-call framework overhead of a batch-1 forward pass, client
// wakeup). Batched: max_batch_size=32 with a queue-delay window sized to
// the client resubmission burst; the dynamic batcher coalesces the
// closed-loop clients' requests so dispatch and forward-pass overhead
// amortize across the batch. Target: >= 3x the one-at-a-time QPS while
// sustaining mean batch >= 8, with p99 latency bounded by max_queue_delay
// plus one batched forward pass. A direct in-process get_actions() loop is
// reported too, as the no-serving-tier reference point.
#include <cstdio>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "agents/dqn_agent.h"
#include "bench_common.h"
#include "serve/policy_server.h"

namespace rlgraph {
namespace {

using namespace std::chrono_literals;

// Serving-shaped workload: a small dense policy, the regime where
// per-call framework overhead (plan dispatch, greedy head, bookkeeping)
// rivals the network compute itself — exactly what request batching
// amortizes. CPU matmul compute scales linearly with batch, so the win
// comes from paying the per-forward fixed cost once per batch, not once
// per request.
Json serve_agent_config() {
  return Json::parse(R"({
    "type": "dqn",
    "backend": "static",
    "network": [{"type": "dense", "units": 32, "activation": "relu"}],
    "memory": {"type": "replay", "capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 0.1, "eps_end": 0.1, "decay_steps": 100},
    "update": {"batch_size": 16, "sync_interval": 50, "min_records": 32},
    "discount": 0.99
  })");
}

constexpr int64_t kObsDim = 16;
constexpr int64_t kNumActions = 4;

std::vector<Tensor> make_observations(int n) {
  Rng rng(7);
  std::vector<Tensor> obs;
  obs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> v(kObsDim);
    for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    obs.push_back(Tensor::from_floats(Shape{kObsDim}, v));
  }
  return obs;
}

// One-request-at-a-time baseline: batch-1 greedy act in a closed loop.
// `specialize` toggles shape-specialized (static arena) plans against the
// dynamic pool-allocating baseline. The greedy act plan is fetch-only, so
// pattern fusion engages on it; `fused_dispatches` (out-param) counts the
// composite-kernel steps it dispatched instead of unfused op chains.
double single_request_qps(double seconds, bool specialize,
                          int64_t* fused_dispatches = nullptr) {
  SpacePtr obs_space = FloatBox(Shape{kObsDim});
  Json cfg = serve_agent_config();
  cfg["specialize_shapes"] = Json(specialize);
  DQNAgent agent(cfg, obs_space, IntBox(kNumActions));
  agent.build();
  std::vector<Tensor> obs = make_observations(64);
  for (int i = 0; i < 32; ++i) {  // warmup: compile + cache the act plan
    (void)agent.get_actions(obs[0].reshaped(Shape{1, kObsDim}), false);
  }
  int64_t requests = 0;
  Stopwatch watch;
  while (watch.elapsed_seconds() < seconds) {
    const Tensor& o = obs[static_cast<size_t>(requests % 64)];
    (void)agent.get_actions(o.reshaped(Shape{1, kObsDim}), false);
    ++requests;
  }
  if (fused_dispatches != nullptr) {
    *fused_dispatches = agent.executor().fused_dispatches();
  }
  return static_cast<double>(requests) / watch.elapsed_seconds();
}

struct ServedResult {
  double qps = 0;
  double mean_batch = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  int64_t shed = 0;
  int64_t padded_rows = 0;
  int64_t quantized_serves = 0;
};

// `pad` buckets flushed batches to powers of two (each bucket hitting a
// cached shape-specialized plan); `specialize` toggles the specialized
// plans themselves in the serving replica. `int8` publishes a quantized
// weight variant and submits every request at int8 precision, routing the
// batched forward passes through the replica's MatMulInt8 plan.
ServedResult served_qps(int clients, int64_t max_batch, double seconds,
                        bool pad, bool specialize, bool int8 = false) {
  SpacePtr obs_space = FloatBox(Shape{kObsDim});
  serve::PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = max_batch;
  // The window only has to cover the closed-loop clients' resubmission
  // burst after a batch completes; anything longer is idle time.
  cfg.batcher.max_queue_delay = 100us;
  cfg.batcher.queue_capacity = 4096;
  cfg.pad_batches = pad;
  if (int8) cfg.default_precision = serve::Precision::kInt8;
  Json agent_cfg = serve_agent_config();
  agent_cfg["specialize_shapes"] = Json(specialize);
  serve::PolicyServer server(agent_cfg, obs_space, IntBox(kNumActions), cfg);
  server.start();

  if (int8) {
    // A trainer-side agent calibrates on a small observation sample and
    // publishes its fp32 weights together with the RLGQ int8 variant; the
    // serving replica installs both on its next snapshot check.
    DQNAgent trainer(agent_cfg, obs_space, IntBox(kNumActions));
    trainer.build();
    Rng rng(11);
    std::vector<float> cal(8 * kObsDim);
    for (float& x : cal) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    trainer.enable_quantized_actions(
        {Tensor::from_floats(Shape{8, kObsDim}, cal)});
    server.store().publish_quantized(trainer.get_weights(),
                                     trainer.export_weights_quantized());
  }

  std::vector<Tensor> obs = make_observations(64);
  for (int i = 0; i < 8; ++i) (void)server.act(obs[0]);  // warmup

  // Closed-loop clients with a pipeline window: each keeps kWindow
  // requests outstanding (act_async) and refills as futures resolve, like
  // a client library batching RPCs over one connection. A window of 1
  // would serialize one context switch per request into the measurement.
  constexpr size_t kWindow = 8;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      int64_t i = 0;
      std::deque<std::future<serve::ActResult>> inflight;
      auto submit_one = [&]() -> bool {
        try {
          inflight.push_back(
              server.act_async(obs[static_cast<size_t>((c + i++) % 64)]));
          return true;
        } catch (const OverloadedError&) {
          std::this_thread::sleep_for(100us);  // back off, retry
          return false;
        }
      };
      while (!stop.load(std::memory_order_relaxed)) {
        while (inflight.size() < kWindow &&
               !stop.load(std::memory_order_relaxed)) {
          (void)submit_one();
        }
        if (inflight.empty()) continue;
        (void)inflight.front().get();
        inflight.pop_front();
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      for (auto& f : inflight) {  // drain what we still owe the server
        try {
          (void)f.get();
        } catch (const Error&) {
        }
      }
    });
  }
  Stopwatch watch;
  while (watch.elapsed_seconds() < seconds) std::this_thread::sleep_for(5ms);
  stop = true;
  for (auto& t : threads) t.join();
  const double elapsed = watch.elapsed_seconds();
  server.shutdown();

  MetricRegistry& m = server.metrics();
  ServedResult r;
  r.qps = static_cast<double>(completed.load()) / elapsed;
  const int64_t batches = m.counter("serve/batches");
  r.mean_batch = batches > 0 ? static_cast<double>(m.counter("serve/requests")) /
                                   static_cast<double>(batches)
                             : 0.0;
  Histogram& lat = m.histogram("serve/latency_seconds");
  r.p50 = lat.p50();
  r.p95 = lat.p95();
  r.p99 = lat.p99();
  r.shed = m.counter("serve/shed_overload") + m.counter("serve/shed_deadline");
  r.padded_rows = m.counter("serve/padded_rows");
  r.quantized_serves = m.counter("serve/quantized_serves");
  return r;
}

}  // namespace
}  // namespace rlgraph

int main(int argc, char** argv) {
  using namespace rlgraph;
  bench::Reporter reporter("serve_throughput", argc, argv);
  bench::TraceFlag trace_flag(argc, argv);
  bench::Scale scale = bench::bench_scale();
  const double seconds =
      scale == bench::Scale::kQuick ? 1.0
                                    : (scale == bench::Scale::kFull ? 8.0 : 3.0);
  const std::vector<int> client_counts =
      scale == bench::Scale::kQuick ? std::vector<int>{16}
                                    : std::vector<int>{1, 4, 16, 64};

  bench::print_header("serving throughput: dynamic batching vs single act()");
  int64_t fused_dispatches = 0;
  const double direct =
      single_request_qps(seconds, /*specialize=*/true, &fused_dispatches);
  const double direct_dynamic =
      single_request_qps(seconds, /*specialize=*/false);
  std::printf(
      "%-28s %10.0f req/s  fused %lld  (no serving tier, specialized "
      "plans)\n",
      "direct get_actions()", direct,
      static_cast<long long>(fused_dispatches));
  std::printf("%-28s %10.0f req/s  (no serving tier, dynamic plans)\n",
              "direct get_actions()", direct_dynamic);
  reporter.record("direct_call_qps", direct, "req/s");
  reporter.record("direct_fused_dispatches",
                  static_cast<double>(fused_dispatches), "dispatches");
  reporter.record("direct_call_qps_dynamic", direct_dynamic, "req/s");

  for (int clients : client_counts) {
    ServedResult base = served_qps(clients, /*max_batch=*/1, seconds,
                                   /*pad=*/false, /*specialize=*/true);
    // Specialized + bucketed padding (the serving default) against the
    // dynamic-plan, ragged-batch baseline.
    ServedResult batched = served_qps(clients, /*max_batch=*/64, seconds,
                                      /*pad=*/true, /*specialize=*/true);
    ServedResult dynamic = served_qps(clients, /*max_batch=*/64, seconds,
                                      /*pad=*/false, /*specialize=*/false);
    // Same serving stack, every request tagged int8: batched forwards run
    // the quantized MatMulInt8 plan published alongside the fp32 weights.
    ServedResult int8 = served_qps(clients, /*max_batch=*/64, seconds,
                                   /*pad=*/true, /*specialize=*/true,
                                   /*int8=*/true);
    const double speedup = batched.qps / base.qps;
    std::printf(
        "clients %4d  one-at-a-time %8.0f req/s | specialized %8.0f req/s  "
        "%5.2fx  batch %5.1f  padded %lld | dynamic %8.0f req/s | "
        "int8 %8.0f req/s  q_serves %lld  p50 %5.2fms p99 %5.2fms | "
        "fp32 p50 %5.2fms p95 %5.2fms p99 %5.2fms  shed %lld\n",
        clients, base.qps, batched.qps, speedup, batched.mean_batch,
        static_cast<long long>(batched.padded_rows), dynamic.qps, int8.qps,
        static_cast<long long>(int8.quantized_serves), int8.p50 * 1e3,
        int8.p99 * 1e3, batched.p50 * 1e3, batched.p95 * 1e3,
        batched.p99 * 1e3, static_cast<long long>(batched.shed));
    Json params;
    params["clients"] = Json(static_cast<int64_t>(clients));
    params["max_batch"] = Json(static_cast<int64_t>(64));
    reporter.record("one_at_a_time_qps", base.qps, "req/s", params);
    reporter.record("served_qps", batched.qps, "req/s", params);
    reporter.record("served_qps_dynamic", dynamic.qps, "req/s", params);
    reporter.record("served_qps_int8", int8.qps, "req/s", params);
    reporter.record("served_speedup", speedup, "x", params);
    reporter.record("served_mean_batch", batched.mean_batch, "req", params);
    reporter.record("served_padded_rows",
                    static_cast<double>(batched.padded_rows), "rows", params);
    reporter.record("served_quantized_serves",
                    static_cast<double>(int8.quantized_serves), "req", params);
    reporter.record("served_p99_latency", batched.p99, "s", params);
    reporter.record("served_p50_latency_int8", int8.p50, "s", params);
    reporter.record("served_p99_latency_int8", int8.p99, "s", params);
  }
  return 0;
}
