// Serving-path benchmark: closed-loop batching speedup + open-loop
// saturation sweep.
//
// Part 1 (reference points): direct in-process get_actions() (no serving
// tier, specialized and dynamic plans) and the closed-loop batching speedup
// — the same PolicyServer at max_batch_size=1 (every request pays its own
// dispatch round-trip) vs 64 (dispatch and forward-pass overhead amortize
// across the batch), plus the int8 quantized serving path.
//
// Part 2 (the saturation sweep): closed-loop clients self-throttle, so
// they can never show what overload looks like. The open-loop harness
// (load_harness.h) offers Poisson arrivals at fixed rates spanning the
// measured closed-loop capacity — below the knee, at it, and past it —
// and reports offered vs attained QPS, per-tenant p50/p99, and shed/
// timeout counts per point. Steady-state serving must still ride the PR 7
// shape-specialized zero-alloc path: the sweep asserts the serving
// replica's plan cache sees NO new compiles after warmup (every batched
// forward hits a cached specialized plan).
#include <cstdio>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "agents/dqn_agent.h"
#include "bench_common.h"
#include "load_harness.h"
#include "serve/policy_server.h"

namespace rlgraph {
namespace {

using namespace std::chrono_literals;

// Serving-shaped workload: a small dense policy, the regime where
// per-call framework overhead (plan dispatch, greedy head, bookkeeping)
// rivals the network compute itself — exactly what request batching
// amortizes. CPU matmul compute scales linearly with batch, so the win
// comes from paying the per-forward fixed cost once per batch, not once
// per request.
Json serve_agent_config() {
  return Json::parse(R"({
    "type": "dqn",
    "backend": "static",
    "network": [{"type": "dense", "units": 32, "activation": "relu"}],
    "memory": {"type": "replay", "capacity": 256},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 0.1, "eps_end": 0.1, "decay_steps": 100},
    "update": {"batch_size": 16, "sync_interval": 50, "min_records": 32},
    "discount": 0.99
  })");
}

constexpr int64_t kObsDim = 16;
constexpr int64_t kNumActions = 4;

std::vector<Tensor> make_observations(int n) {
  Rng rng(7);
  std::vector<Tensor> obs;
  obs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> v(kObsDim);
    for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    obs.push_back(Tensor::from_floats(Shape{kObsDim}, v));
  }
  return obs;
}

// One-request-at-a-time baseline: batch-1 greedy act in a closed loop.
// `specialize` toggles shape-specialized (static arena) plans against the
// dynamic pool-allocating baseline. The greedy act plan is fetch-only, so
// pattern fusion engages on it; `fused_dispatches` (out-param) counts the
// composite-kernel steps it dispatched instead of unfused op chains.
double single_request_qps(double seconds, bool specialize,
                          int64_t* fused_dispatches = nullptr) {
  SpacePtr obs_space = FloatBox(Shape{kObsDim});
  Json cfg = serve_agent_config();
  cfg["specialize_shapes"] = Json(specialize);
  DQNAgent agent(cfg, obs_space, IntBox(kNumActions));
  agent.build();
  std::vector<Tensor> obs = make_observations(64);
  for (int i = 0; i < 32; ++i) {  // warmup: compile + cache the act plan
    (void)agent.get_actions(obs[0].reshaped(Shape{1, kObsDim}), false);
  }
  int64_t requests = 0;
  Stopwatch watch;
  while (watch.elapsed_seconds() < seconds) {
    const Tensor& o = obs[static_cast<size_t>(requests % 64)];
    (void)agent.get_actions(o.reshaped(Shape{1, kObsDim}), false);
    ++requests;
  }
  if (fused_dispatches != nullptr) {
    *fused_dispatches = agent.executor().fused_dispatches();
  }
  return static_cast<double>(requests) / watch.elapsed_seconds();
}

serve::PolicyServerConfig server_config(int64_t max_batch, bool int8) {
  serve::PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = max_batch;
  // The window only has to cover the clients' resubmission burst after a
  // batch completes; anything longer is idle time.
  cfg.batcher.max_queue_delay = 100us;
  cfg.batcher.queue_capacity = 4096;
  cfg.pad_batches = true;
  if (int8) cfg.default_precision = serve::Precision::kInt8;
  return cfg;
}

Json agent_config_specialized() {
  Json agent_cfg = serve_agent_config();
  agent_cfg["specialize_shapes"] = Json(true);
  return agent_cfg;
}

struct ServedResult {
  double qps = 0;
  double mean_batch = 0;
  double p99 = 0;
};

// Closed-loop reference: `clients` pipeline-window threads keep 8 requests
// outstanding each; measures the server's sustainable capacity (and the
// batching speedup at max_batch 1 vs 64).
ServedResult served_qps(int clients, int64_t max_batch, double seconds,
                        bool int8 = false) {
  SpacePtr obs_space = FloatBox(Shape{kObsDim});
  serve::PolicyServerConfig cfg = server_config(max_batch, int8);
  serve::PolicyServer server(agent_config_specialized(), obs_space,
                             IntBox(kNumActions), cfg);
  server.start();

  if (int8) {
    // A trainer-side agent calibrates on a small observation sample and
    // publishes its fp32 weights together with the RLGQ int8 variant; the
    // serving replica installs both on its next snapshot check.
    DQNAgent trainer(agent_config_specialized(), obs_space,
                     IntBox(kNumActions));
    trainer.build();
    Rng rng(11);
    std::vector<float> cal(8 * kObsDim);
    for (float& x : cal) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    trainer.enable_quantized_actions(
        {Tensor::from_floats(Shape{8, kObsDim}, cal)});
    server.store().publish_quantized(trainer.get_weights(),
                                     trainer.export_weights_quantized());
  }

  std::vector<Tensor> obs = make_observations(64);
  for (int i = 0; i < 8; ++i) (void)server.act(obs[0]);  // warmup

  constexpr size_t kWindow = 8;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      int64_t i = 0;
      std::deque<std::future<serve::ActResult>> inflight;
      while (!stop.load(std::memory_order_relaxed)) {
        while (inflight.size() < kWindow &&
               !stop.load(std::memory_order_relaxed)) {
          try {
            inflight.push_back(
                server.act_async(obs[static_cast<size_t>((c + i++) % 64)]));
          } catch (const OverloadedError&) {
            std::this_thread::sleep_for(100us);  // back off, retry
          }
        }
        if (inflight.empty()) continue;
        (void)inflight.front().get();
        inflight.pop_front();
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      for (auto& f : inflight) {  // drain what we still owe the server
        try {
          (void)f.get();
        } catch (const Error&) {
        }
      }
    });
  }
  Stopwatch watch;
  while (watch.elapsed_seconds() < seconds) std::this_thread::sleep_for(5ms);
  stop = true;
  for (auto& t : threads) t.join();
  const double elapsed = watch.elapsed_seconds();
  server.shutdown();

  MetricRegistry& m = server.metrics();
  ServedResult r;
  r.qps = static_cast<double>(completed.load()) / elapsed;
  const int64_t batches = m.counter("serve/batches");
  r.mean_batch =
      batches > 0 ? static_cast<double>(m.counter("serve/requests")) /
                        static_cast<double>(batches)
                  : 0.0;
  r.p99 = m.histogram("serve/latency_seconds").p99();
  return r;
}

}  // namespace
}  // namespace rlgraph

int main(int argc, char** argv) {
  using namespace rlgraph;
  bench::Reporter reporter("serve_throughput", argc, argv);
  bench::TraceFlag trace_flag(argc, argv);
  bench::Scale scale = bench::bench_scale();
  const double seconds =
      scale == bench::Scale::kQuick
          ? 1.0
          : (scale == bench::Scale::kFull ? 8.0 : 3.0);

  bench::print_header("serving throughput: batching speedup (closed loop)");
  int64_t fused_dispatches = 0;
  const double direct =
      single_request_qps(seconds, /*specialize=*/true, &fused_dispatches);
  const double direct_dynamic =
      single_request_qps(seconds, /*specialize=*/false);
  std::printf(
      "%-28s %10.0f req/s  fused %lld  (no serving tier, specialized "
      "plans)\n",
      "direct get_actions()", direct,
      static_cast<long long>(fused_dispatches));
  std::printf("%-28s %10.0f req/s  (no serving tier, dynamic plans)\n",
              "direct get_actions()", direct_dynamic);
  reporter.record("direct_call_qps", direct, "req/s");
  reporter.record("direct_fused_dispatches",
                  static_cast<double>(fused_dispatches), "dispatches");
  reporter.record("direct_call_qps_dynamic", direct_dynamic, "req/s");

  const int clients = 16;
  ServedResult base = served_qps(clients, /*max_batch=*/1, seconds);
  ServedResult batched = served_qps(clients, /*max_batch=*/64, seconds);
  ServedResult int8 = served_qps(clients, /*max_batch=*/64, seconds,
                                 /*int8=*/true);
  const double speedup = batched.qps / base.qps;
  std::printf(
      "clients %4d  one-at-a-time %8.0f req/s | batched %8.0f req/s  "
      "%5.2fx  batch %5.1f  p99 %5.2fms | int8 %8.0f req/s\n",
      clients, base.qps, batched.qps, speedup, batched.mean_batch,
      batched.p99 * 1e3, int8.qps);
  reporter.record("one_at_a_time_qps", base.qps, "req/s");
  reporter.record("served_qps", batched.qps, "req/s");
  reporter.record("served_speedup", speedup, "x");
  reporter.record("served_mean_batch", batched.mean_batch, "req");
  reporter.record("served_p99_latency", batched.p99, "s");
  reporter.record("served_qps_int8", int8.qps, "req/s");

  // --- open-loop saturation sweep -------------------------------------------
  // Offered rates are anchored to the measured closed-loop capacity so the
  // sweep straddles the knee on any host: comfortably below, near, at, and
  // 1.5x past saturation. One server instance serves the whole sweep (the
  // steady-state plan-cache check below needs the warm replica).
  bench::print_header("serving saturation: open-loop Poisson sweep");
  const double capacity = batched.qps;
  const std::vector<double> load_factors =
      scale == bench::Scale::kQuick ? std::vector<double>{0.5, 1.5}
                                    : std::vector<double>{0.25, 0.5, 0.75,
                                                          1.0, 1.5};
  const double sweep_seconds = scale == bench::Scale::kQuick ? 0.5 : 2.0;

  SpacePtr obs_space = FloatBox(Shape{kObsDim});
  // Factory-built engines, pointers retained: after the sweep we read the
  // serving replica's plan-cache counters to confirm the steady state still
  // rides the specialized zero-alloc path.
  std::vector<serve::AgentServingEngine*> engines;
  std::mutex engines_mu;
  Json agent_cfg = agent_config_specialized();
  serve::PolicyServerConfig sweep_cfg =
      server_config(/*max_batch=*/64, /*int8=*/false);
  // Bound queue wait so past-saturation requests time out instead of
  // queueing into the next sweep point (exercises both shed and timeout).
  sweep_cfg.default_deadline = std::chrono::microseconds(50000);
  sweep_cfg.batcher.queue_capacity = 1024;
  // One padding bucket: every flush pads to 64, so exactly one specialized
  // batch-64 plan exists and the steady-state no-new-compiles check cannot
  // be tripped by a load level visiting a bucket the warmup never saw.
  sweep_cfg.batch_buckets = {64};
  serve::PolicyServer server(
      [&](int) {
        auto engine = std::make_unique<serve::AgentServingEngine>(
            agent_cfg, obs_space, IntBox(kNumActions));
        std::lock_guard<std::mutex> lock(engines_mu);
        engines.push_back(engine.get());
        return engine;
      },
      sweep_cfg);
  server.start();

  bench::LoadConfig load;
  load.observations = make_observations(64);
  load.duration_seconds = sweep_seconds;
  load.streams = bench::heavy_tail_streams({"alpha", "beta", "gamma"});
  load.collector_threads = 2;

  // Warmup point: compiles the specialized batch-bucket plans.
  load.offered_qps = std::max(100.0, 0.1 * capacity);
  load.seed = 1;
  (void)bench::run_open_loop(server, load);

  // Plan-cache baseline after warmup: steady state must add NO compiles.
  int64_t compiles_before = 0, hits_before = 0, specializations = 0;
  {
    std::lock_guard<std::mutex> lock(engines_mu);
    for (serve::AgentServingEngine* e : engines) {
      if (Session* session = e->agent().executor().session()) {
        compiles_before += session->plan_compiles();
        hits_before += session->plan_cache_hits();
        specializations += session->plan_specializations();
      }
    }
  }

  std::printf("closed-loop capacity %0.0f req/s; sweeping offered load\n",
              capacity);
  uint64_t seed = 42;
  for (double factor : load_factors) {
    load.offered_qps = factor * capacity;
    load.seed = seed++;
    bench::LoadReport report = bench::run_open_loop(server, load);
    std::printf("offered %8.0f req/s (%4.2fx)  attained %8.0f req/s  "
                "shed %6lld  timeout %6lld\n",
                report.generated_qps, factor, report.attained_qps,
                static_cast<long long>(report.shed),
                static_cast<long long>(report.timeout));
    std::printf("%s", report.table().c_str());
    Json params;
    params["load_factor"] = Json(factor);
    reporter.record("sweep_offered_qps", report.generated_qps, "req/s",
                    params);
    reporter.record("sweep_attained_qps", report.attained_qps, "req/s",
                    params);
    reporter.record("sweep_shed", static_cast<double>(report.shed), "req",
                    params);
    reporter.record("sweep_timeout", static_cast<double>(report.timeout),
                    "req", params);
    for (const bench::StreamStats& s : report.streams) {
      Json sp = params;
      sp["tenant"] = Json(s.name);
      reporter.record("sweep_tenant_attained_qps", s.attained_qps, "req/s",
                      sp);
      reporter.record("sweep_tenant_p50", s.p50, "s", sp);
      reporter.record("sweep_tenant_p99", s.p99, "s", sp);
      reporter.record("sweep_tenant_shed", static_cast<double>(s.shed),
                      "req", sp);
      reporter.record("sweep_tenant_timeout", static_cast<double>(s.timeout),
                      "req", sp);
    }
  }

  int64_t compiles_after = 0, hits_after = 0;
  {
    std::lock_guard<std::mutex> lock(engines_mu);
    for (serve::AgentServingEngine* e : engines) {
      if (Session* session = e->agent().executor().session()) {
        compiles_after += session->plan_compiles();
        hits_after += session->plan_cache_hits();
      }
    }
  }
  server.shutdown();
  const int64_t steady_compiles = compiles_after - compiles_before;
  const int64_t steady_hits = hits_after - hits_before;
  std::printf(
      "steady-state plan cache: %lld new compiles (want 0), %lld hits, "
      "%lld specialized plans live\n",
      static_cast<long long>(steady_compiles),
      static_cast<long long>(steady_hits),
      static_cast<long long>(specializations));
  reporter.record("steady_state_plan_compiles",
                  static_cast<double>(steady_compiles), "compiles");
  reporter.record("steady_state_plan_cache_hits",
                  static_cast<double>(steady_hits), "hits");
  reporter.record("plan_specializations",
                  static_cast<double>(specializations), "plans");
  if (steady_compiles != 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state serving compiled %lld new plans — the "
                 "specialized zero-alloc path regressed\n",
                 static_cast<long long>(steady_compiles));
    return 1;
  }
  return 0;
}
