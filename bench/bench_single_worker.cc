// Figure 7a: single-worker sample throughput across task sizes and
// environment-vector widths, RLgraph vs. the RLlib-like policy evaluator
// (plus the incremental-post-processing ablation called out in DESIGN.md).
//
// Paper shape targets: RLgraph beats RLlib-like at every task size and
// scales better with the number of vectorized environments (batched acting
// and accounting vs. per-env calls); throughput grows with task size as
// fixed task overhead amortizes.
#include <cstdio>

#include "baselines/rllib_like.h"
#include "bench_common.h"
#include "execution/apex_executor.h"

namespace rlgraph {
namespace {

double worker_fps(const ApexConfig& base, int envs, int64_t task_size,
                  int warmup, int runs) {
  ApexConfig cfg = base;
  cfg.envs_per_worker = envs;
  auto probe = make_environment(cfg.env_spec);
  cfg.state_space = probe->state_space();
  cfg.action_space = probe->action_space();
  cfg.preprocessed_space_ = preprocessed_space(
      cfg.agent_config.get("preprocessor"), cfg.state_space);
  ApexWorker worker(cfg, 0);
  for (int i = 0; i < warmup; ++i) worker.sample(task_size);
  std::vector<double> fps;
  for (int i = 0; i < runs; ++i) {
    Stopwatch watch;
    SampleBatch batch = worker.sample(task_size);
    fps.push_back(static_cast<double>(batch.env_frames) /
                  watch.elapsed_seconds());
  }
  return bench::mean(fps);
}

}  // namespace
}  // namespace rlgraph

int main(int argc, char** argv) {
  using namespace rlgraph;
  bench::Reporter reporter("single_worker", argc, argv);
  bench::TraceFlag trace_flag(argc, argv);
  bench::print_header(
      "Figure 7a: single-worker throughput vs. task size and #envs");

  std::vector<int64_t> task_sizes{200, 400, 800, 1600, 3200};
  std::vector<int> env_counts{1, 4, 8};
  int warmup = 2, runs = 5;
  if (bench::bench_scale() == bench::Scale::kQuick) {
    task_sizes = {200, 800};
    env_counts = {1, 4};
    warmup = 1;
    runs = 2;
  }

  ApexConfig base;
  base.agent_config = bench::pong_agent_config();
  base.env_spec = bench::pong_env_spec();
  base.n_step = 3;

  std::printf("%-24s %6s %10s %14s\n", "impl", "envs", "task_size",
              "env_frames/s");
  for (int envs : env_counts) {
    for (int64_t task : task_sizes) {
      double rlgraph = worker_fps(base, envs, task, warmup, runs);
      double rllib = worker_fps(baselines::rllib_like(base), envs, task,
                                warmup, runs);
      // Ablation: only incremental post-processing (batched acting kept).
      ApexConfig ablate = base;
      ablate.incremental_post_processing = true;
      double incr_only = worker_fps(ablate, envs, task, warmup, runs);
      std::printf("%-24s %6d %10lld %14.0f\n", "RLgraph", envs,
                  static_cast<long long>(task), rlgraph);
      std::printf("%-24s %6d %10lld %14.0f\n", "RLlib-like", envs,
                  static_cast<long long>(task), rllib);
      std::printf("%-24s %6d %10lld %14.0f\n",
                  "ablate:incr-postproc", envs, static_cast<long long>(task),
                  incr_only);
      const std::pair<const char*, double> impls[] = {
          {"RLgraph", rlgraph},
          {"RLlib-like", rllib},
          {"ablate:incr-postproc", incr_only}};
      for (const auto& [impl, fps] : impls) {
        Json params;
        params["impl"] = Json(impl);
        params["envs"] = Json(envs);
        params["task_size"] = Json(task);
        reporter.record("sample_fps", fps, "env_frames/s", std::move(params));
      }
    }
    std::printf("\n");
  }
  return 0;
}
