#include "load_harness.h"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/metrics.h"
#include "util/random.h"

namespace rlgraph {
namespace bench {

namespace {

// One in-flight request awaiting collection.
struct Pending {
  std::future<serve::ActResult> fut;
  size_t stream = 0;
  serve::ServeClock::time_point submitted;
};

// Collector-side accumulation for one stream (generator counts offered/shed
// itself; only completion outcomes race across collector threads).
struct StreamAccum {
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> timeout{0};
  std::atomic<int64_t> failed{0};
  Histogram latency;
};

}  // namespace

const StreamStats* LoadReport::stream(const std::string& name) const {
  for (const StreamStats& s : streams) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string LoadReport::table() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-12s %9s %9s %11s %12s %8s %8s %7s %7s %7s\n", "stream",
                "offered", "done", "offered/s", "attained/s", "p50ms",
                "p99ms", "shed", "tmout", "fail");
  os << line;
  auto row = [&](const char* name, int64_t offered, int64_t completed,
                 double oqps, double aqps, double p50, double p99,
                 int64_t shed_n, int64_t timeout_n, int64_t failed_n) {
    std::snprintf(line, sizeof(line),
                  "%-12s %9lld %9lld %11.0f %12.0f %8.2f %8.2f %7lld %7lld "
                  "%7lld\n",
                  name, static_cast<long long>(offered),
                  static_cast<long long>(completed), oqps, aqps, p50 * 1e3,
                  p99 * 1e3, static_cast<long long>(shed_n),
                  static_cast<long long>(timeout_n),
                  static_cast<long long>(failed_n));
    os << line;
  };
  for (const StreamStats& s : streams) {
    row(s.name.c_str(), s.offered, s.completed, s.offered_qps,
        s.attained_qps, s.p50, s.p99, s.shed, s.timeout, s.failed);
  }
  row("TOTAL", offered, completed, generated_qps, attained_qps, 0.0, 0.0,
      shed, timeout, failed);
  return os.str();
}

Json LoadReport::to_json() const {
  Json doc;
  doc["duration_seconds"] = Json(duration_seconds);
  doc["offered_qps"] = Json(offered_qps);
  doc["generated_qps"] = Json(generated_qps);
  doc["attained_qps"] = Json(attained_qps);
  doc["offered"] = Json(offered);
  doc["completed"] = Json(completed);
  doc["shed"] = Json(shed);
  doc["timeout"] = Json(timeout);
  doc["failed"] = Json(failed);
  JsonArray rows;
  for (const StreamStats& s : streams) {
    Json row;
    row["name"] = Json(s.name);
    row["tenant"] = Json(s.tenant);
    row["offered"] = Json(s.offered);
    row["completed"] = Json(s.completed);
    row["shed"] = Json(s.shed);
    row["timeout"] = Json(s.timeout);
    row["failed"] = Json(s.failed);
    row["offered_qps"] = Json(s.offered_qps);
    row["attained_qps"] = Json(s.attained_qps);
    row["p50_seconds"] = Json(s.p50);
    row["p99_seconds"] = Json(s.p99);
    rows.push_back(std::move(row));
  }
  doc["streams"] = Json(std::move(rows));
  return doc;
}

std::vector<LoadStreamSpec> heavy_tail_streams(
    const std::vector<std::string>& tenants, double skew) {
  std::vector<LoadStreamSpec> streams;
  streams.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    LoadStreamSpec s;
    s.name = tenants[i];
    s.tenant = tenants[i];
    s.share = 1.0 / std::pow(static_cast<double>(i + 1), skew);
    streams.push_back(std::move(s));
  }
  return streams;
}

LoadReport run_open_loop(serve::PolicyServer& server,
                         const LoadConfig& config) {
  RLG_REQUIRE(config.offered_qps > 0.0,
              "load harness offered_qps must be > 0");
  RLG_REQUIRE(config.duration_seconds > 0.0,
              "load harness duration must be > 0");
  RLG_REQUIRE(!config.observations.empty(),
              "load harness needs a non-empty observation pool");
  RLG_REQUIRE(config.collector_threads >= 1,
              "load harness needs at least one collector thread");

  std::vector<LoadStreamSpec> streams = config.streams;
  if (streams.empty()) streams.push_back(LoadStreamSpec{});
  std::vector<double> shares;
  shares.reserve(streams.size());
  for (LoadStreamSpec& s : streams) {
    RLG_REQUIRE(s.share > 0.0, "load stream shares must be > 0");
    if (s.name.empty()) s.name = s.tenant.empty() ? "default" : s.tenant;
    shares.push_back(s.share);
  }

  // Completion pipeline: the generator pushes futures, collectors block on
  // them. The queue is unbounded on purpose — in open-loop load the
  // generator must never stall on the measurement apparatus.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> inflight;
  bool gen_done = false;

  std::vector<std::unique_ptr<StreamAccum>> accums;
  for (size_t i = 0; i < streams.size(); ++i) {
    accums.push_back(std::make_unique<StreamAccum>());
  }

  std::vector<std::thread> collectors;
  for (int c = 0; c < config.collector_threads; ++c) {
    collectors.emplace_back([&] {
      for (;;) {
        Pending p;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return !inflight.empty() || gen_done; });
          if (inflight.empty()) return;  // done and drained
          p = std::move(inflight.front());
          inflight.pop_front();
        }
        StreamAccum& acc = *accums[p.stream];
        try {
          (void)p.fut.get();
          const double latency = std::chrono::duration<double>(
                                     serve::ServeClock::now() - p.submitted)
                                     .count();
          acc.latency.record(latency);
          acc.completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const TimeoutError&) {
          acc.timeout.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          acc.failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Open-loop generation: arrival k happens at start + sum of k exponential
  // gaps, independent of how the server is doing. When the generator falls
  // behind schedule (submit overhead at very high rates) it stops sleeping
  // and submits back-to-back; generated_qps in the report shows the rate it
  // actually achieved.
  Rng rng(config.seed);
  std::vector<int64_t> offered(streams.size(), 0);
  std::vector<int64_t> shed(streams.size(), 0);
  std::vector<int64_t> submit_failed(streams.size(), 0);
  const auto start = serve::ServeClock::now();
  double next_arrival = 0.0;  // seconds after start
  uint64_t request_id = config.first_request_id;
  uint64_t arrival_index = 0;
  for (;;) {
    next_arrival += -std::log(1.0 - rng.uniform()) / config.offered_qps;
    if (next_arrival >= config.duration_seconds) break;
    const auto due =
        start + std::chrono::duration_cast<serve::ServeClock::duration>(
                    std::chrono::duration<double>(next_arrival));
    if (due > serve::ServeClock::now()) std::this_thread::sleep_until(due);

    const size_t stream = static_cast<size_t>(rng.categorical(shares));
    const LoadStreamSpec& spec = streams[stream];
    ++offered[stream];
    serve::ActOptions options;
    options.tenant = spec.tenant;
    options.request_class = spec.request_class;
    options.precision = spec.precision;
    options.deadline = spec.deadline;
    options.request_id = request_id++;
    const Tensor& obs =
        config.observations[arrival_index++ % config.observations.size()];
    try {
      Pending p;
      p.submitted = serve::ServeClock::now();
      p.fut = server.act_async(obs, options);
      p.stream = stream;
      {
        std::lock_guard<std::mutex> lock(mu);
        inflight.push_back(std::move(p));
      }
      cv.notify_one();
    } catch (const OverloadedError&) {
      ++shed[stream];  // admission control did its job; keep offering
    } catch (...) {
      ++submit_failed[stream];
    }
  }
  const double generation_elapsed =
      std::chrono::duration<double>(serve::ServeClock::now() - start).count();

  {
    std::lock_guard<std::mutex> lock(mu);
    gen_done = true;
  }
  cv.notify_all();
  for (std::thread& t : collectors) t.join();
  const double elapsed =
      std::chrono::duration<double>(serve::ServeClock::now() - start).count();

  LoadReport report;
  report.duration_seconds = elapsed;
  report.offered_qps = config.offered_qps;
  for (size_t i = 0; i < streams.size(); ++i) {
    StreamStats s;
    s.name = streams[i].name;
    s.tenant = streams[i].tenant;
    s.offered = offered[i];
    s.completed = accums[i]->completed.load();
    s.shed = shed[i];
    s.timeout = accums[i]->timeout.load();
    s.failed = submit_failed[i] + accums[i]->failed.load();
    s.offered_qps = static_cast<double>(s.offered) / generation_elapsed;
    s.attained_qps = static_cast<double>(s.completed) / elapsed;
    s.p50 = accums[i]->latency.p50();
    s.p99 = accums[i]->latency.p99();
    report.offered += s.offered;
    report.completed += s.completed;
    report.shed += s.shed;
    report.timeout += s.timeout;
    report.failed += s.failed;
    report.streams.push_back(std::move(s));
  }
  report.generated_qps =
      static_cast<double>(report.offered) / generation_elapsed;
  report.attained_qps = static_cast<double>(report.completed) / elapsed;
  return report;
}

}  // namespace bench
}  // namespace rlgraph
