// Open-loop load harness for the serving control plane.
//
// Closed-loop clients (bench_serve_throughput's pipeline-window threads)
// self-throttle: when the server slows down, the clients slow down with it,
// so measured latency near saturation is a polite fiction. The open-loop
// harness instead generates a Poisson arrival process at a configured
// OFFERED rate — exponential inter-arrival gaps from a seeded Rng — and
// submits on schedule whether or not the server has answered anything. Past
// the saturation knee, offered and attained QPS diverge and the shed/
// timeout counters show where admission control put the excess. That is the
// operating regime admission quotas and fair queueing exist for, and the
// regime a closed loop can never reach.
//
// Traffic is a weighted mix of streams (tenant + request class + precision
// + deadline). Everything stochastic — arrival gaps, stream picks — comes
// from one seeded Rng, and request ids are assigned sequentially from
// LoadConfig::first_request_id, so a run is fully deterministic in its
// submission schedule: replaying a seed replays the exact request-id
// sequence the canary router hashed.
//
// Conservation: every generated arrival ends in exactly one of completed /
// shed / timeout / failed (LoadReport::conserved()); the load-smoke ctest
// asserts this, so a lost or double-answered request fails CI.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/policy_server.h"
#include "util/json.h"

namespace rlgraph {
namespace bench {

// One stream in the offered-traffic mix.
struct LoadStreamSpec {
  // Reporting key; defaults to the tenant id (or "default") when empty.
  std::string name;
  // Tenant submitted with each request ("" = default tenant).
  std::string tenant;
  // Named request class ("" = none).
  std::string request_class;
  // Relative share of offered arrivals (normalized across streams).
  double share = 1.0;
  // Explicit precision override (unset inherits class/server default).
  std::optional<serve::Precision> precision;
  // Per-request deadline (0 inherits class/server default).
  std::chrono::microseconds deadline{0};
};

struct LoadConfig {
  // Total offered arrival rate across all streams (Poisson).
  double offered_qps = 1000.0;
  // Generation window; completions are drained past its end.
  double duration_seconds = 2.0;
  uint64_t seed = 42;
  // Empty = one default-tenant stream with share 1.
  std::vector<LoadStreamSpec> streams;
  // Observation pool cycled by arrival index (must be non-empty).
  std::vector<Tensor> observations;
  // Threads harvesting futures; generation itself is single-threaded.
  int collector_threads = 2;
  // First request id; arrivals take first_request_id, +1, +2, ...
  uint64_t first_request_id = 1;
};

// Per-stream outcome accounting. offered == completed + shed + timeout +
// failed for every stream of a finished run.
struct StreamStats {
  std::string name;
  std::string tenant;
  int64_t offered = 0;    // arrivals generated for this stream
  int64_t completed = 0;  // answered with an action
  int64_t shed = 0;       // OverloadedError at submit (admission control)
  int64_t timeout = 0;    // TimeoutError through the future (queue deadline)
  int64_t failed = 0;     // any other error
  double offered_qps = 0.0;
  double attained_qps = 0.0;
  // Completion latency (submit -> answer), successes only.
  double p50 = 0.0, p99 = 0.0;
};

struct LoadReport {
  double duration_seconds = 0.0;  // actual wall clock of the run
  double offered_qps = 0.0;       // configured target rate
  double generated_qps = 0.0;     // arrivals actually generated per second
  double attained_qps = 0.0;      // completions per second
  int64_t offered = 0, completed = 0, shed = 0, timeout = 0, failed = 0;
  std::vector<StreamStats> streams;

  // Stats for one stream by reporting name (null when unknown).
  const StreamStats* stream(const std::string& name) const;
  // Every arrival accounted for exactly once?
  bool conserved() const {
    return offered == completed + shed + timeout + failed;
  }
  // Human table: one row per stream plus a totals row.
  std::string table() const;
  // Machine-readable form for bench --json output.
  Json to_json() const;
};

// Drive `server` with the configured open-loop mix and block until every
// submitted future has resolved. The server must be start()ed.
LoadReport run_open_loop(serve::PolicyServer& server, const LoadConfig& config);

// A heavy-tailed (zipf-like, share_i = 1/(i+1)^skew) stream mix over the
// given tenants — the canonical multi-tenant traffic shape where one hot
// tenant dominates the offered load.
std::vector<LoadStreamSpec> heavy_tail_streams(
    const std::vector<std::string>& tenants, double skew = 1.2);

}  // namespace bench
}  // namespace rlgraph
