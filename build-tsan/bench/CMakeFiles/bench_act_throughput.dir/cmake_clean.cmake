file(REMOVE_RECURSE
  "CMakeFiles/bench_act_throughput.dir/bench_act_throughput.cc.o"
  "CMakeFiles/bench_act_throughput.dir/bench_act_throughput.cc.o.d"
  "bench_act_throughput"
  "bench_act_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_act_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
