file(REMOVE_RECURSE
  "CMakeFiles/bench_apex_throughput.dir/bench_apex_throughput.cc.o"
  "CMakeFiles/bench_apex_throughput.dir/bench_apex_throughput.cc.o.d"
  "bench_apex_throughput"
  "bench_apex_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apex_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
