# Empty dependencies file for bench_apex_throughput.
# This may be replaced when dependencies are built.
