file(REMOVE_RECURSE
  "CMakeFiles/bench_build_overhead.dir/bench_build_overhead.cc.o"
  "CMakeFiles/bench_build_overhead.dir/bench_build_overhead.cc.o.d"
  "bench_build_overhead"
  "bench_build_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_build_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
