# Empty compiler generated dependencies file for bench_build_overhead.
# This may be replaced when dependencies are built.
