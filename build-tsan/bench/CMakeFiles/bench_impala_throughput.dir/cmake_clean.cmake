file(REMOVE_RECURSE
  "CMakeFiles/bench_impala_throughput.dir/bench_impala_throughput.cc.o"
  "CMakeFiles/bench_impala_throughput.dir/bench_impala_throughput.cc.o.d"
  "bench_impala_throughput"
  "bench_impala_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impala_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
