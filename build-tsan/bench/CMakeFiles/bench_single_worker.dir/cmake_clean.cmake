file(REMOVE_RECURSE
  "CMakeFiles/bench_single_worker.dir/bench_single_worker.cc.o"
  "CMakeFiles/bench_single_worker.dir/bench_single_worker.cc.o.d"
  "bench_single_worker"
  "bench_single_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
