# Empty compiler generated dependencies file for bench_single_worker.
# This may be replaced when dependencies are built.
