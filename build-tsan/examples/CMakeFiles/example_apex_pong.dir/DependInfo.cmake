
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/apex_pong.cpp" "examples/CMakeFiles/example_apex_pong.dir/apex_pong.cpp.o" "gcc" "examples/CMakeFiles/example_apex_pong.dir/apex_pong.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_execution.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_agents.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_components.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_env.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_raylite.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_spaces.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_backend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
