file(REMOVE_RECURSE
  "CMakeFiles/example_apex_pong.dir/apex_pong.cpp.o"
  "CMakeFiles/example_apex_pong.dir/apex_pong.cpp.o.d"
  "example_apex_pong"
  "example_apex_pong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_apex_pong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
