# Empty compiler generated dependencies file for example_apex_pong.
# This may be replaced when dependencies are built.
