file(REMOVE_RECURSE
  "CMakeFiles/example_custom_component.dir/custom_component.cpp.o"
  "CMakeFiles/example_custom_component.dir/custom_component.cpp.o.d"
  "example_custom_component"
  "example_custom_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
