# Empty compiler generated dependencies file for example_custom_component.
# This may be replaced when dependencies are built.
