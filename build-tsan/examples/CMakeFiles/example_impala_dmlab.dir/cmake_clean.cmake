file(REMOVE_RECURSE
  "CMakeFiles/example_impala_dmlab.dir/impala_dmlab.cpp.o"
  "CMakeFiles/example_impala_dmlab.dir/impala_dmlab.cpp.o.d"
  "example_impala_dmlab"
  "example_impala_dmlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_impala_dmlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
