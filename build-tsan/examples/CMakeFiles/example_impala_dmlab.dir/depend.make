# Empty dependencies file for example_impala_dmlab.
# This may be replaced when dependencies are built.
