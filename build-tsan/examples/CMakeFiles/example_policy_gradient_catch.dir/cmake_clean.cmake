file(REMOVE_RECURSE
  "CMakeFiles/example_policy_gradient_catch.dir/policy_gradient_catch.cpp.o"
  "CMakeFiles/example_policy_gradient_catch.dir/policy_gradient_catch.cpp.o.d"
  "example_policy_gradient_catch"
  "example_policy_gradient_catch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_gradient_catch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
