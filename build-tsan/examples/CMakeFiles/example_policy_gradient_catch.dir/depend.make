# Empty dependencies file for example_policy_gradient_catch.
# This may be replaced when dependencies are built.
