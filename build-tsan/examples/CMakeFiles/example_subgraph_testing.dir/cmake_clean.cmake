file(REMOVE_RECURSE
  "CMakeFiles/example_subgraph_testing.dir/subgraph_testing.cpp.o"
  "CMakeFiles/example_subgraph_testing.dir/subgraph_testing.cpp.o.d"
  "example_subgraph_testing"
  "example_subgraph_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_subgraph_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
