# Empty dependencies file for example_subgraph_testing.
# This may be replaced when dependencies are built.
