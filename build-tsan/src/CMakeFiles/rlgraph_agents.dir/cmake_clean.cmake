file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_agents.dir/agents/actor_critic_agent.cc.o"
  "CMakeFiles/rlgraph_agents.dir/agents/actor_critic_agent.cc.o.d"
  "CMakeFiles/rlgraph_agents.dir/agents/agent.cc.o"
  "CMakeFiles/rlgraph_agents.dir/agents/agent.cc.o.d"
  "CMakeFiles/rlgraph_agents.dir/agents/dqn_agent.cc.o"
  "CMakeFiles/rlgraph_agents.dir/agents/dqn_agent.cc.o.d"
  "CMakeFiles/rlgraph_agents.dir/agents/impala_agent.cc.o"
  "CMakeFiles/rlgraph_agents.dir/agents/impala_agent.cc.o.d"
  "CMakeFiles/rlgraph_agents.dir/agents/ppo_agent.cc.o"
  "CMakeFiles/rlgraph_agents.dir/agents/ppo_agent.cc.o.d"
  "librlgraph_agents.a"
  "librlgraph_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
