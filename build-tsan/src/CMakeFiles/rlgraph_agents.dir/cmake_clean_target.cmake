file(REMOVE_RECURSE
  "librlgraph_agents.a"
)
