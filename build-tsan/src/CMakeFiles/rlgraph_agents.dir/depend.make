# Empty dependencies file for rlgraph_agents.
# This may be replaced when dependencies are built.
