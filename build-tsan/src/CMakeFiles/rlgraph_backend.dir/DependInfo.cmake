
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/autodiff.cc" "src/CMakeFiles/rlgraph_backend.dir/backend/autodiff.cc.o" "gcc" "src/CMakeFiles/rlgraph_backend.dir/backend/autodiff.cc.o.d"
  "/root/repo/src/backend/grad_rules.cc" "src/CMakeFiles/rlgraph_backend.dir/backend/grad_rules.cc.o" "gcc" "src/CMakeFiles/rlgraph_backend.dir/backend/grad_rules.cc.o.d"
  "/root/repo/src/backend/imperative_context.cc" "src/CMakeFiles/rlgraph_backend.dir/backend/imperative_context.cc.o" "gcc" "src/CMakeFiles/rlgraph_backend.dir/backend/imperative_context.cc.o.d"
  "/root/repo/src/backend/op_context.cc" "src/CMakeFiles/rlgraph_backend.dir/backend/op_context.cc.o" "gcc" "src/CMakeFiles/rlgraph_backend.dir/backend/op_context.cc.o.d"
  "/root/repo/src/backend/static_context.cc" "src/CMakeFiles/rlgraph_backend.dir/backend/static_context.cc.o" "gcc" "src/CMakeFiles/rlgraph_backend.dir/backend/static_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
