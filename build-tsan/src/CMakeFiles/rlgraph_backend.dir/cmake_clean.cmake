file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_backend.dir/backend/autodiff.cc.o"
  "CMakeFiles/rlgraph_backend.dir/backend/autodiff.cc.o.d"
  "CMakeFiles/rlgraph_backend.dir/backend/grad_rules.cc.o"
  "CMakeFiles/rlgraph_backend.dir/backend/grad_rules.cc.o.d"
  "CMakeFiles/rlgraph_backend.dir/backend/imperative_context.cc.o"
  "CMakeFiles/rlgraph_backend.dir/backend/imperative_context.cc.o.d"
  "CMakeFiles/rlgraph_backend.dir/backend/op_context.cc.o"
  "CMakeFiles/rlgraph_backend.dir/backend/op_context.cc.o.d"
  "CMakeFiles/rlgraph_backend.dir/backend/static_context.cc.o"
  "CMakeFiles/rlgraph_backend.dir/backend/static_context.cc.o.d"
  "librlgraph_backend.a"
  "librlgraph_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
