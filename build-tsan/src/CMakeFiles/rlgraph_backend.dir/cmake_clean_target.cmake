file(REMOVE_RECURSE
  "librlgraph_backend.a"
)
