# Empty dependencies file for rlgraph_backend.
# This may be replaced when dependencies are built.
