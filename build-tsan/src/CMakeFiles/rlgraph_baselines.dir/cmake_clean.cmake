file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_baselines.dir/baselines/dm_impala_like.cc.o"
  "CMakeFiles/rlgraph_baselines.dir/baselines/dm_impala_like.cc.o.d"
  "CMakeFiles/rlgraph_baselines.dir/baselines/hand_tuned_actor.cc.o"
  "CMakeFiles/rlgraph_baselines.dir/baselines/hand_tuned_actor.cc.o.d"
  "CMakeFiles/rlgraph_baselines.dir/baselines/rllib_like.cc.o"
  "CMakeFiles/rlgraph_baselines.dir/baselines/rllib_like.cc.o.d"
  "librlgraph_baselines.a"
  "librlgraph_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
