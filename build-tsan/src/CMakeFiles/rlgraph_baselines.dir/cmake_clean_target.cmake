file(REMOVE_RECURSE
  "librlgraph_baselines.a"
)
