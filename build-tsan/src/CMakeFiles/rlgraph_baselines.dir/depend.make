# Empty dependencies file for rlgraph_baselines.
# This may be replaced when dependencies are built.
