
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/components/exploration.cc" "src/CMakeFiles/rlgraph_components.dir/components/exploration.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/exploration.cc.o.d"
  "/root/repo/src/components/layers.cc" "src/CMakeFiles/rlgraph_components.dir/components/layers.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/layers.cc.o.d"
  "/root/repo/src/components/losses.cc" "src/CMakeFiles/rlgraph_components.dir/components/losses.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/losses.cc.o.d"
  "/root/repo/src/components/memories.cc" "src/CMakeFiles/rlgraph_components.dir/components/memories.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/memories.cc.o.d"
  "/root/repo/src/components/neural_network.cc" "src/CMakeFiles/rlgraph_components.dir/components/neural_network.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/neural_network.cc.o.d"
  "/root/repo/src/components/optimizers.cc" "src/CMakeFiles/rlgraph_components.dir/components/optimizers.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/optimizers.cc.o.d"
  "/root/repo/src/components/policy.cc" "src/CMakeFiles/rlgraph_components.dir/components/policy.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/policy.cc.o.d"
  "/root/repo/src/components/preprocessors.cc" "src/CMakeFiles/rlgraph_components.dir/components/preprocessors.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/preprocessors.cc.o.d"
  "/root/repo/src/components/queue_staging.cc" "src/CMakeFiles/rlgraph_components.dir/components/queue_staging.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/queue_staging.cc.o.d"
  "/root/repo/src/components/segment_tree.cc" "src/CMakeFiles/rlgraph_components.dir/components/segment_tree.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/segment_tree.cc.o.d"
  "/root/repo/src/components/splitter_merger.cc" "src/CMakeFiles/rlgraph_components.dir/components/splitter_merger.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/splitter_merger.cc.o.d"
  "/root/repo/src/components/synchronizer.cc" "src/CMakeFiles/rlgraph_components.dir/components/synchronizer.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/synchronizer.cc.o.d"
  "/root/repo/src/components/vtrace.cc" "src/CMakeFiles/rlgraph_components.dir/components/vtrace.cc.o" "gcc" "src/CMakeFiles/rlgraph_components.dir/components/vtrace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_backend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_spaces.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
