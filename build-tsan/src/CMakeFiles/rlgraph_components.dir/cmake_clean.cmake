file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_components.dir/components/exploration.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/exploration.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/layers.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/layers.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/losses.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/losses.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/memories.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/memories.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/neural_network.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/neural_network.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/optimizers.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/optimizers.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/policy.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/policy.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/preprocessors.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/preprocessors.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/queue_staging.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/queue_staging.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/segment_tree.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/segment_tree.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/splitter_merger.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/splitter_merger.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/synchronizer.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/synchronizer.cc.o.d"
  "CMakeFiles/rlgraph_components.dir/components/vtrace.cc.o"
  "CMakeFiles/rlgraph_components.dir/components/vtrace.cc.o.d"
  "librlgraph_components.a"
  "librlgraph_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
