file(REMOVE_RECURSE
  "librlgraph_components.a"
)
