# Empty dependencies file for rlgraph_components.
# This may be replaced when dependencies are built.
