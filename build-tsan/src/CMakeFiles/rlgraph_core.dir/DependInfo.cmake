
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/build_context.cc" "src/CMakeFiles/rlgraph_core.dir/core/build_context.cc.o" "gcc" "src/CMakeFiles/rlgraph_core.dir/core/build_context.cc.o.d"
  "/root/repo/src/core/component.cc" "src/CMakeFiles/rlgraph_core.dir/core/component.cc.o" "gcc" "src/CMakeFiles/rlgraph_core.dir/core/component.cc.o.d"
  "/root/repo/src/core/component_test.cc" "src/CMakeFiles/rlgraph_core.dir/core/component_test.cc.o" "gcc" "src/CMakeFiles/rlgraph_core.dir/core/component_test.cc.o.d"
  "/root/repo/src/core/fast_path.cc" "src/CMakeFiles/rlgraph_core.dir/core/fast_path.cc.o" "gcc" "src/CMakeFiles/rlgraph_core.dir/core/fast_path.cc.o.d"
  "/root/repo/src/core/graph_builder.cc" "src/CMakeFiles/rlgraph_core.dir/core/graph_builder.cc.o" "gcc" "src/CMakeFiles/rlgraph_core.dir/core/graph_builder.cc.o.d"
  "/root/repo/src/core/graph_executor.cc" "src/CMakeFiles/rlgraph_core.dir/core/graph_executor.cc.o" "gcc" "src/CMakeFiles/rlgraph_core.dir/core/graph_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_backend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_spaces.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
