file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_core.dir/core/build_context.cc.o"
  "CMakeFiles/rlgraph_core.dir/core/build_context.cc.o.d"
  "CMakeFiles/rlgraph_core.dir/core/component.cc.o"
  "CMakeFiles/rlgraph_core.dir/core/component.cc.o.d"
  "CMakeFiles/rlgraph_core.dir/core/component_test.cc.o"
  "CMakeFiles/rlgraph_core.dir/core/component_test.cc.o.d"
  "CMakeFiles/rlgraph_core.dir/core/fast_path.cc.o"
  "CMakeFiles/rlgraph_core.dir/core/fast_path.cc.o.d"
  "CMakeFiles/rlgraph_core.dir/core/graph_builder.cc.o"
  "CMakeFiles/rlgraph_core.dir/core/graph_builder.cc.o.d"
  "CMakeFiles/rlgraph_core.dir/core/graph_executor.cc.o"
  "CMakeFiles/rlgraph_core.dir/core/graph_executor.cc.o.d"
  "librlgraph_core.a"
  "librlgraph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
