file(REMOVE_RECURSE
  "librlgraph_core.a"
)
