# Empty dependencies file for rlgraph_core.
# This may be replaced when dependencies are built.
