
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/catch_env.cc" "src/CMakeFiles/rlgraph_env.dir/env/catch_env.cc.o" "gcc" "src/CMakeFiles/rlgraph_env.dir/env/catch_env.cc.o.d"
  "/root/repo/src/env/dmlab_sim.cc" "src/CMakeFiles/rlgraph_env.dir/env/dmlab_sim.cc.o" "gcc" "src/CMakeFiles/rlgraph_env.dir/env/dmlab_sim.cc.o.d"
  "/root/repo/src/env/environment.cc" "src/CMakeFiles/rlgraph_env.dir/env/environment.cc.o" "gcc" "src/CMakeFiles/rlgraph_env.dir/env/environment.cc.o.d"
  "/root/repo/src/env/grid_world.cc" "src/CMakeFiles/rlgraph_env.dir/env/grid_world.cc.o" "gcc" "src/CMakeFiles/rlgraph_env.dir/env/grid_world.cc.o.d"
  "/root/repo/src/env/pong_sim.cc" "src/CMakeFiles/rlgraph_env.dir/env/pong_sim.cc.o" "gcc" "src/CMakeFiles/rlgraph_env.dir/env/pong_sim.cc.o.d"
  "/root/repo/src/env/vector_env.cc" "src/CMakeFiles/rlgraph_env.dir/env/vector_env.cc.o" "gcc" "src/CMakeFiles/rlgraph_env.dir/env/vector_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_spaces.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
