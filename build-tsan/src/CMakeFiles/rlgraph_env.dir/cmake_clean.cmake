file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_env.dir/env/catch_env.cc.o"
  "CMakeFiles/rlgraph_env.dir/env/catch_env.cc.o.d"
  "CMakeFiles/rlgraph_env.dir/env/dmlab_sim.cc.o"
  "CMakeFiles/rlgraph_env.dir/env/dmlab_sim.cc.o.d"
  "CMakeFiles/rlgraph_env.dir/env/environment.cc.o"
  "CMakeFiles/rlgraph_env.dir/env/environment.cc.o.d"
  "CMakeFiles/rlgraph_env.dir/env/grid_world.cc.o"
  "CMakeFiles/rlgraph_env.dir/env/grid_world.cc.o.d"
  "CMakeFiles/rlgraph_env.dir/env/pong_sim.cc.o"
  "CMakeFiles/rlgraph_env.dir/env/pong_sim.cc.o.d"
  "CMakeFiles/rlgraph_env.dir/env/vector_env.cc.o"
  "CMakeFiles/rlgraph_env.dir/env/vector_env.cc.o.d"
  "librlgraph_env.a"
  "librlgraph_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
