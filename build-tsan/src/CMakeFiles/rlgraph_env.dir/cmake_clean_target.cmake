file(REMOVE_RECURSE
  "librlgraph_env.a"
)
