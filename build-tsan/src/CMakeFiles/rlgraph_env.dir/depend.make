# Empty dependencies file for rlgraph_env.
# This may be replaced when dependencies are built.
