file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_execution.dir/execution/allreduce.cc.o"
  "CMakeFiles/rlgraph_execution.dir/execution/allreduce.cc.o.d"
  "CMakeFiles/rlgraph_execution.dir/execution/apex_executor.cc.o"
  "CMakeFiles/rlgraph_execution.dir/execution/apex_executor.cc.o.d"
  "CMakeFiles/rlgraph_execution.dir/execution/device.cc.o"
  "CMakeFiles/rlgraph_execution.dir/execution/device.cc.o.d"
  "CMakeFiles/rlgraph_execution.dir/execution/impala_pipeline.cc.o"
  "CMakeFiles/rlgraph_execution.dir/execution/impala_pipeline.cc.o.d"
  "CMakeFiles/rlgraph_execution.dir/execution/multi_device.cc.o"
  "CMakeFiles/rlgraph_execution.dir/execution/multi_device.cc.o.d"
  "CMakeFiles/rlgraph_execution.dir/execution/param_server.cc.o"
  "CMakeFiles/rlgraph_execution.dir/execution/param_server.cc.o.d"
  "CMakeFiles/rlgraph_execution.dir/execution/ray_executor.cc.o"
  "CMakeFiles/rlgraph_execution.dir/execution/ray_executor.cc.o.d"
  "CMakeFiles/rlgraph_execution.dir/execution/supervisor.cc.o"
  "CMakeFiles/rlgraph_execution.dir/execution/supervisor.cc.o.d"
  "librlgraph_execution.a"
  "librlgraph_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
