file(REMOVE_RECURSE
  "librlgraph_execution.a"
)
