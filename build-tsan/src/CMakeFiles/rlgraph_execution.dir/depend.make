# Empty dependencies file for rlgraph_execution.
# This may be replaced when dependencies are built.
