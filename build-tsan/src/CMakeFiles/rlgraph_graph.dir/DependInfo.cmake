
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_def.cc" "src/CMakeFiles/rlgraph_graph.dir/graph/graph_def.cc.o" "gcc" "src/CMakeFiles/rlgraph_graph.dir/graph/graph_def.cc.o.d"
  "/root/repo/src/graph/op_schema.cc" "src/CMakeFiles/rlgraph_graph.dir/graph/op_schema.cc.o" "gcc" "src/CMakeFiles/rlgraph_graph.dir/graph/op_schema.cc.o.d"
  "/root/repo/src/graph/ops_standard.cc" "src/CMakeFiles/rlgraph_graph.dir/graph/ops_standard.cc.o" "gcc" "src/CMakeFiles/rlgraph_graph.dir/graph/ops_standard.cc.o.d"
  "/root/repo/src/graph/passes.cc" "src/CMakeFiles/rlgraph_graph.dir/graph/passes.cc.o" "gcc" "src/CMakeFiles/rlgraph_graph.dir/graph/passes.cc.o.d"
  "/root/repo/src/graph/session.cc" "src/CMakeFiles/rlgraph_graph.dir/graph/session.cc.o" "gcc" "src/CMakeFiles/rlgraph_graph.dir/graph/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
