file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_graph.dir/graph/graph_def.cc.o"
  "CMakeFiles/rlgraph_graph.dir/graph/graph_def.cc.o.d"
  "CMakeFiles/rlgraph_graph.dir/graph/op_schema.cc.o"
  "CMakeFiles/rlgraph_graph.dir/graph/op_schema.cc.o.d"
  "CMakeFiles/rlgraph_graph.dir/graph/ops_standard.cc.o"
  "CMakeFiles/rlgraph_graph.dir/graph/ops_standard.cc.o.d"
  "CMakeFiles/rlgraph_graph.dir/graph/passes.cc.o"
  "CMakeFiles/rlgraph_graph.dir/graph/passes.cc.o.d"
  "CMakeFiles/rlgraph_graph.dir/graph/session.cc.o"
  "CMakeFiles/rlgraph_graph.dir/graph/session.cc.o.d"
  "librlgraph_graph.a"
  "librlgraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
