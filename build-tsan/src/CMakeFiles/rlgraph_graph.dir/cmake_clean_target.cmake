file(REMOVE_RECURSE
  "librlgraph_graph.a"
)
