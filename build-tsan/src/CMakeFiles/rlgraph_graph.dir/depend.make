# Empty dependencies file for rlgraph_graph.
# This may be replaced when dependencies are built.
