file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_raylite.dir/raylite/actor.cc.o"
  "CMakeFiles/rlgraph_raylite.dir/raylite/actor.cc.o.d"
  "CMakeFiles/rlgraph_raylite.dir/raylite/fault_injection.cc.o"
  "CMakeFiles/rlgraph_raylite.dir/raylite/fault_injection.cc.o.d"
  "CMakeFiles/rlgraph_raylite.dir/raylite/object_store.cc.o"
  "CMakeFiles/rlgraph_raylite.dir/raylite/object_store.cc.o.d"
  "librlgraph_raylite.a"
  "librlgraph_raylite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_raylite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
