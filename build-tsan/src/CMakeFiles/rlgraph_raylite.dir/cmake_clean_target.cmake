file(REMOVE_RECURSE
  "librlgraph_raylite.a"
)
