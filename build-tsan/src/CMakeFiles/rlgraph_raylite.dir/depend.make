# Empty dependencies file for rlgraph_raylite.
# This may be replaced when dependencies are built.
