
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spaces/nested.cc" "src/CMakeFiles/rlgraph_spaces.dir/spaces/nested.cc.o" "gcc" "src/CMakeFiles/rlgraph_spaces.dir/spaces/nested.cc.o.d"
  "/root/repo/src/spaces/space.cc" "src/CMakeFiles/rlgraph_spaces.dir/spaces/space.cc.o" "gcc" "src/CMakeFiles/rlgraph_spaces.dir/spaces/space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
