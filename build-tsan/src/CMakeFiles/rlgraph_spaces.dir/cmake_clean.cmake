file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_spaces.dir/spaces/nested.cc.o"
  "CMakeFiles/rlgraph_spaces.dir/spaces/nested.cc.o.d"
  "CMakeFiles/rlgraph_spaces.dir/spaces/space.cc.o"
  "CMakeFiles/rlgraph_spaces.dir/spaces/space.cc.o.d"
  "librlgraph_spaces.a"
  "librlgraph_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
