file(REMOVE_RECURSE
  "librlgraph_spaces.a"
)
