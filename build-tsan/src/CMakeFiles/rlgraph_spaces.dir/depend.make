# Empty dependencies file for rlgraph_spaces.
# This may be replaced when dependencies are built.
