
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/kernels.cc" "src/CMakeFiles/rlgraph_tensor.dir/tensor/kernels.cc.o" "gcc" "src/CMakeFiles/rlgraph_tensor.dir/tensor/kernels.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/CMakeFiles/rlgraph_tensor.dir/tensor/shape.cc.o" "gcc" "src/CMakeFiles/rlgraph_tensor.dir/tensor/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/rlgraph_tensor.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/rlgraph_tensor.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
