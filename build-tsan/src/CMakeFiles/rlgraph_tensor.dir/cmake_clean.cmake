file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_tensor.dir/tensor/kernels.cc.o"
  "CMakeFiles/rlgraph_tensor.dir/tensor/kernels.cc.o.d"
  "CMakeFiles/rlgraph_tensor.dir/tensor/shape.cc.o"
  "CMakeFiles/rlgraph_tensor.dir/tensor/shape.cc.o.d"
  "CMakeFiles/rlgraph_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/rlgraph_tensor.dir/tensor/tensor.cc.o.d"
  "librlgraph_tensor.a"
  "librlgraph_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
