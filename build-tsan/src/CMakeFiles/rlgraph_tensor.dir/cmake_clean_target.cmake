file(REMOVE_RECURSE
  "librlgraph_tensor.a"
)
