# Empty dependencies file for rlgraph_tensor.
# This may be replaced when dependencies are built.
