file(REMOVE_RECURSE
  "CMakeFiles/rlgraph_util.dir/util/json.cc.o"
  "CMakeFiles/rlgraph_util.dir/util/json.cc.o.d"
  "CMakeFiles/rlgraph_util.dir/util/logging.cc.o"
  "CMakeFiles/rlgraph_util.dir/util/logging.cc.o.d"
  "CMakeFiles/rlgraph_util.dir/util/metrics.cc.o"
  "CMakeFiles/rlgraph_util.dir/util/metrics.cc.o.d"
  "CMakeFiles/rlgraph_util.dir/util/random.cc.o"
  "CMakeFiles/rlgraph_util.dir/util/random.cc.o.d"
  "CMakeFiles/rlgraph_util.dir/util/serialization.cc.o"
  "CMakeFiles/rlgraph_util.dir/util/serialization.cc.o.d"
  "CMakeFiles/rlgraph_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/rlgraph_util.dir/util/thread_pool.cc.o.d"
  "librlgraph_util.a"
  "librlgraph_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlgraph_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
