file(REMOVE_RECURSE
  "librlgraph_util.a"
)
