# Empty dependencies file for rlgraph_util.
# This may be replaced when dependencies are built.
