file(REMOVE_RECURSE
  "CMakeFiles/agents_test.dir/agents_test.cc.o"
  "CMakeFiles/agents_test.dir/agents_test.cc.o.d"
  "agents_test"
  "agents_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
