# Empty dependencies file for agents_test.
# This may be replaced when dependencies are built.
