file(REMOVE_RECURSE
  "CMakeFiles/allreduce_test.dir/allreduce_test.cc.o"
  "CMakeFiles/allreduce_test.dir/allreduce_test.cc.o.d"
  "allreduce_test"
  "allreduce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
