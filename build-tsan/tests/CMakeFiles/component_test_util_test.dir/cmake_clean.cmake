file(REMOVE_RECURSE
  "CMakeFiles/component_test_util_test.dir/component_test_util_test.cc.o"
  "CMakeFiles/component_test_util_test.dir/component_test_util_test.cc.o.d"
  "component_test_util_test"
  "component_test_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_test_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
