file(REMOVE_RECURSE
  "CMakeFiles/components_misc_test.dir/components_misc_test.cc.o"
  "CMakeFiles/components_misc_test.dir/components_misc_test.cc.o.d"
  "components_misc_test"
  "components_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
