# Empty dependencies file for components_misc_test.
# This may be replaced when dependencies are built.
