file(REMOVE_RECURSE
  "CMakeFiles/memories_test.dir/memories_test.cc.o"
  "CMakeFiles/memories_test.dir/memories_test.cc.o.d"
  "memories_test"
  "memories_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memories_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
