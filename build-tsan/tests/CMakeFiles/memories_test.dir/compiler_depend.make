# Empty compiler generated dependencies file for memories_test.
# This may be replaced when dependencies are built.
