file(REMOVE_RECURSE
  "CMakeFiles/optimizers_test.dir/optimizers_test.cc.o"
  "CMakeFiles/optimizers_test.dir/optimizers_test.cc.o.d"
  "optimizers_test"
  "optimizers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
