# Empty compiler generated dependencies file for optimizers_test.
# This may be replaced when dependencies are built.
