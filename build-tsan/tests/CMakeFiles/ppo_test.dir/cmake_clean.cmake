file(REMOVE_RECURSE
  "CMakeFiles/ppo_test.dir/ppo_test.cc.o"
  "CMakeFiles/ppo_test.dir/ppo_test.cc.o.d"
  "ppo_test"
  "ppo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
