# Empty compiler generated dependencies file for ppo_test.
# This may be replaced when dependencies are built.
