file(REMOVE_RECURSE
  "CMakeFiles/raylite_test.dir/raylite_test.cc.o"
  "CMakeFiles/raylite_test.dir/raylite_test.cc.o.d"
  "raylite_test"
  "raylite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raylite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
