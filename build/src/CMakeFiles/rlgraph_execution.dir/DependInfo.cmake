
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/execution/allreduce.cc" "src/CMakeFiles/rlgraph_execution.dir/execution/allreduce.cc.o" "gcc" "src/CMakeFiles/rlgraph_execution.dir/execution/allreduce.cc.o.d"
  "/root/repo/src/execution/apex_executor.cc" "src/CMakeFiles/rlgraph_execution.dir/execution/apex_executor.cc.o" "gcc" "src/CMakeFiles/rlgraph_execution.dir/execution/apex_executor.cc.o.d"
  "/root/repo/src/execution/device.cc" "src/CMakeFiles/rlgraph_execution.dir/execution/device.cc.o" "gcc" "src/CMakeFiles/rlgraph_execution.dir/execution/device.cc.o.d"
  "/root/repo/src/execution/impala_pipeline.cc" "src/CMakeFiles/rlgraph_execution.dir/execution/impala_pipeline.cc.o" "gcc" "src/CMakeFiles/rlgraph_execution.dir/execution/impala_pipeline.cc.o.d"
  "/root/repo/src/execution/multi_device.cc" "src/CMakeFiles/rlgraph_execution.dir/execution/multi_device.cc.o" "gcc" "src/CMakeFiles/rlgraph_execution.dir/execution/multi_device.cc.o.d"
  "/root/repo/src/execution/param_server.cc" "src/CMakeFiles/rlgraph_execution.dir/execution/param_server.cc.o" "gcc" "src/CMakeFiles/rlgraph_execution.dir/execution/param_server.cc.o.d"
  "/root/repo/src/execution/ray_executor.cc" "src/CMakeFiles/rlgraph_execution.dir/execution/ray_executor.cc.o" "gcc" "src/CMakeFiles/rlgraph_execution.dir/execution/ray_executor.cc.o.d"
  "/root/repo/src/execution/supervisor.cc" "src/CMakeFiles/rlgraph_execution.dir/execution/supervisor.cc.o" "gcc" "src/CMakeFiles/rlgraph_execution.dir/execution/supervisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlgraph_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_raylite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_components.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_spaces.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
