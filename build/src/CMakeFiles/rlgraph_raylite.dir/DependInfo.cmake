
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raylite/actor.cc" "src/CMakeFiles/rlgraph_raylite.dir/raylite/actor.cc.o" "gcc" "src/CMakeFiles/rlgraph_raylite.dir/raylite/actor.cc.o.d"
  "/root/repo/src/raylite/fault_injection.cc" "src/CMakeFiles/rlgraph_raylite.dir/raylite/fault_injection.cc.o" "gcc" "src/CMakeFiles/rlgraph_raylite.dir/raylite/fault_injection.cc.o.d"
  "/root/repo/src/raylite/object_store.cc" "src/CMakeFiles/rlgraph_raylite.dir/raylite/object_store.cc.o" "gcc" "src/CMakeFiles/rlgraph_raylite.dir/raylite/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
