// Multi-process Ape-X over the raylite/net socket transport.
//
// The same binary plays both roles:
//
//   # driver: spawns N worker processes, runs the Ape-X coordination loop
//   # against them through RemoteApexWorker proxies, prints throughput
//   $ ./example_apex_multiproc [seconds] [num_workers]
//
//   # worker: serve one sampler on an endpoint (normally exec'd by the
//   # driver, but can be launched by hand on another machine with tcp:...)
//   $ ./example_apex_multiproc --worker <config.json> <index> <endpoint>
//
// The driver's coordination loop is the unchanged ApexExecutor — the only
// difference from the in-process example is `config.remote_workers`. Kill a
// worker process mid-run (`kill -9 <pid>`) to watch the supervisor restart
// the slot through the reconnecting RPC client; the run keeps going on the
// surviving workers in the meantime.
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "execution/remote_worker.h"
#include "util/serialization.h"

extern char** environ;

using namespace rlgraph;
namespace net = raylite::net;

namespace {

ApexConfig make_config() {
  ApexConfig config;
  config.agent_config = Json::parse(R"({
    "type": "apex",
    "network": [{"type": "dense", "units": 32, "activation": "relu"}],
    "memory": {"type": "prioritized", "capacity": 4096,
               "alpha": 0.6, "beta": 0.4},
    "optimizer": {"type": "adam", "learning_rate": 0.0005},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": 5000},
    "update": {"batch_size": 32, "sync_interval": 100, "min_records": 64}
  })");
  config.env_spec = Json::parse(R"({"type": "grid_world"})");
  config.envs_per_worker = 2;
  config.num_replay_shards = 1;
  config.worker_sample_size = 64;
  config.min_shard_records = 64;
  config.n_step = 3;
  return config;
}

std::string self_exe() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  RLG_REQUIRE(n > 0, "readlink(/proc/self/exe) failed");
  buf[n] = '\0';
  return std::string(buf);
}

pid_t spawn_worker(const std::string& config_path, int index,
                   const std::string& endpoint) {
  std::string exe = self_exe();
  std::string index_str = std::to_string(index);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(exe.c_str()));
  argv.push_back(const_cast<char*>("--worker"));
  argv.push_back(const_cast<char*>(config_path.c_str()));
  argv.push_back(const_cast<char*>(index_str.c_str()));
  argv.push_back(const_cast<char*>(endpoint.c_str()));
  argv.push_back(nullptr);
  pid_t pid = -1;
  int rc = ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv.data(),
                         environ);
  RLG_REQUIRE(rc == 0, "posix_spawn failed: " << rc);
  return pid;
}

bool wait_for_listening(const std::string& endpoint, double timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double, std::milli>(timeout_ms);
  net::Endpoint ep = net::Endpoint::parse(endpoint);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      net::Socket probe = net::Socket::connect(ep, 200.0);
      return true;
    } catch (const ConnectionError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 5 && std::string(argv[1]) == "--worker") {
    std::vector<uint8_t> bytes = read_file(argv[2]);
    ApexConfig config = apex_worker_config_from_json(
        Json::parse(std::string(bytes.begin(), bytes.end())));
    run_apex_worker_server(config, std::atoi(argv[3]), argv[4]);
    return 0;
  }

  double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  int num_workers = argc > 2 ? std::atoi(argv[2]) : 2;

  ApexConfig config = make_config();
  config.num_workers = num_workers;

  // Hand the sampler configuration to the worker processes via a file.
  std::string config_path =
      "/tmp/apex-multiproc-" + std::to_string(::getpid()) + ".json";
  {
    std::ofstream out(config_path);
    out << apex_worker_config_to_json(config).dump(2);
  }

  std::vector<pid_t> pids;
  for (int i = 0; i < num_workers; ++i) {
    std::string endpoint = "unix:/tmp/apex-multiproc-" +
                           std::to_string(::getpid()) + "-w" +
                           std::to_string(i) + ".sock";
    config.remote_workers.push_back(endpoint);
    pids.push_back(spawn_worker(config_path, i, endpoint));
    std::printf("worker %d: pid %d on %s\n", i, (int)pids.back(),
                endpoint.c_str());
  }
  for (int i = 0; i < num_workers; ++i) {
    if (!wait_for_listening(config.remote_workers[i], 60000.0)) {
      std::fprintf(stderr, "worker %d never came up\n", i);
      return 1;
    }
  }

  std::printf("running Ape-X across %d worker processes for %.0fs "
              "(kill -9 a worker pid to exercise the restart path)...\n",
              num_workers, seconds);
  ApexResult result;
  {
    ApexExecutor executor(config);
    result = executor.run(seconds);
  }
  std::printf("%10.0f env frames/s  (%lld learner updates, %lld sample "
              "tasks, %lld worker restarts, %lld task failures)\n",
              result.frames_per_second,
              static_cast<long long>(result.learner_updates),
              static_cast<long long>(result.sample_tasks),
              static_cast<long long>(result.worker_restarts),
              static_cast<long long>(result.task_failures));

  for (pid_t pid : pids) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  std::remove(config_path.c_str());
  return 0;
}
