// Distributed prioritized experience replay (Ape-X) on the raylite
// execution engine: sampler actors with vectorized synthetic-Pong envs,
// sharded prioritized replay, and an asynchronous learner — the workload of
// the paper's Figures 6 and 7.
//
//   $ ./example_apex_pong [seconds]
#include <cstdio>
#include <cstdlib>

#include "baselines/rllib_like.h"
#include "execution/apex_executor.h"

using namespace rlgraph;

int main(int argc, char** argv) {
  double seconds = argc > 1 ? std::atof(argv[1]) : 8.0;

  ApexConfig config;
  config.agent_config = Json::parse(R"({
    "type": "apex",
    "network": [
      {"type": "conv2d", "filters": 4, "kernel": 4, "stride": 2,
       "activation": "relu"},
      {"type": "dense", "units": 32, "activation": "relu"}
    ],
    "memory": {"type": "prioritized", "capacity": 20000,
               "alpha": 0.6, "beta": 0.4},
    "optimizer": {"type": "adam", "learning_rate": 0.0005},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05,
                    "decay_steps": 20000},
    "update": {"batch_size": 32, "sync_interval": 100},
    "discount": 0.99, "double_q": true, "dueling_q": true
  })");
  config.env_spec = Json::parse(
      R"({"type": "pong", "height": 16, "width": 16, "frame_skip": 4})");
  config.num_workers = 4;
  config.envs_per_worker = 4;  // vectorized environment worker
  config.num_replay_shards = 2;
  config.worker_sample_size = 100;
  config.n_step = 3;  // Ape-X n-step returns, accumulated worker-side

  std::printf("running Ape-X: %d workers x %d envs, %d replay shards, "
              "%.0fs...\n",
              config.num_workers, config.envs_per_worker,
              config.num_replay_shards, seconds);
  ApexExecutor executor(config);
  ApexResult result = executor.run(seconds);
  std::printf("RLgraph executor:  %10.0f env frames/s  (%lld learner "
              "updates, %lld sample tasks)\n",
              result.frames_per_second,
              static_cast<long long>(result.learner_updates),
              static_cast<long long>(result.sample_tasks));

  // Same topology through the RLlib-like execution pattern for comparison.
  ApexExecutor baseline(baselines::rllib_like(config));
  ApexResult base = baseline.run(seconds);
  std::printf("RLlib-like:        %10.0f env frames/s  (%.2fx slower)\n",
              base.frames_per_second,
              base.frames_per_second > 0
                  ? result.frames_per_second / base.frames_per_second
                  : 0.0);
  return 0;
}
