// Writing a custom component: a running-mean-std observation normalizer
// with its statistics kept as graph variables, wired between a user-defined
// API method and a graph function — then dropped into a root graph next to
// off-the-shelf components.
//
// Demonstrates the component contract of paper §3.2/§3.3:
//   * API methods registered on the component,
//   * backend code confined to graph functions (works on BOTH backends),
//   * variables created behind the input-completeness barrier,
//   * the component built and exercised in isolation (ComponentTest).
//
//   $ ./example_custom_component
#include <cstdio>

#include "core/build_context.h"
#include "core/component_test.h"
#include "tensor/kernels.h"

using namespace rlgraph;

// Normalizes observations with running statistics: y = (x - mean) / std.
// update_stats() folds a batch into the running mean/variance (Welford-style
// exponential averaging) entirely with graph ops.
class ObservationNormalizer : public Component {
 public:
  ObservationNormalizer(std::string name, double momentum = 0.99)
      : Component(std::move(name)), momentum_(momentum) {
    require_input_spaces({"update_stats"});

    register_api("update_stats",
                 [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                   RLG_REQUIRE(inputs.size() == 1,
                               "update_stats expects (batch)");
                   return graph_fn(
                       ctx, "update",
                       [this](OpContext& ops, const std::vector<OpRef>& in) {
                         OpRef m = ops.scalar((float)momentum_);
                         OpRef one_minus =
                             ops.scalar((float)(1.0 - momentum_));
                         OpRef batch_mean = ops.reduce_mean(in[0], 0);
                         OpRef batch_sq = ops.reduce_mean(
                             ops.square(in[0]), 0);
                         OpRef mean = ops.variable(scope() + "/mean");
                         OpRef sq = ops.variable(scope() + "/sq");
                         OpRef new_mean = ops.add(
                             ops.mul(m, mean), ops.mul(one_minus, batch_mean));
                         OpRef new_sq = ops.add(
                             ops.mul(m, sq), ops.mul(one_minus, batch_sq));
                         OpRef a1 = ops.assign(scope() + "/mean", new_mean);
                         OpRef a2 = ops.assign(scope() + "/sq", new_sq);
                         return std::vector<OpRef>{ops.group({a1, a2})};
                       },
                       inputs);
                 });

    register_api("normalize",
                 [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                   return graph_fn(
                       ctx, "normalize",
                       [this](OpContext& ops, const std::vector<OpRef>& in) {
                         OpRef mean = ops.variable(scope() + "/mean");
                         OpRef sq = ops.variable(scope() + "/sq");
                         OpRef var = ops.sub(sq, ops.square(mean));
                         OpRef std = ops.sqrt(
                             ops.maximum(var, ops.scalar(1e-6f)));
                         return std::vector<OpRef>{
                             ops.div(ops.sub(in[0], mean), std)};
                       },
                       inputs);
                 });
  }

  // Variables are created once the input space of update_stats is known —
  // their shape comes from the declared space, never from the user.
  void create_variables(BuildContext& ctx) override {
    const auto& box =
        static_cast<const BoxSpace&>(*api_input_spaces("update_stats")[0]);
    create_var(ctx, "mean",
               Tensor::zeros(DType::kFloat32, box.value_shape()));
    create_var(ctx, "sq",
               Tensor::filled(DType::kFloat32, box.value_shape(), 1.0));
  }

 private:
  double momentum_;
};

int main() {
  SpacePtr obs_space = FloatBox(Shape{3})->with_batch_rank();

  for (Backend backend : {Backend::kStatic, Backend::kImperative}) {
    const char* name =
        backend == Backend::kStatic ? "static" : "define-by-run";
    ExecutorOptions opts;
    opts.backend = backend;
    // Build the component in isolation and exercise it (paper Listing 1).
    ComponentTest test(
        std::make_shared<ObservationNormalizer>("normalizer", 0.5),
        {{"update_stats", {obs_space}}, {"normalize", {obs_space}}}, opts);

    Rng rng(1);
    // Feed shifted data so the running mean moves toward (5, 5, 5).
    for (int i = 0; i < 40; ++i) {
      Tensor batch = kernels::random_uniform(Shape{16, 3}, 4.5, 5.5, rng);
      test.test("update_stats", {batch});
    }
    Tensor x = Tensor::from_floats(Shape{1, 3}, {5.0f, 5.0f, 5.0f});
    Tensor y = test.test("normalize", {x})[0];
    std::printf("[%s] normalize((5,5,5)) = (%.3f, %.3f, %.3f) — near zero "
                "once the running mean converged\n",
                name, y.at_flat(0), y.at_flat(1), y.at_flat(2));
  }
  return 0;
}
