// IMPALA on the DeepMind-Lab-style arena: graph-fused rollout actors feed a
// globally shared blocking queue; the learner dequeues, stages and applies
// V-trace updates — the end-to-end computation-graph paradigm of paper §5.1.
//
//   $ ./example_impala_dmlab [seconds]
#include <cstdio>
#include <cstdlib>

#include "execution/impala_pipeline.h"

using namespace rlgraph;

int main(int argc, char** argv) {
  double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;

  ImpalaConfig config;
  config.agent_config = Json::parse(R"({
    "network": [
      {"type": "conv2d", "filters": 8, "kernel": 4, "stride": 2,
       "activation": "relu"},
      {"type": "dense", "units": 64, "activation": "relu"}
    ],
    "rollout_length": 20,
    "discount": 0.99,
    "value_coef": 0.5, "entropy_coef": 0.01,
    "use_staging": true,
    "optimizer": {"type": "adam", "learning_rate": 0.0005}
  })");
  config.env_spec = Json::parse(
      R"({"type": "dmlab", "height": 24, "width": 32, "render_cost": 4000,
          "episode_length": 300, "frame_skip": 4})");
  config.num_actors = 4;
  config.envs_per_actor = 4;
  config.queue_capacity = 8;

  std::printf("running IMPALA: %d actors x %d envs, rollout length %lld, "
              "%.0fs...\n",
              config.num_actors, config.envs_per_actor,
              static_cast<long long>(
                  config.agent_config.get_int("rollout_length", 20)),
              seconds);
  std::printf("(each actor's rollout collection + enqueue is ONE executor "
              "call; the learner's dequeue + staging + V-trace + update is "
              "ONE executor call)\n");

  ImpalaPipeline pipeline(config);
  ImpalaResult result = pipeline.run(seconds);
  std::printf("throughput: %.0f env frames/s over %.1fs\n",
              result.frames_per_second, result.seconds);
  std::printf("rollouts: %lld, learner updates: %lld, final loss: %.4f\n",
              static_cast<long long>(result.rollouts),
              static_cast<long long>(result.learner_updates),
              result.final_loss);
  return 0;
}
