// Policy-gradient agents on Catch-21: A2C and PPO trained side by side with
// the same network, optimizer and rollout budget — both assembled from the
// same component library (Policy with categorical + value heads,
// optimizer), differing only in their loss graph functions and driver-side
// return estimation. Demonstrates how cheaply new algorithms drop into the
// component graph (paper §3.3: "most users will only need to define few
// components to prototype new algorithms, e.g. loss function").
//
//   $ ./example_policy_gradient_catch [env_steps]
#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "agents/actor_critic_agent.h"
#include "agents/ppo_agent.h"
#include "env/vector_env.h"

using namespace rlgraph;

namespace {

Json base_config(const char* type) {
  Json cfg = Json::parse(R"({
    "network": [{"type": "dense", "units": 64, "activation": "relu"},
                {"type": "dense", "units": 64, "activation": "relu"}],
    "optimizer": {"type": "adam", "learning_rate": 0.002},
    "rollout_length": 16, "discount": 0.97,
    "value_coef": 0.5, "entropy_coef": 0.01,
    "clip_ratio": 0.2, "epochs": 3, "minibatch_size": 64
  })");
  cfg["type"] = Json(type);
  return cfg;
}

void train(const char* label, Agent& agent, int steps) {
  Json env_spec = Json::parse(
      R"({"type": "catch", "height": 10, "width": 8,
          "rounds_per_episode": 21})");
  VectorEnv env(env_spec, 8, 21);
  agent.build();
  Tensor obs = env.reset();
  std::vector<double> recent;
  std::printf("\n[%s] training on Catch-21 (returns in [-21, 21]):\n",
              label);
  const int report_every = std::max(1, steps / 8);
  for (int step = 1; step <= steps; ++step) {
    Tensor actions = agent.get_actions(obs);
    VectorStepResult r = env.step(actions);
    agent.observe(obs, actions, r.rewards, r.observations, r.terminals);
    agent.update();
    obs = r.observations;
    for (double ret : env.drain_episode_returns()) {
      recent.push_back(ret);
      if (recent.size() > 32) recent.erase(recent.begin());
    }
    if (step % report_every == 0 && !recent.empty()) {
      double mean = 0;
      for (double v : recent) mean += v;
      std::printf("  step %5d: mean episode return %7.2f\n", step,
                  mean / recent.size());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int steps = argc > 1 ? std::atoi(argv[1]) : 2400;
  Json env_spec = Json::parse(R"({"type": "catch"})");
  auto probe = make_environment(env_spec);

  ActorCriticAgent a2c(base_config("a2c"), probe->state_space(),
                       probe->action_space());
  train("A2C", a2c, steps);

  PPOAgent ppo(base_config("ppo"), probe->state_space(),
               probe->action_space());
  train("PPO", ppo, steps);

  std::printf("\nBoth agents share every component except their loss graph "
              "functions.\n");
  return 0;
}
