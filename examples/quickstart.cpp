// Quickstart: configure a DQN agent from a declarative JSON document, train
// it on GridWorld, checkpoint it, and act greedily with the restored model.
//
//   $ ./example_quickstart
//
// This is the canonical agent loop of the paper's Listing 2:
// get_actions -> observe -> update, plus export_model / import_model.
#include <cstdio>

#include "agents/dqn_agent.h"
#include "env/grid_world.h"

using namespace rlgraph;

int main() {
  // 1. Declarative agent configuration (paper §3.4).
  Json config = Json::parse(R"({
    "type": "dqn",
    "backend": "static",
    "network": [
      {"type": "dense", "units": 64, "activation": "relu"},
      {"type": "dense", "units": 64, "activation": "relu"}
    ],
    "memory": {"type": "prioritized", "capacity": 4096},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": 2500},
    "update": {"batch_size": 32, "sync_interval": 50, "min_records": 100},
    "discount": 0.95, "double_q": true, "dueling_q": true
  })");

  GridWorld env(GridWorld::Config{4, 0.01, 50, /*with_holes=*/true});
  DQNAgent agent(config, env.state_space(), env.action_space());
  agent.build();
  std::printf("built agent: %d components, %d graph nodes, %.1f ms build\n",
              agent.executor().stats().num_components,
              agent.executor().stats().graph_nodes_after,
              agent.executor().stats().build_seconds * 1000);

  // 2. Train: the classic act/observe/update loop.
  Tensor obs = env.reset();
  double episode_return = 0;
  int episodes = 0;
  std::vector<double> recent;
  for (int step = 0; step < 6000; ++step) {
    Tensor batch = obs.reshaped(obs.shape().prepend(1));
    Tensor action = agent.get_actions(batch);
    StepResult r = env.step(action.to_ints()[0]);
    agent.observe(agent.last_preprocessed(), action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(r.observation.shape().prepend(1)),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    agent.update();
    episode_return += r.reward;
    if (r.terminal) {
      recent.push_back(episode_return);
      if (recent.size() > 32) recent.erase(recent.begin());
      ++episodes;
      if (episodes % 50 == 0) {
        double mean = 0;
        for (double v : recent) mean += v;
        std::printf("episode %4d: mean return %.3f\n", episodes,
                    mean / recent.size());
      }
      episode_return = 0;
      obs = env.reset();
    } else {
      obs = r.observation;
    }
  }

  // 3. Checkpoint and restore into a fresh agent.
  agent.export_model("/tmp/rlgraph_quickstart.ckpt");
  DQNAgent restored(config, env.state_space(), env.action_space());
  restored.build();
  restored.import_model("/tmp/rlgraph_quickstart.ckpt");

  // 4. Greedy evaluation with the restored model.
  obs = env.reset();
  double eval_return = 0;
  for (int step = 0; step < 50; ++step) {
    Tensor batch = obs.reshaped(obs.shape().prepend(1));
    Tensor action = restored.get_actions(batch, /*explore=*/false);
    StepResult r = env.step(action.to_ints()[0]);
    eval_return += r.reward;
    if (r.terminal) break;
    obs = r.observation;
  }
  std::printf("greedy return with restored model: %.3f (optimal: 0.95)\n",
              eval_return);
  return eval_return > 0.5 ? 0 : 1;
}
