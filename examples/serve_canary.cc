// Canary rollout with automatic rollback (DESIGN.md §4j).
//
//   $ ./example_serve_canary
//
// A PolicyServer serves a healthy baseline version. A "bad" candidate —
// an engine build whose forward pass is an order of magnitude slower when
// it runs the candidate's weights — is published and canaried at 30% of
// traffic. The controller compares the candidate's windowed p99 against
// the baseline's from the same window and rolls the rollout back
// automatically when the guardband trips. Two properties to watch for in
// the output:
//
//   1. Routing is a pure function of the request id (a splitmix64 hash),
//      so the canary split is bitwise-replayable — no RNG to seed.
//   2. The rollback fails ZERO requests. It only flips routing for
//      requests not yet routed; everything in flight completes normally,
//      just slower than the operator would like.
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "serve/policy_server.h"

using namespace rlgraph;
using namespace std::chrono_literals;

namespace {

// Stand-in for a real model replica: echoes the loaded policy version and
// stalls when it is running the regressed candidate build.
class DemoEngine : public serve::ServingEngine {
 public:
  explicit DemoEngine(int64_t slow_version) : slow_version_(slow_version) {}

  void load(const serve::PolicySnapshot& snapshot) override {
    version_ = static_cast<int64_t>(snapshot.weights->at("v").scalar_value());
  }

  Tensor forward(const Tensor& obs_batch) override {
    if (version_ == slow_version_) std::this_thread::sleep_for(4ms);
    const int64_t n = obs_batch.shape().dim(0);
    std::vector<float> out(static_cast<size_t>(n),
                           static_cast<float>(version_));
    return Tensor::from_floats(Shape{n}, out);
  }

 private:
  int64_t slow_version_;
  int64_t version_ = 0;
};

serve::WeightMap weights_v(int64_t v) {
  serve::WeightMap w;
  w["v"] = Tensor::scalar(static_cast<float>(v));
  return w;
}

}  // namespace

int main() {
  serve::PolicyServerConfig cfg;
  cfg.num_shards = 1;
  cfg.batcher.max_batch_size = 8;
  cfg.batcher.max_queue_delay = 200us;
  cfg.canary.weight = 0.3;       // 30% of traffic to the candidate
  cfg.canary.min_samples = 20;   // decide after 20 outcomes per side

  serve::PolicyServer server(
      [](int) { return std::make_unique<DemoEngine>(/*slow_version=*/2); },
      cfg);
  const int64_t v1 = server.store().publish(weights_v(1));
  server.start();
  std::printf("baseline v%lld serving\n", static_cast<long long>(v1));

  const int64_t v2 = server.store().publish(weights_v(2));
  server.start_canary(v2);
  std::printf("canary v%lld started at weight %.0f%% (baseline pinned: v%lld)\n",
              static_cast<long long>(v2), 100 * cfg.canary.weight,
              static_cast<long long>(server.canary().baseline_version()));

  // Drive traffic until the controller decides. Every future resolves —
  // count the splits to see the deterministic routing and the rollback.
  Tensor obs = Tensor::from_floats(Shape{1}, {0.5f});
  int64_t served_baseline = 0, served_canary = 0, failed = 0;
  int wave = 0;
  while (server.canary().active() && wave < 100) {
    std::vector<std::future<serve::ActResult>> futs;
    for (int i = 0; i < 16; ++i) futs.push_back(server.act_async(obs));
    for (auto& f : futs) {
      try {
        (f.get().policy_version == v2 ? served_canary : served_baseline)++;
      } catch (const Error&) {
        ++failed;
      }
    }
    ++wave;
  }

  const auto epoch = server.canary().last_epoch();
  std::printf("decision epoch: baseline p99 %.2fms vs canary p99 %.2fms\n",
              1e3 * epoch.baseline_p99, 1e3 * epoch.canary_p99);
  std::printf("state: %s  (rolled_back gauge %.0f)\n",
              serve::canary_state_name(server.canary().state()),
              server.metrics().gauge("serve/canary_rolled_back"));
  std::printf("served: baseline %lld, canary %lld, failed %lld "
              "(the rollback itself fails nothing)\n",
              static_cast<long long>(served_baseline),
              static_cast<long long>(served_canary),
              static_cast<long long>(failed));

  // Rolled back: the pinned baseline answers everything, even though the
  // candidate is the newest published version.
  for (int i = 0; i < 20; ++i) {
    serve::ActResult r = server.act(obs);
    if (r.policy_version != v1) {
      std::printf("UNEXPECTED: post-rollback response from v%lld\n",
                  static_cast<long long>(r.policy_version));
      return 1;
    }
  }
  std::printf("post-rollback: 20/20 responses from pinned baseline v%lld\n",
              static_cast<long long>(v1));
  server.shutdown();
  return failed == 0 ? 0 : 1;
}
