// Serving quickstart: train a DQN on GridWorld, publish its weights to a
// PolicyServer, and serve concurrent clients through the dynamic batcher —
// including a mid-flight hot-swap to a newer policy version.
//
//   $ ./example_serve_dqn
//
// The flow mirrors a production rollout: a trainer process periodically
// exports weights, the serving tier picks them up atomically (no torn
// snapshots, no request drops), and clients only ever see a consistent
// (action, policy_version) pair.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "agents/dqn_agent.h"
#include "env/grid_world.h"
#include "serve/policy_server.h"

using namespace rlgraph;
using namespace std::chrono_literals;

namespace {

Json agent_config() {
  return Json::parse(R"({
    "type": "dqn",
    "backend": "static",
    "network": [
      {"type": "dense", "units": 32, "activation": "relu"},
      {"type": "dense", "units": 32, "activation": "relu"}
    ],
    "memory": {"type": "replay", "capacity": 4096},
    "optimizer": {"type": "adam", "learning_rate": 0.001},
    "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": 2000},
    "update": {"batch_size": 32, "sync_interval": 50, "min_records": 100},
    "discount": 0.95
  })");
}

// A few hundred training steps — enough to move the weights so the
// hot-swap below serves a visibly different policy version.
void train(DQNAgent& agent, GridWorld& env, int steps) {
  Tensor obs = env.reset();
  for (int step = 0; step < steps; ++step) {
    Tensor batch = obs.reshaped(obs.shape().prepend(1));
    Tensor action = agent.get_actions(batch);
    StepResult r = env.step(action.to_ints()[0]);
    agent.observe(agent.last_preprocessed(), action,
                  Tensor::from_floats(Shape{1}, {(float)r.reward}),
                  r.observation.reshaped(r.observation.shape().prepend(1)),
                  Tensor::from_bools(Shape{1}, {r.terminal}));
    agent.update();
    obs = r.terminal ? env.reset() : r.observation;
  }
}

}  // namespace

int main() {
  GridWorld env(GridWorld::Config{4, 0.01, 50, /*with_holes=*/true});

  // 1. Trainer: build and train the policy we are going to serve.
  DQNAgent trainer(agent_config(), env.state_space(), env.action_space());
  trainer.build();
  train(trainer, env, 1000);

  // 2. Serving tier: one shard, small batching window. The server builds
  //    its own engine replica from the same declarative config; weights
  //    flow in through the policy store, never by sharing the trainer.
  serve::PolicyServerConfig cfg;
  cfg.batcher.max_batch_size = 16;
  cfg.batcher.max_queue_delay = 1ms;
  serve::PolicyServer server(agent_config(), env.state_space(),
                             env.action_space(), cfg);
  int64_t v1 = server.store().publish_serialized(trainer.export_weights());
  server.start();
  std::printf("serving policy version %lld\n", static_cast<long long>(v1));

  // 3. Clients: a handful of closed loops, each walking its own episode
  //    greedily through the served policy.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> requests{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      GridWorld client_env(GridWorld::Config{4, 0.01, 50, true});
      (void)c;
      Tensor obs = client_env.reset();
      while (!stop.load()) {
        serve::ActResult r = server.act(obs);
        StepResult step = client_env.step(r.action.to_ints()[0]);
        obs = step.terminal ? client_env.reset() : step.observation;
        requests.fetch_add(1);
      }
    });
  }

  // 4. Hot-swap: keep training, then publish the improved weights while
  //    the clients above are mid-flight. In-flight batches finish on the
  //    old version; the next batch picks up the new one atomically.
  std::this_thread::sleep_for(200ms);
  train(trainer, env, 1000);
  int64_t v2 = server.store().publish_serialized(trainer.export_weights());
  std::printf("hot-swapped to policy version %lld (requests so far: %lld)\n",
              static_cast<long long>(v2),
              static_cast<long long>(requests.load()));
  std::this_thread::sleep_for(200ms);

  // 5. Drain: stop clients, then shut down. Queued requests still get
  //    answers; anything submitted after close is rejected as Overloaded.
  stop = true;
  for (auto& t : clients) t.join();
  server.shutdown();

  MetricRegistry& m = server.metrics();
  std::printf("served %lld requests in %lld batches (mean batch %.1f)\n",
              static_cast<long long>(m.counter("serve/requests")),
              static_cast<long long>(m.counter("serve/batches")),
              static_cast<double>(m.counter("serve/requests")) /
                  static_cast<double>(std::max<int64_t>(
                      1, m.counter("serve/batches"))));
  std::printf("latency p50/p99: %.2f / %.2f ms\n",
              m.histogram("serve/latency_seconds").p50() * 1e3,
              m.histogram("serve/latency_seconds").p99() * 1e3);
  return 0;
}
