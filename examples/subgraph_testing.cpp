// Reproduction of the paper's Listing 1: incremental sub-graph testing.
//
//   state_space  = FloatBox(shape=(64,), add_batch_rank=True)
//   action_space = Dict(discrete=IntBox(), cont=FloatBox(),
//                       add_batch_rank=True)
//   policy = Policy("recurrent_policy.json", action_space)
//   test = ComponentTest(policy, dict(nn_input=state_space), action_space)
//   action = test.test(policy.get_action, state_space.sample())
//
// Here the dict action space is handled with the container splitter/merger
// components, and the policy sub-graph (network + action selection) is
// built from declared spaces and driven with sampled inputs — no manual
// placeholder or tensor wrangling (paper §3.3).
//
//   $ ./example_subgraph_testing
#include <cstdio>

#include "components/policy.h"
#include "components/splitter_merger.h"
#include "core/build_context.h"
#include "core/component_test.h"
#include "spaces/nested.h"

using namespace rlgraph;

int main() {
  // state_space = FloatBox(shape=(64,), add_batch_rank=True).
  SpacePtr state_space = FloatBox(Shape{64})->with_batch_rank();
  // Dict space: 1 discrete, 1 continuous action.
  SpacePtr action_space = Dict({{"discrete", IntBox(4)},
                                {"cont", FloatBox(Shape{})}})
                              ->with_batch_rank();

  // A root with a discrete policy head plus a continuous head (tanh dense),
  // merged into the dict action record by a ContainerMerger.
  auto root = std::make_shared<Component>("test-root");
  Json network = Json::parse(
      R"([{"type": "dense", "units": 32, "activation": "tanh"}])");
  auto* policy = root->add_component(std::make_shared<Policy>(
      "policy", network, IntBox(4), PolicyHead::kQValues));
  auto* cont_head =
      root->add_component(std::make_shared<DenseLayer>("cont-head", 1,
                                                       Activation::kTanh));
  auto* merger = root->add_component(
      std::make_shared<ContainerMerger>("merger", action_space));

  root->register_api(
      "get_action",
      [policy, cont_head, merger, root_raw = root.get()](
          BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        OpRec discrete = policy->call_api(ctx, "get_action", inputs)[0];
        OpRec cont_raw = cont_head->call_api(ctx, "apply", inputs)[0];
        OpRec cont = root_raw->graph_fn(
            ctx, "squeeze",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{ops.squeeze(in[0], 1)};
            },
            {cont_raw})[0];
        // Merge leaves in the dict's flatten order: cont, discrete.
        return merger->call_api(ctx, "merge", {cont, discrete});
      });

  // Construct sub graph from spaces, auto-gen placeholders.
  ComponentTest test(root, {{"get_action", {state_space}}});
  std::printf("built policy sub-graph: %d components, %d graph nodes\n",
              test.executor().stats().num_components,
              test.executor().stats().graph_nodes_after);

  // Test with any inputs in the input space.
  Rng& rng = test.rng();
  NestedTensor sample = state_space->sample(rng, /*batch=*/3);
  std::vector<Tensor> leaves;
  for (auto& [path, t] : sample.flatten()) leaves.push_back(t);
  std::vector<Tensor> action_leaves = test.test("get_action", leaves);

  // Rebuild the nested action record and verify it inhabits the space.
  std::vector<std::pair<std::string, SpacePtr>> space_leaves;
  action_space->flatten(&space_leaves);
  std::vector<std::pair<std::string, Tensor>> named;
  for (size_t i = 0; i < action_leaves.size(); ++i) {
    named.emplace_back(space_leaves[i].first, action_leaves[i]);
  }
  NestedTensor action = NestedTensor::unflatten(*action_space, named);
  std::printf("sampled action record: %s\n", action.to_string().c_str());
  bool ok = action_space->contains(action);
  std::printf("action_space.contains(action) = %s\n", ok ? "true" : "false");
  return ok ? 0 : 1;
}
