#!/usr/bin/env bash
# Full three-config test matrix (see README "Testing"):
#
#   1. default   — every test, optimized build               (ctest, all)
#                  includes the `load-smoke` open-loop harness variant
#                  (bench_serve_multitenant --smoke: fixed seed, ~2s, hard
#                  conservation + SLO-counter assertions)
#   2. tsan      — -DRLGRAPH_TSAN=ON, `sanitize`- and `net`-labeled tests
#                  under ThreadSanitizer (thread-heavy, serving, and socket
#                  transport suites)
#   3. asan      — -DRLGRAPH_ASAN=ON, same label set under AddressSanitizer
#
# Exits non-zero if ANY config fails. Build directories are kept between
# runs (build/, build-tsan/, build-asan/) so re-runs are incremental.
#
# Every ctest invocation runs under --timeout (default 240s per test, on
# top of per-test TIMEOUT properties) so a hung socket test fails fast
# instead of wedging the sweep.
#
# Usage: scripts/run_tests.sh [--timeout N] [default|tsan|asan]...
#        (no configs = all three)
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
TEST_TIMEOUT=240

configs=()
while [ $# -gt 0 ]; do
  case "$1" in
    --timeout)
      [ $# -ge 2 ] || { echo "--timeout needs a value (seconds)" >&2; exit 2; }
      TEST_TIMEOUT="$2"
      shift 2
      ;;
    --timeout=*)
      TEST_TIMEOUT="${1#--timeout=}"
      shift
      ;;
    *)
      configs+=("$1")
      shift
      ;;
  esac
done
[ ${#configs[@]} -eq 0 ] && configs=(default tsan asan)

# The sanitizer configs target the thread-heavy suites plus the socket
# transport. Labels are anchored: `net-multiproc` (SIGKILL chaos across real
# processes) must NOT match — sanitizer runtimes don't follow exec'd
# children, so it runs under the default config only — and `^continuous$`
# pulls in the fast SAC/continuous-control suites without matching
# `continuous-train` (a full training run, too slow when instrumented).
SANITIZE_LABELS='-L ^sanitize$|^net$|^serve$|^passes$|^continuous$'

failures=()

run_config() {
  local name="$1" dir="$2" cmake_flags="$3" ctest_flags="$4"
  echo "=== [$name] configure + build ($dir) ==="
  if ! cmake -B "$dir" -S . $cmake_flags >"$dir.configure.log" 2>&1; then
    echo "[$name] CONFIGURE FAILED (see $dir.configure.log)"
    failures+=("$name")
    return
  fi
  if ! cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1; then
    echo "[$name] BUILD FAILED (see $dir.build.log)"
    tail -n 30 "$dir.build.log"
    failures+=("$name")
    return
  fi
  echo "=== [$name] ctest --timeout $TEST_TIMEOUT $ctest_flags ==="
  if ! (cd "$dir" && ctest --output-on-failure -j "$JOBS" \
          --timeout "$TEST_TIMEOUT" $ctest_flags); then
    echo "[$name] TESTS FAILED"
    failures+=("$name")
  fi
}

for config in "${configs[@]}"; do
  case "$config" in
    default)
      run_config default build "" ""
      ;;
    tsan)
      # TSAN wants every translation unit instrumented; a dedicated tree.
      run_config tsan build-tsan "-DRLGRAPH_TSAN=ON" "$SANITIZE_LABELS"
      ;;
    asan)
      ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
        run_config asan build-asan "-DRLGRAPH_ASAN=ON" "$SANITIZE_LABELS"
      ;;
    *)
      echo "unknown config: $config (expected default|tsan|asan)" >&2
      exit 2
      ;;
  esac
done

echo
if [ ${#failures[@]} -gt 0 ]; then
  echo "FAILED configs: ${failures[*]}"
  exit 1
fi
echo "all configs passed: ${configs[*]}"
