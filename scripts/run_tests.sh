#!/usr/bin/env bash
# Full three-config test matrix (see README "Testing"):
#
#   1. default   — every test, optimized build               (ctest, all)
#   2. tsan      — -DRLGRAPH_TSAN=ON, `sanitize`-labeled tests under
#                  ThreadSanitizer (thread-heavy + serving suites)
#   3. asan      — -DRLGRAPH_ASAN=ON, `sanitize`-labeled tests under
#                  AddressSanitizer
#
# Exits non-zero if ANY config fails. Build directories are kept between
# runs (build/, build-tsan/, build-asan/) so re-runs are incremental.
#
# Usage: scripts/run_tests.sh [default|tsan|asan]...   (no args = all three)
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
configs=("$@")
[ ${#configs[@]} -eq 0 ] && configs=(default tsan asan)

failures=()

run_config() {
  local name="$1" dir="$2" cmake_flags="$3" ctest_flags="$4"
  echo "=== [$name] configure + build ($dir) ==="
  if ! cmake -B "$dir" -S . $cmake_flags >"$dir.configure.log" 2>&1; then
    echo "[$name] CONFIGURE FAILED (see $dir.configure.log)"
    failures+=("$name")
    return
  fi
  if ! cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1; then
    echo "[$name] BUILD FAILED (see $dir.build.log)"
    tail -n 30 "$dir.build.log"
    failures+=("$name")
    return
  fi
  echo "=== [$name] ctest $ctest_flags ==="
  if ! (cd "$dir" && ctest --output-on-failure -j "$JOBS" $ctest_flags); then
    echo "[$name] TESTS FAILED"
    failures+=("$name")
  fi
}

for config in "${configs[@]}"; do
  case "$config" in
    default)
      run_config default build "" ""
      ;;
    tsan)
      # TSAN wants every translation unit instrumented; a dedicated tree.
      run_config tsan build-tsan "-DRLGRAPH_TSAN=ON" "-L sanitize"
      ;;
    asan)
      ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
        run_config asan build-asan "-DRLGRAPH_ASAN=ON" "-L sanitize"
      ;;
    *)
      echo "unknown config: $config (expected default|tsan|asan)" >&2
      exit 2
      ;;
  esac
done

echo
if [ ${#failures[@]} -gt 0 ]; then
  echo "FAILED configs: ${failures[*]}"
  exit 1
fi
echo "all configs passed: ${configs[*]}"
