#include "agents/actor_critic_agent.h"

#include "components/optimizers.h"
#include "core/build_context.h"
#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

ActorCriticAgent::ActorCriticAgent(Json config, SpacePtr state_space,
                                   SpacePtr action_space)
    : Agent(std::move(config), std::move(state_space),
            std::move(action_space)) {
  rollout_length_ = config_.get_int("rollout_length", 16);
  discount_ = config_.get_double("discount", 0.99);
}

void ActorCriticAgent::setup_graph() {
  auto root = std::make_shared<Component>("agent");
  auto* policy = root->add_component(std::make_shared<Policy>(
      "policy", config_.at("network"), action_space_,
      PolicyHead::kCategorical));
  Json opt_config = config_.get("optimizer").is_null()
                        ? Json(JsonObject{})
                        : config_.get("optimizer");
  auto* optimizer =
      root->add_component(make_optimizer("optimizer", opt_config));
  double value_coef = config_.get_double("value_coef", 0.5);
  double entropy_coef = config_.get_double("entropy_coef", 0.01);

  root->register_api("act",
                     [policy](BuildContext& ctx, const OpRecs& inputs) {
                       return policy->call_api(ctx, "sample_action", inputs);
                     });
  root->register_api("act_greedy",
                     [policy](BuildContext& ctx, const OpRecs& inputs) {
                       return policy->call_api(ctx, "get_action", inputs);
                     });

  root->register_api(
      "get_values",
      [policy, root_raw = root.get()](BuildContext& ctx,
                                      const OpRecs& inputs) -> OpRecs {
        OpRecs lv = policy->call_api(ctx, "get_logits_value", inputs);
        return root_raw->graph_fn(
            ctx, "squeeze_value",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{ops.squeeze(in[0], 1)};
            },
            {lv[1]});
      });

  // update_batch(states [B,...], actions [B], returns [B])
  //   -> (loss, update_group).
  root->register_api(
      "update_batch",
      [policy, optimizer, root_raw = root.get(), value_coef, entropy_coef](
          BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 3,
                    "update_batch expects (states, actions, returns)");
        OpRecs lv = policy->call_api(ctx, "get_logits_value", {inputs[0]});
        OpRecs loss = root_raw->graph_fn(
            ctx, "a2c_loss",
            [value_coef, entropy_coef](OpContext& ops,
                                       const std::vector<OpRef>& in) {
              OpRef logits = in[0];
              OpRef values = ops.squeeze(in[1], 1);
              OpRef actions = in[2], returns = in[3];
              OpRef logp_all = ops.log_softmax(logits);
              OpRef logp_a = ops.select_columns(logp_all, actions);
              OpRef advantage =
                  ops.stop_gradient(ops.sub(returns, values));
              OpRef pg = ops.neg(ops.reduce_mean(ops.mul(logp_a, advantage)));
              OpRef v_loss = ops.mul(
                  ops.scalar(0.5f),
                  ops.reduce_mean(ops.square(ops.sub(values, returns))));
              OpRef entropy = ops.neg(ops.reduce_mean(ops.reduce_sum(
                  ops.mul(ops.softmax(logits), logp_all), 1)));
              OpRef total = ops.add(
                  pg, ops.sub(ops.mul(ops.scalar((float)value_coef), v_loss),
                              ops.mul(ops.scalar((float)entropy_coef),
                                      entropy)));
              return std::vector<OpRef>{total};
            },
            {lv[0], lv[1], inputs[1], inputs[2]});
        OpRecs vars = policy->variable_recs(ctx);
        OpRecs step_inputs{loss[0]};
        step_inputs.insert(step_inputs.end(), vars.begin(), vars.end());
        OpRecs opt_out = optimizer->call_api(ctx, "step", step_inputs);
        return OpRecs{opt_out[1], opt_out[0]};
      });

  SpacePtr state_b = state_space_->with_batch_rank();
  api_spaces_ = {
      {"act", {state_b}},
      {"act_greedy", {state_b}},
      {"get_values", {state_b}},
      {"update_batch",
       {state_b, action_space_->with_batch_rank(),
        FloatBox()->with_batch_rank()}},
  };
  root_ = std::move(root);
}

void ActorCriticAgent::on_built() {
  GraphExecutor& ex = executor();
  h_act_ = ex.api_handle("act");
  h_act_greedy_ = ex.api_handle("act_greedy");
  h_get_values_ = ex.api_handle("get_values");
  h_update_batch_ = ex.api_handle("update_batch");
}

Tensor ActorCriticAgent::get_actions(const Tensor& states, bool explore) {
  return executor().execute(explore ? h_act_ : h_act_greedy_, {states})[0];
}

Tensor ActorCriticAgent::get_values(const Tensor& states) {
  return executor().execute(h_get_values_, {states})[0];
}

void ActorCriticAgent::observe(const Tensor& states, const Tensor& actions,
                               const Tensor& rewards,
                               const Tensor& next_states,
                               const Tensor& terminals) {
  rollout_.push_back(Step{states, actions, rewards, terminals});
  last_next_states_ = next_states;
  RLG_REQUIRE(static_cast<int64_t>(rollout_.size()) <= rollout_length_,
              "rollout buffer overfull; call update() every step");
}

double ActorCriticAgent::update() {
  if (static_cast<int64_t>(rollout_.size()) < rollout_length_) return 0.0;

  // Bootstrap from V(s_{T}) and roll returns backwards through the buffer,
  // zeroing across terminals.
  Tensor bootstrap = get_values(last_next_states_);
  int64_t env_count = bootstrap.num_elements();
  std::vector<float> carry = bootstrap.to_floats();
  std::vector<Tensor> returns(rollout_.size());
  for (int64_t t = static_cast<int64_t>(rollout_.size()) - 1; t >= 0; --t) {
    const Step& step = rollout_[static_cast<size_t>(t)];
    Tensor ret(DType::kFloat32, Shape{env_count});
    float* pr = ret.mutable_data<float>();
    const float* rew = step.rewards.data<float>();
    const uint8_t* term = step.terminals.data<uint8_t>();
    for (int64_t e = 0; e < env_count; ++e) {
      double future = term[e] != 0 ? 0.0 : carry[static_cast<size_t>(e)];
      carry[static_cast<size_t>(e)] =
          static_cast<float>(rew[e] + discount_ * future);
      pr[e] = carry[static_cast<size_t>(e)];
    }
    returns[static_cast<size_t>(t)] = std::move(ret);
  }

  // Concatenate the rollout into one batch.
  std::vector<Tensor> all_s, all_a, all_ret;
  for (size_t t = 0; t < rollout_.size(); ++t) {
    all_s.push_back(rollout_[t].states);
    all_a.push_back(rollout_[t].actions);
    all_ret.push_back(returns[t]);
  }
  rollout_.clear();
  std::vector<Tensor> out = executor().execute(
      h_update_batch_, {kernels::concat(all_s, 0), kernels::concat(all_a, 0),
                        kernels::concat(all_ret, 0)});
  return out[0].scalar_value();
}

std::unique_ptr<Agent> make_actor_critic_agent(const Json& config,
                                               SpacePtr state_space,
                                               SpacePtr action_space) {
  return std::make_unique<ActorCriticAgent>(config, std::move(state_space),
                                            std::move(action_space));
}

}  // namespace rlgraph
