// ActorCriticAgent: synchronous advantage actor-critic (A2C), assembled
// entirely from the existing component library (Policy with categorical +
// value heads, optimizer) — the "prototype new algorithms by defining few
// components" story of paper §3.3.
//
// Driver protocol (Listing 2 semantics): get_actions samples from the
// categorical policy; observe() accumulates transitions into an internal
// rollout buffer; update() computes bootstrapped discounted returns and
// applies one policy-gradient + value + entropy step once a full rollout is
// buffered.
//
// Config keys: "network", "rollout_length", "discount", "value_coef",
// "entropy_coef", "optimizer".
#pragma once

#include <deque>

#include "agents/agent.h"
#include "components/policy.h"

namespace rlgraph {

class ActorCriticAgent : public Agent {
 public:
  ActorCriticAgent(Json config, SpacePtr state_space, SpacePtr action_space);

  // Samples actions from the categorical policy (explore=false: greedy).
  Tensor get_actions(const Tensor& states, bool explore = true) override;

  void observe(const Tensor& states, const Tensor& actions,
               const Tensor& rewards, const Tensor& next_states,
               const Tensor& terminals) override;

  // One A2C step when a full rollout is buffered; returns the loss
  // (0 while the buffer is still filling).
  double update() override;

  // State values V(s) for a batch (used for bootstrapping and tests).
  Tensor get_values(const Tensor& states);

  int64_t rollout_length() const { return rollout_length_; }
  int64_t buffered_steps() const {
    return static_cast<int64_t>(rollout_.size());
  }

 protected:
  void setup_graph() override;
  void on_built() override;

 private:
  struct Step {
    Tensor states, actions, rewards, terminals;
  };

  int64_t rollout_length_;
  double discount_;
  std::deque<Step> rollout_;
  Tensor last_next_states_;

  // Hot-path API handles, resolved once after build.
  ApiHandle h_act_, h_act_greedy_, h_get_values_, h_update_batch_;
};

}  // namespace rlgraph
