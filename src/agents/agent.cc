#include "agents/agent.h"

#include <cmath>

#include "tensor/kernels.h"
#include "tensor/tensor_io.h"
#include "util/errors.h"
#include "util/serialization.h"

namespace rlgraph {

Agent::Agent(Json config, SpacePtr state_space, SpacePtr action_space)
    : config_(std::move(config)), state_space_(std::move(state_space)),
      action_space_(std::move(action_space)) {
  RLG_REQUIRE(state_space_ != nullptr && action_space_ != nullptr,
              "agent requires state and action spaces");
  executor_options_ = executor_options_from_config(config_);
}

void Agent::build() {
  if (built_) return;
  setup_graph();
  RLG_REQUIRE(root_ != nullptr, "setup_graph must create the root component");
  executor_ = std::make_unique<GraphExecutor>(root_, api_spaces_,
                                              executor_options_);
  executor_->build();
  on_built();
  built_ = true;
}

GraphExecutor& Agent::executor() {
  RLG_REQUIRE(executor_ != nullptr, "agent not built; call build() first");
  return *executor_;
}

std::map<std::string, Tensor> Agent::get_weights(const std::string& prefix) {
  return executor().get_weights(prefix);
}

void Agent::set_weights(const std::map<std::string, Tensor>& weights) {
  executor().set_weights(weights);
}

void Agent::export_model(const std::string& path) {
  write_file(path, executor().export_variables());
}

void Agent::import_model(const std::string& path) {
  executor().import_variables(read_file(path));
}

std::vector<uint8_t> Agent::export_weights(const std::string& prefix) {
  return serialize_weights(get_weights(prefix));
}

void Agent::import_weights(const std::vector<uint8_t>& bytes) {
  std::map<std::string, Tensor> weights = deserialize_weights(bytes);
  // Validate the snapshot against the built graph BEFORE mutating anything:
  // a snapshot from a different architecture must fail atomically instead
  // of leaving a half-overwritten variable store behind.
  const std::map<std::string, Tensor> current = get_weights();
  if (weights.size() != current.size()) {
    throw SerializationError(
        "weight snapshot has " + std::to_string(weights.size()) +
        " variables but this agent has " + std::to_string(current.size()));
  }
  for (const auto& [name, t] : weights) {
    auto it = current.find(name);
    if (it == current.end()) {
      throw SerializationError("weight snapshot names unknown variable '" +
                               name + "'");
    }
    if (it->second.dtype() != t.dtype() || !(it->second.shape() == t.shape())) {
      throw SerializationError(
          "weight snapshot variable '" + name + "' is " +
          std::string(dtype_name(t.dtype())) + t.shape().to_string() +
          " but the agent expects " +
          std::string(dtype_name(it->second.dtype())) +
          it->second.shape().to_string());
    }
  }
  set_weights(weights);
}

// --- int8 quantized inference ------------------------------------------------

namespace {
constexpr char kGreedyApi[] = "act_greedy";
constexpr uint32_t kQuantizedMagic = 0x524C4751;  // "RLGQ"
constexpr uint32_t kQuantizedVersion = 1;

void require_valid_scale(const std::string& what, float scale) {
  if (!std::isfinite(scale) || scale <= 0.0f) {
    throw SerializationError("quantized snapshot has corrupt scale for " +
                             what + " (" + std::to_string(scale) + ")");
  }
}
}  // namespace

int Agent::enable_quantized_actions(const std::vector<Tensor>& sample_states) {
  std::vector<std::vector<Tensor>> samples;
  samples.reserve(sample_states.size());
  for (const Tensor& s : sample_states) samples.push_back({s});
  return executor().enable_quantized(kGreedyApi, samples);
}

bool Agent::quantized_actions_enabled() {
  return executor().quantized_enabled(kGreedyApi);
}

Tensor Agent::get_actions_quantized(const Tensor& states) {
  std::vector<Tensor> out = executor().execute_quantized(kGreedyApi, {states});
  RLG_REQUIRE(!out.empty(), "act_greedy returned no outputs");
  return out.back();  // actions are the API's last output
}

std::vector<uint8_t> Agent::export_weights_quantized() {
  if (!quantized_actions_enabled()) {
    throw NotFoundError(
        "no quantized act_greedy plan; call enable_quantized_actions first");
  }
  GraphExecutor& exec = executor();
  const std::map<std::string, float>& wscales =
      exec.quantized_weight_scales(kGreedyApi);
  const std::map<std::string, float>& ascales =
      exec.quantized_act_scales(kGreedyApi);
  ByteWriter w;
  w.write_u32(kQuantizedMagic);
  w.write_u32(kQuantizedVersion);
  w.write_u32(static_cast<uint32_t>(wscales.size()));
  for (const auto& [name, scale] : wscales) {
    w.write_string(name);
    w.write_f32(scale);
    write_tensor(&w, exec.variables().get(name + "/int8"));
  }
  w.write_u32(static_cast<uint32_t>(ascales.size()));
  for (const auto& [name, scale] : ascales) {
    w.write_string(name);
    w.write_f32(scale);
  }
  return w.take();
}

void Agent::import_weights_quantized(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.read_u32() != kQuantizedMagic) {
    throw SerializationError(
        "bad quantized-weight magic; not an RLgraph quantized snapshot "
        "(RLGQ)");
  }
  if (r.read_u32() != kQuantizedVersion) {
    throw SerializationError("unsupported quantized snapshot version");
  }
  uint32_t wcount = r.read_u32();
  std::map<std::string, float> weight_scales;
  std::map<std::string, Tensor> int8_weights;
  for (uint32_t i = 0; i < wcount; ++i) {
    std::string name = r.read_string();
    float scale = r.read_f32();
    require_valid_scale("variable '" + name + "'", scale);
    Tensor t;
    try {
      t = read_tensor(&r);
    } catch (const SerializationError& e) {
      throw SerializationError("quantized snapshot variable '" + name +
                               "': " + e.what());
    }
    if (t.dtype() != DType::kInt8) {
      throw SerializationError("quantized snapshot variable '" + name +
                               "' is not int8");
    }
    weight_scales.emplace(name, scale);
    int8_weights.emplace(std::move(name), std::move(t));
  }
  uint32_t acount = r.read_u32();
  std::map<std::string, float> act_scales;
  for (uint32_t i = 0; i < acount; ++i) {
    std::string name = r.read_string();
    float scale = r.read_f32();
    require_valid_scale("activation of '" + name + "'", scale);
    act_scales.emplace(std::move(name), scale);
  }
  if (!r.at_end()) {
    throw SerializationError("quantized snapshot has trailing bytes");
  }
  // Validate against the built graph BEFORE mutating: every named variable
  // must exist as a float32 tensor of the stored shape.
  GraphExecutor& exec = executor();
  for (const auto& [name, t] : int8_weights) {
    if (!exec.variables().exists(name)) {
      throw SerializationError("quantized snapshot names unknown variable '" +
                               name + "'");
    }
    const Tensor& current = exec.variables().get(name);
    if (current.dtype() != DType::kFloat32 ||
        !(current.shape() == t.shape())) {
      throw SerializationError(
          "quantized snapshot variable '" + name + "' is int8" +
          t.shape().to_string() + " but the agent expects " +
          std::string(dtype_name(current.dtype())) +
          current.shape().to_string());
    }
  }
  // Restore the fp32 weights by dequantizing, then install the int8 plan
  // with the imported scales and tensors (no recalibration).
  std::map<std::string, Tensor> fp32;
  for (const auto& [name, t] : int8_weights) {
    fp32.emplace(name, kernels::dequantize_linear(t, weight_scales.at(name)));
  }
  exec.set_weights(fp32);
  int quantized = exec.enable_quantized_with_scales(
      kGreedyApi, act_scales, weight_scales, int8_weights);
  if (quantized == 0) {
    throw SerializationError(
        "quantized snapshot matched no MatMul in this agent's act_greedy "
        "plan");
  }
}

namespace {
constexpr uint32_t kWeightsMagic = 0x524C4757;  // "RLGW"
constexpr uint32_t kWeightsVersion = 1;
}  // namespace

std::vector<uint8_t> serialize_weights(
    const std::map<std::string, Tensor>& weights) {
  ByteWriter w;
  w.write_u32(kWeightsMagic);
  w.write_u32(kWeightsVersion);
  w.write_u32(static_cast<uint32_t>(weights.size()));
  for (const auto& [name, t] : weights) {
    w.write_string(name);
    write_tensor(&w, t);
  }
  return w.take();
}

std::map<std::string, Tensor> deserialize_weights(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.read_u32() != kWeightsMagic) {
    throw SerializationError(
        "bad weight-map magic; not an RLgraph weight snapshot (RLGW)");
  }
  if (r.read_u32() != kWeightsVersion) {
    throw SerializationError("unsupported weight snapshot version");
  }
  uint32_t count = r.read_u32();
  std::map<std::string, Tensor> weights;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = r.read_string();
    Tensor t;
    try {
      t = read_tensor(&r);
    } catch (const SerializationError& e) {
      throw SerializationError("weight snapshot variable '" + name +
                               "': " + e.what());
    }
    weights.emplace(std::move(name), std::move(t));
  }
  if (!r.at_end()) {
    throw SerializationError(
        "weight snapshot has " + std::to_string(r.remaining()) +
        " trailing bytes after the declared " + std::to_string(count) +
        " variables");
  }
  return weights;
}

ExecutorOptions executor_options_from_config(const Json& config) {
  ExecutorOptions opts;
  const std::string backend = config.get_string("backend", "static");
  if (backend == "static" || backend == "tf") {
    opts.backend = Backend::kStatic;
  } else if (backend == "define_by_run" || backend == "pytorch" ||
             backend == "imperative") {
    opts.backend = Backend::kImperative;
  } else {
    throw ConfigError("unknown backend: " + backend);
  }
  opts.seed = static_cast<uint64_t>(config.get_int("seed", 1234));
  opts.optimize = config.get_bool("optimize_graph", true);
  opts.fast_path = config.get_bool("fast_path", true);
  opts.specialize_shapes = config.get_bool("specialize_shapes", true);
  opts.default_device = config.get_string("device", "/cpu:0");
  opts.profiling = config.get_bool("profiling", false);
  // Fine-grained per-component device control (paper §3.4):
  //   "device_map": {"agent/policy": "/gpu:0", "agent/memory": "/cpu:0"}
  const Json& device_map = config.get("device_map");
  if (device_map.is_object()) {
    for (const auto& [scope, device] : device_map.as_object()) {
      opts.device_map[scope] = device.as_string();
    }
  }
  return opts;
}

SpacePtr preprocessed_space(const Json& preprocessor_config, SpacePtr input) {
  if (preprocessor_config.is_null()) return input;
  RLG_REQUIRE(preprocessor_config.is_array(),
              "preprocessor config must be a list");
  SpacePtr current = std::move(input);
  for (const Json& spec : preprocessor_config.as_array()) {
    const std::string type = spec.get_string("type", "");
    RLG_REQUIRE(current->is_box(), "preprocessors operate on box spaces");
    const auto& box = static_cast<const BoxSpace&>(*current);
    Shape vs = box.value_shape();
    if (type == "grayscale") {
      RLG_REQUIRE(vs.rank() >= 1, "grayscale needs channelled input");
      current = FloatBox(vs.with_dim(vs.rank() - 1, 1), 0.0, 1.0);
    } else if (type == "rescale" || type == "clip") {
      current = FloatBox(vs, box.low(), box.high());
    } else if (type == "frame_stack") {
      int64_t k = spec.get_int("num_frames", 4);
      current = FloatBox(vs.with_dim(vs.rank() - 1, vs.dim(vs.rank() - 1) * k),
                         box.low(), box.high());
    } else {
      throw ConfigError("unknown preprocessor type: " + type);
    }
  }
  return current;
}

// Factories implemented in the per-agent translation units.
std::unique_ptr<Agent> make_dqn_agent(const Json&, SpacePtr, SpacePtr);
std::unique_ptr<Agent> make_impala_agent(const Json&, SpacePtr, SpacePtr);
std::unique_ptr<Agent> make_actor_critic_agent(const Json&, SpacePtr,
                                               SpacePtr);
std::unique_ptr<Agent> make_ppo_agent(const Json&, SpacePtr, SpacePtr);
std::unique_ptr<Agent> make_sac_agent(const Json&, SpacePtr, SpacePtr);

std::unique_ptr<Agent> make_agent(const Json& config, SpacePtr state_space,
                                  SpacePtr action_space) {
  const std::string type = config.get_string("type", "");
  if (type == "dqn" || type == "apex") {
    return make_dqn_agent(config, std::move(state_space),
                          std::move(action_space));
  }
  if (type == "impala_actor" || type == "impala_learner") {
    return make_impala_agent(config, std::move(state_space),
                             std::move(action_space));
  }
  if (type == "a2c" || type == "actor_critic") {
    return make_actor_critic_agent(config, std::move(state_space),
                                   std::move(action_space));
  }
  if (type == "ppo") {
    return make_ppo_agent(config, std::move(state_space),
                          std::move(action_space));
  }
  if (type == "sac") {
    return make_sac_agent(config, std::move(state_space),
                          std::move(action_space));
  }
  throw ConfigError("unknown agent type: '" + type + "'");
}

}  // namespace rlgraph
