// The high-level agent API (paper §3.4, Listing 2).
//
// Agents are configured declaratively from JSON documents specifying the
// algorithm and its components (network layer list, memory, optimizer,
// exploration, devices). An agent owns a root component and a graph
// executor; all interaction with the computation graph goes through the
// executor's API registry.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/graph_executor.h"
#include "spaces/space.h"
#include "util/json.h"

namespace rlgraph {

class Agent {
 public:
  Agent(Json config, SpacePtr state_space, SpacePtr action_space);
  virtual ~Agent() = default;

  // Build with default devices, variable sharing, ... (idempotent).
  virtual void build();

  // get_actions(states [B, ...]) -> actions [B]. `explore` routes through
  // the exploration component; preprocessing always runs in-graph.
  virtual Tensor get_actions(const Tensor& states, bool explore = true) = 0;

  // Observe a batch of transitions (states are the *preprocessed* states the
  // agent acted on).
  virtual void observe(const Tensor& states, const Tensor& actions,
                       const Tensor& rewards, const Tensor& next_states,
                       const Tensor& terminals) = 0;

  // Update from the internal buffer (or, for pipeline agents, the shared
  // queue); returns the loss.
  virtual double update() = 0;

  // --- weights / checkpoints ---------------------------------------------------
  std::map<std::string, Tensor> get_weights(const std::string& prefix = "");
  void set_weights(const std::map<std::string, Tensor>& weights);
  void export_model(const std::string& path);
  void import_model(const std::string& path);
  // In-memory weight snapshot (magic "RLGW"): the get_weights(prefix) map
  // serialized through util/serialization. This is the unit the serving
  // policy store publishes, and doubles as a minimal checkpoint —
  // import_weights() on a freshly built agent of the same config restores
  // the exported variables.
  std::vector<uint8_t> export_weights(const std::string& prefix = "");
  void import_weights(const std::vector<uint8_t>& bytes);

  // --- int8 quantized inference ------------------------------------------------
  // Post-training quantization of the greedy-action plan ("act_greedy").
  // `sample_states` is a caller-supplied observation sample (each entry a
  // states batch) used to calibrate per-tensor symmetric activation scales.
  // Returns the number of quantized MatMuls; throws NotFoundError when the
  // agent has no act_greedy API (e.g. IMPALA actors).
  int enable_quantized_actions(const std::vector<Tensor>& sample_states);
  bool quantized_actions_enabled();
  // Greedy actions through the int8 plan (requires enable_quantized_actions
  // or import_weights_quantized first).
  Tensor get_actions_quantized(const Tensor& states);
  // Quantized-weight wire format (magic "RLGQ"): per-variable int8 tensors
  // with their symmetric scales plus the calibrated activation scales, so a
  // serving process can install the int8 plan without re-calibrating.
  // import validates everything — including finite positive scales — before
  // mutating any state, then restores the fp32 variables by dequantizing
  // and installs the quantized plan from the imported scales.
  std::vector<uint8_t> export_weights_quantized();
  void import_weights_quantized(const std::vector<uint8_t>& bytes);

  GraphExecutor& executor();
  const Json& config() const { return config_; }
  SpacePtr state_space() const { return state_space_; }
  SpacePtr action_space() const { return action_space_; }

 protected:
  // Subclasses construct their root component + api spaces before build().
  virtual void setup_graph() = 0;
  // Called once after the executor build; subclasses resolve ApiHandles for
  // their hot call paths here so steady-state calls skip the name lookup.
  virtual void on_built() {}

  Json config_;
  SpacePtr state_space_;   // raw env state space (no batch rank)
  SpacePtr action_space_;
  ExecutorOptions executor_options_;
  std::shared_ptr<Component> root_;
  std::map<std::string, std::vector<SpacePtr>> api_spaces_;
  std::unique_ptr<GraphExecutor> executor_;
  bool built_ = false;
};

// Weight-map wire format behind Agent::export_weights / import_weights
// (little-endian tagged stream, magic "RLGW"). Standalone so trainers and
// serving processes can exchange snapshots without an Agent on both ends.
std::vector<uint8_t> serialize_weights(
    const std::map<std::string, Tensor>& weights);
std::map<std::string, Tensor> deserialize_weights(
    const std::vector<uint8_t>& bytes);

// Factory: config must contain "type" ("dqn", "apex", "impala_actor",
// "impala_learner").
std::unique_ptr<Agent> make_agent(const Json& config, SpacePtr state_space,
                                  SpacePtr action_space);

// Compute the space produced by a preprocessor config applied to `input`
// (needed to declare memory/act input spaces before the graph exists).
SpacePtr preprocessed_space(const Json& preprocessor_config, SpacePtr input);

// Parse common executor options ("backend": "static"|"define_by_run",
// "seed", "optimize", "fast_path") out of an agent config.
ExecutorOptions executor_options_from_config(const Json& config);

}  // namespace rlgraph
