#include "agents/dqn_agent.h"

#include <cmath>

#include "components/exploration.h"
#include "components/losses.h"
#include "components/optimizers.h"
#include "components/preprocessors.h"
#include "components/synchronizer.h"
#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

DQNAgent::DQNAgent(Json config, SpacePtr state_space, SpacePtr action_space)
    : Agent(std::move(config), std::move(state_space),
            std::move(action_space)) {
  preprocessed_space_ =
      preprocessed_space(config_.get("preprocessor"), state_space_);
  const Json& update = config_.get("update");
  batch_size_ = update.is_null() ? 32 : update.get_int("batch_size", 32);
  sync_interval_ =
      update.is_null() ? 100 : update.get_int("sync_interval", 100);
  min_records_ =
      update.is_null() ? 100 : update.get_int("min_records", 100);
}

void DQNAgent::setup_graph() {
  auto root = std::make_shared<Component>("agent");

  Json preproc_config = config_.get("preprocessor").is_null()
                            ? Json(JsonArray{})
                            : config_.get("preprocessor");
  auto* preprocessor = root->add_component(
      std::make_shared<PreprocessorStack>("preprocessor", preproc_config));

  PolicyHead head = config_.get_bool("dueling_q", true)
                        ? PolicyHead::kDuelingQ
                        : PolicyHead::kQValues;
  const Json& network = config_.at("network");
  auto* policy = root->add_component(
      std::make_shared<Policy>("policy", network, action_space_, head));
  auto* target_policy = root->add_component(std::make_shared<Policy>(
      "target-policy", network, action_space_, head));

  const Json& expl = config_.get("exploration");
  auto* exploration = root->add_component(std::make_shared<EpsilonGreedy>(
      "exploration", policy->num_actions(),
      expl.is_null() ? 1.0 : expl.get_double("eps_start", 1.0),
      expl.is_null() ? 0.05 : expl.get_double("eps_end", 0.05),
      expl.is_null() ? 10000 : expl.get_int("decay_steps", 10000)));

  const Json& mem_config = config_.get("memory");
  int64_t capacity =
      mem_config.is_null() ? 10000 : mem_config.get_int("capacity", 10000);
  MemoryBase* memory;
  if (mem_config.get_string("type", "prioritized") == "prioritized") {
    memory = root->add_component(std::make_shared<PrioritizedReplay>(
        "memory", capacity, mem_config.get_double("alpha", 0.6),
        mem_config.get_double("beta", 0.4)));
  } else {
    memory = root->add_component(
        std::make_shared<RingMemory>("memory", capacity));
  }

  double gamma = config_.get_double("discount", 0.99);
  int64_t n_step = config_.get_int("n_step", 1);
  auto* loss = root->add_component(std::make_shared<DQNLoss>(
      "loss", std::pow(gamma, static_cast<double>(n_step)),
      config_.get_bool("double_q", true),
      config_.get_double("huber_delta", 1.0)));

  Json opt_config = config_.get("optimizer").is_null()
                        ? Json(JsonObject{})
                        : config_.get("optimizer");
  auto* optimizer =
      root->add_component(make_optimizer("optimizer", opt_config));

  auto* synchronizer = root->add_component(std::make_shared<Synchronizer>(
      "synchronizer", "agent/policy", "agent/target-policy"));

  // --- root API methods ----------------------------------------------------

  // act(states raw [B, ...]) -> (preprocessed [B, ...], actions [B]).
  // Preprocessing, forward pass and exploration batch into ONE executor
  // call — the batching the paper credits for the Ape-X throughput gap.
  auto act_fn = [preprocessor, policy, exploration](
                    BuildContext& ctx, const OpRecs& inputs,
                    bool explore) -> OpRecs {
    RLG_REQUIRE(inputs.size() == 1, "act expects (states)");
    OpRec pre = preprocessor->call_api(ctx, "preprocess", inputs)[0];
    OpRec actions;
    if (explore) {
      OpRec q = policy->call_api(ctx, "get_q_values", {pre})[0];
      actions = exploration->call_api(ctx, "get_action", {q})[0];
    } else {
      actions = policy->call_api(ctx, "get_action", {pre})[0];
    }
    return OpRecs{pre, actions};
  };
  root->register_api("act",
                     [act_fn](BuildContext& ctx, const OpRecs& inputs) {
                       return act_fn(ctx, inputs, /*explore=*/true);
                     });
  root->register_api("act_greedy",
                     [act_fn](BuildContext& ctx, const OpRecs& inputs) {
                       return act_fn(ctx, inputs, /*explore=*/false);
                     });

  // observe(s, a, r, s2, t, priorities) -> insert count.
  SpacePtr record_space = Tuple({
      preprocessed_space_->with_batch_rank(),
      action_space_->with_batch_rank(),
      FloatBox()->with_batch_rank(),
      preprocessed_space_->with_batch_rank(),
      BoolBox()->with_batch_rank(),
  });
  root->register_api(
      "observe",
      [memory, record_space](BuildContext& ctx,
                             const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 6,
                    "observe expects (s, a, r, s2, t, priorities)");
        OpRec record;
        record.space = record_space;
        for (size_t i = 0; i < 5; ++i) {
          if (!inputs[i].abstract()) record.ops.push_back(inputs[i].op());
        }
        return memory->call_api(ctx, "insert_records", {record, inputs[5]});
      });

  // update(batch_size) -> (loss, update_group, priority_update).
  root->register_api(
      "update",
      [this, memory, policy, target_policy, loss, optimizer](
          BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "update expects (batch_size)");
        OpRecs sample = memory->call_api(ctx, "get_records", inputs);
        // Leaves: s, a, r, s2, t, indices, weights.
        RLG_REQUIRE(ctx.assembling() || sample.size() == 7,
                    "unexpected memory sample arity");
        if (ctx.assembling()) sample.resize(7);
        OpRec q = policy->call_api(ctx, "get_q_values", {sample[0]})[0];
        OpRec q_next_t =
            target_policy->call_api(ctx, "get_q_values", {sample[3]})[0];
        OpRec q_next_o =
            policy->call_api(ctx, "get_q_values", {sample[3]})[0];
        OpRecs loss_out = loss->call_api(
            ctx, "get_loss",
            {q, sample[1], sample[2], q_next_t, q_next_o, sample[4],
             sample[6]});
        OpRecs vars = policy->variable_recs(ctx);
        OpRecs step_inputs{loss_out[0]};
        step_inputs.insert(step_inputs.end(), vars.begin(), vars.end());
        OpRecs opt_out = optimizer->call_api(ctx, "step", step_inputs);
        OpRecs prio = memory->call_api(ctx, "update_records",
                                       {sample[5], loss_out[1]});
        return OpRecs{loss_out[0], opt_out[0], prio[0]};
      });

  // compute_priorities(s, a, r, s2, t) -> |td| per record (worker-side
  // prioritization, Ape-X).
  root->register_api(
      "compute_priorities",
      [root_raw = root.get(), policy, target_policy, loss](
          BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 5,
                    "compute_priorities expects (s, a, r, s2, t)");
        OpRec q = policy->call_api(ctx, "get_q_values", {inputs[0]})[0];
        OpRec q_next_t =
            target_policy->call_api(ctx, "get_q_values", {inputs[3]})[0];
        OpRec q_next_o =
            policy->call_api(ctx, "get_q_values", {inputs[3]})[0];
        OpRec ones = root_raw->graph_fn(
            ctx, "ones",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{ops.ones_like(in[0])};
            },
            {inputs[2]})[0];
        OpRecs loss_out = loss->call_api(
            ctx, "get_loss",
            {q, inputs[1], inputs[2], q_next_t, q_next_o, inputs[4], ones});
        return OpRecs{loss_out[1]};
      });

  // update_batch(s, a, r, s2, t, weights) -> (loss, update_group, |td|):
  // learner-style update from an externally supplied batch (distributed
  // replay shards, multi-device towers).
  root->register_api(
      "update_batch",
      [policy, target_policy, loss, optimizer](
          BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 6,
                    "update_batch expects (s, a, r, s2, t, weights)");
        OpRec q = policy->call_api(ctx, "get_q_values", {inputs[0]})[0];
        OpRec q_next_t =
            target_policy->call_api(ctx, "get_q_values", {inputs[3]})[0];
        OpRec q_next_o =
            policy->call_api(ctx, "get_q_values", {inputs[3]})[0];
        OpRecs loss_out = loss->call_api(
            ctx, "get_loss",
            {q, inputs[1], inputs[2], q_next_t, q_next_o, inputs[4],
             inputs[5]});
        OpRecs vars = policy->variable_recs(ctx);
        OpRecs step_inputs{loss_out[0]};
        step_inputs.insert(step_inputs.end(), vars.begin(), vars.end());
        OpRecs opt_out = optimizer->call_api(ctx, "step", step_inputs);
        return OpRecs{loss_out[0], opt_out[0], loss_out[1]};
      });

  // sample_batch(n) -> (s, a, r, s2, t, indices, weights), no update.
  root->register_api("sample_batch",
                     [memory](BuildContext& ctx, const OpRecs& inputs) {
                       OpRecs out =
                           memory->call_api(ctx, "get_records", inputs);
                       if (ctx.assembling()) out.resize(7);
                       return out;
                     });

  // update_priorities(indices, priorities) -> count.
  root->register_api("update_priorities",
                     [memory](BuildContext& ctx, const OpRecs& inputs) {
                       return memory->call_api(ctx, "update_records", inputs);
                     });

  root->register_api("sync_target",
                     [synchronizer](BuildContext& ctx, const OpRecs& inputs) {
                       return synchronizer->call_api(ctx, "sync", inputs);
                     });
  root->register_api("memory_size",
                     [memory](BuildContext& ctx, const OpRecs& inputs) {
                       return memory->call_api(ctx, "get_size", inputs);
                     });

  // --- declared API input spaces ------------------------------------------------
  SpacePtr state_b = state_space_->with_batch_rank();
  SpacePtr pre_b = preprocessed_space_->with_batch_rank();
  SpacePtr action_b = action_space_->with_batch_rank();
  SpacePtr float_b = FloatBox()->with_batch_rank();
  SpacePtr bool_b = BoolBox()->with_batch_rank();
  SpacePtr int_scalar = IntBox(1 << 30);
  SpacePtr int_b = IntBox(1 << 30)->with_batch_rank();
  api_spaces_ = {
      {"act", {state_b}},
      {"act_greedy", {state_b}},
      {"observe", {pre_b, action_b, float_b, pre_b, bool_b, float_b}},
      {"update", {int_scalar}},
      {"update_batch", {pre_b, action_b, float_b, pre_b, bool_b, float_b}},
      {"sample_batch", {int_scalar}},
      {"update_priorities", {int_b, float_b}},
      {"compute_priorities", {pre_b, action_b, float_b, pre_b, bool_b}},
      {"sync_target", {}},
      {"memory_size", {}},
  };
  root_ = std::move(root);
}

void DQNAgent::on_built() {
  GraphExecutor& ex = executor();
  h_act_ = ex.api_handle("act");
  h_act_greedy_ = ex.api_handle("act_greedy");
  h_observe_ = ex.api_handle("observe");
  h_update_ = ex.api_handle("update");
  h_update_batch_ = ex.api_handle("update_batch");
  h_sample_batch_ = ex.api_handle("sample_batch");
  h_update_priorities_ = ex.api_handle("update_priorities");
  h_compute_priorities_ = ex.api_handle("compute_priorities");
  h_sync_target_ = ex.api_handle("sync_target");
  h_memory_size_ = ex.api_handle("memory_size");
}

Tensor DQNAgent::get_actions(const Tensor& states, bool explore) {
  std::vector<Tensor> out =
      executor().execute(explore ? h_act_ : h_act_greedy_, {states});
  last_preprocessed_ = out[0];
  return out[1];
}

void DQNAgent::observe(const Tensor& states, const Tensor& actions,
                       const Tensor& rewards, const Tensor& next_states,
                       const Tensor& terminals) {
  Tensor ones = Tensor::filled(DType::kFloat32,
                               Shape{states.shape().dim(0)}, 1.0);
  observe_with_priorities(states, actions, rewards, next_states, terminals,
                          ones);
}

void DQNAgent::observe_with_priorities(const Tensor& states,
                                       const Tensor& actions,
                                       const Tensor& rewards,
                                       const Tensor& next_states,
                                       const Tensor& terminals,
                                       const Tensor& priorities) {
  executor().execute(
      h_observe_, {states, actions, rewards, next_states, terminals,
                  priorities});
}

double DQNAgent::update() {
  if (memory_size() < std::max(min_records_, batch_size_)) return 0.0;
  std::vector<Tensor> out = executor().execute(
      h_update_, {Tensor::scalar_int(static_cast<int32_t>(batch_size_))});
  ++updates_done_;
  if (sync_interval_ > 0 && updates_done_ % sync_interval_ == 0) {
    sync_target();
  }
  return out[0].scalar_value();
}

std::pair<double, Tensor> DQNAgent::update_from_batch(
    const Tensor& states, const Tensor& actions, const Tensor& rewards,
    const Tensor& next_states, const Tensor& terminals,
    const Tensor& weights) {
  std::vector<Tensor> out = executor().execute(
      h_update_batch_,
      {states, actions, rewards, next_states, terminals, weights});
  ++updates_done_;
  if (sync_interval_ > 0 && updates_done_ % sync_interval_ == 0) {
    sync_target();
  }
  return {out[0].scalar_value(), out[2]};
}

std::vector<Tensor> DQNAgent::sample_batch(int64_t n) {
  return executor().execute(h_sample_batch_,
                            {Tensor::scalar_int(static_cast<int32_t>(n))});
}

void DQNAgent::update_priorities(const Tensor& indices,
                                 const Tensor& priorities) {
  executor().execute(h_update_priorities_, {indices, priorities});
}

Tensor DQNAgent::compute_priorities(const Tensor& states,
                                    const Tensor& actions,
                                    const Tensor& rewards,
                                    const Tensor& next_states,
                                    const Tensor& terminals) {
  return executor().execute(
      h_compute_priorities_,
      {states, actions, rewards, next_states, terminals})[0];
}

int64_t DQNAgent::memory_size() {
  return static_cast<int64_t>(
      executor().execute(h_memory_size_, {})[0].scalar_value());
}

void DQNAgent::sync_target() { executor().execute(h_sync_target_, {}); }

std::unique_ptr<Agent> make_dqn_agent(const Json& config,
                                      SpacePtr state_space,
                                      SpacePtr action_space) {
  return std::make_unique<DQNAgent>(config, std::move(state_space),
                                    std::move(action_space));
}

}  // namespace rlgraph
