// DQNAgent: DQN family (plain / double / dueling / n-step / prioritized) —
// the paper's running example architecture ("dueling DQN with prioritized
// replay, 43 components"). With worker-side priorities and n-step rewards it
// is the Ape-X worker/learner agent.
//
// Config keys (all optional unless noted):
//   "network": [...layer list...]        (required)
//   "preprocessor": [...stages...]
//   "memory": {"type": "prioritized"|"replay", "capacity": N,
//              "alpha": 0.6, "beta": 0.4}
//   "optimizer": {"type": "adam", "learning_rate": 1e-4}
//   "exploration": {"eps_start": 1.0, "eps_end": 0.05, "decay_steps": N}
//   "discount": 0.99, "n_step": 1, "double_q": true, "dueling_q": true,
//   "update": {"batch_size": 32, "sync_interval": 100, "min_records": 100}
#pragma once

#include "agents/agent.h"
#include "components/memories.h"
#include "components/policy.h"

namespace rlgraph {

class DQNAgent : public Agent {
 public:
  DQNAgent(Json config, SpacePtr state_space, SpacePtr action_space);

  // --- Listing 2 API -------------------------------------------------------
  // Returns actions [B]; also runs preprocessing in the same executor call
  // and caches the preprocessed states for the paired observe().
  Tensor get_actions(const Tensor& states, bool explore = true) override;
  // Last preprocessed batch (paired with the last get_actions call).
  const Tensor& last_preprocessed() const { return last_preprocessed_; }

  void observe(const Tensor& states, const Tensor& actions,
               const Tensor& rewards, const Tensor& next_states,
               const Tensor& terminals) override;
  // Observe with explicit per-record priorities (Ape-X worker-side
  // prioritization).
  void observe_with_priorities(const Tensor& states, const Tensor& actions,
                               const Tensor& rewards,
                               const Tensor& next_states,
                               const Tensor& terminals,
                               const Tensor& priorities);

  double update() override;

  // Worker-side TD-error priorities for a batch of transitions.
  Tensor compute_priorities(const Tensor& states, const Tensor& actions,
                            const Tensor& rewards, const Tensor& next_states,
                            const Tensor& terminals);

  // --- distributed / multi-device building blocks ---------------------------
  // Learner-style update from an external batch (s, a, r, s2, t, weights);
  // does not touch the internal memory. Returns (loss, |td| per record).
  std::pair<double, Tensor> update_from_batch(const Tensor& states,
                                              const Tensor& actions,
                                              const Tensor& rewards,
                                              const Tensor& next_states,
                                              const Tensor& terminals,
                                              const Tensor& weights);
  // Sample a batch from the internal memory without updating:
  // returns {s, a, r, s2, t, indices, weights}.
  std::vector<Tensor> sample_batch(int64_t n);
  // Write back updated priorities for sampled indices.
  void update_priorities(const Tensor& indices, const Tensor& priorities);

  // Current number of records in the replay memory.
  int64_t memory_size();
  // Copy online-policy weights into the target network.
  void sync_target();

  SpacePtr preprocessed_state_space() const { return preprocessed_space_; }
  int64_t batch_size() const { return batch_size_; }

 protected:
  void setup_graph() override;
  void on_built() override;

 private:
  SpacePtr preprocessed_space_;
  int64_t batch_size_ = 32;
  int64_t sync_interval_ = 100;
  int64_t min_records_ = 100;
  int64_t updates_done_ = 0;
  Tensor last_preprocessed_;

  // Hot-path API handles, resolved once after build.
  ApiHandle h_act_, h_act_greedy_, h_observe_, h_update_, h_update_batch_,
      h_sample_batch_, h_update_priorities_, h_compute_priorities_,
      h_sync_target_, h_memory_size_;
};

}  // namespace rlgraph
