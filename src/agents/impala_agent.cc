#include "agents/impala_agent.h"

#include <cstring>

#include "components/optimizers.h"
#include "components/vtrace.h"
#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

namespace {

// Stack per-step tensors (each [E, rest...]) into [E, T, rest...].
Tensor stack_time(const std::vector<Tensor>& steps) {
  RLG_REQUIRE(!steps.empty(), "stack_time on empty rollout");
  int64_t T = static_cast<int64_t>(steps.size());
  int64_t E = steps[0].shape().dim(0);
  Shape rest = steps[0].shape().drop_front(1);
  Shape out_shape = Shape{E, T}.concat(rest);
  Tensor out(steps[0].dtype(), out_shape);
  size_t row_bytes = static_cast<size_t>(
      rest.num_elements() * static_cast<int64_t>(dtype_size(out.dtype())));
  auto* po = static_cast<uint8_t*>(out.mutable_raw());
  for (int64_t t = 0; t < T; ++t) {
    const auto* ps = static_cast<const uint8_t*>(steps[static_cast<size_t>(t)].raw());
    for (int64_t e = 0; e < E; ++e) {
      std::memcpy(po + (static_cast<size_t>(e * T + t)) * row_bytes,
                  ps + static_cast<size_t>(e) * row_bytes, row_bytes);
    }
  }
  return out;
}

}  // namespace

EnvStepper::EnvStepper(std::string name,
                       std::shared_ptr<RolloutContext> context,
                       SpacePtr obs_space, int64_t rollout_length,
                       int64_t num_actions)
    : Component(std::move(name)), context_(std::move(context)) {
  RLG_REQUIRE(obs_space != nullptr && obs_space->is_box(),
              "EnvStepper requires a box observation space");
  const auto& box = static_cast<const BoxSpace&>(*obs_space);
  Shape obs_shape = box.value_shape();
  int64_t T = rollout_length;

  std::vector<SpacePtr> out_spaces = {
      FloatBox(Shape{T + 1}.concat(obs_shape))->with_batch_rank(),  // states
      FloatBox(Shape{T, num_actions})->with_batch_rank(),  // behavior logits
      IntBox(num_actions, Shape{T})->with_batch_rank(),    // actions
      FloatBox(Shape{T})->with_batch_rank(),               // rewards
      BoolBox(Shape{T})->with_batch_rank(),                // terminals
  };

  register_api(
      "step_rollout",
      [this, T, out_spaces](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        auto rc = context_;
        CustomKernel kernel = [rc, T](const std::vector<Tensor>&) {
          RLG_REQUIRE(rc->env != nullptr && rc->act != nullptr,
                      "EnvStepper used before attach_environment()");
          if (!rc->started) {
            rc->current_obs = rc->env->reset();
            rc->started = true;
          }
          std::vector<Tensor> states{rc->current_obs};
          std::vector<Tensor> logits, actions, rewards, terminals;
          for (int64_t t = 0; t < T; ++t) {
            auto [acts, logit] = rc->act(rc->current_obs);
            VectorStepResult r = rc->env->step(acts);
            rc->env_frames += r.env_frames;
            rc->current_obs = r.observations;
            states.push_back(r.observations);
            logits.push_back(std::move(logit));
            actions.push_back(std::move(acts));
            rewards.push_back(std::move(r.rewards));
            terminals.push_back(std::move(r.terminals));
          }
          return std::vector<Tensor>{stack_time(states), stack_time(logits),
                                     stack_time(actions),
                                     stack_time(rewards),
                                     stack_time(terminals)};
        };
        return graph_fn_custom(ctx, "step_rollout", kernel, inputs,
                               out_spaces);
      });
}

IMPALAAgent::IMPALAAgent(Json config, SpacePtr state_space,
                         SpacePtr action_space, Mode mode)
    : Agent(std::move(config), std::move(state_space),
            std::move(action_space)),
      mode_(mode) {
  rollout_length_ = config_.get_int("rollout_length", 20);
  rollout_context_ = std::make_shared<RolloutContext>();
}

std::vector<SpacePtr> IMPALAAgent::queue_slot_spaces() const {
  const auto& box = static_cast<const BoxSpace&>(*state_space_);
  Shape obs = box.value_shape();
  int64_t T = rollout_length_;
  const auto& abox = static_cast<const BoxSpace&>(*action_space_);
  int64_t A = abox.num_categories();
  return {
      FloatBox(Shape{T + 1}.concat(obs))->with_batch_rank(),
      FloatBox(Shape{T, A})->with_batch_rank(),
      IntBox(A, Shape{T})->with_batch_rank(),
      FloatBox(Shape{T})->with_batch_rank(),
      BoolBox(Shape{T})->with_batch_rank(),
  };
}

void IMPALAAgent::setup_graph() {
  auto root = std::make_shared<Component>("agent");
  if (mode_ == Mode::kActor) {
    setup_actor(root);
  } else {
    setup_learner(root);
  }
  root_ = std::move(root);
}

void IMPALAAgent::setup_actor(std::shared_ptr<Component> root) {
  auto* policy = root->add_component(std::make_shared<Policy>(
      "policy", config_.at("network"), action_space_,
      PolicyHead::kCategorical));
  auto* stepper = root->add_component(std::make_shared<EnvStepper>(
      "env-stepper", rollout_context_, state_space_, rollout_length_,
      policy->num_actions()));
  RLG_REQUIRE(queue_ != nullptr, "actor requires set_queue() before build");
  auto* queue_comp = root->add_component(std::make_shared<QueueComponent>(
      "queue", queue_, queue_slot_spaces()));

  bool redundant_assigns = config_.get_bool("redundant_assigns", false);

  // act_step(states [E, ...]) -> (actions [E], behavior_logits [E, A],
  // [redundant assign group]).
  root->register_api(
      "act_step",
      [root_raw = root.get(), policy, redundant_assigns](
          BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        OpRecs lv = policy->call_api(ctx, "get_logits_value", inputs);
        OpRec actions = root_raw->graph_fn(
            ctx, "gumbel",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef u = ops.apply("RandomUniformLike", {in[0]},
                                  {{"lo", 1e-8}, {"hi", 1.0}});
              OpRef g = ops.neg(ops.log(ops.neg(ops.log(u))));
              return std::vector<OpRef>{ops.argmax(ops.add(in[0], g))};
            },
            {lv[0]})[0];
        OpRecs out{actions, lv[0]};
        if (redundant_assigns && !ctx.assembling()) {
          // DM-reference actor behaviour: re-assign policy variables to
          // themselves every act step (paper §5.1: "DM's code also carried
          // out unneeded variable assignments in the actor").
          std::vector<std::string> names = policy->variable_names_recursive();
          OpRec extra = root_raw->graph_fn(
              ctx, "redundant_assigns",
              [names](OpContext& ops, const std::vector<OpRef>&) {
                std::vector<OpRef> assigns;
                for (const std::string& n : names) {
                  assigns.push_back(ops.assign(n, ops.variable(n)));
                }
                return std::vector<OpRef>{ops.group(assigns)};
              },
              {})[0];
          out.push_back(extra);
        }
        return out;
      });

  // act_and_enqueue() -> queue size: fused rollout + enqueue, one call.
  root->register_api(
      "act_and_enqueue",
      [stepper, queue_comp](BuildContext& ctx, const OpRecs&) -> OpRecs {
        OpRecs rollout = stepper->call_api(ctx, "step_rollout", {});
        return queue_comp->call_api(ctx, "enqueue", rollout);
      });

  api_spaces_ = {
      {"act_step", {state_space_->with_batch_rank()}},
      {"act_and_enqueue", {}},
  };
}

void IMPALAAgent::setup_learner(std::shared_ptr<Component> root) {
  auto* policy = root->add_component(std::make_shared<Policy>(
      "policy", config_.at("network"), action_space_,
      PolicyHead::kCategorical));
  RLG_REQUIRE(queue_ != nullptr, "learner requires set_queue() before build");
  std::vector<SpacePtr> slot_spaces = queue_slot_spaces();
  auto* queue_comp = root->add_component(
      std::make_shared<QueueComponent>("queue", queue_, slot_spaces));
  bool use_staging = config_.get_bool("use_staging", true);
  StagingArea* staging = nullptr;
  if (use_staging) {
    staging = root->add_component(
        std::make_shared<StagingArea>("staging", slot_spaces));
  }
  auto* loss = root->add_component(std::make_shared<IMPALALoss>(
      "loss", config_.get_double("discount", 0.99),
      config_.get_double("value_coef", 0.5),
      config_.get_double("entropy_coef", 0.01),
      config_.get_double("clip_rho", 1.0),
      config_.get_double("clip_pg_rho", 1.0)));
  Json opt_config = config_.get("optimizer").is_null()
                        ? Json(JsonObject{})
                        : config_.get("optimizer");
  auto* optimizer =
      root->add_component(make_optimizer("optimizer", opt_config));

  const auto& obs_box = static_cast<const BoxSpace&>(*state_space_);
  Shape obs = obs_box.value_shape();
  int64_t T = rollout_length_;
  int64_t A = policy->num_actions();
  int64_t unstage_overhead = config_.get_bool("unbatched_unstage", false)
                                 ? config_.get_int("unstage_overhead", 8)
                                 : 0;

  root->register_api(
      "learn_from_queue",
      [root_raw = root.get(), policy, queue_comp, staging, loss, optimizer,
       obs, T, A, unstage_overhead](BuildContext& ctx,
                                    const OpRecs&) -> OpRecs {
        OpRecs slot = queue_comp->call_api(ctx, "dequeue", {});
        if (staging != nullptr) {
          slot = staging->call_api(ctx, "stage_and_get", slot);
        }
        if (unstage_overhead > 0 && !ctx.assembling()) {
          // DM-reference learner behaviour: per-tensor, non-batched work on
          // the unstaged batch (modeled as extra elementwise passes).
          for (OpRec& leaf : slot) {
            if (leaf.space == nullptr || !leaf.space->is_box()) continue;
            const auto& b = static_cast<const BoxSpace&>(*leaf.space);
            if (b.dtype() != DType::kFloat32) continue;
            leaf = root_raw->graph_fn(
                ctx, "unstage_extra",
                [unstage_overhead](OpContext& ops,
                                   const std::vector<OpRef>& in) {
                  OpRef x = in[0];
                  for (int64_t i = 0; i < unstage_overhead; ++i) {
                    x = ops.mul(x, ops.scalar(1.0f));
                  }
                  return std::vector<OpRef>{x};
                },
                {leaf}, 1, {leaf.space})[0];
          }
        }
        // slot: states [E,T1,obs], mu_logits [E,T,A], actions [E,T],
        //       rewards [E,T], terminals [E,T].
        if (ctx.assembling()) return OpRecs(5);

        int64_t flat_obs = obs.num_elements();
        OpRec flat_states = root_raw->graph_fn(
            ctx, "flatten_time",
            [obs, flat_obs](OpContext& ops, const std::vector<OpRef>& in) {
              Shape target = Shape{kUnknownDim}.concat(obs);
              (void)flat_obs;
              return std::vector<OpRef>{ops.reshape(in[0], target)};
            },
            {slot[0]}, 1,
            {std::make_shared<BoxSpace>(DType::kFloat32, obs, 0.0, 1.0)
                 ->with_batch_rank()})[0];

        OpRecs lv = policy->call_api(ctx, "get_logits_value", {flat_states});

        // Reshape heads back to [E, T(+1), ...] and split off bootstrap.
        OpRecs shaped = root_raw->graph_fn(
            ctx, "shape_heads",
            [T, A](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef logits_all =
                  ops.reshape(in[0], Shape{kUnknownDim, T + 1, A});
              OpRef values_all = ops.reshape(ops.squeeze(in[1], 1),
                                             Shape{kUnknownDim, T + 1});
              std::vector<OpRef> lsplit = ops.split(logits_all, 1, {T, 1});
              std::vector<OpRef> vsplit = ops.split(values_all, 1, {T, 1});
              OpRef bootstrap = ops.squeeze(vsplit[1], 1);
              return std::vector<OpRef>{lsplit[0], vsplit[0], bootstrap};
            },
            {lv[0], lv[1]}, 3,
            {FloatBox(Shape{T, A})->with_batch_rank(),
             FloatBox(Shape{T})->with_batch_rank(),
             FloatBox()->with_batch_rank()});

        OpRecs loss_out = loss->call_api(
            ctx, "get_loss",
            {slot[1], shaped[0], slot[2], slot[3], slot[4], shaped[1],
             shaped[2]});

        OpRecs vars = policy->variable_recs(ctx);
        OpRecs step_inputs{loss_out[0]};
        step_inputs.insert(step_inputs.end(), vars.begin(), vars.end());
        OpRecs opt_out = optimizer->call_api(ctx, "step", step_inputs);
        return OpRecs{loss_out[0], loss_out[1], loss_out[2], loss_out[3],
                      opt_out[0]};
      });

  api_spaces_ = {{"learn_from_queue", {}}};
}

void IMPALAAgent::on_built() {
  GraphExecutor& ex = executor();
  if (mode_ == Mode::kActor) {
    h_act_step_ = ex.api_handle("act_step");
    h_act_and_enqueue_ = ex.api_handle("act_and_enqueue");
  } else {
    h_learn_from_queue_ = ex.api_handle("learn_from_queue");
  }
}

void IMPALAAgent::attach_environment(VectorEnv* env) {
  RLG_REQUIRE(mode_ == Mode::kActor, "attach_environment on learner");
  rollout_context_->env = env;
  rollout_context_->act =
      [this](const Tensor& obs) -> std::pair<Tensor, Tensor> {
    std::vector<Tensor> out = executor().execute(h_act_step_, {obs});
    return {out[0], out[1]};
  };
}

int64_t IMPALAAgent::act_and_enqueue() {
  int64_t before = rollout_context_->env_frames;
  executor().execute(h_act_and_enqueue_, {});
  return rollout_context_->env_frames - before;
}

Tensor IMPALAAgent::get_actions(const Tensor& states, bool) {
  RLG_REQUIRE(mode_ == Mode::kActor, "get_actions on learner");
  return executor().execute(h_act_step_, {states})[0];
}

void IMPALAAgent::observe(const Tensor&, const Tensor&, const Tensor&,
                          const Tensor&, const Tensor&) {
  throw ValueError(
      "IMPALA agents observe through the rollout queue, not observe()");
}

double IMPALAAgent::update() {
  RLG_REQUIRE(mode_ == Mode::kLearner, "update on actor");
  return executor().execute(h_learn_from_queue_, {})[0].scalar_value();
}

std::unique_ptr<Agent> make_impala_agent(const Json& config,
                                         SpacePtr state_space,
                                         SpacePtr action_space) {
  IMPALAAgent::Mode mode = config.get_string("type", "") == "impala_actor"
                               ? IMPALAAgent::Mode::kActor
                               : IMPALAAgent::Mode::kLearner;
  return std::make_unique<IMPALAAgent>(config, std::move(state_space),
                                       std::move(action_space), mode);
}

}  // namespace rlgraph
