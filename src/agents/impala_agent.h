// IMPALA (importance-weighted actor-learner architecture) agents.
//
// The paper uses IMPALA to demonstrate end-to-end computation graphs: actors
// fuse environment stepping into the graph and feed rollouts into a globally
// shared blocking queue; the learner dequeues, stages (to hide transfer
// latency) and updates with the V-trace loss — one executor call per rollout
// on the actor, one per update on the learner.
//
// Config keys: "network" (conv/dense list), "rollout_length", "discount",
// "value_coef", "entropy_coef", "optimizer", "use_staging",
// plus baseline-ablation flags "redundant_assigns" (DM-reference actor
// behaviour) and "unbatched_unstage" (DM-reference learner behaviour).
#pragma once

#include <functional>

#include "agents/agent.h"
#include "components/policy.h"
#include "components/queue_staging.h"
#include "env/vector_env.h"

namespace rlgraph {

// Shared mutable context for the graph-fused environment stepper: the
// worker injects the environment and the act callable after the build.
struct RolloutContext {
  VectorEnv* env = nullptr;
  // obs [E, ...] -> (actions [E], behavior logits [E, A])
  std::function<std::pair<Tensor, Tensor>(const Tensor&)> act;
  Tensor current_obs;
  bool started = false;
  int64_t env_frames = 0;
};

// Component wrapping fused rollout collection: one custom kernel steps the
// vector env `rollout_length` times, invoking the in-graph policy through
// nested execution, and emits the rollout leaves.
class EnvStepper : public Component {
 public:
  EnvStepper(std::string name, std::shared_ptr<RolloutContext> context,
             SpacePtr obs_space, int64_t rollout_length, int64_t num_actions);

  std::shared_ptr<RolloutContext> context() { return context_; }

 private:
  std::shared_ptr<RolloutContext> context_;
};

class IMPALAAgent : public Agent {
 public:
  enum class Mode { kActor, kLearner };

  IMPALAAgent(Json config, SpacePtr state_space, SpacePtr action_space,
              Mode mode);

  // Must be called before build(): the globally shared rollout queue.
  void set_queue(std::shared_ptr<SharedTensorQueue> queue) {
    queue_ = std::move(queue);
  }
  std::shared_ptr<SharedTensorQueue> queue() { return queue_; }

  // Actor: inject env + wire the fused stepper (after build()).
  void attach_environment(VectorEnv* env);
  // Actor: collect one rollout and enqueue it — a single executor call.
  // Returns env frames consumed.
  int64_t act_and_enqueue();

  // --- Agent interface -------------------------------------------------------
  Tensor get_actions(const Tensor& states, bool explore = true) override;
  void observe(const Tensor&, const Tensor&, const Tensor&, const Tensor&,
               const Tensor&) override;
  // Learner: one dequeue+stage+V-trace+apply step; returns the loss.
  double update() override;

  Mode mode() const { return mode_; }
  int64_t rollout_length() const { return rollout_length_; }
  // Slot signature of the shared queue (leaf spaces).
  std::vector<SpacePtr> queue_slot_spaces() const;

 protected:
  void setup_graph() override;
  void on_built() override;

 private:
  void setup_actor(std::shared_ptr<Component> root);
  void setup_learner(std::shared_ptr<Component> root);

  Mode mode_;
  int64_t rollout_length_;
  std::shared_ptr<SharedTensorQueue> queue_;
  std::shared_ptr<RolloutContext> rollout_context_;

  // Hot-path API handles, resolved once after build (per mode).
  ApiHandle h_act_step_, h_act_and_enqueue_, h_learn_from_queue_;
};

}  // namespace rlgraph
