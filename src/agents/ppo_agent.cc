#include "agents/ppo_agent.h"

#include "components/optimizers.h"
#include "core/build_context.h"
#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

PPOAgent::PPOAgent(Json config, SpacePtr state_space, SpacePtr action_space)
    : Agent(std::move(config), std::move(state_space),
            std::move(action_space)) {
  rollout_length_ = config_.get_int("rollout_length", 32);
  discount_ = config_.get_double("discount", 0.99);
  gae_lambda_ = config_.get_double("gae_lambda", 0.95);
  epochs_ = config_.get_int("epochs", 3);
  minibatch_size_ = config_.get_int("minibatch_size", 64);
}

void PPOAgent::setup_graph() {
  auto root = std::make_shared<Component>("agent");
  auto* policy = root->add_component(std::make_shared<Policy>(
      "policy", config_.at("network"), action_space_,
      PolicyHead::kCategorical));
  Json opt_config = config_.get("optimizer").is_null()
                        ? Json(JsonObject{})
                        : config_.get("optimizer");
  auto* optimizer =
      root->add_component(make_optimizer("optimizer", opt_config));
  double clip_ratio = config_.get_double("clip_ratio", 0.2);
  double value_coef = config_.get_double("value_coef", 0.5);
  double entropy_coef = config_.get_double("entropy_coef", 0.01);

  // act(states) -> (actions sampled, log pi(a|s), V(s)): everything the
  // driver needs for GAE and the surrogate ratio in ONE call.
  root->register_api(
      "act",
      [policy, root_raw = root.get()](BuildContext& ctx,
                                      const OpRecs& inputs) -> OpRecs {
        OpRecs lv = policy->call_api(ctx, "get_logits_value", inputs);
        return root_raw->graph_fn(
            ctx, "sample_with_logp",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef logits = in[0];
              OpRef u = ops.apply("RandomUniformLike", {logits},
                                  {{"lo", 1e-8}, {"hi", 1.0}});
              OpRef gumbel = ops.neg(ops.log(ops.neg(ops.log(u))));
              OpRef actions = ops.argmax(ops.add(logits, gumbel));
              OpRef logp =
                  ops.select_columns(ops.log_softmax(logits), actions);
              OpRef values = ops.squeeze(in[1], 1);
              return std::vector<OpRef>{actions, logp, values};
            },
            {lv[0], lv[1]}, 3);
      });
  root->register_api("act_greedy",
                     [policy](BuildContext& ctx, const OpRecs& inputs) {
                       return policy->call_api(ctx, "get_action", inputs);
                     });
  root->register_api(
      "get_values",
      [policy, root_raw = root.get()](BuildContext& ctx,
                                      const OpRecs& inputs) -> OpRecs {
        OpRecs lv = policy->call_api(ctx, "get_logits_value", inputs);
        return root_raw->graph_fn(
            ctx, "squeeze_value",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{ops.squeeze(in[0], 1)};
            },
            {lv[1]});
      });

  // update_batch(states, actions, old_logp, advantages, returns)
  //   -> (loss, update_group).
  root->register_api(
      "update_batch",
      [policy, optimizer, root_raw = root.get(), clip_ratio, value_coef,
       entropy_coef](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 5,
                    "update_batch expects (states, actions, old_logp, "
                    "advantages, returns)");
        OpRecs lv = policy->call_api(ctx, "get_logits_value", {inputs[0]});
        OpRecs loss = root_raw->graph_fn(
            ctx, "ppo_loss",
            [clip_ratio, value_coef, entropy_coef](
                OpContext& ops, const std::vector<OpRef>& in) {
              OpRef logits = in[0];
              OpRef values = ops.squeeze(in[1], 1);
              OpRef actions = in[2], old_logp = in[3];
              OpRef adv = in[4], returns = in[5];
              OpRef logp_all = ops.log_softmax(logits);
              OpRef logp = ops.select_columns(logp_all, actions);
              OpRef ratio = ops.exp(ops.sub(logp, old_logp));
              OpRef clipped = ops.clip(ratio, 1.0 - clip_ratio,
                                       1.0 + clip_ratio);
              // Clipped surrogate: -mean(min(r*A, clip(r)*A)).
              OpRef surrogate = ops.minimum(ops.mul(ratio, adv),
                                            ops.mul(clipped, adv));
              OpRef pg = ops.neg(ops.reduce_mean(surrogate));
              OpRef v_loss = ops.mul(
                  ops.scalar(0.5f),
                  ops.reduce_mean(ops.square(ops.sub(values, returns))));
              OpRef entropy = ops.neg(ops.reduce_mean(ops.reduce_sum(
                  ops.mul(ops.softmax(logits), logp_all), 1)));
              OpRef total = ops.add(
                  pg, ops.sub(ops.mul(ops.scalar((float)value_coef), v_loss),
                              ops.mul(ops.scalar((float)entropy_coef),
                                      entropy)));
              return std::vector<OpRef>{total};
            },
            {lv[0], lv[1], inputs[1], inputs[2], inputs[3], inputs[4]});
        OpRecs vars = policy->variable_recs(ctx);
        OpRecs step_inputs{loss[0]};
        step_inputs.insert(step_inputs.end(), vars.begin(), vars.end());
        OpRecs opt_out = optimizer->call_api(ctx, "step", step_inputs);
        return OpRecs{opt_out[1], opt_out[0]};
      });

  SpacePtr state_b = state_space_->with_batch_rank();
  SpacePtr float_b = FloatBox()->with_batch_rank();
  api_spaces_ = {
      {"act", {state_b}},
      {"act_greedy", {state_b}},
      {"get_values", {state_b}},
      {"update_batch",
       {state_b, action_space_->with_batch_rank(), float_b, float_b,
        float_b}},
  };
  root_ = std::move(root);
}

void PPOAgent::on_built() {
  GraphExecutor& ex = executor();
  h_act_ = ex.api_handle("act");
  h_act_greedy_ = ex.api_handle("act_greedy");
  h_get_values_ = ex.api_handle("get_values");
  h_update_batch_ = ex.api_handle("update_batch");
}

Tensor PPOAgent::get_actions(const Tensor& states, bool explore) {
  if (!explore) return executor().execute(h_act_greedy_, {states})[0];
  std::vector<Tensor> out = executor().execute(h_act_, {states});
  last_log_probs_ = out[1];
  // Cache values for GAE alongside the log-probs (attached in observe()).
  last_values_cache_ = out[2];
  return out[0];
}

Tensor PPOAgent::get_values(const Tensor& states) {
  return executor().execute(h_get_values_, {states})[0];
}

void PPOAgent::observe(const Tensor& states, const Tensor& actions,
                       const Tensor& rewards, const Tensor& next_states,
                       const Tensor& terminals) {
  RLG_REQUIRE(last_log_probs_.num_elements() == actions.num_elements(),
              "observe() must follow a matching get_actions() call");
  rollout_.push_back(Step{states, actions, last_log_probs_, rewards,
                          terminals, last_values_cache_});
  last_next_states_ = next_states;
  RLG_REQUIRE(static_cast<int64_t>(rollout_.size()) <= rollout_length_,
              "rollout buffer overfull; call update() every step");
}

double PPOAgent::update() {
  if (static_cast<int64_t>(rollout_.size()) < rollout_length_) return 0.0;

  int64_t T = static_cast<int64_t>(rollout_.size());
  int64_t E = rollout_.front().rewards.num_elements();

  // GAE(lambda): delta_t = r_t + gamma*V(s_{t+1})*(1-term) - V(s_t);
  // A_t = delta_t + gamma*lambda*(1-term)*A_{t+1}.
  Tensor bootstrap = get_values(last_next_states_);
  std::vector<float> next_v = bootstrap.to_floats();
  std::vector<float> gae(static_cast<size_t>(E), 0.0f);
  std::vector<Tensor> advantages(static_cast<size_t>(T));
  std::vector<Tensor> returns(static_cast<size_t>(T));
  for (int64_t t = T - 1; t >= 0; --t) {
    const Step& step = rollout_[static_cast<size_t>(t)];
    Tensor adv(DType::kFloat32, Shape{E});
    Tensor ret(DType::kFloat32, Shape{E});
    const float* r = step.rewards.data<float>();
    const uint8_t* term = step.terminals.data<uint8_t>();
    const float* v = step.values.data<float>();
    for (int64_t e = 0; e < E; ++e) {
      auto eu = static_cast<size_t>(e);
      double not_term = term[e] != 0 ? 0.0 : 1.0;
      double delta = r[e] + discount_ * next_v[eu] * not_term - v[e];
      gae[eu] = static_cast<float>(
          delta + discount_ * gae_lambda_ * not_term * gae[eu]);
      adv.mutable_data<float>()[e] = gae[eu];
      ret.mutable_data<float>()[e] = gae[eu] + v[e];
      next_v[eu] = v[e];
    }
    advantages[static_cast<size_t>(t)] = std::move(adv);
    returns[static_cast<size_t>(t)] = std::move(ret);
  }

  // Flatten the rollout and normalize advantages.
  std::vector<Tensor> all_s, all_a, all_lp, all_adv, all_ret;
  for (int64_t t = 0; t < T; ++t) {
    auto tu = static_cast<size_t>(t);
    all_s.push_back(rollout_[tu].states);
    all_a.push_back(rollout_[tu].actions);
    all_lp.push_back(rollout_[tu].log_probs);
    all_adv.push_back(advantages[tu]);
    all_ret.push_back(returns[tu]);
  }
  rollout_.clear();
  Tensor states = kernels::concat(all_s, 0);
  Tensor actions = kernels::concat(all_a, 0);
  Tensor log_probs = kernels::concat(all_lp, 0);
  Tensor adv = kernels::concat(all_adv, 0);
  Tensor rets = kernels::concat(all_ret, 0);
  // Advantage normalization.
  Tensor mean = kernels::reduce_mean(adv, -1, false);
  Tensor centered = kernels::sub(adv, mean);
  Tensor stddev = kernels::sqrt(kernels::add(
      kernels::reduce_mean(kernels::square(centered), -1, false),
      Tensor::scalar(1e-6f)));
  adv = kernels::div(centered, stddev);

  // Epochs of shuffled minibatches.
  int64_t N = states.shape().dim(0);
  int64_t mb = std::min(minibatch_size_, N);
  Rng& rng = executor().rng();
  double loss_sum = 0.0;
  int64_t batches = 0;
  for (int64_t epoch = 0; epoch < epochs_; ++epoch) {
    // Shuffled index permutation.
    std::vector<int32_t> perm(static_cast<size_t>(N));
    for (int64_t i = 0; i < N; ++i) perm[static_cast<size_t>(i)] =
        static_cast<int32_t>(i);
    for (int64_t i = N - 1; i > 0; --i) {
      std::swap(perm[static_cast<size_t>(i)],
                perm[static_cast<size_t>(rng.uniform_int(i + 1))]);
    }
    for (int64_t begin = 0; begin + mb <= N; begin += mb) {
      Tensor idx = Tensor::from_ints(
          Shape{mb}, std::vector<int32_t>(
                         perm.begin() + begin, perm.begin() + begin + mb));
      std::vector<Tensor> out = executor().execute(
          h_update_batch_, {kernels::gather_rows(states, idx),
                           kernels::gather_rows(actions, idx),
                           kernels::gather_rows(log_probs, idx),
                           kernels::gather_rows(adv, idx),
                           kernels::gather_rows(rets, idx)});
      loss_sum += out[0].scalar_value();
      ++batches;
    }
  }
  return batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
}

std::unique_ptr<Agent> make_ppo_agent(const Json& config,
                                      SpacePtr state_space,
                                      SpacePtr action_space) {
  return std::make_unique<PPOAgent>(config, std::move(state_space),
                                    std::move(action_space));
}

}  // namespace rlgraph
