// PPOAgent: proximal policy optimization with a clipped surrogate
// objective and GAE(lambda) advantages — like the original RLgraph's PPO,
// assembled from the existing component library (categorical Policy,
// optimizer) plus one agent-level loss graph function.
//
// Driver protocol: get_actions samples and caches the behaviour log-probs;
// observe() buffers transitions; update() runs `epochs` passes of
// minibatch clipped-surrogate updates over the buffered rollout once it is
// full.
//
// Config keys: "network", "rollout_length", "discount", "gae_lambda",
// "clip_ratio", "value_coef", "entropy_coef", "epochs", "minibatch_size",
// "optimizer".
#pragma once

#include <deque>

#include "agents/agent.h"
#include "components/policy.h"

namespace rlgraph {

class PPOAgent : public Agent {
 public:
  PPOAgent(Json config, SpacePtr state_space, SpacePtr action_space);

  // Samples actions; the matching behaviour log-probs are cached and
  // attached to the next observe() call.
  Tensor get_actions(const Tensor& states, bool explore = true) override;
  // log pi(a|s) of the last get_actions batch.
  const Tensor& last_log_probs() const { return last_log_probs_; }

  void observe(const Tensor& states, const Tensor& actions,
               const Tensor& rewards, const Tensor& next_states,
               const Tensor& terminals) override;

  // Runs the PPO update epochs when a full rollout is buffered; returns the
  // mean minibatch loss (0 while filling).
  double update() override;

  Tensor get_values(const Tensor& states);
  int64_t buffered_steps() const {
    return static_cast<int64_t>(rollout_.size());
  }

 protected:
  void setup_graph() override;
  void on_built() override;

 private:
  struct Step {
    Tensor states, actions, log_probs, rewards, terminals, values;
  };

  int64_t rollout_length_;
  double discount_;
  double gae_lambda_;
  int64_t epochs_;
  int64_t minibatch_size_;
  std::deque<Step> rollout_;
  Tensor last_log_probs_;
  Tensor last_values_cache_;
  Tensor last_next_states_;

  // Hot-path API handles, resolved once after build.
  ApiHandle h_act_, h_act_greedy_, h_get_values_, h_update_batch_;
};

}  // namespace rlgraph
