#include "agents/sac_agent.h"

#include <cmath>

#include "components/memories.h"
#include "components/optimizers.h"
#include "components/synchronizer.h"
#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

namespace {

// Holds the trainable log(alpha) scalar and its loss. A separate component
// so the variable scopes cleanly ("agent/entropy-coeff/log_alpha") and the
// alpha optimizer can pull exactly this one variable.
class EntropyCoeff : public Component {
 public:
  EntropyCoeff(std::string name, double initial_alpha, double target_entropy)
      : Component(std::move(name)), initial_alpha_(initial_alpha),
        target_entropy_(target_entropy) {
    RLG_REQUIRE(initial_alpha_ > 0.0, "initial_alpha must be > 0");

    // get_alpha() -> exp(log_alpha), scalar.
    register_api(
        "get_alpha", [this](BuildContext& ctx, const OpRecs& inputs) {
          return graph_fn(
              ctx, "get_alpha",
              [this](OpContext& ops, const std::vector<OpRef>&) {
                return std::vector<OpRef>{
                    ops.exp(ops.variable(scope() + "/log_alpha"))};
              },
              inputs, 1, {FloatBox()});
        });

    // get_loss(mean_logp) -> -log_alpha * (mean_logp + target_entropy).
    // mean_logp arrives detached (computed in a previous executor call), so
    // the only gradient path is into log_alpha itself.
    register_api(
        "get_loss", [this](BuildContext& ctx, const OpRecs& inputs) {
          RLG_REQUIRE(inputs.size() == 1, "get_loss expects (mean_logp)");
          return graph_fn(
              ctx, "alpha_loss",
              [this](OpContext& ops, const std::vector<OpRef>& in) {
                OpRef log_alpha = ops.variable(scope() + "/log_alpha");
                OpRef target = ops.add(
                    in[0],
                    ops.scalar(static_cast<float>(target_entropy_)));
                return std::vector<OpRef>{
                    ops.neg(ops.mul(log_alpha, target))};
              },
              inputs, 1, {FloatBox()});
        });
  }

  void create_variables(BuildContext& ctx) override {
    create_var(ctx, "log_alpha",
               Tensor::scalar(static_cast<float>(std::log(initial_alpha_))));
  }

 private:
  double initial_alpha_;
  double target_entropy_;
};

}  // namespace

SacAgent::SacAgent(Json config, SpacePtr state_space, SpacePtr action_space)
    : Agent(std::move(config), std::move(state_space),
            std::move(action_space)) {
  RLG_REQUIRE(action_space_->is_box(), "SAC requires a Box action space");
  const auto& box = static_cast<const BoxSpace&>(*action_space_);
  RLG_REQUIRE(box.dtype() == DType::kFloat32 && box.num_categories() == 0,
              "SAC requires a continuous (float Box) action space");
  action_dim_ = box.value_shape().num_elements();
  const Json& update = config_.get("update");
  batch_size_ = update.is_null() ? 64 : update.get_int("batch_size", 64);
  min_records_ = update.is_null() ? 200 : update.get_int("min_records", 200);
}

void SacAgent::setup_graph() {
  auto root = std::make_shared<Component>("agent");

  const Json& network = config_.at("network");
  const Json& critic_network = config_.get("critic_network").is_null()
                                   ? network
                                   : config_.get("critic_network");

  auto* policy = root->add_component(std::make_shared<Policy>(
      "policy", network, action_space_, PolicyHead::kSquashedGaussian));
  auto* critic1 = root->add_component(
      std::make_shared<ContinuousQCritic>("critic-1", critic_network));
  auto* critic2 = root->add_component(
      std::make_shared<ContinuousQCritic>("critic-2", critic_network));
  auto* target1 = root->add_component(
      std::make_shared<ContinuousQCritic>("target-critic-1", critic_network));
  auto* target2 = root->add_component(
      std::make_shared<ContinuousQCritic>("target-critic-2", critic_network));

  const Json& mem_config = config_.get("memory");
  int64_t capacity =
      mem_config.is_null() ? 100000 : mem_config.get_int("capacity", 100000);
  auto* memory =
      root->add_component(std::make_shared<RingMemory>("memory", capacity));

  Json opt_config = config_.get("optimizer").is_null()
                        ? Json(JsonObject{})
                        : config_.get("optimizer");
  Json alpha_opt_config = config_.get("alpha_optimizer").is_null()
                              ? opt_config
                              : config_.get("alpha_optimizer");
  auto* actor_opt =
      root->add_component(make_optimizer("actor-optimizer", opt_config));
  auto* critic_opt =
      root->add_component(make_optimizer("critic-optimizer", opt_config));
  auto* alpha_opt =
      root->add_component(make_optimizer("alpha-optimizer", alpha_opt_config));

  const double gamma = config_.get_double("discount", 0.99);
  const double tau = config_.get_double("tau", 0.005);
  const double target_entropy = config_.get_double(
      "target_entropy", -static_cast<double>(action_dim_));
  auto* entropy_coeff = root->add_component(std::make_shared<EntropyCoeff>(
      "entropy-coeff", config_.get_double("initial_alpha", 0.2),
      target_entropy));

  auto* sync1 = root->add_component(std::make_shared<Synchronizer>(
      "sync-1", "agent/critic-1", "agent/target-critic-1", tau));
  auto* sync2 = root->add_component(std::make_shared<Synchronizer>(
      "sync-2", "agent/critic-2", "agent/target-critic-2", tau));
  auto* hard_sync1 = root->add_component(std::make_shared<Synchronizer>(
      "hard-sync-1", "agent/critic-1", "agent/target-critic-1"));
  auto* hard_sync2 = root->add_component(std::make_shared<Synchronizer>(
      "hard-sync-2", "agent/critic-2", "agent/target-critic-2"));

  // --- root API methods ----------------------------------------------------

  // act(states [B, ...]) -> sampled actions [B, D].
  root->register_api("act",
                     [policy](BuildContext& ctx, const OpRecs& inputs) {
                       RLG_REQUIRE(inputs.size() == 1, "act expects (states)");
                       OpRecs out = policy->call_api(ctx, "sample_action_logp",
                                                     inputs);
                       return OpRecs{out[0]};
                     });
  // act_greedy(states) -> deterministic squashed-mean actions [B, D].
  root->register_api("act_greedy",
                     [policy](BuildContext& ctx, const OpRecs& inputs) {
                       return policy->call_api(ctx, "get_action", inputs);
                     });

  // observe(s, a, r, s2, t) -> insert count (uniform priorities).
  SpacePtr record_space = Tuple({
      state_space_->with_batch_rank(),
      action_space_->with_batch_rank(),
      FloatBox()->with_batch_rank(),
      state_space_->with_batch_rank(),
      BoolBox()->with_batch_rank(),
  });
  root->register_api(
      "observe",
      [root_raw = root.get(), memory, record_space](
          BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 5, "observe expects (s, a, r, s2, t)");
        OpRec record;
        record.space = record_space;
        for (size_t i = 0; i < 5; ++i) {
          if (!inputs[i].abstract()) record.ops.push_back(inputs[i].op());
        }
        OpRec ones = root_raw->graph_fn(
            ctx, "unit_priorities",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{ops.ones_like(in[0])};
            },
            {inputs[2]})[0];
        return memory->call_api(ctx, "insert_records", {record, ones});
      });

  // sample_batch(n) -> (s, a, r, s2, t, indices, weights).
  root->register_api("sample_batch",
                     [memory](BuildContext& ctx, const OpRecs& inputs) {
                       OpRecs out =
                           memory->call_api(ctx, "get_records", inputs);
                       if (ctx.assembling()) out.resize(7);
                       return out;
                     });

  // update_critic(s, a, r, s2, t) -> (critic_loss, update_group).
  // Target: r + gamma*(1-t)*(min(Q1', Q2')(s2, a2) - alpha*logp(a2|s2)),
  // a2 freshly sampled from the current policy; both critics regress onto
  // the same stopped target.
  root->register_api(
      "update_critic",
      [root_raw = root.get(), policy, critic1, critic2, target1, target2,
       entropy_coeff, critic_opt, gamma](BuildContext& ctx,
                                         const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 5,
                    "update_critic expects (s, a, r, s2, t)");
        const OpRec& s = inputs[0];
        const OpRec& a = inputs[1];
        const OpRec& r = inputs[2];
        const OpRec& s2 = inputs[3];
        const OpRec& t = inputs[4];
        OpRecs next = policy->call_api(ctx, "sample_action_logp", {s2});
        OpRec q1t = target1->call_api(ctx, "get_q", {s2, next[0]})[0];
        OpRec q2t = target2->call_api(ctx, "get_q", {s2, next[0]})[0];
        OpRec q1 = critic1->call_api(ctx, "get_q", {s, a})[0];
        OpRec q2 = critic2->call_api(ctx, "get_q", {s, a})[0];
        OpRec alpha = entropy_coeff->call_api(ctx, "get_alpha", {})[0];
        OpRec loss = root_raw->graph_fn(
            ctx, "critic_loss",
            [gamma](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef q1 = in[0], q2 = in[1], r = in[2], t = in[3];
              OpRef q1t = in[4], q2t = in[5], logp2 = in[6], alpha = in[7];
              OpRef not_term = ops.sub(
                  ops.scalar(1.0f), ops.cast(t, DType::kFloat32));
              OpRef soft_q = ops.sub(ops.minimum(q1t, q2t),
                                     ops.mul(alpha, logp2));
              OpRef target = ops.add(
                  r, ops.mul(ops.scalar(static_cast<float>(gamma)),
                             ops.mul(not_term, soft_q)));
              target = ops.stop_gradient(target);
              OpRef td1 = ops.square(ops.sub(q1, target));
              OpRef td2 = ops.square(ops.sub(q2, target));
              return std::vector<OpRef>{ops.mul(
                  ops.scalar(0.5f), ops.reduce_mean(ops.add(td1, td2)))};
            },
            {q1, q2, r, t, q1t, q2t, next[1], alpha}, 1, {FloatBox()})[0];
        OpRecs vars = critic1->variable_recs(ctx);
        OpRecs vars2 = critic2->variable_recs(ctx);
        vars.insert(vars.end(), vars2.begin(), vars2.end());
        OpRecs step_inputs{loss};
        step_inputs.insert(step_inputs.end(), vars.begin(), vars.end());
        OpRecs opt_out = critic_opt->call_api(ctx, "step", step_inputs);
        return OpRecs{loss, opt_out[0]};
      });

  // update_actor(s) -> (actor_loss, mean_logp, update_group).
  // loss = mean(alpha*logp - min(Q1, Q2)(s, a)), a reparameterized.
  root->register_api(
      "update_actor",
      [root_raw = root.get(), policy, critic1, critic2, entropy_coeff,
       actor_opt](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "update_actor expects (states)");
        OpRecs sampled = policy->call_api(ctx, "sample_action_logp", inputs);
        OpRec q1 = critic1->call_api(ctx, "get_q", {inputs[0], sampled[0]})[0];
        OpRec q2 = critic2->call_api(ctx, "get_q", {inputs[0], sampled[0]})[0];
        OpRec alpha = entropy_coeff->call_api(ctx, "get_alpha", {})[0];
        OpRecs lm = root_raw->graph_fn(
            ctx, "actor_loss",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef logp = in[0], q1 = in[1], q2 = in[2], alpha = in[3];
              OpRef qmin = ops.minimum(q1, q2);
              OpRef loss = ops.reduce_mean(
                  ops.sub(ops.mul(ops.stop_gradient(alpha), logp), qmin));
              OpRef mean_logp =
                  ops.stop_gradient(ops.reduce_mean(logp));
              return std::vector<OpRef>{loss, mean_logp};
            },
            {sampled[1], q1, q2, alpha}, 2, {FloatBox(), FloatBox()});
        OpRecs vars = policy->variable_recs(ctx);
        OpRecs step_inputs{lm[0]};
        step_inputs.insert(step_inputs.end(), vars.begin(), vars.end());
        OpRecs opt_out = actor_opt->call_api(ctx, "step", step_inputs);
        return OpRecs{lm[0], lm[1], opt_out[0]};
      });

  // update_alpha(mean_logp) -> (alpha_loss, update_group). The updated
  // alpha value is NOT fetched here: a variable read in the same plan as
  // the optimizer's assign is unordered against it (the read is not an
  // ancestor of the assign), so callers use get_alpha in a follow-up call.
  root->register_api(
      "update_alpha",
      [entropy_coeff, alpha_opt](BuildContext& ctx,
                                 const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "update_alpha expects (mean_logp)");
        OpRec loss = entropy_coeff->call_api(ctx, "get_loss", inputs)[0];
        OpRecs vars = entropy_coeff->variable_recs(ctx);
        OpRecs step_inputs{loss};
        step_inputs.insert(step_inputs.end(), vars.begin(), vars.end());
        OpRecs opt_out = alpha_opt->call_api(ctx, "step", step_inputs);
        return OpRecs{loss, opt_out[0]};
      });

  // get_alpha() -> current exp(log_alpha).
  root->register_api("get_alpha",
                     [entropy_coeff](BuildContext& ctx, const OpRecs& inputs) {
                       return entropy_coeff->call_api(ctx, "get_alpha",
                                                      inputs);
                     });

  auto sync_api = [](Synchronizer* a, Synchronizer* b) {
    return [a, b](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
      OpRec c1 = a->call_api(ctx, "sync", inputs)[0];
      OpRec c2 = b->call_api(ctx, "sync", inputs)[0];
      return OpRecs{c1, c2};
    };
  };
  root->register_api("sync_targets", sync_api(sync1, sync2));
  // Hard copy used once after build so targets start identical to the
  // online critics.
  root->register_api("sync_targets_hard", sync_api(hard_sync1, hard_sync2));

  root->register_api("memory_size",
                     [memory](BuildContext& ctx, const OpRecs& inputs) {
                       return memory->call_api(ctx, "get_size", inputs);
                     });

  // --- declared API input spaces -------------------------------------------
  SpacePtr state_b = state_space_->with_batch_rank();
  SpacePtr action_b = action_space_->with_batch_rank();
  SpacePtr float_b = FloatBox()->with_batch_rank();
  SpacePtr bool_b = BoolBox()->with_batch_rank();
  SpacePtr int_scalar = IntBox(1 << 30);
  api_spaces_ = {
      {"act", {state_b}},
      {"act_greedy", {state_b}},
      {"observe", {state_b, action_b, float_b, state_b, bool_b}},
      {"sample_batch", {int_scalar}},
      {"update_critic", {state_b, action_b, float_b, state_b, bool_b}},
      {"update_actor", {state_b}},
      {"update_alpha", {FloatBox()}},
      {"get_alpha", {}},
      {"sync_targets", {}},
      {"sync_targets_hard", {}},
      {"memory_size", {}},
  };
  root_ = std::move(root);
}

void SacAgent::on_built() {
  GraphExecutor& ex = executor();
  h_act_ = ex.api_handle("act");
  h_act_greedy_ = ex.api_handle("act_greedy");
  h_observe_ = ex.api_handle("observe");
  h_sample_batch_ = ex.api_handle("sample_batch");
  h_update_critic_ = ex.api_handle("update_critic");
  h_update_actor_ = ex.api_handle("update_actor");
  h_update_alpha_ = ex.api_handle("update_alpha");
  h_get_alpha_ = ex.api_handle("get_alpha");
  h_sync_targets_ = ex.api_handle("sync_targets");
  h_sync_targets_hard_ = ex.api_handle("sync_targets_hard");
  h_memory_size_ = ex.api_handle("memory_size");
  // Targets start as exact copies of the online critics.
  ex.execute(h_sync_targets_hard_, {});
}

Tensor SacAgent::get_actions(const Tensor& states, bool explore) {
  return executor().execute(explore ? h_act_ : h_act_greedy_, {states})[0];
}

void SacAgent::observe(const Tensor& states, const Tensor& actions,
                       const Tensor& rewards, const Tensor& next_states,
                       const Tensor& terminals) {
  executor().execute(h_observe_,
                     {states, actions, rewards, next_states, terminals});
}

double SacAgent::update() {
  if (memory_size() < std::max(min_records_, batch_size_)) return 0.0;
  std::vector<Tensor> batch = sample_batch(batch_size_);
  return update_from_batch(batch[0], batch[1], batch[2], batch[3], batch[4]);
}

double SacAgent::update_from_batch(const Tensor& states, const Tensor& actions,
                                   const Tensor& rewards,
                                   const Tensor& next_states,
                                   const Tensor& terminals) {
  std::vector<Tensor> critic_out = executor().execute(
      h_update_critic_, {states, actions, rewards, next_states, terminals});
  std::vector<Tensor> actor_out =
      executor().execute(h_update_actor_, {states});
  std::vector<Tensor> alpha_out =
      executor().execute(h_update_alpha_, {actor_out[1]});
  sync_targets();
  last_actor_loss_ = actor_out[0].scalar_value();
  last_alpha_loss_ = alpha_out[0].scalar_value();
  last_alpha_ = executor().execute(h_get_alpha_, {})[0].scalar_value();
  return critic_out[0].scalar_value();
}

std::vector<Tensor> SacAgent::sample_batch(int64_t n) {
  return executor().execute(h_sample_batch_,
                            {Tensor::scalar_int(static_cast<int32_t>(n))});
}

int64_t SacAgent::memory_size() {
  return static_cast<int64_t>(
      executor().execute(h_memory_size_, {})[0].scalar_value());
}

void SacAgent::sync_targets() { executor().execute(h_sync_targets_, {}); }

std::unique_ptr<Agent> make_sac_agent(const Json& config,
                                      SpacePtr state_space,
                                      SpacePtr action_space) {
  return std::make_unique<SacAgent>(config, std::move(state_space),
                                    std::move(action_space));
}

}  // namespace rlgraph
