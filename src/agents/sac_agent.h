// SacAgent: Soft Actor-Critic for continuous action spaces.
//
// The first continuous-control workload: a squashed-Gaussian policy
// (components/policy.h, PolicyHead::kSquashedGaussian), twin Q critics with
// polyak-averaged target networks, entropy-coefficient auto-tuning against a
// target entropy, and uniform replay. Exploration IS the policy's sampling
// head — there is no separate exploration component; greedy acting
// (explore=false) returns the squashed mean, which is what the PolicyServer
// serves.
//
// One update() is four executor calls on purpose: sample -> critic step ->
// actor step -> alpha step (+ polyak sync). Reads of a variable and in-plan
// assigns to it are only ordered when the read is an ancestor of the assign,
// so chaining "update critics, then evaluate the updated critics for the
// actor loss" inside ONE plan would race; separate calls sequence them.
//
// Config keys (all optional unless noted):
//   "network": [...layer list...]            (required; actor torso)
//   "critic_network": [...layer list...]     (default: same as "network")
//   "memory": {"capacity": N}
//   "optimizer": {"type": "adam", "learning_rate": 3e-4}   (actor + critic)
//   "alpha_optimizer": {...}                 (default: same as "optimizer")
//   "discount": 0.99, "tau": 0.005,
//   "target_entropy": -action_dim, "initial_alpha": 0.2,
//   "update": {"batch_size": 64, "min_records": 200}
#pragma once

#include "agents/agent.h"
#include "components/policy.h"

namespace rlgraph {

class SacAgent : public Agent {
 public:
  SacAgent(Json config, SpacePtr state_space, SpacePtr action_space);

  // Returns actions [B, D]. explore=true samples from the squashed
  // Gaussian; explore=false returns the deterministic squashed mean.
  Tensor get_actions(const Tensor& states, bool explore = true) override;

  void observe(const Tensor& states, const Tensor& actions,
               const Tensor& rewards, const Tensor& next_states,
               const Tensor& terminals) override;

  // One SAC step (critic, actor, alpha, polyak sync); returns the critic
  // loss. No-op (returns 0) until the memory holds min_records records.
  double update() override;

  // Last auxiliary values from update(), for logging and tests.
  double last_actor_loss() const { return last_actor_loss_; }
  double last_alpha_loss() const { return last_alpha_loss_; }
  double alpha() const { return last_alpha_; }

  // Sample {s, a, r, s2, t, indices, weights} from replay without updating.
  std::vector<Tensor> sample_batch(int64_t n);
  // Update critics/actor/alpha from an explicit batch; returns critic loss.
  double update_from_batch(const Tensor& states, const Tensor& actions,
                           const Tensor& rewards, const Tensor& next_states,
                           const Tensor& terminals);
  int64_t memory_size();
  // Polyak-averaged target update (tau from config).
  void sync_targets();

  int64_t batch_size() const { return batch_size_; }

 protected:
  void setup_graph() override;
  void on_built() override;

 private:
  int64_t action_dim_ = 0;
  int64_t batch_size_ = 64;
  int64_t min_records_ = 200;
  double last_actor_loss_ = 0.0;
  double last_alpha_loss_ = 0.0;
  double last_alpha_ = 0.0;

  ApiHandle h_act_, h_act_greedy_, h_observe_, h_sample_batch_,
      h_update_critic_, h_update_actor_, h_update_alpha_, h_get_alpha_,
      h_sync_targets_, h_sync_targets_hard_, h_memory_size_;
};

}  // namespace rlgraph
