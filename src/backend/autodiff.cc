// Reverse-mode automatic differentiation over the OpContext interface.
//
// One implementation serves both backends: on the static backend the
// gradient computation is emitted as new graph nodes (the TF-style "gradient
// as graph transformation"); on the imperative backend the same rules
// evaluate eagerly against the tape (the PyTorch-style backward pass).
#include <map>
#include <set>
#include <vector>

#include "backend/op_context.h"
#include "util/errors.h"
#include "util/logging.h"

namespace rlgraph {

std::vector<OpRef> gradients(OpContext& ctx, OpRef loss,
                             const std::vector<OpRef>& xs) {
  RLG_REQUIRE(loss.valid(), "gradients: invalid loss ref");

  // 1. Collect the sub-program reachable from `loss` (reverse sweep domain)
  //    in reverse topological order. Node ids increase with recording order
  //    in both backends, so sorting by id descending is a valid reverse
  //    topological order.
  std::set<int> reachable;
  {
    std::vector<int> stack{loss.node};
    while (!stack.empty()) {
      int id = stack.back();
      stack.pop_back();
      if (!reachable.insert(id).second) continue;
      RefInfo fwd = ctx.info(id);
      for (const OpRef& in : fwd.inputs) stack.push_back(in.node);
    }
  }

  // 2. Seed d(loss)/d(loss) = 1 and sweep backwards.
  std::map<OpRef, OpRef> grad;  // forward ref -> accumulated gradient ref
  grad[loss] = ctx.scalar(1.0f);

  const GradRegistry& rules = GradRegistry::instance();
  for (auto it = reachable.rbegin(); it != reachable.rend(); ++it) {
    int id = *it;
    RefInfo fwd = ctx.info(id);
    // Gather output gradients; skip nodes with no incoming gradient.
    std::vector<OpRef> grad_out(fwd.outputs.size(), OpRef{});
    bool any = false;
    for (size_t i = 0; i < fwd.outputs.size(); ++i) {
      auto git = grad.find(fwd.outputs[i]);
      if (git != grad.end()) {
        grad_out[i] = git->second;
        any = true;
      }
    }
    if (!any || fwd.inputs.empty()) continue;
    const GradFn* rule = rules.lookup(fwd.op);
    if (rule == nullptr) continue;  // non-differentiable boundary
    std::vector<OpRef> input_grads = (*rule)(ctx, fwd, grad_out);
    RLG_CHECK_MSG(input_grads.size() == fwd.inputs.size(),
                  "grad rule for " << fwd.op << " returned "
                                   << input_grads.size() << " grads for "
                                   << fwd.inputs.size() << " inputs");
    for (size_t i = 0; i < fwd.inputs.size(); ++i) {
      if (!input_grads[i].valid()) continue;
      OpRef target = fwd.inputs[i];
      auto git = grad.find(target);
      if (git == grad.end()) {
        grad[target] = input_grads[i];
      } else {
        git->second = ctx.add(git->second, input_grads[i]);
      }
    }
  }

  // 3. Emit per-x gradients; missing paths produce zeros of x's shape.
  std::vector<OpRef> out;
  out.reserve(xs.size());
  for (const OpRef& x : xs) {
    auto git = grad.find(x);
    if (git != grad.end()) {
      out.push_back(git->second);
    } else {
      RLG_LOG_DEBUG << "gradients: no path from loss to requested x; "
                       "emitting zeros";
      out.push_back(ctx.zeros_like(x));
    }
  }
  return out;
}

}  // namespace rlgraph
