// Gradient (vjp) rules for the differentiable op set, expressed against
// OpContext so the same rules serve the static and define-by-run backends.
#include "backend/op_context.h"
#include "util/errors.h"

namespace rlgraph {

namespace {

// Reduce a broadcast gradient back to the shape of `like`.
OpRef sum_to(OpContext& ctx, OpRef g, OpRef like) {
  Shape target = ctx.shape(like);
  if (ctx.shape(g) == target) return g;
  return ctx.apply("SumToShape", {g}, {{"target", std::move(target)}});
}

// Expand a reduced gradient back across the reduced axis so it broadcasts
// against the pre-reduction operand.
OpRef expand_reduced(OpContext& ctx, const RefInfo& fwd, OpRef g) {
  int64_t axis = attr_int(fwd.attrs, "axis", -1);
  bool keep_dims = attr_bool(fwd.attrs, "keep_dims", false);
  if (axis < 0 || keep_dims) return g;
  return ctx.expand_dims(g, axis);
}

using G = std::vector<OpRef>;
constexpr OpRef kNoGrad{};

void register_standard_grads(GradRegistry& r) {
  r.register_grad("Identity", [](OpContext&, const RefInfo&, const G& dy) {
    return G{dy[0]};
  });
  // StopGradient intentionally has no rule registered.

  r.register_grad("Add", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    return G{sum_to(ctx, dy[0], f.inputs[0]), sum_to(ctx, dy[0], f.inputs[1])};
  });
  r.register_grad("Sub", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    return G{sum_to(ctx, dy[0], f.inputs[0]),
             sum_to(ctx, ctx.neg(dy[0]), f.inputs[1])};
  });
  r.register_grad("Mul", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    return G{sum_to(ctx, ctx.mul(dy[0], f.inputs[1]), f.inputs[0]),
             sum_to(ctx, ctx.mul(dy[0], f.inputs[0]), f.inputs[1])};
  });
  r.register_grad("Div", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef a = f.inputs[0], b = f.inputs[1];
    OpRef da = sum_to(ctx, ctx.div(dy[0], b), a);
    OpRef db = sum_to(
        ctx, ctx.neg(ctx.div(ctx.mul(dy[0], a), ctx.mul(b, b))), b);
    return G{da, db};
  });
  r.register_grad("AddN", [](OpContext&, const RefInfo& f, const G& dy) {
    return G(f.inputs.size(), dy[0]);
  });

  auto minmax = [](bool is_min) {
    return [is_min](OpContext& ctx, const RefInfo& f, const G& dy) {
      OpRef a = f.inputs[0], b = f.inputs[1];
      OpRef a_gt_b = ctx.greater(a, b);
      OpRef zero = ctx.zeros_like(dy[0]);
      OpRef ga = is_min ? ctx.where(a_gt_b, zero, dy[0])
                        : ctx.where(a_gt_b, dy[0], zero);
      OpRef gb = is_min ? ctx.where(a_gt_b, dy[0], zero)
                        : ctx.where(a_gt_b, zero, dy[0]);
      return G{sum_to(ctx, ga, a), sum_to(ctx, gb, b)};
    };
  };
  r.register_grad("Minimum", minmax(true));
  r.register_grad("Maximum", minmax(false));

  r.register_grad("Neg", [](OpContext& ctx, const RefInfo&, const G& dy) {
    return G{ctx.neg(dy[0])};
  });
  r.register_grad("Exp", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    return G{ctx.mul(dy[0], f.outputs[0])};
  });
  r.register_grad("Log", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    return G{ctx.div(dy[0], f.inputs[0])};
  });
  r.register_grad("Sqrt", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    return G{ctx.mul(dy[0], ctx.div(ctx.scalar(0.5f), f.outputs[0]))};
  });
  r.register_grad("Square", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    return G{ctx.mul(dy[0], ctx.mul(ctx.scalar(2.0f), f.inputs[0]))};
  });
  r.register_grad("Abs", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef positive = ctx.greater(f.inputs[0], ctx.zeros_like(f.inputs[0]));
    return G{ctx.where(positive, dy[0], ctx.neg(dy[0]))};
  });
  r.register_grad("Relu", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef positive = ctx.greater(f.inputs[0], ctx.zeros_like(f.inputs[0]));
    return G{ctx.where(positive, dy[0], ctx.zeros_like(dy[0]))};
  });
  r.register_grad("Sigmoid", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef s = f.outputs[0];
    return G{ctx.mul(dy[0], ctx.mul(s, ctx.sub(ctx.scalar(1.0f), s)))};
  });
  r.register_grad("Tanh", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef t = f.outputs[0];
    return G{ctx.mul(dy[0], ctx.sub(ctx.scalar(1.0f), ctx.square(t)))};
  });
  r.register_grad("Softplus",
                  [](OpContext& ctx, const RefInfo& f, const G& dy) {
                    return G{ctx.mul(dy[0], ctx.sigmoid(f.inputs[0]))};
                  });
  r.register_grad("Clip", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef x = f.inputs[0];
    OpRef lo = ctx.scalar(static_cast<float>(attr_double(f.attrs, "lo")));
    OpRef hi = ctx.scalar(static_cast<float>(attr_double(f.attrs, "hi")));
    OpRef inside = ctx.apply("LogicalAnd",
                             {ctx.greater(x, lo), ctx.less(x, hi)});
    return G{ctx.where(inside, dy[0], ctx.zeros_like(dy[0]))};
  });
  r.register_grad("Where", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef zero = ctx.zeros_like(dy[0]);
    return G{kNoGrad, ctx.where(f.inputs[0], dy[0], zero),
             ctx.where(f.inputs[0], zero, dy[0])};
  });

  r.register_grad("MatMul", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef at = ctx.apply("Transpose2D", {f.inputs[0]});
    OpRef bt = ctx.apply("Transpose2D", {f.inputs[1]});
    return G{ctx.matmul(dy[0], bt), ctx.matmul(at, dy[0])};
  });
  r.register_grad("Transpose2D",
                  [](OpContext& ctx, const RefInfo&, const G& dy) {
                    return G{ctx.apply("Transpose2D", {dy[0]})};
                  });
  r.register_grad("Conv2D", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    AttrMap common{{"stride", attr_int(f.attrs, "stride")},
                   {"same_padding", attr_bool(f.attrs, "same_padding", false)}};
    AttrMap in_attrs = common;
    in_attrs["input_shape"] = ctx.shape(f.inputs[0]);
    AttrMap filter_attrs = common;
    filter_attrs["filter_shape"] = ctx.shape(f.inputs[1]);
    OpRef dx = ctx.apply("Conv2DBackpropInput", {f.inputs[1], dy[0]},
                         std::move(in_attrs));
    OpRef df = ctx.apply("Conv2DBackpropFilter", {f.inputs[0], dy[0]},
                         std::move(filter_attrs));
    return G{dx, df};
  });

  r.register_grad("ReduceSum",
                  [](OpContext& ctx, const RefInfo& f, const G& dy) {
                    OpRef g = expand_reduced(ctx, f, dy[0]);
                    return G{ctx.mul(ctx.ones_like(f.inputs[0]), g)};
                  });
  r.register_grad("ReduceMean",
                  [](OpContext& ctx, const RefInfo& f, const G& dy) {
                    OpRef g = expand_reduced(ctx, f, dy[0]);
                    OpRef count = ctx.div(ctx.apply("Size", {f.inputs[0]}),
                                          ctx.apply("Size", {f.outputs[0]}));
                    return G{ctx.div(ctx.mul(ctx.ones_like(f.inputs[0]), g),
                                     count)};
                  });
  r.register_grad("ReduceMax",
                  [](OpContext& ctx, const RefInfo& f, const G& dy) {
                    OpRef y = expand_reduced(ctx, f, f.outputs[0]);
                    OpRef g = expand_reduced(ctx, f, dy[0]);
                    OpRef mask = ctx.equal(f.inputs[0], y);
                    OpRef spread = ctx.mul(ctx.ones_like(f.inputs[0]), g);
                    return G{ctx.where(mask, spread,
                                       ctx.zeros_like(f.inputs[0]))};
                  });
  r.register_grad("SumToShape",
                  [](OpContext& ctx, const RefInfo& f, const G& dy) {
                    return G{ctx.mul(ctx.ones_like(f.inputs[0]), dy[0])};
                  });

  r.register_grad("Softmax", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    OpRef y = f.outputs[0];
    int64_t last = ctx.shape(f.inputs[0]).rank() - 1;
    OpRef inner = ctx.reduce_sum(ctx.mul(dy[0], y), last, /*keep_dims=*/true);
    return G{ctx.mul(y, ctx.sub(dy[0], inner))};
  });
  r.register_grad("LogSoftmax",
                  [](OpContext& ctx, const RefInfo& f, const G& dy) {
                    int64_t last = ctx.shape(f.inputs[0]).rank() - 1;
                    OpRef sm = ctx.softmax(f.inputs[0]);
                    OpRef s = ctx.reduce_sum(dy[0], last, /*keep_dims=*/true);
                    return G{ctx.sub(dy[0], ctx.mul(sm, s))};
                  });

  r.register_grad("SelectColumns",
                  [](OpContext& ctx, const RefInfo& f, const G& dy) {
                    Shape vs = ctx.shape(f.inputs[0]);
                    RLG_REQUIRE(vs.rank() == 2 && vs.dim(1) != kUnknownDim,
                                "SelectColumns grad needs known column count");
                    OpRef mask = ctx.one_hot(f.inputs[1], vs.dim(1));
                    return G{ctx.mul(mask, ctx.expand_dims(dy[0], 1)),
                             kNoGrad};
                  });

  r.register_grad("Concat", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    int64_t axis = attr_int(f.attrs, "axis");
    std::vector<int64_t> sizes;
    for (const OpRef& in : f.inputs) {
      int64_t d = ctx.shape(in).dim(static_cast<int>(axis));
      RLG_REQUIRE(d != kUnknownDim, "Concat grad needs known axis dims");
      sizes.push_back(d);
    }
    return ctx.split(dy[0], axis, std::move(sizes));
  });
  r.register_grad("Split", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    int64_t axis = attr_int(f.attrs, "axis");
    std::vector<OpRef> parts;
    parts.reserve(dy.size());
    for (size_t i = 0; i < dy.size(); ++i) {
      parts.push_back(dy[i].valid() ? dy[i]
                                    : ctx.zeros_like(f.outputs[i]));
    }
    return G{ctx.concat(parts, axis)};
  });

  auto reshape_like_input = [](OpContext& ctx, const RefInfo& f, const G& dy) {
    return G{ctx.apply("ReshapeLike", {dy[0], f.inputs[0]})};
  };
  r.register_grad("Reshape", reshape_like_input);
  r.register_grad("ExpandDims", reshape_like_input);
  r.register_grad("Squeeze", reshape_like_input);
  r.register_grad("ReshapeLike",
                  [](OpContext& ctx, const RefInfo& f, const G& dy) {
                    return G{ctx.apply("ReshapeLike", {dy[0], f.inputs[0]}),
                             kNoGrad};
                  });

  r.register_grad("Cast", [](OpContext& ctx, const RefInfo& f, const G& dy) {
    if (ctx.dtype(f.inputs[0]) == DType::kFloat32 &&
        attr_dtype(f.attrs, "dtype") == DType::kFloat32) {
      return G{dy[0]};
    }
    return G{kNoGrad};
  });
}

}  // namespace

GradRegistry& GradRegistry::instance() {
  static GradRegistry* registry = new GradRegistry();
  return *registry;
}

GradRegistry::GradRegistry() { register_standard_grads(*this); }

void GradRegistry::register_grad(const std::string& op, GradFn fn) {
  RLG_REQUIRE(grads_.count(op) == 0, "grad for '" << op
                                                  << "' already registered");
  grads_[op] = std::move(fn);
}

const GradFn* GradRegistry::lookup(const std::string& op) const {
  auto it = grads_.find(op);
  return it == grads_.end() ? nullptr : &it->second;
}

}  // namespace rlgraph
