#include "backend/imperative_context.h"

#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

ImperativeContext::ImperativeContext(VariableStore* store, Rng* rng,
                                     bool build_mode, int64_t probe_batch)
    : store_(store), rng_(rng), build_mode_(build_mode),
      probe_batch_(probe_batch) {
  RLG_REQUIRE(store != nullptr, "ImperativeContext requires a store");
}

std::vector<OpRef> ImperativeContext::record(TapeEntry entry) {
  int id = static_cast<int>(tape_.size());
  std::vector<OpRef> refs;
  refs.reserve(entry.outputs.size());
  for (int i = 0; i < static_cast<int>(entry.outputs.size()); ++i) {
    refs.push_back(OpRef{id, i});
  }
  tape_.push_back(std::move(entry));
  return refs;
}

Tensor ImperativeContext::fabricate(DType dtype, const Shape& shape) const {
  std::vector<int64_t> dims = shape.dims();
  for (int64_t& d : dims) {
    if (d == kUnknownDim) d = probe_batch_;
  }
  return Tensor::zeros(dtype, Shape(dims));
}

std::vector<OpRef> ImperativeContext::apply_multi(
    const std::string& op, const std::vector<OpRef>& inputs, AttrMap attrs) {
  const OpSchema& schema = OpRegistry::instance().lookup(op);
  TapeEntry entry;
  entry.op = op;
  entry.attrs = std::move(attrs);
  entry.inputs = inputs;

  std::vector<Tensor> input_values;
  input_values.reserve(inputs.size());
  for (const OpRef& r : inputs) {
    RLG_REQUIRE(r.valid(), "apply(" << op << "): invalid input ref");
    input_values.push_back(value(r));
  }

  // In build mode, stateful ops are not executed: fabricate outputs from
  // shape inference over the (concrete) input signature instead.
  if (build_mode_ && schema.stateful && op != "Variable") {
    NodeDef probe;
    probe.op = op;
    probe.attrs = entry.attrs;
    ShapeInferenceContext sic;
    sic.node = &probe;
    for (const Tensor& t : input_values) {
      sic.input_dtypes.push_back(t.dtype());
      sic.input_shapes.push_back(t.shape());
    }
    OpSignature sig = schema.shape_fn(sic);
    for (size_t i = 0; i < sig.dtypes.size(); ++i) {
      entry.outputs.push_back(fabricate(sig.dtypes[i], sig.shapes[i]));
    }
    return record(std::move(entry));
  }

  KernelContext ctx;
  NodeDef node_view;  // kernel needs a node for attrs/name
  node_view.op = op;
  node_view.name = op;
  node_view.attrs = entry.attrs;
  ctx.node = &node_view;
  ctx.inputs = std::move(input_values);
  ctx.variables = store_;
  ctx.rng = rng_;
  entry.outputs = schema.kernel(ctx);
  return record(std::move(entry));
}

OpRef ImperativeContext::constant(Tensor value) {
  TapeEntry entry;
  entry.op = "Const";
  entry.outputs = {std::move(value)};
  return record(std::move(entry))[0];
}

OpRef ImperativeContext::placeholder(const std::string& name, DType dtype,
                                     Shape shape) {
  RLG_REQUIRE(build_mode_,
              "placeholder('" << name
                              << "') outside build mode; pass real inputs via "
                                 "literal() in run mode");
  TapeEntry entry;
  entry.op = "Placeholder";
  entry.outputs = {fabricate(dtype, shape)};
  return record(std::move(entry))[0];
}

std::vector<OpRef> ImperativeContext::apply_custom(
    const std::string& display_name, CustomKernel kernel,
    const std::vector<OpRef>& inputs, std::vector<DType> out_dtypes,
    std::vector<Shape> out_shapes) {
  RLG_REQUIRE(out_dtypes.size() == out_shapes.size() && !out_dtypes.empty(),
              "apply_custom: invalid output signature");
  TapeEntry entry;
  entry.op = "CustomStateful";
  entry.inputs = inputs;
  entry.custom_kernel = kernel;
  if (build_mode_) {
    for (size_t i = 0; i < out_dtypes.size(); ++i) {
      entry.outputs.push_back(fabricate(out_dtypes[i], out_shapes[i]));
    }
  } else {
    std::vector<Tensor> input_values;
    input_values.reserve(inputs.size());
    for (const OpRef& r : inputs) input_values.push_back(value(r));
    entry.outputs = kernel(input_values);
    RLG_CHECK_MSG(entry.outputs.size() == out_dtypes.size(),
                  "custom op '" << display_name
                                << "' output arity mismatch");
  }
  return record(std::move(entry));
}

void ImperativeContext::create_variable(const std::string& scoped_name,
                                        Tensor initial) {
  store_->create(scoped_name, std::move(initial));
}

OpRef ImperativeContext::variable(const std::string& scoped_name) {
  auto it = var_reads_.find(scoped_name);
  if (it != var_reads_.end()) return it->second;
  TapeEntry entry;
  entry.op = "Variable";
  entry.attrs["var_name"] = scoped_name;
  entry.outputs = {store_->get(scoped_name)};
  OpRef ref = record(std::move(entry))[0];
  var_reads_[scoped_name] = ref;
  return ref;
}

OpRef ImperativeContext::assign(const std::string& scoped_name, OpRef value_ref) {
  Tensor v = value(value_ref);
  if (!build_mode_) store_->set(scoped_name, v.clone());
  var_reads_.erase(scoped_name);
  TapeEntry entry;
  entry.op = "Assign";
  entry.attrs["var_name"] = scoped_name;
  entry.inputs = {value_ref};
  entry.outputs = {std::move(v)};
  return record(std::move(entry))[0];
}

OpRef ImperativeContext::assign_add(const std::string& scoped_name,
                                    OpRef delta) {
  Tensor d = value(delta);
  Tensor updated = build_mode_ ? store_->get(scoped_name)
                               : kernels::add(store_->get(scoped_name), d);
  if (!build_mode_) store_->set(scoped_name, updated);
  var_reads_.erase(scoped_name);
  TapeEntry entry;
  entry.op = "AssignAdd";
  entry.attrs["var_name"] = scoped_name;
  entry.inputs = {delta};
  entry.outputs = {std::move(updated)};
  return record(std::move(entry))[0];
}

DType ImperativeContext::dtype(OpRef ref) const { return value(ref).dtype(); }

Shape ImperativeContext::shape(OpRef ref) const { return value(ref).shape(); }

RefInfo ImperativeContext::info(int node_id) const {
  RLG_REQUIRE(node_id >= 0 && node_id < static_cast<int>(tape_.size()),
              "tape id out of range");
  const TapeEntry& e = tape_[static_cast<size_t>(node_id)];
  RefInfo out;
  out.node_id = node_id;
  out.op = e.op;
  out.inputs = e.inputs;
  out.attrs = e.attrs;
  out.custom_kernel = e.custom_kernel;
  for (int i = 0; i < static_cast<int>(e.outputs.size()); ++i) {
    out.outputs.push_back(OpRef{node_id, i});
  }
  return out;
}

Tensor ImperativeContext::value(OpRef ref) const {
  RLG_REQUIRE(ref.valid() && ref.node < static_cast<int>(tape_.size()),
              "invalid tape ref");
  const TapeEntry& e = tape_[static_cast<size_t>(ref.node)];
  RLG_REQUIRE(ref.index >= 0 &&
                  ref.index < static_cast<int>(e.outputs.size()),
              "tape ref output index out of range");
  return e.outputs[static_cast<size_t>(ref.index)];
}

}  // namespace rlgraph
