// Define-by-run backend: evaluates kernels eagerly, recording a tape for
// autodiff. The PyTorch analogue.
//
// Two modes:
//  * build mode — used during the component-graph build. "Artificial
//    placeholder" tensors are fabricated from declared spaces and pushed
//    through the dataflow for shape/type inference (paper §4.2). Stateful
//    ops are NOT executed in this mode; their outputs are fabricated from
//    the declared signature so component state is untouched by the build.
//  * run mode — real execution; every op runs its kernel immediately.
#pragma once

#include "backend/op_context.h"

namespace rlgraph {

class ImperativeContext : public OpContext {
 public:
  ImperativeContext(VariableStore* store, Rng* rng, bool build_mode,
                    int64_t probe_batch = 2);

  Backend backend() const override { return Backend::kImperative; }
  bool build_mode() const { return build_mode_; }

  std::vector<OpRef> apply_multi(const std::string& op,
                                 const std::vector<OpRef>& inputs,
                                 AttrMap attrs) override;
  OpRef constant(Tensor value) override;
  OpRef placeholder(const std::string& name, DType dtype,
                    Shape shape) override;
  std::vector<OpRef> apply_custom(const std::string& display_name,
                                  CustomKernel kernel,
                                  const std::vector<OpRef>& inputs,
                                  std::vector<DType> out_dtypes,
                                  std::vector<Shape> out_shapes) override;

  void create_variable(const std::string& scoped_name,
                       Tensor initial) override;
  OpRef variable(const std::string& scoped_name) override;
  OpRef assign(const std::string& scoped_name, OpRef value) override;
  OpRef assign_add(const std::string& scoped_name, OpRef delta) override;
  VariableStore& variable_store() override { return *store_; }
  Rng& rng() override { return *rng_; }

  DType dtype(OpRef ref) const override;
  Shape shape(OpRef ref) const override;
  RefInfo info(int node_id) const override;
  Tensor value(OpRef ref) const override;

  // Inject an externally provided tensor (e.g. an execute() argument) as a
  // tape literal.
  OpRef literal(Tensor value) { return constant(std::move(value)); }

  size_t tape_size() const { return tape_.size(); }

 private:
  struct TapeEntry {
    std::string op;
    std::vector<OpRef> inputs;
    AttrMap attrs;
    std::vector<Tensor> outputs;
    CustomKernel custom_kernel;  // CustomStateful entries only
  };

  std::vector<OpRef> record(TapeEntry entry);
  Tensor fabricate(DType dtype, const Shape& shape) const;

  std::vector<TapeEntry> tape_;
  // Canonical read ref per variable (see static_context.h); invalidated on
  // assignment so later reads observe the new value.
  std::map<std::string, OpRef> var_reads_;
  VariableStore* store_;
  Rng* rng_;
  bool build_mode_;
  int64_t probe_batch_;
};

}  // namespace rlgraph
