#include "backend/op_context.h"

#include "util/errors.h"

namespace rlgraph {

OpRef OpContext::apply(const std::string& op, const std::vector<OpRef>& inputs,
                       AttrMap attrs) {
  std::vector<OpRef> out = apply_multi(op, inputs, std::move(attrs));
  RLG_CHECK_MSG(out.size() == 1,
                "apply() on multi-output op " << op << "; use apply_multi");
  return out[0];
}

void OpContext::push_scope(const std::string& scope) {
  scope_stack_.push_back(scope);
}

void OpContext::pop_scope() {
  RLG_CHECK_MSG(!scope_stack_.empty(), "pop_scope on empty scope stack");
  scope_stack_.pop_back();
}

std::string OpContext::current_scope() const {
  std::string out;
  for (const std::string& s : scope_stack_) {
    if (!out.empty()) out += "/";
    out += s;
  }
  return out;
}

}  // namespace rlgraph
