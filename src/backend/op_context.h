// OpContext: the abstraction graph functions are written against.
//
// In the paper, graph functions are "the only places in the code where
// backend dependent objects are used". In this C++ reproduction we go one
// step further (the §4.2 "single-stream functions" vision): graph functions
// are written once against OpContext and run unchanged on both backends.
//
//  * StaticGraphContext (TensorFlow analogue) records ops into a GraphDef;
//    results are symbolic and evaluated later by a Session.
//  * ImperativeContext (PyTorch analogue) evaluates kernels eagerly onto a
//    tape; results are concrete tensors.
//
// Backend-specific graph-function overrides remain possible at the component
// level (components may branch on ctx.backend()).
#pragma once

#include <string>
#include <vector>

#include "graph/node.h"
#include "graph/op_schema.h"

namespace rlgraph {

enum class Backend { kStatic, kImperative };

// A handle to one output of one recorded operation. For the static backend
// this is literally a GraphDef endpoint; for the imperative backend it names
// a tape entry output.
struct OpRef {
  int node = -1;
  int index = 0;
  bool valid() const { return node >= 0; }
  bool operator==(const OpRef& o) const {
    return node == o.node && index == o.index;
  }
  bool operator<(const OpRef& o) const {
    return node != o.node ? node < o.node : index < o.index;
  }
};

// Producer metadata for an OpRef; autodiff traverses the recorded program
// through this interface, which is what makes one reverse-mode implementation
// serve both backends.
struct RefInfo {
  int node_id = -1;
  std::string op;
  std::vector<OpRef> inputs;
  AttrMap attrs;
  std::vector<OpRef> outputs;
  // Non-null for component-stateful ops ("CustomStateful"); lets the
  // fast-path lowering rebuild executable plan steps from a recording.
  CustomKernel custom_kernel;
};

class OpContext {
 public:
  virtual ~OpContext() = default;

  virtual Backend backend() const = 0;
  bool is_static() const { return backend() == Backend::kStatic; }

  // --- core recording -------------------------------------------------------
  virtual std::vector<OpRef> apply_multi(const std::string& op,
                                         const std::vector<OpRef>& inputs,
                                         AttrMap attrs = {}) = 0;
  OpRef apply(const std::string& op, const std::vector<OpRef>& inputs,
              AttrMap attrs = {});

  virtual OpRef constant(Tensor value) = 0;
  // Named graph input. Static: creates a Placeholder node. Imperative build:
  // fabricates an "artificial placeholder" tensor of the given signature
  // (unknown dims -> a probe batch size), exactly the paper's PT build trick.
  virtual OpRef placeholder(const std::string& name, DType dtype,
                            Shape shape) = 0;

  // Component-registered stateful op with an explicit output signature.
  virtual std::vector<OpRef> apply_custom(const std::string& display_name,
                                          CustomKernel kernel,
                                          const std::vector<OpRef>& inputs,
                                          std::vector<DType> out_dtypes,
                                          std::vector<Shape> out_shapes) = 0;

  // --- variables --------------------------------------------------------------
  // Creates the variable in the shared store (must not already exist).
  virtual void create_variable(const std::string& scoped_name,
                               Tensor initial) = 0;
  // Read the current value as a ref.
  virtual OpRef variable(const std::string& scoped_name) = 0;
  // Assignment ops; returned ref carries the assigned value and, in static
  // mode, the side effect when executed.
  virtual OpRef assign(const std::string& scoped_name, OpRef value) = 0;
  virtual OpRef assign_add(const std::string& scoped_name, OpRef delta) = 0;
  virtual VariableStore& variable_store() = 0;
  // Deterministic per-executor RNG (weight init, build-time sampling).
  virtual Rng& rng() = 0;

  // --- introspection -----------------------------------------------------------
  virtual DType dtype(OpRef ref) const = 0;
  virtual Shape shape(OpRef ref) const = 0;
  virtual RefInfo info(int node_id) const = 0;
  // Concrete value; only valid on the imperative backend.
  virtual Tensor value(OpRef ref) const = 0;

  // --- scoping / devices --------------------------------------------------------
  // Scope and device of subsequently recorded ops; managed per component by
  // the graph builder ("RLgraph explicitly manages these properties per
  // component").
  void push_scope(const std::string& scope);
  void pop_scope();
  std::string current_scope() const;
  void set_device(std::string device) { device_ = std::move(device); }
  const std::string& device() const { return device_; }

  // --- convenience op wrappers (shared by all graph functions) -------------------
  OpRef add(OpRef a, OpRef b) { return apply("Add", {a, b}); }
  OpRef sub(OpRef a, OpRef b) { return apply("Sub", {a, b}); }
  OpRef mul(OpRef a, OpRef b) { return apply("Mul", {a, b}); }
  OpRef div(OpRef a, OpRef b) { return apply("Div", {a, b}); }
  OpRef minimum(OpRef a, OpRef b) { return apply("Minimum", {a, b}); }
  OpRef maximum(OpRef a, OpRef b) { return apply("Maximum", {a, b}); }
  OpRef neg(OpRef a) { return apply("Neg", {a}); }
  OpRef exp(OpRef a) { return apply("Exp", {a}); }
  OpRef log(OpRef a) { return apply("Log", {a}); }
  OpRef sqrt(OpRef a) { return apply("Sqrt", {a}); }
  OpRef square(OpRef a) { return apply("Square", {a}); }
  OpRef abs(OpRef a) { return apply("Abs", {a}); }
  OpRef relu(OpRef a) { return apply("Relu", {a}); }
  OpRef sigmoid(OpRef a) { return apply("Sigmoid", {a}); }
  OpRef tanh(OpRef a) { return apply("Tanh", {a}); }
  OpRef softplus(OpRef a) { return apply("Softplus", {a}); }
  OpRef identity(OpRef a) { return apply("Identity", {a}); }
  OpRef stop_gradient(OpRef a) { return apply("StopGradient", {a}); }
  OpRef matmul(OpRef a, OpRef b) { return apply("MatMul", {a, b}); }
  OpRef equal(OpRef a, OpRef b) { return apply("Equal", {a, b}); }
  OpRef greater(OpRef a, OpRef b) { return apply("Greater", {a, b}); }
  OpRef less(OpRef a, OpRef b) { return apply("Less", {a, b}); }
  OpRef where(OpRef cond, OpRef a, OpRef b) {
    return apply("Where", {cond, a, b});
  }
  OpRef softmax(OpRef a) { return apply("Softmax", {a}); }
  OpRef log_softmax(OpRef a) { return apply("LogSoftmax", {a}); }
  OpRef argmax(OpRef a) { return apply("ArgMax", {a}); }
  OpRef one_hot(OpRef idx, int64_t depth) {
    return apply("OneHot", {idx}, {{"depth", depth}});
  }
  OpRef select_columns(OpRef values, OpRef idx) {
    return apply("SelectColumns", {values, idx});
  }
  OpRef reduce_sum(OpRef a, int64_t axis = -1, bool keep_dims = false) {
    return apply("ReduceSum", {a}, {{"axis", axis}, {"keep_dims", keep_dims}});
  }
  OpRef reduce_mean(OpRef a, int64_t axis = -1, bool keep_dims = false) {
    return apply("ReduceMean", {a},
                 {{"axis", axis}, {"keep_dims", keep_dims}});
  }
  OpRef reduce_max(OpRef a, int64_t axis = -1, bool keep_dims = false) {
    return apply("ReduceMax", {a}, {{"axis", axis}, {"keep_dims", keep_dims}});
  }
  OpRef reshape(OpRef a, Shape target) {
    return apply("Reshape", {a}, {{"shape", std::move(target)}});
  }
  OpRef expand_dims(OpRef a, int64_t axis) {
    return apply("ExpandDims", {a}, {{"axis", axis}});
  }
  OpRef squeeze(OpRef a, int64_t axis) {
    return apply("Squeeze", {a}, {{"axis", axis}});
  }
  OpRef concat(const std::vector<OpRef>& parts, int64_t axis) {
    return apply("Concat", parts, {{"axis", axis}});
  }
  std::vector<OpRef> split(OpRef a, int64_t axis, std::vector<int64_t> sizes) {
    return apply_multi("Split", {a},
                       {{"axis", axis}, {"sizes", std::move(sizes)}});
  }
  OpRef cast(OpRef a, DType dtype) {
    return apply("Cast", {a}, {{"dtype", dtype}});
  }
  OpRef clip(OpRef a, double lo, double hi) {
    return apply("Clip", {a}, {{"lo", lo}, {"hi", hi}});
  }
  OpRef group(const std::vector<OpRef>& deps) { return apply("Group", deps); }
  OpRef scalar(float v) { return constant(Tensor::scalar(v)); }
  // zeros/ones with the same runtime shape as `like` (built from ops so it
  // works symbolically).
  OpRef zeros_like(OpRef like) { return mul(like, scalar(0.0f)); }
  OpRef ones_like(OpRef like) { return add(zeros_like(like), scalar(1.0f)); }

 private:
  std::vector<std::string> scope_stack_;
  std::string device_;
};

// Reverse-mode autodiff over the recorded program: d(loss)/d(xs).
// Works on both backends through the OpContext interface. Missing gradient
// paths yield zeros_like(x).
std::vector<OpRef> gradients(OpContext& ctx, OpRef loss,
                             const std::vector<OpRef>& xs);

// Gradient (vjp) rule registry, populated in grad_rules.cc.
using GradFn = std::function<std::vector<OpRef>(
    OpContext& ctx, const RefInfo& fwd, const std::vector<OpRef>& grad_out)>;
class GradRegistry {
 public:
  static GradRegistry& instance();
  void register_grad(const std::string& op, GradFn fn);
  const GradFn* lookup(const std::string& op) const;

 private:
  GradRegistry();
  std::map<std::string, GradFn> grads_;
};

}  // namespace rlgraph
