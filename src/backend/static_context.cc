#include "backend/static_context.h"

#include "util/errors.h"

namespace rlgraph {

StaticGraphContext::StaticGraphContext(VariableStore* store, Rng* rng)
    : graph_(std::make_shared<GraphDef>()), store_(store), rng_(rng) {
  RLG_REQUIRE(store != nullptr && rng != nullptr,
              "StaticGraphContext requires a store and rng");
}

OpRef StaticGraphContext::emit(NodeDef node) {
  std::string scope = current_scope();
  if (!scope.empty()) node.name = scope + "/" + node.name;
  if (node.device.empty()) node.device = device();
  int id = graph_->add_node(std::move(node));
  return OpRef{id, 0};
}

std::vector<OpRef> StaticGraphContext::apply_multi(
    const std::string& op, const std::vector<OpRef>& inputs, AttrMap attrs) {
  const OpSchema& schema = OpRegistry::instance().lookup(op);
  NodeDef node;
  node.op = op;
  node.name = op;
  node.attrs = std::move(attrs);
  node.inputs.reserve(inputs.size());
  ShapeInferenceContext sic;
  sic.node = &node;
  for (const OpRef& r : inputs) {
    RLG_REQUIRE(r.valid(), "apply(" << op << "): invalid input ref");
    node.inputs.push_back(Endpoint{r.node, r.index});
    sic.input_dtypes.push_back(graph_->dtype_of({r.node, r.index}));
    sic.input_shapes.push_back(graph_->shape_of({r.node, r.index}));
  }
  OpSignature sig = schema.shape_fn(sic);
  node.out_dtypes = std::move(sig.dtypes);
  node.out_shapes = std::move(sig.shapes);
  node.stateful = schema.stateful;
  OpRef first = emit(std::move(node));
  std::vector<OpRef> out;
  int n = graph_->node(first.node).num_outputs();
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(OpRef{first.node, i});
  return out;
}

OpRef StaticGraphContext::constant(Tensor value) {
  NodeDef node;
  node.op = "Const";
  node.name = "Const";
  node.out_dtypes = {value.dtype()};
  node.out_shapes = {value.shape()};
  node.attrs["value"] = std::move(value);
  return emit(std::move(node));
}

OpRef StaticGraphContext::placeholder(const std::string& name, DType dtype,
                                      Shape shape) {
  NodeDef node;
  node.op = "Placeholder";
  node.name = name.empty() ? "Placeholder" : name;
  node.attrs["dtype"] = dtype;
  node.attrs["shape"] = shape;
  node.out_dtypes = {dtype};
  node.out_shapes = {std::move(shape)};
  return emit(std::move(node));
}

std::vector<OpRef> StaticGraphContext::apply_custom(
    const std::string& display_name, CustomKernel kernel,
    const std::vector<OpRef>& inputs, std::vector<DType> out_dtypes,
    std::vector<Shape> out_shapes) {
  RLG_REQUIRE(out_dtypes.size() == out_shapes.size() && !out_dtypes.empty(),
              "apply_custom: invalid output signature");
  NodeDef node;
  node.op = "CustomStateful";
  node.name = display_name;
  node.custom_kernel = std::move(kernel);
  node.stateful = true;
  node.out_dtypes = std::move(out_dtypes);
  node.out_shapes = std::move(out_shapes);
  for (const OpRef& r : inputs) node.inputs.push_back({r.node, r.index});
  OpRef first = emit(std::move(node));
  std::vector<OpRef> out;
  int n = graph_->node(first.node).num_outputs();
  for (int i = 0; i < n; ++i) out.push_back(OpRef{first.node, i});
  return out;
}

void StaticGraphContext::create_variable(const std::string& scoped_name,
                                         Tensor initial) {
  store_->create(scoped_name, std::move(initial));
}

OpRef StaticGraphContext::variable(const std::string& scoped_name) {
  auto it = var_reads_.find(scoped_name);
  if (it != var_reads_.end()) return it->second;
  const Tensor& current = store_->get(scoped_name);
  NodeDef node;
  node.op = "Variable";
  node.name = scoped_name + "/read";
  node.attrs["var_name"] = scoped_name;
  node.attrs["dtype"] = current.dtype();
  node.attrs["shape"] = current.shape();
  node.out_dtypes = {current.dtype()};
  node.out_shapes = {current.shape()};
  node.stateful = true;
  OpRef ref = emit(std::move(node));
  var_reads_[scoped_name] = ref;
  return ref;
}

OpRef StaticGraphContext::assign(const std::string& scoped_name, OpRef value) {
  const Tensor& current = store_->get(scoped_name);
  NodeDef node;
  node.op = "Assign";
  node.name = scoped_name + "/assign";
  node.attrs["var_name"] = scoped_name;
  node.inputs = {{value.node, value.index}};
  node.out_dtypes = {current.dtype()};
  node.out_shapes = {graph_->shape_of({value.node, value.index})};
  node.stateful = true;
  return emit(std::move(node));
}

OpRef StaticGraphContext::assign_add(const std::string& scoped_name,
                                     OpRef delta) {
  const Tensor& current = store_->get(scoped_name);
  NodeDef node;
  node.op = "AssignAdd";
  node.name = scoped_name + "/assign_add";
  node.attrs["var_name"] = scoped_name;
  node.inputs = {{delta.node, delta.index}};
  node.out_dtypes = {current.dtype()};
  node.out_shapes = {current.shape()};
  node.stateful = true;
  return emit(std::move(node));
}

DType StaticGraphContext::dtype(OpRef ref) const {
  return graph_->dtype_of({ref.node, ref.index});
}

Shape StaticGraphContext::shape(OpRef ref) const {
  return graph_->shape_of({ref.node, ref.index});
}

RefInfo StaticGraphContext::info(int node_id) const {
  const NodeDef& n = graph_->node(node_id);
  RefInfo out;
  out.node_id = node_id;
  out.op = n.op;
  out.attrs = n.attrs;
  out.custom_kernel = n.custom_kernel;
  for (const Endpoint& e : n.inputs) out.inputs.push_back({e.node, e.index});
  for (int i = 0; i < n.num_outputs(); ++i) {
    out.outputs.push_back(OpRef{node_id, i});
  }
  return out;
}

Tensor StaticGraphContext::value(OpRef) const {
  throw ValueError(
      "value() is not available on the static backend; run the op through a "
      "session instead");
}

}  // namespace rlgraph
