// Static-graph backend: records operations into a GraphDef with shape
// inference, scoping and device assignment. The TensorFlow analogue.
#pragma once

#include <memory>

#include "backend/op_context.h"
#include "graph/graph_def.h"

namespace rlgraph {

class StaticGraphContext : public OpContext {
 public:
  // The context borrows the store and rng (owned by the graph executor) and
  // owns the graph under construction.
  StaticGraphContext(VariableStore* store, Rng* rng);

  Backend backend() const override { return Backend::kStatic; }

  std::vector<OpRef> apply_multi(const std::string& op,
                                 const std::vector<OpRef>& inputs,
                                 AttrMap attrs) override;
  OpRef constant(Tensor value) override;
  OpRef placeholder(const std::string& name, DType dtype,
                    Shape shape) override;
  std::vector<OpRef> apply_custom(const std::string& display_name,
                                  CustomKernel kernel,
                                  const std::vector<OpRef>& inputs,
                                  std::vector<DType> out_dtypes,
                                  std::vector<Shape> out_shapes) override;

  void create_variable(const std::string& scoped_name,
                       Tensor initial) override;
  OpRef variable(const std::string& scoped_name) override;
  OpRef assign(const std::string& scoped_name, OpRef value) override;
  OpRef assign_add(const std::string& scoped_name, OpRef delta) override;
  VariableStore& variable_store() override { return *store_; }
  Rng& rng() override { return *rng_; }

  DType dtype(OpRef ref) const override;
  Shape shape(OpRef ref) const override;
  RefInfo info(int node_id) const override;
  Tensor value(OpRef ref) const override;

  // Graph access for the executor.
  std::shared_ptr<GraphDef> graph() { return graph_; }
  const GraphDef& graph_def() const { return *graph_; }

 private:
  OpRef emit(NodeDef node);

  std::shared_ptr<GraphDef> graph_;
  VariableStore* store_;
  Rng* rng_;
  // One canonical read node per variable: repeated variable() calls return
  // the same ref, so gradient paths from losses to optimizer-held variable
  // refs connect (autodiff matches refs by identity).
  std::map<std::string, OpRef> var_reads_;
};

}  // namespace rlgraph
