#include "baselines/dm_impala_like.h"
