// DeepMind-reference IMPALA baseline configuration (paper §5.1, Fig. 9).
//
// Same pipeline as the RLgraph IMPALA executor, with the reference
// implementation's inefficiencies: redundant per-step variable assignments
// in the actor (removing them "yielded 20% improvement in a single-worker
// setting") and non-batched per-tensor work on unstaged batches in the
// learner.
#pragma once

#include "execution/impala_pipeline.h"

namespace rlgraph {
namespace baselines {

inline ImpalaConfig dm_impala_like(ImpalaConfig config) {
  config.redundant_assigns = true;
  config.unbatched_unstage = true;
  return config;
}

}  // namespace baselines
}  // namespace rlgraph
