#include "baselines/hand_tuned_actor.h"

#include <cmath>

#include "util/errors.h"

namespace rlgraph {

namespace {
Tensor xavier(Rng& rng, const Shape& shape, int64_t fan_in, int64_t fan_out) {
  double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return kernels::random_uniform(shape, -limit, limit, rng);
}
}  // namespace

HandTunedActor::HandTunedActor(const Json& network_config,
                               SpacePtr state_space, int64_t num_actions,
                               uint64_t seed) {
  Rng rng(seed);
  RLG_REQUIRE(state_space != nullptr && state_space->is_box(),
              "HandTunedActor requires a box state space");
  Shape current = static_cast<const BoxSpace&>(*state_space).value_shape();

  for (const Json& spec : network_config.as_array()) {
    Layer layer;
    const std::string type = spec.get_string("type", "dense");
    layer.relu = spec.get_string("activation", "none") == "relu";
    if (type == "conv2d") {
      layer.kind = Layer::Kind::kConv;
      int64_t k = spec.get_int("kernel", 3);
      int64_t filters = spec.get_int("filters", 16);
      layer.stride = static_cast<int>(spec.get_int("stride", 1));
      int64_t cin = current.dim(2);
      layer.weights = xavier(rng, Shape{k, k, cin, filters}, k * k * cin,
                             k * k * filters);
      layer.bias = Tensor::zeros(DType::kFloat32, Shape{filters});
      int64_t oh = (current.dim(0) - k) / layer.stride + 1;
      int64_t ow = (current.dim(1) - k) / layer.stride + 1;
      current = Shape{oh, ow, filters};
    } else {
      layer.kind = Layer::Kind::kDense;
      int64_t units = spec.get_int("units", 64);
      int64_t fan_in = current.num_elements();
      layer.weights = xavier(rng, Shape{fan_in, units}, fan_in, units);
      layer.bias = Tensor::zeros(DType::kFloat32, Shape{units});
      current = Shape{units};
    }
    layers_.push_back(std::move(layer));
  }
  int64_t features = current.num_elements();
  v_weights_ = xavier(rng, Shape{features, 1}, features, 1);
  v_bias_ = Tensor::zeros(DType::kFloat32, Shape{1});
  a_weights_ = xavier(rng, Shape{features, num_actions}, features,
                      num_actions);
  a_bias_ = Tensor::zeros(DType::kFloat32, Shape{num_actions});
}

Tensor HandTunedActor::q_values(const Tensor& observations) const {
  Tensor x = observations;
  for (const Layer& layer : layers_) {
    if (layer.kind == Layer::Kind::kConv) {
      x = kernels::conv2d(x, layer.weights, layer.stride,
                          /*same_padding=*/false);
      x = kernels::add(x, layer.bias);
    } else {
      if (x.shape().rank() > 2) {
        int64_t batch = x.shape().dim(0);
        x = x.reshaped(Shape{batch, x.num_elements() / batch});
      }
      x = kernels::add(kernels::matmul(x, layer.weights), layer.bias);
    }
    if (layer.relu) x = kernels::relu(x);
  }
  if (x.shape().rank() > 2) {
    int64_t batch = x.shape().dim(0);
    x = x.reshaped(Shape{batch, x.num_elements() / batch});
  }
  Tensor v = kernels::add(kernels::matmul(x, v_weights_), v_bias_);
  Tensor a = kernels::add(kernels::matmul(x, a_weights_), a_bias_);
  Tensor mean_a = kernels::reduce_mean(a, 1, /*keep_dims=*/true);
  return kernels::add(v, kernels::sub(a, mean_a));
}

Tensor HandTunedActor::act(const Tensor& observations) const {
  return kernels::argmax(q_values(observations));
}

}  // namespace rlgraph
