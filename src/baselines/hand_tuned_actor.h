// Hand-tuned imperative actor (the "PT hand-tuned" baseline of Fig. 5b): a
// bare-bones define-by-run forward pass written directly against the tensor
// kernels — no components, no op dispatch, no framework bookkeeping. The gap
// between this and the define-by-run RLgraph actor is the component-
// traversal overhead the paper measures.
#pragma once

#include <vector>

#include "spaces/space.h"
#include "tensor/kernels.h"
#include "util/json.h"
#include "util/random.h"

namespace rlgraph {

class HandTunedActor {
 public:
  // Same JSON layer-list format as NeuralNetwork (conv2d / dense),
  // terminated by an implicit dueling head with `num_actions` outputs.
  HandTunedActor(const Json& network_config, SpacePtr state_space,
                 int64_t num_actions, uint64_t seed = 1234);

  // Greedy actions for a batch of observations.
  Tensor act(const Tensor& observations) const;
  // Q-values (for equivalence testing against the framework policy).
  Tensor q_values(const Tensor& observations) const;

 private:
  struct Layer {
    enum class Kind { kDense, kConv } kind;
    Tensor weights;  // dense: [in, out]; conv: [k, k, cin, cout]
    Tensor bias;
    int stride = 1;
    bool relu = false;
  };

  std::vector<Layer> layers_;
  Tensor v_weights_, v_bias_;  // dueling value head
  Tensor a_weights_, a_bias_;  // dueling advantage head
};

}  // namespace rlgraph
