#include "baselines/rllib_like.h"
