// RLlib-like Ape-X baseline configuration (paper §5.1).
//
// Same algorithm, hyper-parameters and topology as the RLgraph executor, but
// with the execution patterns the paper attributes RLlib's lower throughput
// to: per-environment (unbatched) act calls in the policy evaluator and
// incremental, multi-call post-processing of sample batches. The gap
// emerges from the extra executor round-trips, not from an artificial
// slowdown.
#pragma once

#include "execution/apex_executor.h"

namespace rlgraph {
namespace baselines {

// Flip an RLgraph Ape-X config into the RLlib-like variant.
inline ApexConfig rllib_like(ApexConfig config) {
  config.act_per_env = true;
  config.incremental_post_processing = true;
  return config;
}

}  // namespace baselines
}  // namespace rlgraph
