#include "components/exploration.h"

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

EpsilonGreedy::EpsilonGreedy(std::string name, int64_t num_actions,
                             double eps_start, double eps_end,
                             int64_t decay_steps)
    : Component(std::move(name)), num_actions_(num_actions),
      eps_start_(eps_start), eps_end_(eps_end), decay_steps_(decay_steps) {
  RLG_REQUIRE(num_actions > 0, "EpsilonGreedy requires num_actions > 0");
  RLG_REQUIRE(decay_steps > 0, "decay_steps must be positive");

  // get_action(q_values [B, A]) -> actions [B]; increments the step counter
  // once per executed call.
  register_api(
      "get_action",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "get_action expects (q_values)");
        return graph_fn(
            ctx, "epsilon_greedy",
            [this](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef q = in[0];
              OpRef step =
                  ops.assign_add(scope() + "/step", ops.scalar(1.0f));
              OpRef frac = ops.div(
                  step, ops.scalar(static_cast<float>(decay_steps_)));
              OpRef eps = ops.maximum(
                  ops.scalar(static_cast<float>(eps_end_)),
                  ops.sub(ops.scalar(static_cast<float>(eps_start_)),
                          ops.mul(ops.scalar(static_cast<float>(
                                      eps_start_ - eps_end_)),
                                  frac)));
              // Per-row uniform draw with the batch's runtime shape.
              OpRef row_stat = ops.reduce_max(q, 1);  // [B]
              OpRef u = ops.apply("RandomUniformLike", {row_stat});
              OpRef explore = ops.less(u, eps);  // [B] bool
              OpRef random_action = ops.apply("RandomIntLike", {row_stat},
                                              {{"n", num_actions_}});
              OpRef greedy = ops.argmax(q);
              return std::vector<OpRef>{
                  ops.where(explore, random_action, greedy)};
            },
            inputs, 1, {IntBox(num_actions_)->with_batch_rank()});
      });
}

void EpsilonGreedy::create_variables(BuildContext& ctx) {
  create_var(ctx, "step", Tensor::scalar(0.0f));
}

}  // namespace rlgraph
