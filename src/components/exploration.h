// Exploration components. EpsilonGreedy keeps its decay step counter as a
// graph variable, so exploration state lives inside the computation graph
// like every other heuristic (all pre/post-processing and learning
// heuristics are first-class components, paper §1 point 4).
#pragma once

#include "core/component.h"

namespace rlgraph {

class EpsilonGreedy : public Component {
 public:
  // Epsilon decays linearly from `eps_start` to `eps_end` over
  // `decay_steps` act calls.
  EpsilonGreedy(std::string name, int64_t num_actions, double eps_start = 1.0,
                double eps_end = 0.05, int64_t decay_steps = 10000);

  void create_variables(BuildContext& ctx) override;

 private:
  int64_t num_actions_;
  double eps_start_;
  double eps_end_;
  int64_t decay_steps_;
};

}  // namespace rlgraph
