#include "components/layers.h"

#include <cmath>

#include "core/build_context.h"
#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

Activation activation_from_string(const std::string& name) {
  if (name.empty() || name == "none" || name == "linear") {
    return Activation::kNone;
  }
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "softmax") return Activation::kSoftmax;
  throw ConfigError("unknown activation: " + name);
}

OpRef apply_activation(OpContext& ops, Activation act, OpRef x) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return ops.relu(x);
    case Activation::kTanh: return ops.tanh(x);
    case Activation::kSigmoid: return ops.sigmoid(x);
    case Activation::kSoftmax: return ops.softmax(x);
  }
  return x;
}

namespace {

// Glorot/Xavier uniform initialization.
Tensor xavier(Rng& rng, const Shape& shape, int64_t fan_in, int64_t fan_out) {
  double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return kernels::random_uniform(shape, -limit, limit, rng);
}

// Layers read variables from inside graph-fn bodies, where only the
// OpContext is available; this resolves the scoped name directly.
OpRef read_var_for(OpContext& ops, const Component& c,
                   const std::string& name) {
  return ops.variable(c.scope() + "/" + name);
}

const BoxSpace& input_box(const Component& c, const std::string& api) {
  const std::vector<SpacePtr>& spaces = c.api_input_spaces(api);
  RLG_REQUIRE(!spaces.empty() && spaces[0] != nullptr && spaces[0]->is_box(),
              "layer '" << c.scope() << "' requires a box input space");
  return static_cast<const BoxSpace&>(*spaces[0]);
}

}  // namespace

// --- DenseLayer -----------------------------------------------------------------

DenseLayer::DenseLayer(std::string name, int64_t units, Activation activation,
                       bool use_bias)
    : Component(std::move(name)), units_(units), activation_(activation),
      use_bias_(use_bias) {
  RLG_REQUIRE(units > 0, "DenseLayer units must be positive");
  require_input_spaces({"apply"});

  register_api("apply",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 RLG_REQUIRE(inputs.size() == 1, "dense apply expects (x)");
                 return graph_fn(
                     ctx, "apply",
                     [this](OpContext& ops, const std::vector<OpRef>& in) {
                       OpRef w = read_var_for(ops, *this, "weights");
                       OpRef h = ops.matmul(in[0], w);
                       if (use_bias_) {
                         h = ops.add(h, read_var_for(ops, *this, "bias"));
                       }
                       return std::vector<OpRef>{
                           apply_activation(ops, activation_, h)};
                     },
                     inputs);
               });
}

void DenseLayer::create_variables(BuildContext& ctx) {
  const BoxSpace& box = input_box(*this, "apply");
  RLG_REQUIRE(box.value_shape().rank() == 1,
              "DenseLayer expects rank-1 value inputs, got "
                  << box.value_shape().to_string()
                  << " — flatten spatial inputs first");
  int64_t fan_in = box.value_shape().dim(0);
  create_var(ctx, "weights",
             xavier(ctx.ops().rng(), Shape{fan_in, units_}, fan_in, units_));
  if (use_bias_) {
    create_var(ctx, "bias", Tensor::zeros(DType::kFloat32, Shape{units_}));
  }
}

// --- Conv2DLayer -----------------------------------------------------------------

Conv2DLayer::Conv2DLayer(std::string name, int64_t filters,
                         int64_t kernel_size, int64_t stride,
                         bool same_padding, Activation activation)
    : Component(std::move(name)), filters_(filters), kernel_size_(kernel_size),
      stride_(stride), same_padding_(same_padding), activation_(activation) {
  RLG_REQUIRE(filters > 0 && kernel_size > 0 && stride > 0,
              "invalid Conv2D configuration");
  require_input_spaces({"apply"});

  register_api(
      "apply", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "conv apply expects (x)");
        return graph_fn(
            ctx, "apply",
            [this](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef f = read_var_for(ops, *this, "filters");
              OpRef h = ops.apply("Conv2D", {in[0], f},
                                  {{"stride", stride_},
                                   {"same_padding", same_padding_}});
              h = ops.add(h, read_var_for(ops, *this, "bias"));
              return std::vector<OpRef>{apply_activation(ops, activation_, h)};
            },
            inputs);
      });
}

void Conv2DLayer::create_variables(BuildContext& ctx) {
  const BoxSpace& box = input_box(*this, "apply");
  RLG_REQUIRE(box.value_shape().rank() == 3,
              "Conv2DLayer expects [H, W, C] value inputs, got "
                  << box.value_shape().to_string());
  int64_t cin = box.value_shape().dim(2);
  int64_t fan_in = kernel_size_ * kernel_size_ * cin;
  int64_t fan_out = kernel_size_ * kernel_size_ * filters_;
  create_var(ctx, "filters",
             xavier(ctx.ops().rng(),
                    Shape{kernel_size_, kernel_size_, cin, filters_}, fan_in,
                    fan_out));
  create_var(ctx, "bias", Tensor::zeros(DType::kFloat32, Shape{filters_}));
}

// --- LSTMLayer --------------------------------------------------------------------

LSTMLayer::LSTMLayer(std::string name, int64_t units)
    : Component(std::move(name)), units_(units) {
  RLG_REQUIRE(units > 0, "LSTMLayer units must be positive");
  require_input_spaces({"apply"});

  register_api(
      "apply", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "lstm apply expects (x)");
        return graph_fn(
            ctx, "apply",
            [this](OpContext& ops, const std::vector<OpRef>& in) {
              // x: [B, T, F] with T statically known.
              std::vector<int64_t> sizes(static_cast<size_t>(time_steps_), 1);
              std::vector<OpRef> steps = ops.split(in[0], 1, sizes);
              // Zero initial state: [B, units] built from the first step.
              OpRef x0 = ops.squeeze(steps[0], 1);
              OpRef zeros_fxu = ops.constant(
                  Tensor::zeros(DType::kFloat32, Shape{features_, units_}));
              OpRef h = ops.matmul(x0, zeros_fxu);
              OpRef c = h;
              OpRef w = read_var_for(ops, *this, "weights");
              OpRef b = read_var_for(ops, *this, "bias");
              std::vector<OpRef> outputs;
              outputs.reserve(static_cast<size_t>(time_steps_));
              for (int64_t t = 0; t < time_steps_; ++t) {
                OpRef xt = ops.squeeze(steps[static_cast<size_t>(t)], 1);
                OpRef gates =
                    ops.add(ops.matmul(ops.concat({xt, h}, 1), w), b);
                std::vector<OpRef> parts =
                    ops.split(gates, 1, {units_, units_, units_, units_});
                OpRef i = ops.sigmoid(parts[0]);
                OpRef f = ops.sigmoid(parts[1]);
                OpRef g = ops.tanh(parts[2]);
                OpRef o = ops.sigmoid(parts[3]);
                c = ops.add(ops.mul(f, c), ops.mul(i, g));
                h = ops.mul(o, ops.tanh(c));
                outputs.push_back(ops.expand_dims(h, 1));
              }
              return std::vector<OpRef>{ops.concat(outputs, 1)};
            },
            inputs);
      });
}

void LSTMLayer::create_variables(BuildContext& ctx) {
  const BoxSpace& box = input_box(*this, "apply");
  RLG_REQUIRE(box.value_shape().rank() == 2,
              "LSTMLayer expects [T, F] value inputs (time in the value "
              "shape), got " << box.value_shape().to_string());
  time_steps_ = box.value_shape().dim(0);
  features_ = box.value_shape().dim(1);
  int64_t fan_in = features_ + units_;
  create_var(ctx, "weights",
             xavier(ctx.ops().rng(), Shape{fan_in, 4 * units_}, fan_in,
                    4 * units_));
  // Forget-gate bias initialized to 1 (standard practice).
  Tensor bias = Tensor::zeros(DType::kFloat32, Shape{4 * units_});
  float* pb = bias.mutable_data<float>();
  for (int64_t i = units_; i < 2 * units_; ++i) pb[i] = 1.0f;
  create_var(ctx, "bias", std::move(bias));
}

}  // namespace rlgraph
