// Neural-network layer components: Dense, Conv2D, LSTM.
//
// Each layer is a Component whose variables are created behind the input-
// completeness barrier from the input space recorded at its "apply" API —
// users never declare inner dimensions manually (paper §3.3: "the method is
// called automatically and receives types and shapes of variables as input
// arguments").
#pragma once

#include <string>

#include "core/component.h"

namespace rlgraph {

enum class Activation { kNone, kRelu, kTanh, kSigmoid, kSoftmax };
Activation activation_from_string(const std::string& name);
OpRef apply_activation(OpContext& ops, Activation act, OpRef x);

class DenseLayer : public Component {
 public:
  DenseLayer(std::string name, int64_t units,
             Activation activation = Activation::kNone, bool use_bias = true);

  void create_variables(BuildContext& ctx) override;
  int64_t units() const { return units_; }

 private:
  int64_t units_;
  Activation activation_;
  bool use_bias_;
};

class Conv2DLayer : public Component {
 public:
  Conv2DLayer(std::string name, int64_t filters, int64_t kernel_size,
              int64_t stride, bool same_padding = false,
              Activation activation = Activation::kNone);

  void create_variables(BuildContext& ctx) override;

 private:
  int64_t filters_;
  int64_t kernel_size_;
  int64_t stride_;
  bool same_padding_;
  Activation activation_;
};

// Statically unrolled LSTM over the time axis of [batch, time, features]
// inputs. The time extent must be part of the declared value shape (as in
// the fixed-rollout IMPALA pipeline).
class LSTMLayer : public Component {
 public:
  LSTMLayer(std::string name, int64_t units);

  void create_variables(BuildContext& ctx) override;
  int64_t units() const { return units_; }

 private:
  int64_t units_;
  int64_t time_steps_ = 0;
  int64_t features_ = 0;
};

}  // namespace rlgraph
