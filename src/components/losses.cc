#include "components/losses.h"

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

DQNLoss::DQNLoss(std::string name, double discount, bool double_dqn,
                 double huber_delta)
    : Component(std::move(name)), discount_(discount),
      double_dqn_(double_dqn), huber_delta_(huber_delta) {
  // get_loss(q_values [B,A], actions [B], rewards [B],
  //          q_next_target [B,A], q_next_online [B,A], terminals [B] bool,
  //          importance_weights [B]) -> (loss scalar, |td| [B])
  register_api(
      "get_loss",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 7,
                    "get_loss expects (q, actions, rewards, q_next_target, "
                    "q_next_online, terminals, weights)");
        return graph_fn(
            ctx, "dqn_loss",
            [this](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef q = in[0], actions = in[1], rewards = in[2];
              OpRef q_next_t = in[3], q_next_o = in[4];
              OpRef terminals = in[5], weights = in[6];

              OpRef q_sa = ops.select_columns(q, actions);
              OpRef next_value;
              if (double_dqn_) {
                // Action selection by the online net, evaluation by the
                // target net.
                OpRef best = ops.argmax(q_next_o);
                next_value = ops.select_columns(q_next_t, best);
              } else {
                next_value = ops.reduce_max(q_next_t, 1);
              }
              OpRef not_terminal = ops.sub(
                  ops.scalar(1.0f), ops.cast(terminals, DType::kFloat32));
              OpRef target = ops.add(
                  rewards,
                  ops.mul(ops.scalar(static_cast<float>(discount_)),
                          ops.mul(not_terminal, next_value)));
              target = ops.stop_gradient(target);

              OpRef td = ops.sub(q_sa, target);
              OpRef abs_td = ops.abs(td);
              // Huber loss.
              OpRef delta = ops.scalar(static_cast<float>(huber_delta_));
              OpRef quadratic =
                  ops.mul(ops.scalar(0.5f), ops.square(td));
              OpRef linear = ops.mul(
                  delta, ops.sub(abs_td, ops.mul(ops.scalar(0.5f), delta)));
              OpRef huber =
                  ops.where(ops.less(abs_td, delta), quadratic, linear);
              OpRef loss = ops.reduce_mean(ops.mul(weights, huber));
              return std::vector<OpRef>{loss, abs_td};
            },
            inputs, 2,
            {FloatBox(), FloatBox()->with_batch_rank()});
      });
}

}  // namespace rlgraph
