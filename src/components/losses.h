// Loss components. DQNLoss covers plain, double and n-step Q-learning with
// Huber loss and importance-weighted TD errors (the Ape-X learner's loss).
#pragma once

#include "core/component.h"

namespace rlgraph {

class DQNLoss : public Component {
 public:
  // `discount` is gamma^n for n-step targets (callers pre-accumulate the
  // n-step reward worker-side).
  DQNLoss(std::string name, double discount, bool double_dqn = true,
          double huber_delta = 1.0);

 private:
  double discount_;
  bool double_dqn_;
  double huber_delta_;
};

}  // namespace rlgraph
