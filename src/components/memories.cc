#include "components/memories.h"

#include <cmath>
#include <cstring>

#include "core/build_context.h"
#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

namespace {

// Copy a batch of record rows into the ring buffers; returns the written
// row indices.
Tensor insert_rows(MemoryState& state, const std::vector<Tensor>& leaves) {
  RLG_REQUIRE(!leaves.empty(), "insert_records with no leaves");
  int64_t batch = leaves[0].shape().dim(0);
  for (const Tensor& leaf : leaves) {
    RLG_REQUIRE(leaf.shape().rank() >= 1 && leaf.shape().dim(0) == batch,
                "record leaves disagree on batch size");
  }
  Tensor indices(DType::kInt32, Shape{batch});
  int32_t* pi = indices.mutable_data<int32_t>();
  for (int64_t b = 0; b < batch; ++b) {
    int64_t row = state.next_index;
    pi[b] = static_cast<int32_t>(row);
    for (size_t l = 0; l < leaves.size(); ++l) {
      Tensor& buf = state.buffers[l];
      const Tensor& leaf = leaves[l];
      size_t row_bytes = buf.byte_size() / static_cast<size_t>(state.capacity);
      RLG_REQUIRE(leaf.byte_size() / static_cast<size_t>(batch) == row_bytes,
                  "record leaf " << l << " row size mismatch");
      std::memcpy(static_cast<uint8_t*>(buf.mutable_raw()) +
                      static_cast<size_t>(row) * row_bytes,
                  static_cast<const uint8_t*>(leaf.raw()) +
                      static_cast<size_t>(b) * row_bytes,
                  row_bytes);
    }
    state.next_index = (state.next_index + 1) % state.capacity;
    state.size = std::min(state.size + 1, state.capacity);
  }
  return indices;
}

// Gather rows from the buffers for the given indices.
std::vector<Tensor> read_rows(const MemoryState& state,
                              const Tensor& indices) {
  std::vector<Tensor> out;
  out.reserve(state.buffers.size());
  for (const Tensor& buf : state.buffers) {
    out.push_back(kernels::gather_rows(buf, indices));
  }
  return out;
}

}  // namespace

MemoryBase::MemoryBase(std::string name, int64_t capacity)
    : Component(std::move(name)), state_(std::make_shared<MemoryState>()) {
  RLG_REQUIRE(capacity > 0, "memory capacity must be positive");
  state_->capacity = capacity;
  require_input_spaces({"insert_records"});
}

void MemoryBase::create_variables(BuildContext&) {
  const std::vector<SpacePtr>& spaces = api_input_spaces("insert_records");
  RLG_REQUIRE(!spaces.empty(), "insert_records spaces missing");
  const SpacePtr& record_space = spaces[0];
  std::vector<std::pair<std::string, SpacePtr>> leaves;
  record_space->flatten(&leaves);
  for (const auto& [path, leaf] : leaves) {
    RLG_REQUIRE(leaf->is_box(), "record leaves must be boxes");
    const auto& box = static_cast<const BoxSpace&>(*leaf);
    RLG_REQUIRE(box.has_batch_rank(),
                "records must carry a batch rank (leaf '" << path << "')");
    leaf_spaces_.push_back(box.with_ranks(false, false));
    Shape buf_shape = Shape{state_->capacity}.concat(box.value_shape());
    state_->buffers.push_back(Tensor::zeros(box.dtype(), buf_shape));
  }
}

std::vector<SpacePtr> MemoryBase::batched_leaf_spaces() const {
  std::vector<SpacePtr> out;
  out.reserve(leaf_spaces_.size());
  for (const SpacePtr& s : leaf_spaces_) {
    out.push_back(s->with_ranks(true, false));
  }
  return out;
}

OpRecs MemoryBase::split_record(const OpRec& record) {
  OpRecs out;
  if (record.space == nullptr) {
    // Assembly phase: keep one abstract record per (unknown) leaf; use a
    // single record since arity is unknown without spaces.
    out.emplace_back();
    return out;
  }
  std::vector<std::pair<std::string, SpacePtr>> leaves;
  record.space->flatten(&leaves);
  RLG_REQUIRE(record.abstract() || record.ops.size() == leaves.size(),
              "record refs out of sync with record space");
  for (size_t i = 0; i < leaves.size(); ++i) {
    OpRec leaf;
    leaf.space = leaves[i].second;
    if (!record.abstract()) leaf.ops = {record.ops[i]};
    out.push_back(std::move(leaf));
  }
  return out;
}

// --- RingMemory ---------------------------------------------------------------

RingMemory::RingMemory(std::string name, int64_t capacity)
    : MemoryBase(std::move(name), capacity) {
  register_api("insert_records",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 RLG_REQUIRE(inputs.size() == 2,
                             "insert_records expects (records, priorities)");
                 OpRecs leaves = split_record(inputs[0]);
                 auto state = state_;
                 CustomKernel kernel = [state](const std::vector<Tensor>& in) {
                   Tensor idx = insert_rows(*state, in);
                   return std::vector<Tensor>{Tensor::scalar_int(
                       static_cast<int32_t>(idx.num_elements()))};
                 };
                 return graph_fn_custom(ctx, "insert", kernel, leaves,
                                        {IntBox(1 << 30)});
               });

  register_api(
      "get_records",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "get_records expects (n)");
        // Output arity depends on the record space, which is unknown until
        // the build phase provides input spaces.
        if (ctx.assembling()) return OpRecs(3);
        auto state = state_;
        Rng* rng = &ctx.ops().rng();
        CustomKernel kernel = [state, rng](const std::vector<Tensor>& in) {
          int64_t n = static_cast<int64_t>(in[0].scalar_value());
          RLG_REQUIRE(state->size > 0, "sampling from empty memory");
          Tensor idx(DType::kInt32, Shape{n});
          int32_t* pi = idx.mutable_data<int32_t>();
          for (int64_t i = 0; i < n; ++i) {
            pi[i] = static_cast<int32_t>(rng->uniform_int(state->size));
          }
          std::vector<Tensor> out = read_rows(*state, idx);
          out.push_back(idx);
          out.push_back(
              Tensor::filled(DType::kFloat32, Shape{n}, 1.0));  // weights
          return out;
        };
        std::vector<SpacePtr> out_spaces = batched_leaf_spaces();
        out_spaces.push_back(IntBox(1 << 30)->with_batch_rank());
        out_spaces.push_back(FloatBox()->with_batch_rank());
        return graph_fn_custom(ctx, "sample", kernel, inputs, out_spaces);
      });

  register_api("update_records",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 // Uniform memory: priority updates are a no-op, kept for a
                 // uniform agent-facing API.
                 RLG_REQUIRE(inputs.size() == 2,
                             "update_records expects (indices, priorities)");
                 CustomKernel kernel = [](const std::vector<Tensor>& in) {
                   return std::vector<Tensor>{Tensor::scalar_int(
                       static_cast<int32_t>(in[0].num_elements()))};
                 };
                 return graph_fn_custom(ctx, "update", kernel, inputs,
                                        {IntBox(1 << 30)});
               });

  register_api("get_size",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 auto state = state_;
                 CustomKernel kernel = [state](const std::vector<Tensor>&) {
                   return std::vector<Tensor>{Tensor::scalar_int(
                       static_cast<int32_t>(state->size))};
                 };
                 return graph_fn_custom(ctx, "size", kernel, inputs,
                                        {IntBox(1 << 30)});
               });
}

// --- PrioritizedReplay -----------------------------------------------------------

PrioritizedReplay::PrioritizedReplay(std::string name, int64_t capacity,
                                     double alpha, double beta)
    : MemoryBase(std::move(name), capacity), alpha_(alpha), beta_(beta) {
  tree_ = add_component(
      std::make_shared<SegmentTreeComponent>("segment-tree", capacity));

  // insert_records(records, priorities[B]); priorities enter the sum tree as
  // (p + eps)^alpha, computed with in-graph ops.
  register_api(
      "insert_records",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 2,
                    "insert_records expects (records, priorities)");
        OpRecs leaves = split_record(inputs[0]);
        auto state = state_;
        CustomKernel kernel = [state](const std::vector<Tensor>& in) {
          return std::vector<Tensor>{insert_rows(*state, in)};
        };
        OpRecs written = graph_fn_custom(
            ctx, "insert", kernel, leaves,
            {IntBox(1 << 30)->with_batch_rank()});

        // p_adj = (|p| + eps)^alpha, tracked for max-priority bookkeeping.
        double alpha = alpha_;
        OpRecs adjusted = graph_fn(
            ctx, "adjust_priorities",
            [alpha, state](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef eps = ops.scalar(1e-6f);
              OpRef base = ops.add(ops.abs(in[0]), eps);
              OpRef padj = ops.exp(
                  ops.mul(ops.scalar(static_cast<float>(alpha)),
                          ops.log(base)));
              return std::vector<OpRef>{padj};
            },
            {inputs[1]});

        // Track max priority for new-record defaults via a tiny stateful op.
        CustomKernel track = [state](const std::vector<Tensor>& in) {
          for (int64_t i = 0; i < in[0].num_elements(); ++i) {
            state->max_priority =
                std::max(state->max_priority, in[0].at_flat(i));
          }
          return std::vector<Tensor>{in[0]};
        };
        OpRecs tracked =
            graph_fn_custom(ctx, "track_max", track, {adjusted[0]},
                            {FloatBox()->with_batch_rank()});

        OpRecs updated =
            tree_->call_api(ctx, "update", {written[0], tracked[0]});
        return updated;
      });

  register_api(
      "get_records",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "get_records expects (n)");
        // See RingMemory::get_records: arity unknown during assembly.
        if (ctx.assembling()) return OpRecs(3);
        auto state = state_;
        CustomKernel size_kernel = [state](const std::vector<Tensor>&) {
          return std::vector<Tensor>{
              Tensor::scalar_int(static_cast<int32_t>(state->size))};
        };
        OpRecs size = graph_fn_custom(ctx, "size", size_kernel, {},
                                      {IntBox(1 << 30)});

        OpRecs indices =
            tree_->call_api(ctx, "sample_proportional", {inputs[0], size[0]});

        CustomKernel read = [state](const std::vector<Tensor>& in) {
          RLG_REQUIRE(state->size > 0, "sampling from empty memory");
          return read_rows(*state, in[0]);
        };
        OpRecs leaves = graph_fn_custom(ctx, "read", read, {indices[0]},
                                        batched_leaf_spaces());

        // Importance weights: ((N * P(i))^-beta) / max_w.
        double beta = beta_;
        auto sum_tree = &tree_->sum_tree();
        auto min_tree = &tree_->min_tree();
        CustomKernel weight_kernel = [state, beta, sum_tree, min_tree](
                                         const std::vector<Tensor>& in) {
          const Tensor& idx = in[0];
          double total = sum_tree->sum(0, std::max<int64_t>(state->size, 1));
          double p_min =
              std::max(min_tree->min(0, std::max<int64_t>(state->size, 1)),
                       1e-12);
          double max_w = std::pow(
              static_cast<double>(state->size) * (p_min / total), -beta);
          Tensor w(DType::kFloat32, idx.shape());
          float* pw = w.mutable_data<float>();
          const int32_t* pi = idx.data<int32_t>();
          for (int64_t i = 0; i < idx.num_elements(); ++i) {
            double p = std::max(sum_tree->get(pi[i]), 1e-12) / total;
            pw[i] = static_cast<float>(
                std::pow(static_cast<double>(state->size) * p, -beta) /
                max_w);
          }
          return std::vector<Tensor>{w};
        };
        OpRecs weights =
            graph_fn_custom(ctx, "weights", weight_kernel, {indices[0]},
                            {FloatBox()->with_batch_rank()});

        OpRecs out = std::move(leaves);
        out.push_back(indices[0]);
        out.push_back(weights[0]);
        return out;
      });

  register_api(
      "update_records",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 2,
                    "update_records expects (indices, priorities)");
        double alpha = alpha_;
        OpRecs adjusted = graph_fn(
            ctx, "adjust_priorities",
            [alpha](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef eps = ops.scalar(1e-6f);
              OpRef base = ops.add(ops.abs(in[0]), eps);
              return std::vector<OpRef>{
                  ops.exp(ops.mul(ops.scalar(static_cast<float>(alpha)),
                                  ops.log(base)))};
            },
            {inputs[1]});
        return tree_->call_api(ctx, "update", {inputs[0], adjusted[0]});
      });

  register_api("get_size",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 auto state = state_;
                 CustomKernel kernel = [state](const std::vector<Tensor>&) {
                   return std::vector<Tensor>{Tensor::scalar_int(
                       static_cast<int32_t>(state->size))};
                 };
                 return graph_fn_custom(ctx, "size", kernel, inputs,
                                        {IntBox(1 << 30)});
               });
}

}  // namespace rlgraph
