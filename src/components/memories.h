// Replay memory components (paper Fig. 2).
//
// Memories are generic over their record structure: the record space is
// inferred from the first insert_records call (the input-completeness
// barrier guarantees buffers exist before any sampling graph function runs).
// Record state lives behind custom stateful kernels — the C++ analogue of
// TF variables managed through in-graph control flow — while priority math
// (the alpha exponent) runs through ordinary differentiable ops.
//
// API surface (shared by both memories so agents can swap them via config):
//   insert_records(records, priorities) -> count
//   get_records(n)   -> record leaves..., indices, importance weights
//   update_records(indices, priorities) -> count
//   get_size()       -> current number of stored records
#pragma once

#include <memory>

#include "components/segment_tree.h"
#include "core/component.h"

namespace rlgraph {

// State shared by the memory's custom kernels.
struct MemoryState {
  std::vector<Tensor> buffers;  // one [capacity, ...] tensor per record leaf
  int64_t capacity = 0;
  int64_t size = 0;
  int64_t next_index = 0;
  double max_priority = 1.0;
};

// Common base wiring record buffers; subclasses add their sampling strategy.
class MemoryBase : public Component {
 public:
  MemoryBase(std::string name, int64_t capacity);

  void create_variables(BuildContext& ctx) override;

  int64_t capacity() const { return state_->capacity; }
  int64_t size() const { return state_->size; }

 protected:
  // Record leaf spaces (without batch rank), available after the barrier.
  const std::vector<SpacePtr>& record_leaf_spaces() const {
    return leaf_spaces_;
  }
  // Leaf spaces re-flagged with a batch rank (sampling output signature).
  std::vector<SpacePtr> batched_leaf_spaces() const;

  // Splits a container record into single-leaf OpRecs for kernel calls.
  static OpRecs split_record(const OpRec& record);

  // Kernel helpers over the shared state.
  std::shared_ptr<MemoryState> state_;

 private:
  std::vector<SpacePtr> leaf_spaces_;
};

// Uniform-sampling FIFO ring buffer.
class RingMemory : public MemoryBase {
 public:
  RingMemory(std::string name, int64_t capacity);
};

// Prioritized replay: proportional sampling via a segment-tree sub-component
// with importance-sampling weights (Schaul et al. semantics as used by
// Ape-X).
class PrioritizedReplay : public MemoryBase {
 public:
  PrioritizedReplay(std::string name, int64_t capacity, double alpha = 0.6,
                    double beta = 0.4);

  SegmentTreeComponent& segment_tree() { return *tree_; }

 private:
  double alpha_;
  double beta_;
  SegmentTreeComponent* tree_;  // owned via sub-component list
};

}  // namespace rlgraph
