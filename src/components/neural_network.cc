#include "components/neural_network.h"

#include "components/layers.h"
#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

NeuralNetwork::NeuralNetwork(std::string name, const Json& layer_config)
    : Component(std::move(name)) {
  RLG_REQUIRE(layer_config.is_array(), "network config must be a layer list");
  int index = 0;
  for (const Json& spec : layer_config.as_array()) {
    const std::string type = spec.get_string("type", "dense");
    std::string lname = spec.get_string("name",
                                        type + "-" + std::to_string(index));
    if (type == "dense") {
      auto* layer = add_component(std::make_shared<DenseLayer>(
          lname, spec.get_int("units", 64),
          activation_from_string(spec.get_string("activation", "none"))));
      output_units_ = layer->units();
      layers_.push_back(layer);
    } else if (type == "conv2d") {
      layers_.push_back(add_component(std::make_shared<Conv2DLayer>(
          lname, spec.get_int("filters", 16), spec.get_int("kernel", 3),
          spec.get_int("stride", 1), spec.get_bool("same_padding", false),
          activation_from_string(spec.get_string("activation", "none")))));
      output_units_ = 0;  // spatial; a following dense/flatten resolves it
    } else if (type == "lstm") {
      auto* layer = add_component(
          std::make_shared<LSTMLayer>(lname, spec.get_int("units", 64)));
      output_units_ = layer->units();
      layers_.push_back(layer);
    } else {
      throw ConfigError("unknown layer type: " + type);
    }
    ++index;
  }

  register_api(
      "apply", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "network apply expects (x)");
        OpRec current = inputs[0];
        for (Component* layer : layers_) {
          // Auto-flatten spatial activations before dense layers.
          bool needs_flatten =
              dynamic_cast<DenseLayer*>(layer) != nullptr &&
              current.space != nullptr && current.space->is_box() &&
              static_cast<const BoxSpace&>(*current.space)
                      .value_shape().rank() > 1;
          if (needs_flatten) {
            const auto& box = static_cast<const BoxSpace&>(*current.space);
            int64_t flat = box.value_shape().num_elements();
            current = graph_fn(
                ctx, "flatten",
                [flat](OpContext& ops, const std::vector<OpRef>& in) {
                  return std::vector<OpRef>{
                      ops.reshape(in[0], Shape{kUnknownDim, flat})};
                },
                {current})[0];
          }
          current = layer->call_api(ctx, "apply", {current})[0];
        }
        return OpRecs{current};
      });
}

}  // namespace rlgraph
