// NeuralNetwork: a JSON-configurable stack of layer components with a single
// "apply" API. Mirrors the paper's declarative network configuration
// ("network with list of layers").
//
// Config example:
//   [{"type": "conv2d", "filters": 16, "kernel": 4, "stride": 2,
//     "activation": "relu"},
//    {"type": "dense", "units": 128, "activation": "relu"}]
//
// A flatten step is inserted automatically when a dense layer follows a
// spatial (rank > 1) activation.
#pragma once

#include "core/component.h"
#include "util/json.h"

namespace rlgraph {

class NeuralNetwork : public Component {
 public:
  NeuralNetwork(std::string name, const Json& layer_config);

  // Output feature count of the final layer (needed by heads); valid for
  // dense/lstm-terminated stacks.
  int64_t output_units() const { return output_units_; }

 private:
  std::vector<Component*> layers_;
  int64_t output_units_ = 0;
};

}  // namespace rlgraph
