#include "components/optimizers.h"

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

namespace {

// Recover the scoped variable name behind a Variable-read ref.
std::string var_name_of(OpContext& ops, OpRef ref) {
  RefInfo info = ops.info(ref.node);
  RLG_REQUIRE(info.op == "Variable",
              "optimizer step received a non-variable ref (op "
                  << info.op << "); pass policy variable reads");
  return attr_string(info.attrs, "var_name");
}

}  // namespace

Optimizer::Optimizer(std::string name, double learning_rate,
                     double clip_grad_norm)
    : Component(std::move(name)), learning_rate_(learning_rate),
      clip_grad_norm_(clip_grad_norm) {
  RLG_REQUIRE(learning_rate > 0.0, "learning rate must be positive");

  // step(loss, var_0, var_1, ...) -> (update_group, loss)
  register_api(
      "step", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(!inputs.empty(), "step expects (loss, variables...)");
        return graph_fn(
            ctx, "step",
            [this](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef loss = in[0];
              std::vector<OpRef> vars(in.begin() + 1, in.end());
              RLG_REQUIRE(!vars.empty(),
                          "optimizer step needs at least one variable");
              std::vector<OpRef> grads = gradients(ops, loss, vars);

              if (clip_grad_norm_ > 0.0) {
                // Clip by global norm: g *= clip / max(norm, clip).
                OpRef sq_sum = ops.reduce_sum(ops.square(grads[0]));
                for (size_t i = 1; i < grads.size(); ++i) {
                  sq_sum = ops.add(sq_sum,
                                   ops.reduce_sum(ops.square(grads[i])));
                }
                OpRef norm = ops.sqrt(sq_sum);
                OpRef clip =
                    ops.scalar(static_cast<float>(clip_grad_norm_));
                OpRef factor = ops.div(clip, ops.maximum(norm, clip));
                for (OpRef& g : grads) g = ops.mul(g, factor);
              }

              std::vector<OpRef> updates;
              updates.reserve(vars.size());
              for (size_t i = 0; i < vars.size(); ++i) {
                std::string name = var_name_of(ops, vars[i]);
                updates.push_back(
                    apply_update(ops, name, vars[i], grads[i]));
              }
              return std::vector<OpRef>{ops.group(updates), loss};
            },
            inputs, 2, {IntBox(1 << 30), FloatBox()});
      });
}

std::string Optimizer::slot_name(const std::string& var_name,
                                 const std::string& slot) const {
  std::string flat = var_name;
  for (char& c : flat) {
    if (c == '/') c = '.';
  }
  return scope() + "/" + slot + "/" + flat;
}

OpRef Optimizer::slot(OpContext& ops, const std::string& var_name,
                      const std::string& slot, const Tensor& like) {
  std::string name = slot_name(var_name, slot);
  if (!ops.variable_store().exists(name)) {
    ops.create_variable(name, Tensor::zeros(like.dtype(), like.shape()));
  }
  return ops.variable(name);
}

// --- SGD -------------------------------------------------------------------------

GradientDescentOptimizer::GradientDescentOptimizer(std::string name,
                                                   double learning_rate,
                                                   double clip_grad_norm)
    : Optimizer(std::move(name), learning_rate, clip_grad_norm) {}

OpRef GradientDescentOptimizer::apply_update(OpContext& ops,
                                             const std::string& var_name,
                                             OpRef, OpRef grad) {
  OpRef delta =
      ops.mul(ops.scalar(static_cast<float>(-learning_rate_)), grad);
  return ops.assign_add(var_name, delta);
}

// --- RMSProp ----------------------------------------------------------------------

RMSPropOptimizer::RMSPropOptimizer(std::string name, double learning_rate,
                                   double decay, double epsilon,
                                   double clip_grad_norm)
    : Optimizer(std::move(name), learning_rate, clip_grad_norm),
      decay_(decay), epsilon_(epsilon) {}

OpRef RMSPropOptimizer::apply_update(OpContext& ops,
                                     const std::string& var_name, OpRef var,
                                     OpRef grad) {
  const Tensor& current = ops.variable_store().get(var_name);
  OpRef v = slot(ops, var_name, "rms", current);
  OpRef new_v = ops.add(
      ops.mul(ops.scalar(static_cast<float>(decay_)), v),
      ops.mul(ops.scalar(static_cast<float>(1.0 - decay_)),
              ops.square(grad)));
  OpRef v_assigned = ops.assign(slot_name(var_name, "rms"), new_v);
  OpRef denom =
      ops.add(ops.sqrt(v_assigned), ops.scalar(static_cast<float>(epsilon_)));
  OpRef delta = ops.mul(ops.scalar(static_cast<float>(-learning_rate_)),
                        ops.div(grad, denom));
  (void)var;
  return ops.assign_add(var_name, delta);
}

// --- Adam --------------------------------------------------------------------------

AdamOptimizer::AdamOptimizer(std::string name, double learning_rate,
                             double beta1, double beta2, double epsilon,
                             double clip_grad_norm)
    : Optimizer(std::move(name), learning_rate, clip_grad_norm),
      beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

OpRef AdamOptimizer::apply_update(OpContext& ops, const std::string& var_name,
                                  OpRef, OpRef grad) {
  const Tensor& current = ops.variable_store().get(var_name);
  // Bias-correction step count, tracked per variable (a shared step would be
  // incremented once per variable per update).
  std::string tv_name = slot_name(var_name, "t");
  if (!ops.variable_store().exists(tv_name)) {
    ops.create_variable(tv_name, Tensor::scalar(0.0f));
  }
  OpRef t = ops.assign_add(tv_name, ops.scalar(1.0f));

  OpRef m = slot(ops, var_name, "m", current);
  OpRef v = slot(ops, var_name, "v", current);
  OpRef b1 = ops.scalar(static_cast<float>(beta1_));
  OpRef b2 = ops.scalar(static_cast<float>(beta2_));
  OpRef one = ops.scalar(1.0f);
  OpRef new_m = ops.add(ops.mul(b1, m), ops.mul(ops.sub(one, b1), grad));
  OpRef new_v =
      ops.add(ops.mul(b2, v), ops.mul(ops.sub(one, b2), ops.square(grad)));
  OpRef m_a = ops.assign(slot_name(var_name, "m"), new_m);
  OpRef v_a = ops.assign(slot_name(var_name, "v"), new_v);
  // beta^t = exp(t * log(beta)).
  OpRef b1_t = ops.exp(ops.mul(t, ops.log(b1)));
  OpRef b2_t = ops.exp(ops.mul(t, ops.log(b2)));
  OpRef m_hat = ops.div(m_a, ops.sub(one, b1_t));
  OpRef v_hat = ops.div(v_a, ops.sub(one, b2_t));
  OpRef delta = ops.mul(
      ops.scalar(static_cast<float>(-learning_rate_)),
      ops.div(m_hat, ops.add(ops.sqrt(v_hat),
                             ops.scalar(static_cast<float>(epsilon_)))));
  return ops.assign_add(var_name, delta);
}

std::shared_ptr<Optimizer> make_optimizer(const std::string& name,
                                          const Json& spec) {
  const std::string type = spec.get_string("type", "adam");
  double lr = spec.get_double("learning_rate", 1e-4);
  double clip = spec.get_double("clip_grad_norm", 0.0);
  if (type == "sgd") {
    return std::make_shared<GradientDescentOptimizer>(name, lr, clip);
  }
  if (type == "rmsprop") {
    return std::make_shared<RMSPropOptimizer>(
        name, lr, spec.get_double("decay", 0.99),
        spec.get_double("epsilon", 1e-6), clip);
  }
  if (type == "adam") {
    return std::make_shared<AdamOptimizer>(
        name, lr, spec.get_double("beta1", 0.9),
        spec.get_double("beta2", 0.999), spec.get_double("epsilon", 1e-8),
        clip);
  }
  throw ConfigError("unknown optimizer type: " + type);
}

}  // namespace rlgraph
