// Optimizer components. step(loss, variables...) runs reverse-mode autodiff
// from the loss to the given variable refs and emits the update assignments
// (all inside the graph — a fetched update op applies one training step).
#pragma once

#include "core/component.h"

namespace rlgraph {

class Optimizer : public Component {
 public:
  Optimizer(std::string name, double learning_rate, double clip_grad_norm);

  double learning_rate() const { return learning_rate_; }

 protected:
  // Per-variable update rule: given (ops, var_name, var_ref, grad_ref),
  // return the assignment ref applying the update.
  virtual OpRef apply_update(OpContext& ops, const std::string& var_name,
                             OpRef var, OpRef grad) = 0;

  // Lazily ensure an optimizer slot variable exists (e.g. Adam moments).
  OpRef slot(OpContext& ops, const std::string& var_name,
             const std::string& slot_name, const Tensor& like);
  std::string slot_name(const std::string& var_name,
                        const std::string& slot_name) const;

  double learning_rate_;
  double clip_grad_norm_;  // <= 0 disables clipping
};

class GradientDescentOptimizer : public Optimizer {
 public:
  GradientDescentOptimizer(std::string name, double learning_rate,
                           double clip_grad_norm = 0.0);

 protected:
  OpRef apply_update(OpContext& ops, const std::string& var_name, OpRef var,
                     OpRef grad) override;
};

class RMSPropOptimizer : public Optimizer {
 public:
  RMSPropOptimizer(std::string name, double learning_rate, double decay = 0.99,
                   double epsilon = 1e-6, double clip_grad_norm = 0.0);

 protected:
  OpRef apply_update(OpContext& ops, const std::string& var_name, OpRef var,
                     OpRef grad) override;

 private:
  double decay_;
  double epsilon_;
};

class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::string name, double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8,
                double clip_grad_norm = 0.0);

 protected:
  OpRef apply_update(OpContext& ops, const std::string& var_name, OpRef var,
                     OpRef grad) override;

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
};

// Factory from a JSON spec: {"type": "adam", "learning_rate": 1e-4, ...}.
std::shared_ptr<Optimizer> make_optimizer(const std::string& name,
                                          const Json& spec);

}  // namespace rlgraph
