#include "components/policy.h"

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

Policy::Policy(std::string name, const Json& network_config,
               SpacePtr action_space, PolicyHead head)
    : Component(std::move(name)), head_(head) {
  RLG_REQUIRE(action_space != nullptr && action_space->is_box(),
              "Policy requires a categorical box action space");
  const auto& box = static_cast<const BoxSpace&>(*action_space);
  RLG_REQUIRE(box.num_categories() > 0,
              "Policy requires a categorical (IntBox) action space");
  num_actions_ = box.num_categories();

  network_ =
      add_component(std::make_shared<NeuralNetwork>("network", network_config));
  switch (head_) {
    case PolicyHead::kQValues:
      q_head_ = add_component(
          std::make_shared<DenseLayer>("q-head", num_actions_));
      register_q_apis();
      break;
    case PolicyHead::kDuelingQ:
      value_head_ =
          add_component(std::make_shared<DenseLayer>("value-head", 1));
      advantage_head_ = add_component(
          std::make_shared<DenseLayer>("advantage-head", num_actions_));
      register_q_apis();
      break;
    case PolicyHead::kCategorical:
      logits_head_ = add_component(
          std::make_shared<DenseLayer>("logits-head", num_actions_));
      value_head_ =
          add_component(std::make_shared<DenseLayer>("value-head", 1));
      register_categorical_apis();
      break;
  }
}

void Policy::register_q_apis() {
  register_api(
      "get_q_values",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "get_q_values expects (states)");
        OpRec features = network_->call_api(ctx, "apply", inputs)[0];
        if (head_ == PolicyHead::kQValues) {
          return q_head_->call_api(ctx, "apply", {features});
        }
        // Dueling: Q = V + A - mean(A).
        OpRec v = value_head_->call_api(ctx, "apply", {features})[0];
        OpRec a = advantage_head_->call_api(ctx, "apply", {features})[0];
        return graph_fn(
            ctx, "dueling",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef v = in[0], a = in[1];
              OpRef mean_a = ops.reduce_mean(a, 1, /*keep_dims=*/true);
              return std::vector<OpRef>{
                  ops.add(v, ops.sub(a, mean_a))};
            },
            {v, a});
      });

  register_api("get_action",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 OpRec q = call_api(ctx, "get_q_values", inputs)[0];
                 return graph_fn(
                     ctx, "greedy",
                     [](OpContext& ops, const std::vector<OpRef>& in) {
                       return std::vector<OpRef>{ops.argmax(in[0])};
                     },
                     {q}, 1,
                     {IntBox(num_actions_)->with_batch_rank()});
               });
}

void Policy::register_categorical_apis() {
  register_api(
      "get_logits_value",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "get_logits_value expects (states)");
        OpRec features = network_->call_api(ctx, "apply", inputs)[0];
        OpRec logits = logits_head_->call_api(ctx, "apply", {features})[0];
        OpRec value = value_head_->call_api(ctx, "apply", {features})[0];
        return OpRecs{logits, value};
      });

  // Sample from the categorical distribution with the Gumbel-max trick so
  // sampling stays inside the graph.
  register_api(
      "sample_action",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        OpRecs lv = call_api(ctx, "get_logits_value", inputs);
        return graph_fn(
            ctx, "gumbel_sample",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef u = ops.apply("RandomUniformLike", {in[0]},
                                  {{"lo", 1e-8}, {"hi", 1.0}});
              OpRef gumbel = ops.neg(ops.log(ops.neg(ops.log(u))));
              return std::vector<OpRef>{ops.argmax(ops.add(in[0], gumbel))};
            },
            {lv[0]}, 1, {IntBox(num_actions_)->with_batch_rank()});
      });

  register_api("get_action",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 OpRecs lv = call_api(ctx, "get_logits_value", inputs);
                 return graph_fn(
                     ctx, "greedy",
                     [](OpContext& ops, const std::vector<OpRef>& in) {
                       return std::vector<OpRef>{ops.argmax(in[0])};
                     },
                     {lv[0]}, 1, {IntBox(num_actions_)->with_batch_rank()});
               });
}

OpRecs Policy::variable_recs(BuildContext& ctx) {
  if (ctx.assembling()) return {};
  OpRecs out;
  for (const std::string& name : variable_names_recursive()) {
    OpRef ref = ctx.ops().variable(name);
    Shape s = ctx.ops().shape(ref);
    auto space = std::make_shared<BoxSpace>(ctx.ops().dtype(ref),
                                            s.fully_specified() ? s : Shape{},
                                            -1e30, 1e30);
    out.emplace_back(space, ref);
  }
  return out;
}

}  // namespace rlgraph
