#include "components/policy.h"

#include <cmath>

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

Policy::Policy(std::string name, const Json& network_config,
               SpacePtr action_space, PolicyHead head)
    : Component(std::move(name)), head_(head) {
  RLG_REQUIRE(action_space != nullptr && action_space->is_box(),
              "Policy requires a box action space");
  const auto& box = static_cast<const BoxSpace&>(*action_space);
  if (head_ == PolicyHead::kSquashedGaussian) {
    RLG_REQUIRE(box.dtype() == DType::kFloat32 && box.num_categories() == 0,
                "squashed-Gaussian head requires a float Box action space");
    action_dim_ = box.value_shape().num_elements();
    RLG_REQUIRE(action_dim_ > 0,
                "squashed-Gaussian head requires a non-scalar action shape");
    for (int64_t d = 0; d < action_dim_; ++d) {
      double lo = box.low(d), hi = box.high(d);
      RLG_REQUIRE(lo > -1e29 && hi < 1e29 && hi > lo,
                  "squashed-Gaussian head requires finite action bounds, got ["
                      << lo << ", " << hi << "] at dim " << d);
      action_scale_.push_back(static_cast<float>((hi - lo) / 2.0));
      action_center_.push_back(static_cast<float>((hi + lo) / 2.0));
    }
  } else {
    RLG_REQUIRE(box.num_categories() > 0,
                "Policy requires a categorical (IntBox) action space");
    num_actions_ = box.num_categories();
  }

  network_ =
      add_component(std::make_shared<NeuralNetwork>("network", network_config));
  switch (head_) {
    case PolicyHead::kQValues:
      q_head_ = add_component(
          std::make_shared<DenseLayer>("q-head", num_actions_));
      register_q_apis();
      break;
    case PolicyHead::kDuelingQ:
      value_head_ =
          add_component(std::make_shared<DenseLayer>("value-head", 1));
      advantage_head_ = add_component(
          std::make_shared<DenseLayer>("advantage-head", num_actions_));
      register_q_apis();
      break;
    case PolicyHead::kCategorical:
      logits_head_ = add_component(
          std::make_shared<DenseLayer>("logits-head", num_actions_));
      value_head_ =
          add_component(std::make_shared<DenseLayer>("value-head", 1));
      register_categorical_apis();
      break;
    case PolicyHead::kSquashedGaussian:
      mean_head_ =
          add_component(std::make_shared<DenseLayer>("mean-head", action_dim_));
      logstd_head_ = add_component(
          std::make_shared<DenseLayer>("logstd-head", action_dim_));
      register_squashed_gaussian_apis();
      break;
  }
}

void Policy::register_q_apis() {
  register_api(
      "get_q_values",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "get_q_values expects (states)");
        OpRec features = network_->call_api(ctx, "apply", inputs)[0];
        if (head_ == PolicyHead::kQValues) {
          return q_head_->call_api(ctx, "apply", {features});
        }
        // Dueling: Q = V + A - mean(A).
        OpRec v = value_head_->call_api(ctx, "apply", {features})[0];
        OpRec a = advantage_head_->call_api(ctx, "apply", {features})[0];
        return graph_fn(
            ctx, "dueling",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef v = in[0], a = in[1];
              OpRef mean_a = ops.reduce_mean(a, 1, /*keep_dims=*/true);
              return std::vector<OpRef>{
                  ops.add(v, ops.sub(a, mean_a))};
            },
            {v, a});
      });

  register_api("get_action",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 OpRec q = call_api(ctx, "get_q_values", inputs)[0];
                 return graph_fn(
                     ctx, "greedy",
                     [](OpContext& ops, const std::vector<OpRef>& in) {
                       return std::vector<OpRef>{ops.argmax(in[0])};
                     },
                     {q}, 1,
                     {IntBox(num_actions_)->with_batch_rank()});
               });
}

void Policy::register_categorical_apis() {
  register_api(
      "get_logits_value",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "get_logits_value expects (states)");
        OpRec features = network_->call_api(ctx, "apply", inputs)[0];
        OpRec logits = logits_head_->call_api(ctx, "apply", {features})[0];
        OpRec value = value_head_->call_api(ctx, "apply", {features})[0];
        return OpRecs{logits, value};
      });

  // Sample from the categorical distribution with the Gumbel-max trick so
  // sampling stays inside the graph.
  register_api(
      "sample_action",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        OpRecs lv = call_api(ctx, "get_logits_value", inputs);
        return graph_fn(
            ctx, "gumbel_sample",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef u = ops.apply("RandomUniformLike", {in[0]},
                                  {{"lo", 1e-8}, {"hi", 1.0}});
              OpRef gumbel = ops.neg(ops.log(ops.neg(ops.log(u))));
              return std::vector<OpRef>{ops.argmax(ops.add(in[0], gumbel))};
            },
            {lv[0]}, 1, {IntBox(num_actions_)->with_batch_rank()});
      });

  register_api("get_action",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 OpRecs lv = call_api(ctx, "get_logits_value", inputs);
                 return graph_fn(
                     ctx, "greedy",
                     [](OpContext& ops, const std::vector<OpRef>& in) {
                       return std::vector<OpRef>{ops.argmax(in[0])};
                     },
                     {lv[0]}, 1, {IntBox(num_actions_)->with_batch_rank()});
               });
}

// Clamp range for the log-std head: keeps σ in [e^-5, e^2] so neither the
// sample noise nor the log-prob's 1/σ can blow up early in training.
constexpr double kLogStdMin = -5.0;
constexpr double kLogStdMax = 2.0;

OpRef squashed_gaussian_logp(OpContext& ops, OpRef u, OpRef mean, OpRef logstd,
                             OpRef log_scale) {
  // Gaussian log-density of the pre-squash sample u under N(μ, σ²):
  //   −0.5·z² − log σ − 0.5·log(2π),  z = (u − μ)/σ.
  OpRef z = ops.div(ops.sub(u, mean), ops.exp(logstd));
  OpRef gauss = ops.sub(
      ops.sub(ops.mul(ops.scalar(-0.5f), ops.square(z)), logstd),
      ops.scalar(0.91893853320467274f));  // 0.5 log(2π)
  // Change-of-variables for a = center + scale·tanh(u):
  //   log|da/du| = log scale + log(1 − tanh²u)
  // with the stable identity log(1 − tanh²u) = 2(log 2 − u − softplus(−2u)).
  OpRef log1m_tanh2 = ops.mul(
      ops.scalar(2.0f),
      ops.sub(ops.sub(ops.scalar(0.69314718055994531f), u),
              ops.softplus(ops.mul(ops.scalar(-2.0f), u))));
  OpRef correction = ops.add(log_scale, log1m_tanh2);
  return ops.reduce_sum(ops.sub(gauss, correction), 1);
}

void Policy::register_squashed_gaussian_apis() {
  const int64_t d = action_dim_;
  std::vector<float> scale = action_scale_, center = action_center_;
  std::vector<float> log_scale(scale.size());
  std::vector<double> lows(scale.size()), highs(scale.size());
  for (size_t i = 0; i < scale.size(); ++i) {
    log_scale[i] = std::log(scale[i]);
    lows[i] = static_cast<double>(center[i] - scale[i]);
    highs[i] = static_cast<double>(center[i] + scale[i]);
  }
  SpacePtr action_b =
      FloatBox(Shape{d}, std::move(lows), std::move(highs))->with_batch_rank();
  SpacePtr row_b = FloatBox(Shape{d})->with_batch_rank();

  register_api(
      "get_mean_logstd",
      [this, row_b](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "get_mean_logstd expects (states)");
        OpRec features = network_->call_api(ctx, "apply", inputs)[0];
        OpRec mean = mean_head_->call_api(ctx, "apply", {features})[0];
        OpRec logstd = logstd_head_->call_api(ctx, "apply", {features})[0];
        OpRec clipped = graph_fn(
            ctx, "clip_logstd",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{
                  ops.clip(in[0], kLogStdMin, kLogStdMax)};
            },
            {logstd}, 1, {row_b})[0];
        return OpRecs{mean, clipped};
      });

  // Reparameterized sample + its exact log-prob. The Gaussian noise comes
  // from the stateful RandomNormalLike op on the seeded serial RNG chain,
  // so traces are bitwise reproducible at any thread count.
  register_api(
      "sample_action_logp",
      [this, d, scale, center, log_scale, action_b](
          BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        OpRecs ml = call_api(ctx, "get_mean_logstd", inputs);
        return graph_fn(
            ctx, "sample_squashed",
            [d, scale, center, log_scale](OpContext& ops,
                                          const std::vector<OpRef>& in) {
              OpRef mean = in[0], logstd = in[1];
              OpRef eps = ops.apply("RandomNormalLike", {mean});
              OpRef u = ops.add(mean, ops.mul(ops.exp(logstd), eps));
              OpRef scale_c =
                  ops.constant(Tensor::from_floats(Shape{1, d}, scale));
              OpRef center_c =
                  ops.constant(Tensor::from_floats(Shape{1, d}, center));
              OpRef log_scale_c =
                  ops.constant(Tensor::from_floats(Shape{1, d}, log_scale));
              OpRef action =
                  ops.add(ops.mul(ops.tanh(u), scale_c), center_c);
              OpRef logp =
                  squashed_gaussian_logp(ops, u, mean, logstd, log_scale_c);
              return std::vector<OpRef>{action, logp};
            },
            {ml[0], ml[1]}, 2, {action_b, FloatBox()->with_batch_rank()});
      });

  register_api(
      "get_action",
      [this, d, scale, center, action_b](BuildContext& ctx,
                                         const OpRecs& inputs) -> OpRecs {
        OpRecs ml = call_api(ctx, "get_mean_logstd", inputs);
        return graph_fn(
            ctx, "greedy",
            [d, scale, center](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef scale_c =
                  ops.constant(Tensor::from_floats(Shape{1, d}, scale));
              OpRef center_c =
                  ops.constant(Tensor::from_floats(Shape{1, d}, center));
              return std::vector<OpRef>{
                  ops.add(ops.mul(ops.tanh(in[0]), scale_c), center_c)};
            },
            {ml[0]}, 1, {action_b});
      });
}

// --- ContinuousQCritic -------------------------------------------------------

ContinuousQCritic::ContinuousQCritic(std::string name,
                                     const Json& network_config)
    : Component(std::move(name)) {
  network_ =
      add_component(std::make_shared<NeuralNetwork>("network", network_config));
  q_head_ = add_component(std::make_shared<DenseLayer>("q-head", 1));

  register_api(
      "get_q", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 2, "get_q expects (states, actions)");
        OpRec sa = graph_fn(
            ctx, "concat_sa",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{ops.concat({in[0], in[1]}, 1)};
            },
            inputs)[0];
        OpRec features = network_->call_api(ctx, "apply", {sa})[0];
        OpRec q = q_head_->call_api(ctx, "apply", {features})[0];
        return graph_fn(
            ctx, "squeeze_q",
            [](OpContext& ops, const std::vector<OpRef>& in) {
              return std::vector<OpRef>{ops.squeeze(in[0], 1)};
            },
            {q}, 1, {FloatBox()->with_batch_rank()});
      });
}

}  // namespace rlgraph
