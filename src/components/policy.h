// Policy: network + action head(s). Supports Q-value heads (plain and
// dueling, for DQN-family agents) and categorical softmax heads with a value
// baseline (for IMPALA).
#pragma once

#include "components/layers.h"
#include "components/neural_network.h"
#include "core/component.h"
#include "util/json.h"

namespace rlgraph {

enum class PolicyHead { kQValues, kDuelingQ, kCategorical };

class Policy : public Component {
 public:
  // `action_space` must be a categorical IntBox; `network_config` is the
  // layer list (see NeuralNetwork).
  Policy(std::string name, const Json& network_config, SpacePtr action_space,
         PolicyHead head = PolicyHead::kQValues);

  int64_t num_actions() const { return num_actions_; }
  NeuralNetwork& network() { return *network_; }

  // Build-time helper: refs of every trainable variable under this policy
  // (the paper's policy.variables()); empty in assemble mode.
  OpRecs variable_recs(BuildContext& ctx);

 private:
  // APIs registered depending on head type:
  //  Q-heads: get_q_values(states) -> q; get_action(states) -> greedy action
  //  Categorical: get_logits_value(states) -> (logits, value);
  //               sample_action(states) -> sampled action;
  //               get_action(states) -> greedy action
  void register_q_apis();
  void register_categorical_apis();

  int64_t num_actions_;
  PolicyHead head_;
  NeuralNetwork* network_;
  DenseLayer* q_head_ = nullptr;
  DenseLayer* value_head_ = nullptr;      // dueling V or categorical value
  DenseLayer* advantage_head_ = nullptr;  // dueling A
  DenseLayer* logits_head_ = nullptr;     // categorical
};

}  // namespace rlgraph
