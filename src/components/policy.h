// Policy: network + action head(s). Supports Q-value heads (plain and
// dueling, for DQN-family agents) and categorical softmax heads with a value
// baseline (for IMPALA).
#pragma once

#include "components/layers.h"
#include "components/neural_network.h"
#include "core/component.h"
#include "util/json.h"

namespace rlgraph {

enum class PolicyHead { kQValues, kDuelingQ, kCategorical, kSquashedGaussian };

class Policy : public Component {
 public:
  // Discrete heads require a categorical IntBox `action_space`; the
  // squashed-Gaussian head requires a bounded FloatBox (per-dimension bounds
  // honored). `network_config` is the layer list (see NeuralNetwork).
  Policy(std::string name, const Json& network_config, SpacePtr action_space,
         PolicyHead head = PolicyHead::kQValues);

  int64_t num_actions() const { return num_actions_; }
  int64_t action_dim() const { return action_dim_; }
  NeuralNetwork& network() { return *network_; }

 private:
  // APIs registered depending on head type:
  //  Q-heads: get_q_values(states) -> q; get_action(states) -> greedy action
  //  Categorical: get_logits_value(states) -> (logits, value);
  //               sample_action(states) -> sampled action;
  //               get_action(states) -> greedy action
  //  Squashed Gaussian: get_mean_logstd(states) -> (mean, log_std);
  //               sample_action_logp(states) -> (action, logp);
  //               get_action(states) -> deterministic tanh(mean) action
  void register_q_apis();
  void register_categorical_apis();
  void register_squashed_gaussian_apis();

  int64_t num_actions_ = 0;
  int64_t action_dim_ = 0;  // squashed-Gaussian head only
  PolicyHead head_;
  NeuralNetwork* network_;
  DenseLayer* q_head_ = nullptr;
  DenseLayer* value_head_ = nullptr;      // dueling V or categorical value
  DenseLayer* advantage_head_ = nullptr;  // dueling A
  DenseLayer* logits_head_ = nullptr;     // categorical
  DenseLayer* mean_head_ = nullptr;       // squashed Gaussian μ
  DenseLayer* logstd_head_ = nullptr;     // squashed Gaussian log σ
  // Per-dimension affine map from tanh(u) in (-1, 1) to the action bounds.
  std::vector<float> action_scale_;
  std::vector<float> action_center_;
};

// Squashed-Gaussian log-prob pieces, shared between the Policy head and the
// gradcheck programs so the tests pin the exact graph the agent trains.
// All inputs are [B, D]; returns the summed per-row log-prob [B]:
//   logp = Σ_d [ N(u; μ, σ).logp − log(scale_d) − 2(log 2 − u − softplus(−2u)) ]
OpRef squashed_gaussian_logp(OpContext& ops, OpRef u, OpRef mean, OpRef logstd,
                             OpRef log_scale);

// State-action value function for continuous actions: Q(s, a) computed over
// the concatenated [states, actions] vector. API:
//   get_q(states, actions) -> q [B]
class ContinuousQCritic : public Component {
 public:
  ContinuousQCritic(std::string name, const Json& network_config);

 private:
  NeuralNetwork* network_;
  DenseLayer* q_head_;
};

}  // namespace rlgraph
