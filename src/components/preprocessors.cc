#include "components/preprocessors.h"

#include "core/build_context.h"
#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

GrayScale::GrayScale(std::string name) : Component(std::move(name)) {
  register_api("preprocess",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 return graph_fn(
                     ctx, "grayscale",
                     [](OpContext& ops, const std::vector<OpRef>& in) {
                       return std::vector<OpRef>{ops.reduce_mean(
                           in[0], ops.shape(in[0]).rank() - 1,
                           /*keep_dims=*/true)};
                     },
                     inputs);
               });
}

Rescale::Rescale(std::string name, double scale, double offset)
    : Component(std::move(name)), scale_(scale), offset_(offset) {
  register_api("preprocess",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 return graph_fn(
                     ctx, "rescale",
                     [this](OpContext& ops, const std::vector<OpRef>& in) {
                       OpRef scaled = ops.mul(
                           in[0], ops.scalar(static_cast<float>(scale_)));
                       if (offset_ != 0.0) {
                         scaled = ops.add(
                             scaled, ops.scalar(static_cast<float>(offset_)));
                       }
                       return std::vector<OpRef>{scaled};
                     },
                     inputs);
               });
}

ClipValue::ClipValue(std::string name, double lo, double hi)
    : Component(std::move(name)), lo_(lo), hi_(hi) {
  register_api("preprocess",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 return graph_fn(
                     ctx, "clip",
                     [this](OpContext& ops, const std::vector<OpRef>& in) {
                       return std::vector<OpRef>{ops.clip(in[0], lo_, hi_)};
                     },
                     inputs);
               });
}

FrameStack::FrameStack(std::string name, int64_t num_frames)
    : Component(std::move(name)), num_frames_(num_frames),
      state_(std::make_shared<State>()) {
  RLG_REQUIRE(num_frames > 0, "FrameStack requires num_frames > 0");

  register_api(
      "preprocess",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "frame_stack expects (frames)");
        SpacePtr out_space;
        if (inputs[0].space != nullptr && inputs[0].space->is_box()) {
          const auto& box = static_cast<const BoxSpace&>(*inputs[0].space);
          Shape vs = box.value_shape();
          RLG_REQUIRE(vs.rank() >= 1, "frame_stack needs channelled input");
          Shape out = vs.with_dim(vs.rank() - 1,
                                  vs.dim(vs.rank() - 1) * num_frames_);
          out_space = std::make_shared<BoxSpace>(box.dtype(), out, box.low(),
                                                 box.high())
                          ->with_ranks(box.has_batch_rank(),
                                       box.has_time_rank());
        } else {
          out_space = FloatBox()->with_batch_rank();
        }
        auto state = state_;
        int64_t k = num_frames_;
        CustomKernel kernel = [state, k](const std::vector<Tensor>& in) {
          const Tensor& frames = in[0];
          int64_t batch = frames.shape().dim(0);
          if (static_cast<int64_t>(state->slots.size()) < batch) {
            state->slots.resize(static_cast<size_t>(batch));
          }
          std::vector<Tensor> rows;
          rows.reserve(static_cast<size_t>(batch));
          int axis = frames.shape().rank() - 1;
          for (int64_t b = 0; b < batch; ++b) {
            Tensor frame = kernels::slice_rows(frames, b, 1);
            auto& history = state->slots[static_cast<size_t>(b)];
            history.push_back(frame);
            while (static_cast<int64_t>(history.size()) > k) {
              history.pop_front();
            }
            std::vector<Tensor> window(history.begin(), history.end());
            // Left-pad with the oldest frame until the window is full.
            while (static_cast<int64_t>(window.size()) < k) {
              window.insert(window.begin(), window.front());
            }
            rows.push_back(kernels::concat(window, axis));
          }
          return std::vector<Tensor>{kernels::concat(rows, 0)};
        };
        return graph_fn_custom(ctx, "stack", kernel, inputs, {out_space});
      });

  // reset() clears every slot's history (episode boundary).
  register_api("reset",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 auto state = state_;
                 CustomKernel kernel = [state](const std::vector<Tensor>&) {
                   for (auto& slot : state->slots) slot.clear();
                   return std::vector<Tensor>{Tensor::scalar_int(0)};
                 };
                 return graph_fn_custom(ctx, "reset", kernel, inputs,
                                        {IntBox(1 << 30)});
               });
}

PreprocessorStack::PreprocessorStack(std::string name, const Json& config)
    : Component(std::move(name)) {
  RLG_REQUIRE(config.is_array(), "preprocessor config must be a list");
  int index = 0;
  for (const Json& spec : config.as_array()) {
    const std::string type = spec.get_string("type", "");
    std::string sname = type + "-" + std::to_string(index++);
    if (type == "grayscale") {
      stages_.push_back(add_component(std::make_shared<GrayScale>(sname)));
    } else if (type == "rescale") {
      stages_.push_back(add_component(std::make_shared<Rescale>(
          sname, spec.get_double("scale", 1.0),
          spec.get_double("offset", 0.0))));
    } else if (type == "clip") {
      stages_.push_back(add_component(std::make_shared<ClipValue>(
          sname, spec.get_double("lo", -1.0), spec.get_double("hi", 1.0))));
    } else if (type == "frame_stack") {
      stages_.push_back(add_component(std::make_shared<FrameStack>(
          sname, spec.get_int("num_frames", 4))));
    } else {
      throw ConfigError("unknown preprocessor type: " + type);
    }
  }

  register_api("preprocess",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 RLG_REQUIRE(inputs.size() == 1, "preprocess expects (x)");
                 OpRec current = inputs[0];
                 for (Component* stage : stages_) {
                   current = stage->call_api(ctx, "preprocess", {current})[0];
                 }
                 return OpRecs{current};
               });

  register_api("reset",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 OpRecs out;
                 for (Component* stage : stages_) {
                   if (stage->has_api("reset")) {
                     out = stage->call_api(ctx, "reset", inputs);
                   }
                 }
                 if (out.empty()) {
                   // No stateful stages: constant zero op keeps the API
                   // signature uniform.
                   out = graph_fn(
                       ctx, "noop",
                       [](OpContext& ops, const std::vector<OpRef>&) {
                         return std::vector<OpRef>{
                             ops.constant(Tensor::scalar_int(0))};
                       },
                       {}, 1, {IntBox(1 << 30)});
                 }
                 return out;
               });
}

}  // namespace rlgraph
