// Preprocessing components. All pre-processing heuristics are first-class
// components (individually buildable/testable), configured declaratively:
//   [{"type": "grayscale"}, {"type": "rescale", "scale": 0.00392},
//    {"type": "frame_stack", "num_frames": 4}]
#pragma once

#include <deque>
#include <memory>

#include "core/component.h"
#include "util/json.h"

namespace rlgraph {

// Channel-mean grayscale: [B, H, W, C] -> [B, H, W, 1].
class GrayScale : public Component {
 public:
  explicit GrayScale(std::string name);
};

// x * scale + offset.
class Rescale : public Component {
 public:
  Rescale(std::string name, double scale, double offset = 0.0);

 private:
  double scale_;
  double offset_;
};

// clip(x, lo, hi) — used for reward clipping.
class ClipValue : public Component {
 public:
  ClipValue(std::string name, double lo, double hi);

 private:
  double lo_, hi_;
};

// Stateful frame stacking along the channel axis: [B, H, W, C] ->
// [B, H, W, C * k]. Keeps a per-slot (per vectorized-env index) history; the
// batch index identifies the slot. reset() clears all histories (call on
// episode boundaries of the vector as a whole) — per-slot reset via
// reset_slot kernel input.
class FrameStack : public Component {
 public:
  FrameStack(std::string name, int64_t num_frames);

  struct State {
    std::vector<std::deque<Tensor>> slots;
  };

 private:
  int64_t num_frames_;
  std::shared_ptr<State> state_;
};

// A configurable stack of the above with a single "preprocess" API.
class PreprocessorStack : public Component {
 public:
  PreprocessorStack(std::string name, const Json& config);

  size_t num_stages() const { return stages_.size(); }

 private:
  std::vector<Component*> stages_;
};

}  // namespace rlgraph
