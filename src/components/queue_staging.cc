#include "components/queue_staging.h"

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

namespace {

// Resolve a box space to a concrete zero tensor (unknown dims -> 1).
Tensor zeros_for(const SpacePtr& space) {
  const auto& box = static_cast<const BoxSpace&>(*space);
  std::vector<int64_t> dims = box.full_shape().dims();
  for (int64_t& d : dims) {
    if (d == kUnknownDim) d = 1;
  }
  return Tensor::zeros(box.dtype(), Shape(dims));
}

}  // namespace

QueueComponent::QueueComponent(std::string name,
                               std::shared_ptr<SharedTensorQueue> queue,
                               std::vector<SpacePtr> slot_spaces)
    : Component(std::move(name)), queue_(std::move(queue)),
      slot_spaces_(std::move(slot_spaces)) {
  RLG_REQUIRE(queue_ != nullptr, "QueueComponent requires a queue");
  RLG_REQUIRE(!slot_spaces_.empty(), "queue slot signature required");

  // enqueue(leaves...) -> queue size after insert (blocks when full).
  register_api("enqueue",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 auto q = queue_;
                 CustomKernel kernel = [q](const std::vector<Tensor>& in) {
                   bool ok = q->push(TensorSlot(in.begin(), in.end()));
                   RLG_REQUIRE(ok, "enqueue on closed queue");
                   return std::vector<Tensor>{Tensor::scalar_int(
                       static_cast<int32_t>(q->size()))};
                 };
                 return graph_fn_custom(ctx, "enqueue", kernel, inputs,
                                        {IntBox(1 << 30)});
               });

  // dequeue() -> leaves (blocks until an element is available).
  register_api("dequeue",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 auto q = queue_;
                 size_t arity = slot_spaces_.size();
                 CustomKernel kernel =
                     [q, arity](const std::vector<Tensor>&) {
                       auto slot = q->pop();
                       RLG_REQUIRE(slot.has_value(),
                                   "dequeue on closed, drained queue");
                       RLG_REQUIRE(slot->size() == arity,
                                   "queue slot arity mismatch");
                       return *std::move(slot);
                     };
                 return graph_fn_custom(ctx, "dequeue", kernel, inputs,
                                        slot_spaces_);
               });
}

StagingArea::StagingArea(std::string name, std::vector<SpacePtr> slot_spaces)
    : Component(std::move(name)), slot_spaces_(std::move(slot_spaces)),
      state_(std::make_shared<State>()) {
  RLG_REQUIRE(!slot_spaces_.empty(), "staging slot signature required");

  register_api(
      "stage_and_get",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        auto state = state_;
        std::vector<SpacePtr> spaces = slot_spaces_;
        CustomKernel kernel = [state, spaces](const std::vector<Tensor>& in) {
          TensorSlot previous;
          if (state->filled) {
            previous = state->slot;
          } else {
            previous.reserve(spaces.size());
            for (const SpacePtr& s : spaces) previous.push_back(zeros_for(s));
          }
          state->slot.assign(in.begin(), in.end());
          state->filled = true;
          return previous;
        };
        return graph_fn_custom(ctx, "stage_and_get", kernel, inputs,
                               slot_spaces_);
      });
}

}  // namespace rlgraph
