// Queue and staging-area components for in-graph pipelines (IMPALA, §5.1):
// actors enqueue rollouts into a globally shared blocking queue; the learner
// dequeues and uses a staging area to overlap host work with device compute.
//
// The queue object itself is shared across the actor and learner component
// graphs (the in-process analogue of a TF shared FIFOQueue between workers).
#pragma once

#include <memory>

#include "core/component.h"
#include "util/queues.h"

namespace rlgraph {

// The shared queue payload: one rollout = the flattened leaf tensors.
using TensorSlot = std::vector<Tensor>;
using SharedTensorQueue = BlockingQueue<TensorSlot>;

class QueueComponent : public Component {
 public:
  // `slot_spaces` declares the leaf signature of one queue element (used for
  // the dequeue output signature).
  QueueComponent(std::string name, std::shared_ptr<SharedTensorQueue> queue,
                 std::vector<SpacePtr> slot_spaces);

  SharedTensorQueue& queue() { return *queue_; }

 private:
  std::shared_ptr<SharedTensorQueue> queue_;
  std::vector<SpacePtr> slot_spaces_;
};

// Single-slot staging area: stage_and_get(x...) stores the new batch and
// returns the previously staged one (zeros on the first call), hiding
// transfer latency behind compute like a device staging area.
class StagingArea : public Component {
 public:
  StagingArea(std::string name, std::vector<SpacePtr> slot_spaces);

 private:
  struct State {
    bool filled = false;
    TensorSlot slot;
  };
  std::vector<SpacePtr> slot_spaces_;
  std::shared_ptr<State> state_;
};

}  // namespace rlgraph
