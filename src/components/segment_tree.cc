#include "components/segment_tree.h"

#include <limits>

#include "core/build_context.h"
#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

namespace {
int64_t next_pow2(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

SumSegmentTree::SumSegmentTree(int64_t capacity)
    : capacity_(next_pow2(capacity)) {
  RLG_REQUIRE(capacity > 0, "segment tree capacity must be positive");
  tree_.assign(static_cast<size_t>(2 * capacity_), 0.0);
}

void SumSegmentTree::update(int64_t index, double value) {
  RLG_REQUIRE(index >= 0 && index < capacity_,
              "segment tree index " << index << " out of range");
  RLG_REQUIRE(value >= 0.0, "sum tree values must be >= 0, got " << value);
  int64_t i = index + capacity_;
  tree_[static_cast<size_t>(i)] = value;
  for (i >>= 1; i >= 1; i >>= 1) {
    tree_[static_cast<size_t>(i)] = tree_[static_cast<size_t>(2 * i)] +
                                    tree_[static_cast<size_t>(2 * i + 1)];
  }
}

double SumSegmentTree::get(int64_t index) const {
  RLG_REQUIRE(index >= 0 && index < capacity_, "index out of range");
  return tree_[static_cast<size_t>(index + capacity_)];
}

double SumSegmentTree::sum(int64_t begin, int64_t end) const {
  RLG_REQUIRE(begin >= 0 && end <= capacity_ && begin <= end,
              "bad sum range");
  double result = 0.0;
  int64_t lo = begin + capacity_, hi = end + capacity_;
  while (lo < hi) {
    if (lo & 1) result += tree_[static_cast<size_t>(lo++)];
    if (hi & 1) result += tree_[static_cast<size_t>(--hi)];
    lo >>= 1;
    hi >>= 1;
  }
  return result;
}

int64_t SumSegmentTree::prefix_sum_index(double mass) const {
  RLG_REQUIRE(mass >= 0.0, "prefix mass must be >= 0");
  int64_t i = 1;
  while (i < capacity_) {
    double left = tree_[static_cast<size_t>(2 * i)];
    if (mass < left) {
      i = 2 * i;
    } else {
      mass -= left;
      i = 2 * i + 1;
    }
  }
  return i - capacity_;
}

MinSegmentTree::MinSegmentTree(int64_t capacity)
    : capacity_(next_pow2(capacity)) {
  RLG_REQUIRE(capacity > 0, "segment tree capacity must be positive");
  tree_.assign(static_cast<size_t>(2 * capacity_),
               std::numeric_limits<double>::infinity());
}

void MinSegmentTree::update(int64_t index, double value) {
  RLG_REQUIRE(index >= 0 && index < capacity_, "index out of range");
  int64_t i = index + capacity_;
  tree_[static_cast<size_t>(i)] = value;
  for (i >>= 1; i >= 1; i >>= 1) {
    tree_[static_cast<size_t>(i)] =
        std::min(tree_[static_cast<size_t>(2 * i)],
                 tree_[static_cast<size_t>(2 * i + 1)]);
  }
}

double MinSegmentTree::get(int64_t index) const {
  RLG_REQUIRE(index >= 0 && index < capacity_, "index out of range");
  return tree_[static_cast<size_t>(index + capacity_)];
}

double MinSegmentTree::min(int64_t begin, int64_t end) const {
  RLG_REQUIRE(begin >= 0 && end <= capacity_ && begin <= end,
              "bad min range");
  double result = std::numeric_limits<double>::infinity();
  int64_t lo = begin + capacity_, hi = end + capacity_;
  while (lo < hi) {
    if (lo & 1) result = std::min(result, tree_[static_cast<size_t>(lo++)]);
    if (hi & 1) result = std::min(result, tree_[static_cast<size_t>(--hi)]);
    lo >>= 1;
    hi >>= 1;
  }
  return result;
}

SegmentTreeComponent::SegmentTreeComponent(std::string name, int64_t capacity)
    : Component(std::move(name)), capacity_(capacity),
      sum_tree_(std::make_shared<SumSegmentTree>(capacity)),
      min_tree_(std::make_shared<MinSegmentTree>(capacity)) {
  // update(indices int32 [n], values float [n]) -> count written.
  register_api("update",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 RLG_REQUIRE(inputs.size() == 2,
                             "segment-tree update expects (indices, values)");
                 auto sum = sum_tree_;
                 auto min = min_tree_;
                 CustomKernel kernel =
                     [sum, min](const std::vector<Tensor>& in) {
                       const Tensor& idx = in[0];
                       const Tensor& val = in[1];
                       const int32_t* pi = idx.data<int32_t>();
                       for (int64_t i = 0; i < idx.num_elements(); ++i) {
                         double v = val.at_flat(i);
                         sum->update(pi[i], v);
                         min->update(pi[i], v);
                       }
                       return std::vector<Tensor>{Tensor::scalar_int(
                           static_cast<int32_t>(idx.num_elements()))};
                     };
                 return graph_fn_custom(ctx, "update", kernel, inputs,
                                        {IntBox(1 << 30)});
               });

  // total() -> float scalar sum of all priorities.
  register_api("total",
               [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
                 auto sum = sum_tree_;
                 CustomKernel kernel = [sum](const std::vector<Tensor>&) {
                   return std::vector<Tensor>{
                       Tensor::scalar(static_cast<float>(sum->total()))};
                 };
                 return graph_fn_custom(ctx, "total", kernel, inputs,
                                        {FloatBox()});
               });

  // sample_proportional(n int scalar, limit int scalar) -> indices int32 [n]
  // drawn with probability proportional to priority, restricted to [0,limit).
  register_api(
      "sample_proportional",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 2,
                    "sample_proportional expects (n, limit)");
        auto sum = sum_tree_;
        // Per-executor RNG captured at build time keeps sampling
        // deterministic under a fixed seed.
        Rng* rng = ctx.building() || ctx.running() ? &ctx.ops().rng() : nullptr;
        CustomKernel kernel = [sum, rng](const std::vector<Tensor>& in) {
          int64_t n = static_cast<int64_t>(in[0].scalar_value());
          int64_t limit = static_cast<int64_t>(in[1].scalar_value());
          double mass_total = sum->sum(0, std::max<int64_t>(limit, 1));
          Tensor out(DType::kInt32, Shape{n});
          int32_t* po = out.mutable_data<int32_t>();
          for (int64_t i = 0; i < n; ++i) {
            double mass = rng->uniform(0.0, mass_total);
            int64_t idx = sum->prefix_sum_index(mass);
            if (idx >= limit) idx = limit - 1;
            po[i] = static_cast<int32_t>(idx);
          }
          return std::vector<Tensor>{out};
        };
        auto out_space = std::make_shared<BoxSpace>(DType::kInt32, Shape{},
                                                    0, 1e18);
        return graph_fn_custom(ctx, "sample_proportional", kernel, inputs,
                               {out_space->with_batch_rank()});
      });
}

}  // namespace rlgraph
