// Segment trees for prioritized experience replay.
//
// SumSegmentTree / MinSegmentTree are the plain data structures; the
// SegmentTree component wraps them behind API methods so priority management
// is itself an individually buildable and testable sub-graph (paper Fig. 2:
// the prioritized-replay component owns a segment-tree sub-component).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/component.h"
#include "util/random.h"

namespace rlgraph {

// Classic power-of-two segment tree with sum reduction and prefix-sum
// descent (O(log n) update/query).
class SumSegmentTree {
 public:
  explicit SumSegmentTree(int64_t capacity);

  int64_t capacity() const { return capacity_; }
  void update(int64_t index, double value);
  double get(int64_t index) const;
  // Sum over [begin, end).
  double sum(int64_t begin, int64_t end) const;
  double total() const { return sum(0, capacity_); }
  // Smallest index such that sum(0, index+1) > mass (for proportional
  // sampling); mass must be in [0, total()).
  int64_t prefix_sum_index(double mass) const;

 private:
  int64_t capacity_;
  std::vector<double> tree_;
};

class MinSegmentTree {
 public:
  explicit MinSegmentTree(int64_t capacity);

  void update(int64_t index, double value);
  double get(int64_t index) const;
  double min(int64_t begin, int64_t end) const;
  double min_all() const { return min(0, capacity_); }

 private:
  int64_t capacity_;
  std::vector<double> tree_;
};

// Component wrapper: priority bookkeeping as API methods over custom
// stateful kernels.
class SegmentTreeComponent : public Component {
 public:
  SegmentTreeComponent(std::string name, int64_t capacity);

  SumSegmentTree& sum_tree() { return *sum_tree_; }
  MinSegmentTree& min_tree() { return *min_tree_; }

 private:
  int64_t capacity_;
  std::shared_ptr<SumSegmentTree> sum_tree_;
  std::shared_ptr<MinSegmentTree> min_tree_;
};

}  // namespace rlgraph
