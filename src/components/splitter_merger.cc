#include "components/splitter_merger.h"

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

ContainerSplitter::ContainerSplitter(std::string name, int num_leaves)
    : Component(std::move(name)), num_leaves_(num_leaves) {
  RLG_REQUIRE(num_leaves > 0, "splitter requires num_leaves > 0");
  register_api(
      "split", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 1, "split expects one container record");
        if (ctx.assembling()) {
          return OpRecs(static_cast<size_t>(num_leaves_));
        }
        const OpRec& rec = inputs[0];
        RLG_REQUIRE(rec.space != nullptr, "split: record has no space");
        std::vector<std::pair<std::string, SpacePtr>> leaves;
        rec.space->flatten(&leaves);
        RLG_REQUIRE(static_cast<int>(leaves.size()) == num_leaves_,
                    "splitter declared " << num_leaves_ << " leaves but got "
                                         << leaves.size());
        RLG_REQUIRE(rec.ops.size() == leaves.size(),
                    "split: refs out of sync with space");
        OpRecs out;
        for (size_t i = 0; i < leaves.size(); ++i) {
          out.emplace_back(leaves[i].second, rec.ops[i]);
        }
        return out;
      });
}

ContainerMerger::ContainerMerger(std::string name, SpacePtr target_space)
    : Component(std::move(name)), target_space_(std::move(target_space)) {
  RLG_REQUIRE(target_space_ != nullptr, "merger requires a target space");
  register_api(
      "merge", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        if (ctx.assembling()) return OpRecs(1);
        std::vector<std::pair<std::string, SpacePtr>> leaves;
        target_space_->flatten(&leaves);
        RLG_REQUIRE(inputs.size() == leaves.size(),
                    "merge: got " << inputs.size() << " records for "
                                  << leaves.size() << " leaves");
        OpRec rec;
        rec.space = target_space_;
        for (const OpRec& in : inputs) {
          RLG_REQUIRE(in.single(), "merge: inputs must be single-leaf");
          rec.ops.push_back(in.op());
        }
        return OpRecs{rec};
      });
}

}  // namespace rlgraph
