// Container splitter/merger components: decompose nested-space records into
// leaf records and reassemble them ("nested space splitters and mergers",
// paper §3.3). These are pure record restructurers — no backend ops.
#pragma once

#include "core/component.h"

namespace rlgraph {

class ContainerSplitter : public Component {
 public:
  // `num_leaves` declares the output arity (needed during assembly, when
  // spaces are unknown).
  ContainerSplitter(std::string name, int num_leaves);

 private:
  int num_leaves_;
};

class ContainerMerger : public Component {
 public:
  // Merges leaf records back into `target_space`'s structure.
  ContainerMerger(std::string name, SpacePtr target_space);

 private:
  SpacePtr target_space_;
};

}  // namespace rlgraph
