#include "components/synchronizer.h"

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

Synchronizer::Synchronizer(std::string name, std::string source_prefix,
                           std::string dest_prefix)
    : Component(std::move(name)), source_prefix_(std::move(source_prefix)),
      dest_prefix_(std::move(dest_prefix)) {
  // sync() -> number of variables copied.
  register_api(
      "sync", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        VariableStore* store =
            ctx.assembling() ? nullptr : &ctx.ops().variable_store();
        std::string src = source_prefix_, dst = dest_prefix_;
        CustomKernel kernel = [store, src, dst](const std::vector<Tensor>&) {
          int32_t copied = 0;
          for (const std::string& name : store->names()) {
            if (name.rfind(src, 0) != 0) continue;
            std::string target = dst + name.substr(src.size());
            if (!store->exists(target)) continue;
            store->set(target, store->get(name).clone());
            ++copied;
          }
          RLG_REQUIRE(copied > 0, "synchronizer copied no variables from '"
                                      << src << "' to '" << dst << "'");
          return std::vector<Tensor>{Tensor::scalar_int(copied)};
        };
        return graph_fn_custom(ctx, "sync", kernel, inputs,
                               {IntBox(1 << 30)});
      });
}

}  // namespace rlgraph
