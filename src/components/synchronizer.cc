#include "components/synchronizer.h"

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

Synchronizer::Synchronizer(std::string name, std::string source_prefix,
                           std::string dest_prefix, double tau)
    : Component(std::move(name)), source_prefix_(std::move(source_prefix)),
      dest_prefix_(std::move(dest_prefix)), tau_(tau) {
  RLG_REQUIRE(tau_ > 0.0 && tau_ <= 1.0,
              "synchronizer tau must be in (0, 1], got " << tau_);
  // sync() -> number of variables copied/blended.
  register_api(
      "sync", [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        VariableStore* store =
            ctx.assembling() ? nullptr : &ctx.ops().variable_store();
        std::string src = source_prefix_, dst = dest_prefix_;
        const float tau = static_cast<float>(tau_);
        CustomKernel kernel = [store, src, dst,
                               tau](const std::vector<Tensor>&) {
          int32_t copied = 0;
          for (const std::string& name : store->names()) {
            if (name.rfind(src, 0) != 0) continue;
            std::string target = dst + name.substr(src.size());
            if (!store->exists(target)) continue;
            const Tensor& s = store->get(name);
            if (tau < 1.0f && s.dtype() == DType::kFloat32) {
              Tensor d = store->get(target).clone();
              const float* sp = s.data<float>();
              float* dp = d.mutable_data<float>();
              for (int64_t i = 0; i < d.num_elements(); ++i) {
                dp[i] = tau * sp[i] + (1.0f - tau) * dp[i];
              }
              store->set(target, std::move(d));
            } else {
              store->set(target, s.clone());
            }
            ++copied;
          }
          RLG_REQUIRE(copied > 0, "synchronizer copied no variables from '"
                                      << src << "' to '" << dst << "'");
          return std::vector<Tensor>{Tensor::scalar_int(copied)};
        };
        return graph_fn_custom(ctx, "sync", kernel, inputs,
                               {IntBox(1 << 30)});
      });
}

}  // namespace rlgraph
