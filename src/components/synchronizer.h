// Synchronizer: copies variables from one component scope to another (e.g.
// online policy -> target policy). State synchronization is a component API
// like everything else, so target-network syncs batch into the same session
// call as the update when desired.
#pragma once

#include "core/component.h"

namespace rlgraph {

class Synchronizer : public Component {
 public:
  // Copies every variable named `<source_prefix>/X` to `<dest_prefix>/X`.
  // tau = 1 is a hard copy; tau < 1 is a polyak (exponential moving
  // average) update on float variables: dest = tau*src + (1-tau)*dest.
  Synchronizer(std::string name, std::string source_prefix,
               std::string dest_prefix, double tau = 1.0);

 private:
  std::string source_prefix_;
  std::string dest_prefix_;
  double tau_;
};

}  // namespace rlgraph
