#include "components/vtrace.h"

#include <algorithm>
#include <cmath>

#include "core/build_context.h"
#include "util/errors.h"

namespace rlgraph {

VTraceResult vtrace_from_log_rhos(const std::vector<float>& log_rhos,
                                  const std::vector<float>& discounts,
                                  const std::vector<float>& rewards,
                                  const std::vector<float>& values,
                                  const std::vector<float>& bootstrap,
                                  int64_t batch, int64_t time,
                                  double clip_rho_threshold,
                                  double clip_pg_rho_threshold) {
  size_t n = static_cast<size_t>(batch * time);
  RLG_REQUIRE(log_rhos.size() == n && discounts.size() == n &&
                  rewards.size() == n && values.size() == n &&
                  bootstrap.size() == static_cast<size_t>(batch),
              "vtrace input size mismatch");
  VTraceResult out;
  out.vs.assign(n, 0.0f);
  out.pg_advantages.assign(n, 0.0f);

  for (int64_t b = 0; b < batch; ++b) {
    // Backward recursion: vs_t = V(x_t) + delta_t + gamma_t * c_t *
    // (vs_{t+1} - V(x_{t+1})).
    double acc = 0.0;  // vs_{t+1} - V(x_{t+1})
    for (int64_t t = time - 1; t >= 0; --t) {
      size_t i = static_cast<size_t>(b * time + t);
      double rho = std::exp(log_rhos[i]);
      double clipped_rho = std::min(rho, clip_rho_threshold);
      double c = std::min(rho, 1.0);  // c-bar = 1
      double next_v = t == time - 1 ? bootstrap[static_cast<size_t>(b)]
                                    : values[i + 1];
      double delta =
          clipped_rho * (rewards[i] + discounts[i] * next_v - values[i]);
      acc = delta + discounts[i] * c * acc;
      out.vs[i] = static_cast<float>(values[i] + acc);
    }
    // Policy-gradient advantages use vs_{t+1}.
    for (int64_t t = 0; t < time; ++t) {
      size_t i = static_cast<size_t>(b * time + t);
      double rho = std::exp(log_rhos[i]);
      double clipped_pg_rho = std::min(rho, clip_pg_rho_threshold);
      double vs_next = t == time - 1 ? bootstrap[static_cast<size_t>(b)]
                                     : out.vs[i + 1];
      out.pg_advantages[i] = static_cast<float>(
          clipped_pg_rho *
          (rewards[i] + discounts[i] * vs_next - values[i]));
    }
  }
  return out;
}

IMPALALoss::IMPALALoss(std::string name, double discount, double value_coef,
                       double entropy_coef, double clip_rho,
                       double clip_pg_rho)
    : Component(std::move(name)), discount_(discount), value_coef_(value_coef),
      entropy_coef_(entropy_coef), clip_rho_(clip_rho),
      clip_pg_rho_(clip_pg_rho) {
  // get_loss(behavior_logits [B,T,A], target_logits [B,T,A], actions [B,T],
  //          rewards [B,T], terminals [B,T] bool, values [B,T],
  //          bootstrap [B]) -> (loss, pg_loss, value_loss, entropy)
  register_api(
      "get_loss",
      [this](BuildContext& ctx, const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 7,
                    "get_loss expects (behavior_logits, target_logits, "
                    "actions, rewards, terminals, values, bootstrap)");
        int64_t T = 0, A = 0;
        if (!ctx.assembling()) {
          RLG_REQUIRE(inputs[1].space != nullptr && inputs[1].space->is_box(),
                      "target_logits space required");
          const auto& box = static_cast<const BoxSpace&>(*inputs[1].space);
          RLG_REQUIRE(box.value_shape().rank() == 2,
                      "logits must be [B, T, A] with batch rank, got value "
                      "shape " << box.value_shape().to_string());
          T = box.value_shape().dim(0);
          A = box.value_shape().dim(1);
        }

        // Differentiable quantities via ops.
        OpRecs pieces = graph_fn(
            ctx, "log_probs",
            [T, A](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef mu_logits = in[0], pi_logits = in[1], actions = in[2];
              OpRef flat_pi = ops.reshape(pi_logits, Shape{kUnknownDim, A});
              OpRef flat_mu = ops.reshape(mu_logits, Shape{kUnknownDim, A});
              OpRef flat_a = ops.reshape(actions, Shape{kUnknownDim});
              OpRef log_pi_a = ops.select_columns(
                  ops.log_softmax(flat_pi), flat_a);  // [B*T]
              OpRef log_mu_a = ops.select_columns(
                  ops.log_softmax(flat_mu), flat_a);
              OpRef log_rhos = ops.reshape(
                  ops.sub(ops.stop_gradient(log_pi_a), log_mu_a),
                  Shape{kUnknownDim, T});
              OpRef log_pi_bt =
                  ops.reshape(log_pi_a, Shape{kUnknownDim, T});
              // Entropy of the target policy (per step, averaged).
              OpRef p = ops.softmax(flat_pi);
              OpRef logp = ops.log_softmax(flat_pi);
              OpRef entropy = ops.neg(
                  ops.reduce_mean(ops.reduce_sum(ops.mul(p, logp), 1)));
              return std::vector<OpRef>{log_rhos, log_pi_bt, entropy};
            },
            {inputs[0], inputs[1], inputs[2]}, 3);

        OpRecs discounts = graph_fn(
            ctx, "discounts",
            [this](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef not_term = ops.sub(ops.scalar(1.0f),
                                       ops.cast(in[0], DType::kFloat32));
              return std::vector<OpRef>{ops.mul(
                  ops.scalar(static_cast<float>(discount_)), not_term)};
            },
            {inputs[4]});

        // V-trace targets via custom kernel (constant w.r.t. gradients).
        double rho_c = clip_rho_, pg_rho_c = clip_pg_rho_;
        CustomKernel vtrace_kernel = [rho_c, pg_rho_c](
                                         const std::vector<Tensor>& in) {
          const Tensor& log_rhos = in[0];
          int64_t batch = log_rhos.shape().dim(0);
          int64_t time = log_rhos.shape().dim(1);
          VTraceResult r = vtrace_from_log_rhos(
              log_rhos.to_floats(), in[1].to_floats(), in[2].to_floats(),
              in[3].to_floats(), in[4].to_floats(), batch, time, rho_c,
              pg_rho_c);
          Shape bt = log_rhos.shape();
          return std::vector<Tensor>{Tensor::from_floats(bt, r.vs),
                                     Tensor::from_floats(bt, r.pg_advantages)};
        };
        SpacePtr bt_space = FloatBox(Shape{T})->with_batch_rank();
        OpRecs targets = graph_fn_custom(
            ctx, "vtrace", vtrace_kernel,
            {pieces[0], discounts[0], inputs[3], inputs[5], inputs[6]},
            {bt_space, bt_space});

        // Combine.
        return graph_fn(
            ctx, "combine",
            [this](OpContext& ops, const std::vector<OpRef>& in) {
              OpRef log_pi = in[0], entropy = in[1];
              OpRef values = in[2], vs = in[3], pg_adv = in[4];
              OpRef pg_loss =
                  ops.neg(ops.reduce_mean(ops.mul(log_pi, pg_adv)));
              OpRef v_loss = ops.mul(
                  ops.scalar(0.5f),
                  ops.reduce_mean(
                      ops.square(ops.sub(values, ops.stop_gradient(vs)))));
              OpRef loss = ops.add(
                  pg_loss,
                  ops.sub(ops.mul(ops.scalar(static_cast<float>(value_coef_)),
                                  v_loss),
                          ops.mul(ops.scalar(
                                      static_cast<float>(entropy_coef_)),
                                  entropy)));
              return std::vector<OpRef>{loss, pg_loss, v_loss, entropy};
            },
            {pieces[1], pieces[2], inputs[5], targets[0], targets[1]}, 4,
            {FloatBox(), FloatBox(), FloatBox(), FloatBox()});
      });
}

}  // namespace rlgraph
