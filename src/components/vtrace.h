// V-trace off-policy correction (Espeholt et al. 2018) and the IMPALA loss
// component built on it.
#pragma once

#include <vector>

#include "core/component.h"

namespace rlgraph {

// Plain-math v-trace over a [batch, time] rollout (row-major, time minor).
//
// Inputs (all length batch*time unless noted):
//   log_rhos      log(pi_target(a|s) / pi_behavior(a|s))
//   discounts     gamma * (1 - terminal)
//   rewards
//   values        V(s) under the target network
//   bootstrap     V(s_{T}) per batch row (length batch)
// Outputs: vs (v-trace targets) and pg_advantages, both batch*time.
struct VTraceResult {
  std::vector<float> vs;
  std::vector<float> pg_advantages;
};
VTraceResult vtrace_from_log_rhos(const std::vector<float>& log_rhos,
                                  const std::vector<float>& discounts,
                                  const std::vector<float>& rewards,
                                  const std::vector<float>& values,
                                  const std::vector<float>& bootstrap,
                                  int64_t batch, int64_t time,
                                  double clip_rho_threshold = 1.0,
                                  double clip_pg_rho_threshold = 1.0);

// IMPALA loss: v-trace policy gradient + value baseline + entropy bonus.
// The v-trace targets are computed by a custom kernel (constants w.r.t. the
// gradient, as in the reference implementation); the differentiable parts
// (log-probs, baseline, entropy) are ordinary ops.
class IMPALALoss : public Component {
 public:
  IMPALALoss(std::string name, double discount, double value_coef = 0.5,
             double entropy_coef = 0.01, double clip_rho = 1.0,
             double clip_pg_rho = 1.0);

 private:
  double discount_;
  double value_coef_;
  double entropy_coef_;
  double clip_rho_;
  double clip_pg_rho_;
};

}  // namespace rlgraph
