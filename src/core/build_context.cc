#include "core/build_context.h"

#include "core/component.h"
#include "util/errors.h"

namespace rlgraph {

BuildContext::BuildContext(OpContext* ops, BuildMode mode, MetaGraph* meta,
                           FastPathRecorder* recorder)
    : ops_(ops), mode_(mode), meta_(meta), recorder_(recorder) {
  RLG_REQUIRE(mode == BuildMode::kAssemble || ops != nullptr,
              "build/run modes require a backend context");
}

void BuildContext::push_call(Component* component, const std::string& method) {
  call_stack_.emplace_back(component, method);
}

void BuildContext::pop_call() {
  RLG_CHECK_MSG(!call_stack_.empty(), "pop_call on empty call stack");
  call_stack_.pop_back();
}

Component* BuildContext::current_component() const {
  return call_stack_.empty() ? nullptr : call_stack_.back().first;
}

std::string BuildContext::current_caller_scope() const {
  return call_stack_.empty() ? std::string()
                             : call_stack_.back().first->scope();
}

void BuildContext::record_edge(const std::string& caller,
                               const std::string& callee,
                               const std::string& method) {
  if (meta_ != nullptr && mode_ == BuildMode::kAssemble) {
    meta_->edges.push_back({caller, callee, method});
  }
}

void BuildContext::record_graph_fn(const std::string& component,
                                   const std::string& name) {
  if (meta_ != nullptr && mode_ == BuildMode::kAssemble) {
    meta_->graph_fns.push_back({component, name});
  }
}

}  // namespace rlgraph
