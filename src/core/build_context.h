// BuildContext: the framework state threaded through API methods and graph
// functions during the three build phases and define-by-run execution.
#pragma once

#include <string>
#include <vector>

#include "backend/op_context.h"
#include "core/meta_graph.h"

namespace rlgraph {

class Component;
class FastPathRecorder;

enum class BuildMode {
  kAssemble,  // phase 2: abstract traversal, no backend objects
  kBuild,     // phase 3: ops/variables/placeholders are created
  kRun,       // define-by-run execution of a built component graph
};

class BuildContext {
 public:
  BuildContext(OpContext* ops, BuildMode mode, MetaGraph* meta = nullptr,
               FastPathRecorder* recorder = nullptr);

  OpContext& ops() {
    RLG_CHECK_MSG(ops_ != nullptr, "no backend context in assemble mode");
    return *ops_;
  }
  BuildMode mode() const { return mode_; }
  bool assembling() const { return mode_ == BuildMode::kAssemble; }
  bool building() const { return mode_ == BuildMode::kBuild; }
  bool running() const { return mode_ == BuildMode::kRun; }

  // --- component call stack (drives scoping and meta edges) -----------------
  void push_call(Component* component, const std::string& method);
  void pop_call();
  Component* current_component() const;
  std::string current_caller_scope() const;

  // --- meta graph recording ----------------------------------------------------
  void record_edge(const std::string& caller, const std::string& callee,
                   const std::string& method);
  void record_graph_fn(const std::string& component, const std::string& name);
  MetaGraph* meta() { return meta_; }

  // --- fast-path tracing (define-by-run mode) ------------------------------------
  FastPathRecorder* recorder() { return recorder_; }

  int api_calls() const { return api_calls_; }
  int graph_fn_calls() const { return graph_fn_calls_; }

 private:
  friend class Component;

  OpContext* ops_;
  BuildMode mode_;
  MetaGraph* meta_;
  FastPathRecorder* recorder_;
  std::vector<std::pair<Component*, std::string>> call_stack_;
  int api_calls_ = 0;
  int graph_fn_calls_ = 0;
};

}  // namespace rlgraph
