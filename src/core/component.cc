#include "core/component.h"

#include <algorithm>

#include "core/build_context.h"
#include "core/fast_path.h"
#include "util/errors.h"
#include "util/logging.h"

namespace rlgraph {

OpRef OpRec::op() const {
  RLG_REQUIRE(single(), "op record is not a single-leaf record (has "
                            << ops.size() << " leaves)");
  return ops[0];
}

Component::Component(std::string name) : name_(std::move(name)) {
  RLG_REQUIRE(!name_.empty(), "component name must not be empty");
  RLG_REQUIRE(name_.find('/') == std::string::npos,
              "component name must not contain '/': " << name_);
}

std::string Component::scope() const {
  if (parent_ == nullptr) return name_;
  return parent_->scope() + "/" + name_;
}

void Component::adopt(std::shared_ptr<Component> child) {
  RLG_REQUIRE(child != nullptr, "add_component(nullptr)");
  RLG_REQUIRE(child->parent_ == nullptr,
              "component '" << child->name() << "' already has a parent");
  for (const auto& c : children_) {
    RLG_REQUIRE(c->name() != child->name(),
                "duplicate sub-component name '" << child->name() << "' in '"
                                                 << name_ << "'");
  }
  child->parent_ = this;
  children_.push_back(std::move(child));
}

int Component::component_count() const {
  int n = 1;
  for (const auto& c : children_) n += c->component_count();
  return n;
}

void Component::register_api(const std::string& name, ApiFn fn,
                             bool split_inputs) {
  RLG_REQUIRE(api_methods_.count(name) == 0,
              "API method '" << name << "' already registered on '" << name_
                             << "'");
  api_methods_[name] = ApiMethodInfo{name, std::move(fn), split_inputs};
}

void Component::record_input_spaces(BuildContext& ctx,
                                    const std::string& method,
                                    const OpRecs& inputs) {
  if (!ctx.building()) return;
  std::vector<SpacePtr> spaces;
  spaces.reserve(inputs.size());
  for (const OpRec& rec : inputs) {
    if (rec.space == nullptr) return;  // abstract record; nothing to learn
    spaces.push_back(rec.space);
  }
  auto it = input_spaces_.find(method);
  if (it == input_spaces_.end()) {
    input_spaces_[method] = std::move(spaces);
  }
  // Subsequent calls with differing spaces are legal (e.g. a layer reused on
  // two inputs); variables were created from the first-seen spaces.
}

OpRecs Component::call_api(BuildContext& ctx, const std::string& method,
                           const OpRecs& inputs) {
  auto it = api_methods_.find(method);
  if (it == api_methods_.end()) {
    throw NotFoundError("component '" + scope() + "' has no API method '" +
                        method + "'");
  }
  const ApiMethodInfo& info = it->second;
  ctx.record_edge(ctx.current_caller_scope(), scope(), method);
  record_input_spaces(ctx, method, inputs);
  ctx.push_call(this, method);
  ++ctx.api_calls_;
  OpRecs out;
  try {
    if (info.split_inputs &&
        std::any_of(inputs.begin(), inputs.end(), [](const OpRec& r) {
          return r.space != nullptr && r.space->is_container();
        })) {
      out = call_api_split(ctx, info, inputs);
    } else {
      out = info.fn(ctx, inputs);
    }
  } catch (...) {
    ctx.pop_call();
    throw;
  }
  ctx.pop_call();
  return out;
}

OpRecs Component::call_api_split(BuildContext& ctx, const ApiMethodInfo& info,
                                 const OpRecs& inputs) {
  // Find the leaf structure from the first container input; all container
  // inputs must share it. Single-leaf inputs are broadcast to every call.
  const Space* container = nullptr;
  size_t num_leaves = 0;
  for (const OpRec& rec : inputs) {
    if (rec.space != nullptr && rec.space->is_container()) {
      std::vector<std::pair<std::string, SpacePtr>> leaves;
      rec.space->flatten(&leaves);
      if (container == nullptr) {
        container = rec.space.get();
        num_leaves = leaves.size();
      } else {
        RLG_REQUIRE(leaves.size() == num_leaves,
                    "split API: container inputs disagree on leaf count");
      }
      RLG_REQUIRE(rec.abstract() || rec.ops.size() == num_leaves,
                  "split API: record leaf refs out of sync with its space");
    }
  }
  RLG_CHECK(container != nullptr);

  std::vector<std::pair<std::string, SpacePtr>> leaves;
  container->flatten(&leaves);

  // One call per leaf.
  std::vector<OpRecs> per_leaf_outputs;
  for (size_t leaf = 0; leaf < num_leaves; ++leaf) {
    OpRecs leaf_inputs;
    leaf_inputs.reserve(inputs.size());
    for (const OpRec& rec : inputs) {
      if (rec.space != nullptr && rec.space->is_container()) {
        std::vector<std::pair<std::string, SpacePtr>> rec_leaves;
        rec.space->flatten(&rec_leaves);
        OpRec lr;
        lr.space = rec_leaves[leaf].second;
        if (!rec.abstract()) lr.ops = {rec.ops[leaf]};
        leaf_inputs.push_back(std::move(lr));
      } else {
        leaf_inputs.push_back(rec);
      }
    }
    per_leaf_outputs.push_back(info.fn(ctx, leaf_inputs));
  }

  // Merge outputs: output i across all leaves becomes one container record
  // (structure of the input container, leaf spaces replaced).
  size_t arity = per_leaf_outputs[0].size();
  for (const OpRecs& o : per_leaf_outputs) {
    RLG_REQUIRE(o.size() == arity, "split API produced varying output arity");
  }
  OpRecs merged;
  merged.reserve(arity);
  for (size_t out_i = 0; out_i < arity; ++out_i) {
    OpRec rec;
    std::vector<std::pair<std::string, SpacePtr>> out_leaves;
    std::vector<OpRef> refs;
    bool have_spaces = true;
    for (size_t leaf = 0; leaf < num_leaves; ++leaf) {
      const OpRec& lr = per_leaf_outputs[leaf][out_i];
      if (lr.space == nullptr) have_spaces = false;
      out_leaves.emplace_back(leaves[leaf].first, lr.space);
      if (!lr.abstract()) refs.push_back(lr.op());
    }
    if (have_spaces && !out_leaves.empty()) {
      // Rebuild a Dict space keyed by the flattened paths. (Tuple containers
      // flatten to numeric paths, which round-trip through Dict cleanly for
      // record-keeping purposes.)
      std::vector<std::pair<std::string, SpacePtr>> entries(out_leaves.begin(),
                                                            out_leaves.end());
      rec.space = num_leaves == 1 ? entries[0].second
                                  : Dict(std::move(entries));
    }
    rec.ops = std::move(refs);
    merged.push_back(std::move(rec));
  }
  return merged;
}

bool Component::input_complete() const {
  for (const std::string& api : required_input_apis_) {
    if (input_spaces_.count(api) == 0) return false;
  }
  return true;
}

void Component::ensure_built(BuildContext& ctx) {
  if (built_) return;
  RLG_REQUIRE(!ctx.running(),
              "component '" << scope()
                            << "' reached define-by-run execution unbuilt");
  if (!input_complete()) throw InputIncomplete(this);
  create_variables(ctx);
  built_ = true;
}

void Component::create_variables(BuildContext&) {}

const std::vector<SpacePtr>& Component::api_input_spaces(
    const std::string& api_name) const {
  auto it = input_spaces_.find(api_name);
  if (it == input_spaces_.end()) {
    throw BuildError("no input spaces recorded for API '" + api_name +
                     "' of component '" + scope() + "'");
  }
  return it->second;
}

namespace {

// Derive the output space of a graph function result from its ref signature
// and the batch/time flags of the inputs.
SpacePtr infer_space(OpContext& ops, OpRef ref, bool batch, bool time) {
  Shape s = ops.shape(ref);
  DType dtype = ops.dtype(ref);
  int drop = 0;
  if (batch && s.rank() > drop) ++drop;
  if (time && s.rank() > drop) ++drop;
  std::vector<int64_t> value_dims;
  for (int i = drop; i < s.rank(); ++i) {
    int64_t d = s.dim(i);
    // Unknown non-leading dims cannot be represented in a box space; default
    // them to 0 markers is worse than clamping — use 1 and rely on explicit
    // out_spaces where this matters.
    value_dims.push_back(d == kUnknownDim ? 1 : d);
  }
  auto box = std::make_shared<BoxSpace>(dtype, Shape(value_dims),
                                        -1e30, 1e30);
  return box->with_ranks(batch, time);
}

}  // namespace

OpRecs Component::graph_fn(BuildContext& ctx, const std::string& name,
                           const GraphFnBody& body, const OpRecs& inputs,
                           int num_outputs, std::vector<SpacePtr> out_spaces) {
  ctx.record_graph_fn(scope(), name);
  ++ctx.graph_fn_calls_;

  if (ctx.assembling()) {
    return OpRecs(static_cast<size_t>(num_outputs));
  }

  ensure_built(ctx);

  std::vector<OpRef> refs;
  bool batch = false, time = false;
  refs.reserve(inputs.size());
  for (const OpRec& rec : inputs) {
    RLG_REQUIRE(rec.single(),
                "graph function '" << scope() << "/" << name
                                   << "' requires single-leaf records; split "
                                      "container records first");
    refs.push_back(rec.op());
    if (rec.space != nullptr) {
      batch = batch || rec.space->has_batch_rank();
      time = time || rec.space->has_time_rank();
    }
  }

  OpContext& ops = ctx.ops();
  ops.push_scope(scope());
  std::string prev_device = ops.device();
  if (!device_.empty()) ops.set_device(device_);
  std::vector<OpRef> out_refs;
  try {
    out_refs = body(ops, refs);
  } catch (...) {
    ops.set_device(prev_device);
    ops.pop_scope();
    throw;
  }
  ops.set_device(prev_device);
  ops.pop_scope();

  RLG_REQUIRE(static_cast<int>(out_refs.size()) == num_outputs,
              "graph function '" << scope() << "/" << name << "' returned "
                                 << out_refs.size() << " refs, declared "
                                 << num_outputs);

  if (ctx.recorder() != nullptr) {
    ctx.recorder()->record_step(scope() + "/" + name, body, refs, out_refs);
  }

  OpRecs out;
  out.reserve(out_refs.size());
  for (size_t i = 0; i < out_refs.size(); ++i) {
    SpacePtr space = i < out_spaces.size() && out_spaces[i] != nullptr
                         ? out_spaces[i]
                         : infer_space(ops, out_refs[i], batch, time);
    out.emplace_back(std::move(space), out_refs[i]);
  }
  return out;
}

OpRecs Component::graph_fn_custom(BuildContext& ctx, const std::string& name,
                                  CustomKernel kernel, const OpRecs& inputs,
                                  std::vector<SpacePtr> out_spaces) {
  RLG_REQUIRE(!out_spaces.empty(),
              "graph_fn_custom requires an explicit output signature");
  std::vector<DType> out_dtypes;
  std::vector<Shape> out_shapes;
  for (const SpacePtr& s : out_spaces) {
    RLG_REQUIRE(s != nullptr && s->is_box(),
                "graph_fn_custom output spaces must be boxes");
    const auto& box = static_cast<const BoxSpace&>(*s);
    out_dtypes.push_back(box.dtype());
    out_shapes.push_back(box.full_shape());
  }
  std::string display = scope() + "/" + name;
  GraphFnBody body = [kernel = std::move(kernel), out_dtypes, out_shapes,
                      display](OpContext& ops, const std::vector<OpRef>& in) {
    return ops.apply_custom(display, kernel, in, out_dtypes, out_shapes);
  };
  // Take the count before moving out_spaces (argument evaluation order is
  // unspecified).
  int num_outputs = static_cast<int>(out_spaces.size());
  return graph_fn(ctx, name, body, inputs, num_outputs,
                  std::move(out_spaces));
}

void Component::create_var(BuildContext& ctx, const std::string& name,
                           Tensor initial) {
  std::string scoped = scope() + "/" + name;
  ctx.ops().create_variable(scoped, std::move(initial));
  variable_names_.push_back(scoped);
}

OpRef Component::read_var(BuildContext& ctx, const std::string& name) {
  return ctx.ops().variable(scope() + "/" + name);
}

OpRef Component::assign_var(BuildContext& ctx, const std::string& name,
                            OpRef value) {
  return ctx.ops().assign(scope() + "/" + name, value);
}

OpRef Component::assign_add_var(BuildContext& ctx, const std::string& name,
                                OpRef delta) {
  return ctx.ops().assign_add(scope() + "/" + name, delta);
}

std::vector<std::string> Component::variable_names_recursive() const {
  std::vector<std::string> out = variable_names_;
  for (const auto& c : children_) {
    std::vector<std::string> sub = c->variable_names_recursive();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

OpRecs Component::variable_recs(BuildContext& ctx) {
  if (ctx.assembling()) return {};
  OpRecs out;
  for (const std::string& name : variable_names_recursive()) {
    OpRef ref = ctx.ops().variable(name);
    Shape s = ctx.ops().shape(ref);
    auto space = std::make_shared<BoxSpace>(ctx.ops().dtype(ref),
                                            s.fully_specified() ? s : Shape{},
                                            -1e30, 1e30);
    out.emplace_back(space, ref);
  }
  return out;
}

}  // namespace rlgraph
