// Component: RLgraph's core abstraction (paper §3.2).
//
// A component encapsulates arbitrary computations behind declared API
// methods. Components nest (sub-components), interact only through API-
// method calls (the edges of the component graph), and confine all backend
// code to graph functions. The framework manages scopes, devices, input
// spaces and the variable-creation barrier.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/op_context.h"
#include "spaces/space.h"

namespace rlgraph {

class BuildContext;
class Component;

// What flows through API methods: a space plus one backend op ref per leaf
// of that space (exactly one for plain boxes; several for Dict/Tuple
// records). During the assembly phase both are absent — records are purely
// abstract connectivity tokens.
struct OpRec {
  SpacePtr space;
  std::vector<OpRef> ops;

  OpRec() = default;
  OpRec(SpacePtr s, OpRef ref) : space(std::move(s)), ops{ref} {}
  OpRec(SpacePtr s, std::vector<OpRef> refs)
      : space(std::move(s)), ops(std::move(refs)) {}

  bool abstract() const { return ops.empty(); }
  bool single() const { return ops.size() == 1; }
  // The backend ref; requires a single-leaf record.
  OpRef op() const;
};

using OpRecs = std::vector<OpRec>;

using ApiFn = std::function<OpRecs(BuildContext&, const OpRecs&)>;
// Graph-function body: the only place backend objects (OpRefs via
// OpContext) are manipulated.
using GraphFnBody =
    std::function<std::vector<OpRef>(OpContext&, const std::vector<OpRef>&)>;

struct ApiMethodInfo {
  std::string name;
  ApiFn fn;
  // The @rlgraph_api(split=True) option: container inputs are auto-split
  // into leaves, the method is called once per leaf, and outputs are merged
  // back into a container record.
  bool split_inputs = false;
};

class Component {
 public:
  explicit Component(std::string name);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  // Full scope path from the root, e.g. "agent/policy/dense-0".
  std::string scope() const;
  Component* parent() const { return parent_; }

  // Device assignment for this component's ops and variables ("" inherits
  // the parent's device). Managed explicitly, not via nested contexts.
  void set_device(std::string device) { device_ = std::move(device); }
  const std::string& device() const { return device_; }

  // --- composition (phase 1) -------------------------------------------------
  // Adds a sub-component; returns a non-owning typed pointer for wiring.
  template <typename T>
  T* add_component(std::shared_ptr<T> child) {
    T* raw = child.get();
    adopt(child);
    return raw;
  }
  const std::vector<std::shared_ptr<Component>>& sub_components() const {
    return children_;
  }
  // Number of components in this subtree (incl. self) — the paper's
  // "43 components" metric for DQN.
  int component_count() const;

  // --- API methods -----------------------------------------------------------
  void register_api(const std::string& name, ApiFn fn,
                    bool split_inputs = false);
  bool has_api(const std::string& name) const {
    return api_methods_.count(name) > 0;
  }
  const std::map<std::string, ApiMethodInfo>& api_methods() const {
    return api_methods_;
  }

  // Invoke an API method of this component. This is an edge of the
  // component graph; only through here may components exchange data.
  OpRecs call_api(BuildContext& ctx, const std::string& method,
                  const OpRecs& inputs);

  // --- graph functions ----------------------------------------------------------
  // Runs `body` under this component's scope/device. During assembly the
  // body is NOT executed; `num_outputs` declares the output arity for the
  // abstract record columns. Output spaces are inferred from the resulting
  // refs unless `out_spaces` overrides them.
  OpRecs graph_fn(BuildContext& ctx, const std::string& name,
                  const GraphFnBody& body, const OpRecs& inputs,
                  int num_outputs = 1,
                  std::vector<SpacePtr> out_spaces = {});
  // Stateful component op (memory insert/sample, ...) with an explicit
  // output signature; `kernel` closes over this component's state.
  OpRecs graph_fn_custom(BuildContext& ctx, const std::string& name,
                         CustomKernel kernel, const OpRecs& inputs,
                         std::vector<SpacePtr> out_spaces);

  // --- variables & the input-completeness barrier -----------------------------
  // Override to create this component's variables; called exactly once, when
  // the component becomes input-complete, before any of its graph functions
  // execute.
  virtual void create_variables(BuildContext& ctx);
  // Declare the API methods whose input spaces must be known before
  // create_variables can run (e.g. a memory requires "insert_records").
  // Without a declaration, the component is complete at its first graph-
  // function invocation.
  void require_input_spaces(std::vector<std::string> api_names) {
    required_input_apis_ = std::move(api_names);
  }
  bool input_complete() const;
  bool built() const { return built_; }

  // Input spaces recorded at each API method during the build.
  const std::vector<SpacePtr>& api_input_spaces(
      const std::string& api_name) const;
  bool has_api_input_spaces(const std::string& api_name) const {
    return input_spaces_.count(api_name) > 0;
  }

  // Variable helpers (names are scoped automatically).
  void create_var(BuildContext& ctx, const std::string& name, Tensor initial);
  OpRef read_var(BuildContext& ctx, const std::string& name);
  OpRef assign_var(BuildContext& ctx, const std::string& name, OpRef value);
  OpRef assign_add_var(BuildContext& ctx, const std::string& name,
                       OpRef delta);
  // Fully scoped names of this component's variables (not sub-components').
  const std::vector<std::string>& variable_names() const {
    return variable_names_;
  }
  // Scoped names of all variables in this subtree.
  std::vector<std::string> variable_names_recursive() const;
  // Build-time helper: refs of every trainable variable in this subtree
  // (the paper's component.variables()); empty in assemble mode. Feeds
  // optimizer `step` calls for any component, not just policies.
  OpRecs variable_recs(BuildContext& ctx);

 private:
  friend class GraphBuilder;

  void adopt(std::shared_ptr<Component> child);
  void ensure_built(BuildContext& ctx);
  void record_input_spaces(BuildContext& ctx, const std::string& method,
                           const OpRecs& inputs);
  OpRecs call_api_split(BuildContext& ctx, const ApiMethodInfo& method,
                        const OpRecs& inputs);

  std::string name_;
  std::string device_;
  Component* parent_ = nullptr;
  std::vector<std::shared_ptr<Component>> children_;
  std::map<std::string, ApiMethodInfo> api_methods_;
  std::map<std::string, std::vector<SpacePtr>> input_spaces_;
  std::vector<std::string> required_input_apis_;
  std::vector<std::string> variable_names_;
  bool built_ = false;
};

// Thrown (internally) when a graph function is reached before its component
// is input-complete; the builder defers and retries (paper's iterative
// build).
class InputIncomplete : public std::exception {
 public:
  explicit InputIncomplete(Component* component) : component_(component) {}
  Component* component() const { return component_; }
  const char* what() const noexcept override {
    return "component not input-complete";
  }

 private:
  Component* component_;
};

}  // namespace rlgraph
