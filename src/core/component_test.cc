#include "core/component_test.h"

#include "spaces/nested.h"
#include "util/errors.h"

namespace rlgraph {

ComponentTest::ComponentTest(
    std::shared_ptr<Component> component,
    std::map<std::string, std::vector<SpacePtr>> api_input_spaces,
    ExecutorOptions options)
    : api_input_spaces_(api_input_spaces),
      executor_(std::move(component), std::move(api_input_spaces), options) {
  executor_.build();
}

std::vector<Tensor> ComponentTest::test(const std::string& api,
                                        const std::vector<Tensor>& inputs) {
  return executor_.execute(api, inputs);
}

std::vector<Tensor> ComponentTest::test_with_sampled_inputs(
    const std::string& api, int64_t batch_size, int64_t time_size) {
  auto it = api_input_spaces_.find(api);
  RLG_REQUIRE(it != api_input_spaces_.end(),
              "no input spaces declared for API '" << api << "'");
  std::vector<Tensor> inputs;
  for (const SpacePtr& space : it->second) {
    NestedTensor sample =
        space->sample(executor_.rng(), batch_size, time_size);
    for (auto& [path, tensor] : sample.flatten()) {
      inputs.push_back(std::move(tensor));
    }
  }
  return executor_.execute(api, inputs);
}

std::vector<Tensor> ComponentTest::expect_outputs(
    const std::string& api, const std::vector<Tensor>& inputs,
    size_t expected_leaves) {
  std::vector<Tensor> out = executor_.execute(api, inputs);
  RLG_REQUIRE(out.size() == expected_leaves,
              "API '" << api << "' returned " << out.size()
                      << " leaves, expected " << expected_leaves);
  return out;
}

}  // namespace rlgraph
