// ComponentTest: build any component or component combination as its own
// sub-graph from declared input spaces and call its API with example data —
// the incremental sub-graph testing utility of paper §3.3 / Listing 1.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/graph_executor.h"

namespace rlgraph {

class ComponentTest {
 public:
  // Builds `component` as a root with the given per-API input spaces.
  ComponentTest(std::shared_ptr<Component> component,
                std::map<std::string, std::vector<SpacePtr>> api_input_spaces,
                ExecutorOptions options = {});

  // Execute one API method with explicit leaf tensors.
  std::vector<Tensor> test(const std::string& api,
                           const std::vector<Tensor>& inputs = {});

  // Execute one API method on inputs sampled from its declared spaces.
  std::vector<Tensor> test_with_sampled_inputs(const std::string& api,
                                               int64_t batch_size = 2,
                                               int64_t time_size = 1);

  // Convenience assertion helper: run `api` and check output leaf count.
  std::vector<Tensor> expect_outputs(const std::string& api,
                                     const std::vector<Tensor>& inputs,
                                     size_t expected_leaves);

  GraphExecutor& executor() { return executor_; }
  Rng& rng() { return executor_.rng(); }

 private:
  std::map<std::string, std::vector<SpacePtr>> api_input_spaces_;
  GraphExecutor executor_;
};

}  // namespace rlgraph
