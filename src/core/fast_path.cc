#include "core/fast_path.h"

#include "backend/imperative_context.h"
#include "util/errors.h"
#include "util/logging.h"

namespace rlgraph {

std::vector<Tensor> FastPathProgram::run(
    VariableStore* variables, Rng* rng,
    const std::vector<Tensor>& inputs) const {
  RLG_REQUIRE(valid(), "fast-path program is not valid");
  RLG_REQUIRE(inputs.size() == num_inputs_,
              "fast-path program expects " << num_inputs_ << " inputs, got "
                                           << inputs.size());
  ImperativeContext ctx(variables, rng, /*build_mode=*/false);
  std::vector<OpRef> input_refs;
  input_refs.reserve(inputs.size());
  for (const Tensor& t : inputs) input_refs.push_back(ctx.literal(t));

  std::vector<std::vector<OpRef>> step_outputs(steps_.size());
  auto resolve = [&](const Source& s) -> OpRef {
    if (s.step < 0) return input_refs[static_cast<size_t>(s.index)];
    return step_outputs[static_cast<size_t>(s.step)]
                       [static_cast<size_t>(s.index)];
  };

  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    std::vector<OpRef> args;
    args.reserve(step.sources.size());
    for (const Source& s : step.sources) args.push_back(resolve(s));
    step_outputs[i] = step.body(ctx, args);
    RLG_CHECK_MSG(static_cast<int>(step_outputs[i].size()) ==
                      step.num_outputs,
                  "fast-path step '" << step.label
                                     << "' output arity changed");
  }

  std::vector<Tensor> out;
  out.reserve(outputs_.size());
  for (const Source& s : outputs_) out.push_back(ctx.value(resolve(s)));
  return out;
}

void FastPathRecorder::register_input(OpRef ref, int input_index) {
  sources_[{ref.node, ref.index}] = FastPathProgram::Source{-1, input_index};
}

bool FastPathRecorder::resolve(OpRef ref,
                               FastPathProgram::Source* out) const {
  auto it = sources_.find({ref.node, ref.index});
  if (it == sources_.end()) return false;
  *out = it->second;
  return true;
}

void FastPathRecorder::record_step(const std::string& label,
                                   const GraphFnBody& body,
                                   const std::vector<OpRef>& inputs,
                                   const std::vector<OpRef>& outputs) {
  if (!valid_) return;
  FastPathProgram::Step step;
  step.label = label;
  step.body = body;
  step.num_outputs = static_cast<int>(outputs.size());
  for (const OpRef& in : inputs) {
    FastPathProgram::Source src;
    if (!resolve(in, &src)) {
      invalidate("graph function '" + label +
                 "' consumed a ref of unknown origin");
      return;
    }
    step.sources.push_back(src);
  }
  int step_index = static_cast<int>(steps_.size());
  for (size_t i = 0; i < outputs.size(); ++i) {
    sources_[{outputs[i].node, outputs[i].index}] =
        FastPathProgram::Source{step_index, static_cast<int>(i)};
  }
  steps_.push_back(std::move(step));
}

void FastPathRecorder::invalidate(const std::string& reason) {
  if (valid_) {
    RLG_LOG_DEBUG << "fast-path contraction disabled: " << reason;
  }
  valid_ = false;
}

FastPathProgram FastPathRecorder::finish(const std::vector<OpRef>& outputs,
                                         size_t num_inputs) {
  FastPathProgram program;
  program.valid_ = valid_;
  program.num_inputs_ = num_inputs;
  for (const OpRef& out : outputs) {
    FastPathProgram::Source src;
    if (!resolve(out, &src)) {
      program.valid_ = false;
      break;
    }
    program.outputs_.push_back(src);
  }
  program.steps_ = std::move(steps_);
  return program;
}

}  // namespace rlgraph
