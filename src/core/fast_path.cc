#include "core/fast_path.h"

#include "backend/imperative_context.h"
#include "util/errors.h"
#include "util/logging.h"

namespace rlgraph {

// Replays the recorded graph-function bodies ONCE through a build-mode tape
// (stateful ops fabricate their outputs, so component state is untouched),
// then converts every tape entry into a CompiledPlan step. After this the
// program has no interpreter of its own: replays run the shared plan
// executor, identical to a Session run.
std::shared_ptr<const CompiledPlan> FastPathProgram::lower(
    VariableStore* variables, Rng* rng,
    const std::vector<Tensor>& inputs) const {
  ImperativeContext lctx(variables, rng, /*build_mode=*/true);

  // Inputs are injected first, so tape ids 0..num_inputs_-1 are exactly the
  // program inputs in positional order.
  std::vector<OpRef> input_refs;
  input_refs.reserve(inputs.size());
  for (const Tensor& t : inputs) input_refs.push_back(lctx.literal(t));

  std::vector<std::vector<OpRef>> step_outputs(steps_.size());
  auto resolve = [&](const Source& s) -> OpRef {
    if (s.step < 0) return input_refs[static_cast<size_t>(s.index)];
    return step_outputs[static_cast<size_t>(s.step)]
                       [static_cast<size_t>(s.index)];
  };
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    std::vector<OpRef> args;
    args.reserve(step.sources.size());
    for (const Source& s : step.sources) args.push_back(resolve(s));
    step_outputs[i] = step.body(lctx, args);
    RLG_CHECK_MSG(
        static_cast<int>(step_outputs[i].size()) == step.num_outputs,
        "fast-path step '" << step.label << "' output arity changed");
  }

  CompiledPlan::Builder builder;
  const size_t tape_size = lctx.tape_size();
  std::vector<int> base_slot(tape_size, -1);
  for (size_t id = 0; id < tape_size; ++id) {
    RefInfo info = lctx.info(static_cast<int>(id));
    if (id < num_inputs_) {
      base_slot[id] = builder.add_input();
      continue;
    }
    if (info.op == "Const") {
      base_slot[id] = builder.add_const(lctx.value({static_cast<int>(id), 0}));
      continue;
    }
    RLG_REQUIRE(info.op != "Placeholder",
                "fast-path body created a placeholder at replay time; the "
                "program cannot be lowered");
    NodeDef node;
    node.op = info.op;
    node.name = info.op;
    node.attrs = std::move(info.attrs);
    node.custom_kernel = std::move(info.custom_kernel);
    std::vector<int> input_slots;
    input_slots.reserve(info.inputs.size());
    for (const OpRef& r : info.inputs) {
      input_slots.push_back(base_slot[static_cast<size_t>(r.node)] + r.index);
    }
    base_slot[id] = builder.add_step(std::move(node), input_slots,
                                     static_cast<int>(info.outputs.size()));
  }

  std::vector<int> out_slots;
  out_slots.reserve(outputs_.size());
  for (const Source& s : outputs_) {
    OpRef ref = resolve(s);
    out_slots.push_back(base_slot[static_cast<size_t>(ref.node)] + ref.index);
  }
  builder.set_outputs(std::move(out_slots));
  std::shared_ptr<const CompiledPlan> plan = builder.finish();
  RLG_LOG_DEBUG << "fast-path lowered " << steps_.size()
                << " contracted steps to a compiled plan with "
                << plan->num_steps() << " kernel steps";
  return plan;
}

std::shared_ptr<const CompiledPlan> FastPathProgram::plan() const {
  std::lock_guard<std::mutex> lock(exec_->mutex);
  return exec_->plan;
}

std::vector<Tensor> FastPathProgram::run(
    VariableStore* variables, Rng* rng,
    const std::vector<Tensor>& inputs) const {
  RLG_REQUIRE(valid(), "fast-path program is not valid");
  RLG_REQUIRE(inputs.size() == num_inputs_,
              "fast-path program expects " << num_inputs_ << " inputs, got "
                                           << inputs.size());
  ExecState& state = *exec_;
  std::shared_ptr<const CompiledPlan> plan;
  std::unique_ptr<RunArena> arena;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.plan) state.plan = lower(variables, rng, inputs);
    plan = state.plan;
    if (!state.free_arenas.empty()) {
      arena = std::move(state.free_arenas.back());
      state.free_arenas.pop_back();
    }
  }
  if (!arena) arena = std::make_unique<RunArena>();
  std::vector<Tensor> out;
  try {
    out = plan->execute(*arena, inputs, variables, rng);
  } catch (...) {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.free_arenas.push_back(std::move(arena));
    throw;
  }
  std::lock_guard<std::mutex> lock(state.mutex);
  state.free_arenas.push_back(std::move(arena));
  return out;
}

void FastPathRecorder::register_input(OpRef ref, int input_index) {
  sources_[{ref.node, ref.index}] = FastPathProgram::Source{-1, input_index};
}

bool FastPathRecorder::resolve(OpRef ref,
                               FastPathProgram::Source* out) const {
  auto it = sources_.find({ref.node, ref.index});
  if (it == sources_.end()) return false;
  *out = it->second;
  return true;
}

void FastPathRecorder::record_step(const std::string& label,
                                   const GraphFnBody& body,
                                   const std::vector<OpRef>& inputs,
                                   const std::vector<OpRef>& outputs) {
  if (!valid_) return;
  FastPathProgram::Step step;
  step.label = label;
  step.body = body;
  step.num_outputs = static_cast<int>(outputs.size());
  for (const OpRef& in : inputs) {
    FastPathProgram::Source src;
    if (!resolve(in, &src)) {
      invalidate("graph function '" + label +
                 "' consumed a ref of unknown origin");
      return;
    }
    step.sources.push_back(src);
  }
  int step_index = static_cast<int>(steps_.size());
  for (size_t i = 0; i < outputs.size(); ++i) {
    sources_[{outputs[i].node, outputs[i].index}] =
        FastPathProgram::Source{step_index, static_cast<int>(i)};
  }
  steps_.push_back(std::move(step));
}

void FastPathRecorder::invalidate(const std::string& reason) {
  if (valid_) {
    RLG_LOG_DEBUG << "fast-path contraction disabled: " << reason;
  }
  valid_ = false;
}

FastPathProgram FastPathRecorder::finish(const std::vector<OpRef>& outputs,
                                         size_t num_inputs) {
  FastPathProgram program;
  program.valid_ = valid_;
  program.num_inputs_ = num_inputs;
  for (const OpRef& out : outputs) {
    FastPathProgram::Source src;
    if (!resolve(out, &src)) {
      program.valid_ = false;
      break;
    }
    program.outputs_.push_back(src);
  }
  program.steps_ = std::move(steps_);
  return program;
}

}  // namespace rlgraph
