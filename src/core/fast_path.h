// Fast-path edge contraction for define-by-run execution (paper §5.1).
//
// Dispatching a define-by-run API call through nested component API methods
// costs one indirection per edge. When the graph builder can identify that a
// call is a pure chain of graph functions (calls are edges, components are
// vertices), it contracts the edges: the traced program invokes the graph-
// function bodies directly with pre-computed argument routing, skipping all
// intermediate component calls.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "backend/op_context.h"
#include "core/component.h"

namespace rlgraph {

class FastPathProgram {
 public:
  struct Source {
    int step = -1;  // -1: API input, else producing step index
    int index = 0;  // input index or step output index
  };
  struct Step {
    GraphFnBody body;
    std::vector<Source> sources;
    int num_outputs = 0;
    std::string label;  // "component-scope/fn-name" for diagnostics
  };

  bool valid() const { return valid_ && !steps_.empty(); }
  size_t num_steps() const { return steps_.size(); }

  // Replays the contracted program against fresh inputs.
  std::vector<Tensor> run(VariableStore* variables, Rng* rng,
                          const std::vector<Tensor>& inputs) const;

 private:
  friend class FastPathRecorder;

  std::vector<Step> steps_;
  std::vector<Source> outputs_;
  size_t num_inputs_ = 0;
  bool valid_ = false;
};

// Records a program during one normally-dispatched define-by-run call.
class FastPathRecorder {
 public:
  void register_input(OpRef ref, int input_index);
  // Called by Component::graph_fn after the body executed.
  void record_step(const std::string& label, const GraphFnBody& body,
                   const std::vector<OpRef>& inputs,
                   const std::vector<OpRef>& outputs);
  // Mark the recording as non-contractible (e.g. a ref of unknown origin).
  void invalidate(const std::string& reason);

  FastPathProgram finish(const std::vector<OpRef>& outputs,
                         size_t num_inputs);

 private:
  bool resolve(OpRef ref, FastPathProgram::Source* out) const;

  std::map<std::pair<int, int>, FastPathProgram::Source> sources_;
  std::vector<FastPathProgram::Step> steps_;
  bool valid_ = true;
};

}  // namespace rlgraph
