// Fast-path edge contraction for define-by-run execution (paper §5.1).
//
// Dispatching a define-by-run API call through nested component API methods
// costs one indirection per edge. When the graph builder can identify that a
// call is a pure chain of graph functions (calls are edges, components are
// vertices), it contracts the edges and LOWERS the contracted program onto
// the shared CompiledPlan layer (graph/exec_plan.h): the graph-function
// bodies are replayed once through a side-effect-free build-mode tape, and
// every tape op becomes a plan step with its kernel resolved and its
// operands routed through dense value slots. Steady-state replays then run
// the exact same compiled-plan executor as the static backend's Session —
// there is no second interpreter.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/op_context.h"
#include "core/component.h"
#include "graph/exec_plan.h"

namespace rlgraph {

class FastPathProgram {
 public:
  struct Source {
    int step = -1;  // -1: API input, else producing step index
    int index = 0;  // input index or step output index
  };
  struct Step {
    GraphFnBody body;
    std::vector<Source> sources;
    int num_outputs = 0;
    std::string label;  // "component-scope/fn-name" for diagnostics
  };

  bool valid() const { return valid_ && !steps_.empty(); }
  size_t num_steps() const { return steps_.size(); }

  // Executes the contracted program against fresh inputs. The first call
  // lowers the recorded steps into a CompiledPlan (one build-mode replay,
  // no stateful side effects); subsequent calls execute the plan directly.
  // Safe to call concurrently: runs check arenas out of a shared pool.
  std::vector<Tensor> run(VariableStore* variables, Rng* rng,
                          const std::vector<Tensor>& inputs) const;

  // The lowered plan (null until the first run).
  std::shared_ptr<const CompiledPlan> plan() const;

 private:
  friend class FastPathRecorder;

  // Plan + arena pool live behind a shared_ptr so copies of a program share
  // one lowered plan and its recycled arenas/buffers.
  struct ExecState {
    std::mutex mutex;
    std::shared_ptr<const CompiledPlan> plan;
    std::vector<std::unique_ptr<RunArena>> free_arenas;
  };

  std::shared_ptr<const CompiledPlan> lower(VariableStore* variables, Rng* rng,
                                            const std::vector<Tensor>& inputs)
      const;

  std::vector<Step> steps_;
  std::vector<Source> outputs_;
  size_t num_inputs_ = 0;
  bool valid_ = false;
  std::shared_ptr<ExecState> exec_ = std::make_shared<ExecState>();
};

// Records a program during one normally-dispatched define-by-run call.
class FastPathRecorder {
 public:
  void register_input(OpRef ref, int input_index);
  // Called by Component::graph_fn after the body executed.
  void record_step(const std::string& label, const GraphFnBody& body,
                   const std::vector<OpRef>& inputs,
                   const std::vector<OpRef>& outputs);
  // Mark the recording as non-contractible (e.g. a ref of unknown origin).
  void invalidate(const std::string& reason);

  FastPathProgram finish(const std::vector<OpRef>& outputs,
                         size_t num_inputs);

 private:
  bool resolve(OpRef ref, FastPathProgram::Source* out) const;

  std::map<std::pair<int, int>, FastPathProgram::Source> sources_;
  std::vector<FastPathProgram::Step> steps_;
  bool valid_ = true;
};

}  // namespace rlgraph
