#include "core/graph_builder.h"

#include <sstream>

#include "core/build_context.h"
#include "util/errors.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace rlgraph {

std::string MetaGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph component_graph {\n";
  for (const CallEdge& e : edges) {
    os << "  \"" << (e.caller.empty() ? "<api>" : e.caller) << "\" -> \""
       << e.callee << "\" [label=\"" << e.method << "\"];\n";
  }
  for (const GraphFnCall& g : graph_fns) {
    os << "  \"" << g.component << "\" -> \"" << g.component << "/"
       << g.name << "()\" [style=dotted];\n";
  }
  os << "}\n";
  return os.str();
}

GraphBuilder::GraphBuilder(
    Component* root,
    std::map<std::string, std::vector<SpacePtr>> api_input_spaces)
    : root_(root), api_input_spaces_(std::move(api_input_spaces)) {
  RLG_REQUIRE(root_ != nullptr, "GraphBuilder requires a root component");
  for (const auto& [method, spaces] : api_input_spaces_) {
    RLG_REQUIRE(root_->has_api(method),
                "root component '" << root_->name()
                                   << "' has no API method '" << method
                                   << "'");
    for (const SpacePtr& s : spaces) {
      RLG_REQUIRE(s != nullptr, "null input space for API '" << method << "'");
    }
  }
}

MetaGraph GraphBuilder::assemble() {
  Stopwatch watch;
  MetaGraph meta;
  BuildContext ctx(nullptr, BuildMode::kAssemble, &meta);
  // "Call all api methods once, generate op columns."
  for (const auto& [method, spaces] : api_input_spaces_) {
    OpRecs inputs(spaces.size());
    OpRecs outputs = root_->call_api(ctx, method, inputs);
    meta.api_output_arity[method] = static_cast<int>(outputs.size());
  }
  meta.num_components = root_->component_count();
  meta.trace_seconds = watch.elapsed_seconds();
  return meta;
}

BuiltApi GraphBuilder::build_api_method(OpContext& ctx,
                                        const std::string& method,
                                        const std::vector<SpacePtr>& spaces,
                                        BuildContext& bctx) {
  BuiltApi api;
  api.name = method;
  api.input_spaces = spaces;

  // One input record per API input parameter; one placeholder per leaf.
  OpRecs inputs;
  inputs.reserve(spaces.size());
  int arg_index = 0;
  for (const SpacePtr& space : spaces) {
    std::vector<std::pair<std::string, SpacePtr>> leaves;
    space->flatten(&leaves);
    OpRec rec;
    rec.space = space;
    for (const auto& [path, leaf] : leaves) {
      const auto& box = static_cast<const BoxSpace&>(*leaf);
      std::string ph_name = "api/" + method + "/arg" +
                            std::to_string(arg_index) +
                            (path.empty() ? "" : "/" + path);
      OpRef ref = ctx.placeholder(ph_name, box.dtype(), box.full_shape());
      rec.ops.push_back(ref);
      api.placeholders.push_back(ref);
    }
    ++arg_index;
    inputs.push_back(std::move(rec));
  }
  api.num_input_leaves = api.placeholders.size();

  OpRecs outputs = root_->call_api(bctx, method, inputs);
  for (const OpRec& rec : outputs) {
    RLG_REQUIRE(!rec.abstract(), "API method '"
                                     << method
                                     << "' returned an abstract record from "
                                        "the build phase");
    api.output_spaces.push_back(rec.space);
    for (const OpRef& ref : rec.ops) api.fetches.push_back(ref);
  }
  return api;
}

std::map<std::string, BuiltApi> GraphBuilder::build(OpContext& ctx,
                                                    BuildStats* stats) {
  Stopwatch watch;
  BuildContext bctx(&ctx, BuildMode::kBuild);

  std::map<std::string, BuiltApi> registry;
  std::vector<std::string> pending;
  for (const auto& [method, _] : api_input_spaces_) pending.push_back(method);

  int iterations = 0;
  while (!pending.empty()) {
    ++iterations;
    std::vector<std::string> still_pending;
    Component* last_incomplete = nullptr;
    for (const std::string& method : pending) {
      try {
        registry[method] = build_api_method(
            ctx, method, api_input_spaces_.at(method), bctx);
      } catch (const InputIncomplete& e) {
        last_incomplete = e.component();
        still_pending.push_back(method);
      }
    }
    if (still_pending.size() == pending.size()) {
      throw BuildError(
          "build constraint violation: no progress; component '" +
          (last_incomplete != nullptr ? last_incomplete->scope()
                                      : std::string("?")) +
          "' never became input-complete. Check that some API method "
          "provides its required input spaces.");
    }
    pending = std::move(still_pending);
  }

  if (stats != nullptr) {
    stats->build_seconds = watch.elapsed_seconds();
    stats->num_components = root_->component_count();
    stats->api_calls = bctx.api_calls();
    stats->graph_fn_calls = bctx.graph_fn_calls();
    stats->build_iterations = iterations;
  }
  RLG_LOG_INFO << "built component graph for '" << root_->name() << "': "
               << root_->component_count() << " components, "
               << bctx.graph_fn_calls() << " graph fn calls, " << iterations
               << " iterations";
  return registry;
}

}  // namespace rlgraph
