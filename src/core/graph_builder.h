// GraphBuilder: drives the assembly (phase 2) and graph-compilation
// (phase 3) build phases over a root component (paper §3.3, Algorithm 1).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/component.h"
#include "core/meta_graph.h"

namespace rlgraph {

// Build product per root API method: the op registry entry the executor
// dispatches through.
struct BuiltApi {
  std::string name;
  // Per declared input record (possibly a container space).
  std::vector<SpacePtr> input_spaces;
  // Flattened placeholder refs, one per input leaf (static backend).
  std::vector<OpRef> placeholders;
  // Output records and their flattened fetch refs.
  std::vector<SpacePtr> output_spaces;
  std::vector<OpRef> fetches;
  size_t num_input_leaves = 0;
};

struct BuildStats {
  double trace_seconds = 0.0;   // phase 2 (component-graph assembly)
  double build_seconds = 0.0;   // phase 3 (op/variable creation)
  double optimize_seconds = 0.0;
  int num_components = 0;
  int api_calls = 0;
  int graph_fn_calls = 0;
  int graph_nodes_before = 0;  // static backend only
  int graph_nodes_after = 0;
  int build_iterations = 0;    // deferral rounds until input-complete
};

class GraphBuilder {
 public:
  GraphBuilder(Component* root,
               std::map<std::string, std::vector<SpacePtr>> api_input_spaces);

  // Phase 2: traverse each root API method once with abstract records.
  MetaGraph assemble();

  // Phase 3: re-traverse with the backend context, creating placeholders,
  // variables (behind the input-completeness barrier) and operations.
  // Methods whose components are not yet input-complete are deferred and
  // retried until a fixed point ("breadth-first-search until there are no
  // more components to build or a constraint violation is detected").
  std::map<std::string, BuiltApi> build(OpContext& ctx, BuildStats* stats);

 private:
  BuiltApi build_api_method(OpContext& ctx, const std::string& method,
                            const std::vector<SpacePtr>& spaces,
                            BuildContext& bctx);

  Component* root_;
  std::map<std::string, std::vector<SpacePtr>> api_input_spaces_;
};

}  // namespace rlgraph
