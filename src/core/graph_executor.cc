#include "core/graph_executor.h"

#include <cmath>

#include "core/build_context.h"
#include "tensor/kernels.h"
#include "util/errors.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serialization.h"

namespace rlgraph {

GraphExecutor::GraphExecutor(
    std::shared_ptr<Component> root,
    std::map<std::string, std::vector<SpacePtr>> api_input_spaces,
    ExecutorOptions options)
    : root_(std::move(root)),
      api_input_spaces_(std::move(api_input_spaces)),
      options_(options), rng_(options.seed) {
  RLG_REQUIRE(root_ != nullptr, "GraphExecutor requires a root component");
}

namespace {
// Apply a device map to the component tree: longest scope-prefix wins.
void apply_device_map(Component* component,
                      const std::map<std::string, std::string>& device_map) {
  std::string scope = component->scope();
  std::string best;
  size_t best_len = 0;
  for (const auto& [prefix, device] : device_map) {
    bool match = scope.rfind(prefix, 0) == 0 &&
                 (scope.size() == prefix.size() ||
                  scope[prefix.size()] == '/');
    if (match && prefix.size() >= best_len) {
      best = device;
      best_len = prefix.size();
    }
  }
  if (!best.empty()) component->set_device(best);
  for (const auto& child : component->sub_components()) {
    apply_device_map(child.get(), device_map);
  }
}
}  // namespace

const BuildStats& GraphExecutor::build() {
  if (built_) return stats_;

  if (!options_.device_map.empty()) {
    apply_device_map(root_.get(), options_.device_map);
  }
  GraphBuilder builder(root_.get(), api_input_spaces_);
  // Phase 2: component-graph assembly.
  meta_ = builder.assemble();
  stats_.trace_seconds = meta_.trace_seconds;

  // Phase 3: backend build.
  if (options_.backend == Backend::kStatic) {
    StaticGraphContext ctx(&variables_, &rng_);
    ctx.set_device(options_.default_device);
    api_registry_ = builder.build(ctx, &stats_);
    graph_ = ctx.graph();
    stats_.graph_nodes_before = graph_->num_nodes();

    if (options_.optimize) {
      Stopwatch watch;
      std::vector<Endpoint> roots;
      for (const auto& [_, api] : api_registry_) {
        for (const OpRef& f : api.fetches) roots.push_back({f.node, f.index});
        for (const OpRef& p : api.placeholders) {
          roots.push_back({p.node, p.index});
        }
      }
      OptimizeResult opt = optimize_graph(*graph_, roots);
      // Remap the registry onto the optimized graph.
      for (auto& [_, api] : api_registry_) {
        for (OpRef& f : api.fetches) {
          Endpoint e = opt.endpoint_map.at({f.node, f.index});
          f = OpRef{e.node, e.index};
        }
        for (OpRef& p : api.placeholders) {
          Endpoint e = opt.endpoint_map.at({p.node, p.index});
          p = OpRef{e.node, e.index};
        }
      }
      graph_ = opt.graph;
      stats_.optimize_seconds = watch.elapsed_seconds();
    }
    stats_.graph_nodes_after = graph_->num_nodes();
    session_ = std::make_unique<Session>(graph_, &variables_, &rng_);
    // Plan-level pattern fusion rides the same opt-out as the build-time
    // passes: inference plans dispatch fused composites, training plans
    // (stateful closures) are left untouched by the pass itself.
    session_->set_pattern_fusion(options_.optimize);
    if (options_.profiling) session_->set_metrics(&profile_);
  } else {
    ImperativeContext ctx(&variables_, &rng_, /*build_mode=*/true,
                          options_.probe_batch);
    ctx.set_device(options_.default_device);
    api_registry_ = builder.build(ctx, &stats_);
    // The build tape is discarded; define-by-run execution re-dispatches per
    // call (or replays the lowered fast-path plan).
  }

  // Phase 4: resolve every API to an ApiEntry. On the static backend this
  // compiles each API's plan up front (fetches + feed order baked), which is
  // where the paper's build amortization lands: execute() does no per-call
  // lookups, map assembly, or scheduling.
  entries_.clear();
  entries_.reserve(api_registry_.size());
  handle_ids_.clear();
  for (auto& [name, api] : api_registry_) {
    ApiEntry entry;
    entry.api = &api;
    if (options_.backend == Backend::kStatic) {
      std::vector<Endpoint> fetches;
      fetches.reserve(api.fetches.size());
      for (const OpRef& f : api.fetches) fetches.push_back({f.node, f.index});
      std::vector<int> feed_nodes;
      feed_nodes.reserve(api.placeholders.size());
      for (const OpRef& p : api.placeholders) feed_nodes.push_back(p.node);
      entry.prepared = session_->prepare(fetches, feed_nodes);
      entry.fetches = std::move(fetches);
      entry.feed_nodes = std::move(feed_nodes);
    }
    handle_ids_[name] = static_cast<int>(entries_.size());
    entries_.push_back(std::move(entry));
  }

  built_ = true;
  return stats_;
}

ApiHandle GraphExecutor::api_handle(const std::string& api) const {
  auto it = handle_ids_.find(api);
  if (it == handle_ids_.end()) {
    throw NotFoundError("unknown API method '" + api + "'");
  }
  return ApiHandle{it->second};
}

std::vector<Tensor> GraphExecutor::execute(const std::string& api_name,
                                           const std::vector<Tensor>& inputs) {
  RLG_REQUIRE(built_, "GraphExecutor::execute before build()");
  return execute(api_handle(api_name), inputs);
}

std::vector<Tensor> GraphExecutor::execute(ApiHandle handle,
                                           const std::vector<Tensor>& inputs) {
  RLG_REQUIRE(built_, "GraphExecutor::execute before build()");
  RLG_REQUIRE(handle.valid() &&
                  handle.id < static_cast<int>(entries_.size()),
              "invalid API handle");
  ApiEntry& entry = entries_[static_cast<size_t>(handle.id)];
  const BuiltApi& api = *entry.api;
  RLG_REQUIRE(inputs.size() == api.num_input_leaves,
              "API '" << api.name << "' expects " << api.num_input_leaves
                      << " input tensors, got " << inputs.size());
  ++execution_calls_;
  if (options_.profiling) {
    ScopedTimer timer(&profile_, "execute/" + api.name);
    profile_.increment("calls/" + api.name);
    return execute_entry(entry, inputs);
  }
  return execute_entry(entry, inputs);
}

std::vector<Tensor> GraphExecutor::execute_entry(
    ApiEntry& entry, const std::vector<Tensor>& inputs) {
  if (entry.prepared) {
    // Route batchable APIs through a plan specialized on the concrete feed
    // shapes: same fetches, but with a static memory plan for this exact
    // batch size. Non-batchable APIs (fixed signatures, no feeds) gain
    // nothing and keep the dynamic plan.
    if (options_.specialize_shapes && !inputs.empty() &&
        entry.prepared->plan().feeds_batchable()) {
      return execute_specialized(entry, inputs);
    }
    return entry.prepared->run(inputs);
  }
  return execute_imperative(entry, inputs);
}

std::vector<Tensor> GraphExecutor::execute_specialized(
    ApiEntry& entry, const std::vector<Tensor>& inputs) {
  std::vector<int64_t> key;
  key.reserve(inputs.size() * 3);
  for (const Tensor& t : inputs) {
    key.push_back(t.shape().rank());
    for (int d = 0; d < t.shape().rank(); ++d) key.push_back(t.shape().dim(d));
  }
  auto it = entry.specialized.find(key);
  if (it != entry.specialized.end()) return it->second->run(inputs);

  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor& t : inputs) shapes.push_back(t.shape());
  std::shared_ptr<Session::PreparedCall> call =
      session_->prepare_specialized(entry.fetches, entry.feed_nodes, shapes);
  // Cap the per-API map so an unbucketed caller cycling through arbitrary
  // batch sizes cannot grow it without bound; overflow signatures still
  // benefit from the session's own (LRU-bounded) cache.
  constexpr size_t kMaxSpecializedPerApi = 64;
  if (entry.specialized.size() < kMaxSpecializedPerApi) {
    entry.specialized.emplace(std::move(key), call);
  }
  return call->run(inputs);
}

std::vector<Tensor> GraphExecutor::execute_imperative(
    ApiEntry& entry, const std::vector<Tensor>& inputs) {
  // Fast path: replay the lowered plan when contraction succeeded.
  if (entry.traced && entry.fast_path.valid()) {
    return entry.fast_path.run(&variables_, &rng_, inputs);
  }

  const BuiltApi& api = *entry.api;
  ImperativeContext ctx(&variables_, &rng_, /*build_mode=*/false);
  bool trace = options_.fast_path && !entry.traced;
  FastPathRecorder recorder;
  BuildContext bctx(&ctx, BuildMode::kRun, nullptr,
                    trace ? &recorder : nullptr);

  // Bind inputs, leaf-wise per declared record.
  OpRecs records;
  size_t cursor = 0;
  int input_index = 0;
  for (const SpacePtr& space : api.input_spaces) {
    std::vector<std::pair<std::string, SpacePtr>> leaves;
    space->flatten(&leaves);
    OpRec rec;
    rec.space = space;
    for (size_t l = 0; l < leaves.size(); ++l) {
      OpRef ref = ctx.literal(inputs[cursor++]);
      if (trace) recorder.register_input(ref, input_index);
      ++input_index;
      rec.ops.push_back(ref);
    }
    records.push_back(std::move(rec));
  }

  OpRecs outputs = root_->call_api(bctx, api.name, records);

  std::vector<OpRef> out_refs;
  std::vector<Tensor> out;
  for (const OpRec& rec : outputs) {
    for (const OpRef& ref : rec.ops) {
      out_refs.push_back(ref);
      out.push_back(ctx.value(ref));
    }
  }
  if (trace) {
    FastPathProgram program = recorder.finish(out_refs, inputs.size());
    if (program.valid()) {
      RLG_LOG_DEBUG << "fast-path contraction enabled for API '" << api.name
                    << "' (" << program.num_steps() << " steps)";
    }
    entry.fast_path = std::move(program);
    entry.traced = true;
  }
  return out;
}

std::string GraphExecutor::graph_dump() const {
  if (graph_ == nullptr) return "(define-by-run backend: no static graph)";
  return graph_->to_string();
}

namespace {
// Int8 shadow variables are derived state (requantized from fp32 on every
// weight update); weight snapshots and checkpoints carry only the fp32
// source of truth so they stay importable into unquantized executors.
bool is_int8_shadow(const std::string& name) {
  constexpr char kSuffix[] = "/int8";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  return name.size() >= kSuffixLen &&
         name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
}
}  // namespace

std::map<std::string, Tensor> GraphExecutor::get_weights(
    const std::string& prefix) {
  std::map<std::string, Tensor> out;
  for (const std::string& name : variables_.names()) {
    if (name.rfind(prefix, 0) == 0 && !is_int8_shadow(name)) {
      out.emplace(name, variables_.get(name).clone());
    }
  }
  return out;
}

void GraphExecutor::set_weights(const std::map<std::string, Tensor>& weights) {
  for (const auto& [name, value] : weights) {
    variables_.set(name, value.clone());
  }
  // Keep int8 shadows coherent with the fresh fp32 values. The shadows are
  // requantized with the ORIGINAL calibration scales — the rewritten
  // graphs bake those into their QuantizeLinear/MatMulInt8 attrs, so the
  // scales must not drift with the weights.
  std::map<std::string, float> shadow_scales;
  for (const auto& [api, qa] : quantized_) {
    for (const auto& [wname, scale] : qa->weight_scales) {
      shadow_scales.emplace(wname, scale);
    }
  }
  for (const auto& [wname, scale] : shadow_scales) {
    auto it = weights.find(wname);
    if (it == weights.end()) continue;
    variables_.set(wname + "/int8",
                   kernels::quantize_linear(it->second, scale));
  }
}

// --- int8 quantized serving --------------------------------------------------

namespace {
float max_abs_value(const Tensor& t) {
  const float* p = t.data<float>();
  float m = 0.0f;
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    float a = std::fabs(p[i]);
    if (a > m) m = a;
  }
  return m;
}

// max-abs / 127, guarded so an all-zero calibration tensor still yields a
// valid (positive) scale.
float symmetric_scale(float max_abs) {
  return max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
}
}  // namespace

int GraphExecutor::enable_quantized(
    const std::string& api,
    const std::vector<std::vector<Tensor>>& sample_inputs) {
  RLG_REQUIRE(built_, "enable_quantized before build()");
  RLG_REQUIRE(options_.backend == Backend::kStatic && session_ != nullptr,
              "enable_quantized requires the static backend");
  RLG_REQUIRE(!sample_inputs.empty(),
              "enable_quantized needs at least one calibration sample");
  ApiHandle handle = api_handle(api);
  ApiEntry& entry = entries_[static_cast<size_t>(handle.id)];
  RLG_REQUIRE(entry.prepared != nullptr,
              "API '" << api << "' has no compiled plan");

  // Eligible MatMuls in the fetched closure — the weight operand must be a
  // Variable read, the same predicate quantize_inference_graph applies.
  struct EligibleMatMul {
    std::string node_name;
    std::string var_name;
    Endpoint input0;
  };
  std::vector<EligibleMatMul> matmuls;
  {
    std::vector<uint8_t> seen(static_cast<size_t>(graph_->num_nodes()), 0);
    std::vector<int> stack;
    for (const Endpoint& f : entry.fetches) {
      if (!seen[static_cast<size_t>(f.node)]) {
        seen[static_cast<size_t>(f.node)] = 1;
        stack.push_back(f.node);
      }
    }
    while (!stack.empty()) {
      int id = stack.back();
      stack.pop_back();
      const NodeDef& nd = graph_->node(id);
      if (nd.op == "MatMul" && nd.inputs.size() == 2 &&
          nd.control_inputs.empty() && nd.inputs[1].index == 0) {
        const NodeDef& wn = graph_->node(nd.inputs[1].node);
        if (wn.op == "Variable") {
          matmuls.push_back(EligibleMatMul{
              nd.name, attr_string(wn.attrs, "var_name"), nd.inputs[0]});
        }
      }
      for (const Endpoint& e : nd.inputs) {
        if (!seen[static_cast<size_t>(e.node)]) {
          seen[static_cast<size_t>(e.node)] = 1;
          stack.push_back(e.node);
        }
      }
      for (int c : nd.control_inputs) {
        if (!seen[static_cast<size_t>(c)]) {
          seen[static_cast<size_t>(c)] = 1;
          stack.push_back(c);
        }
      }
    }
  }
  if (matmuls.empty()) return 0;

  // Calibrate activation scales: run the fp32 plan fetching every eligible
  // MatMul's input over the sample set and track per-tensor max-abs.
  std::vector<Endpoint> cal_fetches;
  cal_fetches.reserve(matmuls.size());
  for (const EligibleMatMul& m : matmuls) cal_fetches.push_back(m.input0);
  std::shared_ptr<Session::PreparedCall> cal =
      session_->prepare(cal_fetches, entry.feed_nodes);
  std::vector<float> act_max(matmuls.size(), 0.0f);
  for (const std::vector<Tensor>& sample : sample_inputs) {
    std::vector<Tensor> vals = cal->run(sample);
    for (size_t i = 0; i < matmuls.size(); ++i) {
      act_max[i] = std::max(act_max[i], max_abs_value(vals[i]));
    }
  }
  std::map<std::string, float> act_scales;
  std::map<std::string, float> weight_scales;
  for (size_t i = 0; i < matmuls.size(); ++i) {
    act_scales[matmuls[i].node_name] = symmetric_scale(act_max[i]);
    if (!weight_scales.count(matmuls[i].var_name)) {
      weight_scales[matmuls[i].var_name] =
          symmetric_scale(max_abs_value(variables_.get(matmuls[i].var_name)));
    }
  }
  return enable_quantized_with_scales(api, act_scales, weight_scales);
}

int GraphExecutor::enable_quantized_with_scales(
    const std::string& api, const std::map<std::string, float>& act_scales,
    const std::map<std::string, float>& weight_scales,
    const std::map<std::string, Tensor>& int8_weights) {
  RLG_REQUIRE(built_, "enable_quantized_with_scales before build()");
  RLG_REQUIRE(options_.backend == Backend::kStatic && session_ != nullptr,
              "quantized serving requires the static backend");
  ApiHandle handle = api_handle(api);
  ApiEntry& entry = entries_[static_cast<size_t>(handle.id)];
  RLG_REQUIRE(entry.prepared != nullptr,
              "API '" << api << "' has no compiled plan");

  QuantizeGraphResult q =
      quantize_inference_graph(*graph_, act_scales, weight_scales);
  if (q.graph == nullptr || q.quantized_matmuls == 0) return 0;

  // Materialize the int8 shadow variables before the rewritten plan can
  // run; Variable reads on unknown names throw at execution time.
  for (const auto& [wname, scale] : weight_scales) {
    std::string shadow = wname + "/int8";
    Tensor qt;
    auto it = int8_weights.find(wname);
    if (it != int8_weights.end()) {
      RLG_REQUIRE(it->second.dtype() == DType::kInt8,
                  "int8 weight for '" << wname << "' has dtype "
                                      << dtype_name(it->second.dtype()));
      qt = it->second.clone();
    } else {
      qt = kernels::quantize_linear(variables_.get(wname), scale);
    }
    if (variables_.exists(shadow)) {
      variables_.set(shadow, std::move(qt));
    } else {
      variables_.create(shadow, std::move(qt));
    }
  }

  auto qa = std::make_unique<QuantizedApi>();
  qa->graph = std::shared_ptr<const GraphDef>(q.graph);
  qa->session = std::make_unique<Session>(qa->graph, &variables_, &rng_);
  qa->session->set_pattern_fusion(options_.optimize);
  if (options_.profiling) qa->session->set_metrics(&profile_);
  qa->fetches.reserve(entry.fetches.size());
  for (const Endpoint& f : entry.fetches) {
    qa->fetches.push_back(q.endpoint_map.at(f));
  }
  qa->feed_nodes.reserve(entry.feed_nodes.size());
  for (int id : entry.feed_nodes) {
    qa->feed_nodes.push_back(q.endpoint_map.at(Endpoint{id, 0}).node);
  }
  qa->prepared = qa->session->prepare(qa->fetches, qa->feed_nodes);
  qa->act_scales = act_scales;
  qa->weight_scales = weight_scales;
  qa->quantized_matmuls = q.quantized_matmuls;
  int count = q.quantized_matmuls;
  quantized_[api] = std::move(qa);
  return count;
}

const GraphExecutor::QuantizedApi& GraphExecutor::quantized_api_or_throw(
    const std::string& api) const {
  auto it = quantized_.find(api);
  if (it == quantized_.end()) {
    throw NotFoundError("API '" + api +
                        "' has no quantized plan; call enable_quantized first");
  }
  return *it->second;
}

bool GraphExecutor::quantized_enabled(const std::string& api) const {
  return quantized_.count(api) > 0;
}

std::vector<Tensor> GraphExecutor::execute_quantized(
    const std::string& api, const std::vector<Tensor>& inputs) {
  const QuantizedApi& qa = quantized_api_or_throw(api);
  ++execution_calls_;
  if (options_.specialize_shapes && !inputs.empty() &&
      qa.prepared->plan().feeds_batchable()) {
    std::vector<Shape> shapes;
    shapes.reserve(inputs.size());
    for (const Tensor& t : inputs) shapes.push_back(t.shape());
    return qa.session
        ->prepare_specialized(qa.fetches, qa.feed_nodes, shapes)
        ->run(inputs);
  }
  return qa.prepared->run(inputs);
}

const std::map<std::string, float>& GraphExecutor::quantized_act_scales(
    const std::string& api) const {
  return quantized_api_or_throw(api).act_scales;
}

const std::map<std::string, float>& GraphExecutor::quantized_weight_scales(
    const std::string& api) const {
  return quantized_api_or_throw(api).weight_scales;
}

int64_t GraphExecutor::fused_dispatches() const {
  int64_t total = session_ != nullptr ? session_->fused_dispatches() : 0;
  for (const auto& [api, qa] : quantized_) {
    total += qa->session->fused_dispatches();
  }
  return total;
}

namespace {
constexpr uint32_t kCheckpointMagic = 0x524C4756;  // "RLGV"
constexpr uint32_t kCheckpointVersion = 1;
}  // namespace

std::vector<uint8_t> GraphExecutor::export_variables() {
  ByteWriter w;
  w.write_u32(kCheckpointMagic);
  w.write_u32(kCheckpointVersion);
  std::vector<std::string> names;
  for (const std::string& name : variables_.names()) {
    if (!is_int8_shadow(name)) names.push_back(name);
  }
  w.write_u32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Tensor& t = variables_.get(name);
    w.write_string(name);
    w.write_u8(static_cast<uint8_t>(t.dtype()));
    w.write_u32(static_cast<uint32_t>(t.shape().rank()));
    for (int64_t d : t.shape().dims()) w.write_i64(d);
    w.write_u64(t.byte_size());
    w.write_bytes(t.raw(), t.byte_size());
  }
  return w.take();
}

void GraphExecutor::import_variables(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  RLG_REQUIRE(r.read_u32() == kCheckpointMagic,
              "bad checkpoint magic; not an RLgraph variable file");
  RLG_REQUIRE(r.read_u32() == kCheckpointVersion,
              "unsupported checkpoint version");
  uint32_t count = r.read_u32();
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = r.read_string();
    DType dtype = static_cast<DType>(r.read_u8());
    uint32_t rank = r.read_u32();
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) dims[d] = r.read_i64();
    uint64_t nbytes = r.read_u64();
    Tensor t(dtype, Shape(dims));
    RLG_REQUIRE(t.byte_size() == nbytes, "checkpoint size mismatch for '"
                                             << name << "'");
    r.read_bytes(t.mutable_raw(), nbytes);
    variables_.set(name, std::move(t));
  }
  // Checkpoints carry only fp32 variables; rebuild any int8 shadows from
  // the restored values with their original calibration scales.
  for (const auto& [api, qa] : quantized_) {
    for (const auto& [wname, scale] : qa->weight_scales) {
      variables_.set(wname + "/int8",
                     kernels::quantize_linear(variables_.get(wname), scale));
    }
  }
}

}  // namespace rlgraph
