#include "core/graph_executor.h"

#include "core/build_context.h"
#include "util/errors.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serialization.h"

namespace rlgraph {

GraphExecutor::GraphExecutor(
    std::shared_ptr<Component> root,
    std::map<std::string, std::vector<SpacePtr>> api_input_spaces,
    ExecutorOptions options)
    : root_(std::move(root)),
      api_input_spaces_(std::move(api_input_spaces)),
      options_(options), rng_(options.seed) {
  RLG_REQUIRE(root_ != nullptr, "GraphExecutor requires a root component");
}

namespace {
// Apply a device map to the component tree: longest scope-prefix wins.
void apply_device_map(Component* component,
                      const std::map<std::string, std::string>& device_map) {
  std::string scope = component->scope();
  std::string best;
  size_t best_len = 0;
  for (const auto& [prefix, device] : device_map) {
    bool match = scope.rfind(prefix, 0) == 0 &&
                 (scope.size() == prefix.size() ||
                  scope[prefix.size()] == '/');
    if (match && prefix.size() >= best_len) {
      best = device;
      best_len = prefix.size();
    }
  }
  if (!best.empty()) component->set_device(best);
  for (const auto& child : component->sub_components()) {
    apply_device_map(child.get(), device_map);
  }
}
}  // namespace

const BuildStats& GraphExecutor::build() {
  if (built_) return stats_;

  if (!options_.device_map.empty()) {
    apply_device_map(root_.get(), options_.device_map);
  }
  GraphBuilder builder(root_.get(), api_input_spaces_);
  // Phase 2: component-graph assembly.
  meta_ = builder.assemble();
  stats_.trace_seconds = meta_.trace_seconds;

  // Phase 3: backend build.
  if (options_.backend == Backend::kStatic) {
    StaticGraphContext ctx(&variables_, &rng_);
    ctx.set_device(options_.default_device);
    api_registry_ = builder.build(ctx, &stats_);
    graph_ = ctx.graph();
    stats_.graph_nodes_before = graph_->num_nodes();

    if (options_.optimize) {
      Stopwatch watch;
      std::vector<Endpoint> roots;
      for (const auto& [_, api] : api_registry_) {
        for (const OpRef& f : api.fetches) roots.push_back({f.node, f.index});
        for (const OpRef& p : api.placeholders) {
          roots.push_back({p.node, p.index});
        }
      }
      OptimizeResult opt = optimize_graph(*graph_, roots);
      // Remap the registry onto the optimized graph.
      for (auto& [_, api] : api_registry_) {
        for (OpRef& f : api.fetches) {
          Endpoint e = opt.endpoint_map.at({f.node, f.index});
          f = OpRef{e.node, e.index};
        }
        for (OpRef& p : api.placeholders) {
          Endpoint e = opt.endpoint_map.at({p.node, p.index});
          p = OpRef{e.node, e.index};
        }
      }
      graph_ = opt.graph;
      stats_.optimize_seconds = watch.elapsed_seconds();
    }
    stats_.graph_nodes_after = graph_->num_nodes();
    session_ = std::make_unique<Session>(graph_, &variables_, &rng_);
    if (options_.profiling) session_->set_metrics(&profile_);
  } else {
    ImperativeContext ctx(&variables_, &rng_, /*build_mode=*/true,
                          options_.probe_batch);
    ctx.set_device(options_.default_device);
    api_registry_ = builder.build(ctx, &stats_);
    // The build tape is discarded; define-by-run execution re-dispatches per
    // call (or replays the lowered fast-path plan).
  }

  // Phase 4: resolve every API to an ApiEntry. On the static backend this
  // compiles each API's plan up front (fetches + feed order baked), which is
  // where the paper's build amortization lands: execute() does no per-call
  // lookups, map assembly, or scheduling.
  entries_.clear();
  entries_.reserve(api_registry_.size());
  handle_ids_.clear();
  for (auto& [name, api] : api_registry_) {
    ApiEntry entry;
    entry.api = &api;
    if (options_.backend == Backend::kStatic) {
      std::vector<Endpoint> fetches;
      fetches.reserve(api.fetches.size());
      for (const OpRef& f : api.fetches) fetches.push_back({f.node, f.index});
      std::vector<int> feed_nodes;
      feed_nodes.reserve(api.placeholders.size());
      for (const OpRef& p : api.placeholders) feed_nodes.push_back(p.node);
      entry.prepared = session_->prepare(fetches, feed_nodes);
      entry.fetches = std::move(fetches);
      entry.feed_nodes = std::move(feed_nodes);
    }
    handle_ids_[name] = static_cast<int>(entries_.size());
    entries_.push_back(std::move(entry));
  }

  built_ = true;
  return stats_;
}

ApiHandle GraphExecutor::api_handle(const std::string& api) const {
  auto it = handle_ids_.find(api);
  if (it == handle_ids_.end()) {
    throw NotFoundError("unknown API method '" + api + "'");
  }
  return ApiHandle{it->second};
}

std::vector<Tensor> GraphExecutor::execute(const std::string& api_name,
                                           const std::vector<Tensor>& inputs) {
  RLG_REQUIRE(built_, "GraphExecutor::execute before build()");
  return execute(api_handle(api_name), inputs);
}

std::vector<Tensor> GraphExecutor::execute(ApiHandle handle,
                                           const std::vector<Tensor>& inputs) {
  RLG_REQUIRE(built_, "GraphExecutor::execute before build()");
  RLG_REQUIRE(handle.valid() &&
                  handle.id < static_cast<int>(entries_.size()),
              "invalid API handle");
  ApiEntry& entry = entries_[static_cast<size_t>(handle.id)];
  const BuiltApi& api = *entry.api;
  RLG_REQUIRE(inputs.size() == api.num_input_leaves,
              "API '" << api.name << "' expects " << api.num_input_leaves
                      << " input tensors, got " << inputs.size());
  ++execution_calls_;
  if (options_.profiling) {
    ScopedTimer timer(&profile_, "execute/" + api.name);
    profile_.increment("calls/" + api.name);
    return execute_entry(entry, inputs);
  }
  return execute_entry(entry, inputs);
}

std::vector<Tensor> GraphExecutor::execute_entry(
    ApiEntry& entry, const std::vector<Tensor>& inputs) {
  if (entry.prepared) {
    // Route batchable APIs through a plan specialized on the concrete feed
    // shapes: same fetches, but with a static memory plan for this exact
    // batch size. Non-batchable APIs (fixed signatures, no feeds) gain
    // nothing and keep the dynamic plan.
    if (options_.specialize_shapes && !inputs.empty() &&
        entry.prepared->plan().feeds_batchable()) {
      return execute_specialized(entry, inputs);
    }
    return entry.prepared->run(inputs);
  }
  return execute_imperative(entry, inputs);
}

std::vector<Tensor> GraphExecutor::execute_specialized(
    ApiEntry& entry, const std::vector<Tensor>& inputs) {
  std::vector<int64_t> key;
  key.reserve(inputs.size() * 3);
  for (const Tensor& t : inputs) {
    key.push_back(t.shape().rank());
    for (int d = 0; d < t.shape().rank(); ++d) key.push_back(t.shape().dim(d));
  }
  auto it = entry.specialized.find(key);
  if (it != entry.specialized.end()) return it->second->run(inputs);

  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor& t : inputs) shapes.push_back(t.shape());
  std::shared_ptr<Session::PreparedCall> call =
      session_->prepare_specialized(entry.fetches, entry.feed_nodes, shapes);
  // Cap the per-API map so an unbucketed caller cycling through arbitrary
  // batch sizes cannot grow it without bound; overflow signatures still
  // benefit from the session's own (LRU-bounded) cache.
  constexpr size_t kMaxSpecializedPerApi = 64;
  if (entry.specialized.size() < kMaxSpecializedPerApi) {
    entry.specialized.emplace(std::move(key), call);
  }
  return call->run(inputs);
}

std::vector<Tensor> GraphExecutor::execute_imperative(
    ApiEntry& entry, const std::vector<Tensor>& inputs) {
  // Fast path: replay the lowered plan when contraction succeeded.
  if (entry.traced && entry.fast_path.valid()) {
    return entry.fast_path.run(&variables_, &rng_, inputs);
  }

  const BuiltApi& api = *entry.api;
  ImperativeContext ctx(&variables_, &rng_, /*build_mode=*/false);
  bool trace = options_.fast_path && !entry.traced;
  FastPathRecorder recorder;
  BuildContext bctx(&ctx, BuildMode::kRun, nullptr,
                    trace ? &recorder : nullptr);

  // Bind inputs, leaf-wise per declared record.
  OpRecs records;
  size_t cursor = 0;
  int input_index = 0;
  for (const SpacePtr& space : api.input_spaces) {
    std::vector<std::pair<std::string, SpacePtr>> leaves;
    space->flatten(&leaves);
    OpRec rec;
    rec.space = space;
    for (size_t l = 0; l < leaves.size(); ++l) {
      OpRef ref = ctx.literal(inputs[cursor++]);
      if (trace) recorder.register_input(ref, input_index);
      ++input_index;
      rec.ops.push_back(ref);
    }
    records.push_back(std::move(rec));
  }

  OpRecs outputs = root_->call_api(bctx, api.name, records);

  std::vector<OpRef> out_refs;
  std::vector<Tensor> out;
  for (const OpRec& rec : outputs) {
    for (const OpRef& ref : rec.ops) {
      out_refs.push_back(ref);
      out.push_back(ctx.value(ref));
    }
  }
  if (trace) {
    FastPathProgram program = recorder.finish(out_refs, inputs.size());
    if (program.valid()) {
      RLG_LOG_DEBUG << "fast-path contraction enabled for API '" << api.name
                    << "' (" << program.num_steps() << " steps)";
    }
    entry.fast_path = std::move(program);
    entry.traced = true;
  }
  return out;
}

std::string GraphExecutor::graph_dump() const {
  if (graph_ == nullptr) return "(define-by-run backend: no static graph)";
  return graph_->to_string();
}

std::map<std::string, Tensor> GraphExecutor::get_weights(
    const std::string& prefix) {
  std::map<std::string, Tensor> out;
  for (const std::string& name : variables_.names()) {
    if (name.rfind(prefix, 0) == 0) {
      out.emplace(name, variables_.get(name).clone());
    }
  }
  return out;
}

void GraphExecutor::set_weights(const std::map<std::string, Tensor>& weights) {
  for (const auto& [name, value] : weights) {
    variables_.set(name, value.clone());
  }
}

namespace {
constexpr uint32_t kCheckpointMagic = 0x524C4756;  // "RLGV"
constexpr uint32_t kCheckpointVersion = 1;
}  // namespace

std::vector<uint8_t> GraphExecutor::export_variables() {
  ByteWriter w;
  w.write_u32(kCheckpointMagic);
  w.write_u32(kCheckpointVersion);
  std::vector<std::string> names = variables_.names();
  w.write_u32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Tensor& t = variables_.get(name);
    w.write_string(name);
    w.write_u8(static_cast<uint8_t>(t.dtype()));
    w.write_u32(static_cast<uint32_t>(t.shape().rank()));
    for (int64_t d : t.shape().dims()) w.write_i64(d);
    w.write_u64(t.byte_size());
    w.write_bytes(t.raw(), t.byte_size());
  }
  return w.take();
}

void GraphExecutor::import_variables(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  RLG_REQUIRE(r.read_u32() == kCheckpointMagic,
              "bad checkpoint magic; not an RLgraph variable file");
  RLG_REQUIRE(r.read_u32() == kCheckpointVersion,
              "unsupported checkpoint version");
  uint32_t count = r.read_u32();
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = r.read_string();
    DType dtype = static_cast<DType>(r.read_u8());
    uint32_t rank = r.read_u32();
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) dims[d] = r.read_i64();
    uint64_t nbytes = r.read_u64();
    Tensor t(dtype, Shape(dims));
    RLG_REQUIRE(t.byte_size() == nbytes, "checkpoint size mismatch for '"
                                             << name << "'");
    r.read_bytes(t.mutable_raw(), nbytes);
    variables_.set(name, std::move(t));
  }
}

}  // namespace rlgraph
