// GraphExecutor: the execution bridge between the component graph and a
// backend (paper §4.1). Owns the variable store, drives all build phases,
// and serves execute(api, inputs) requests:
//
//  * static backend — every API is compiled to a Session::PreparedCall at
//    build time (fetches + placeholder feed order resolved once); execute()
//    hands the positional inputs straight to the compiled plan.
//  * define-by-run backend — re-dispatches the call chain of graph functions
//    through the component graph; when edge contraction succeeds, the
//    contracted program is lowered onto the same compiled-plan layer and
//    replays run the shared plan executor.
//
// Hot call sites (agents, executors) resolve an ApiHandle once after build
// and call execute(handle, ...) — no per-call string lookup.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/imperative_context.h"
#include "backend/static_context.h"
#include "core/fast_path.h"
#include "core/graph_builder.h"
#include "graph/passes.h"
#include "graph/session.h"
#include "util/metrics.h"

namespace rlgraph {

struct ExecutorOptions {
  Backend backend = Backend::kStatic;
  // Run the graph optimization passes after the static build.
  bool optimize = true;
  // Attempt fast-path edge contraction for define-by-run dispatch.
  bool fast_path = true;
  // Static backend: recompile batchable APIs specialized on the concrete
  // feed shapes seen at execute() time (one cached plan per distinct
  // signature, LRU-bounded in the session). Specialized plans run with a
  // static arena plan — no buffer-pool traffic on the serial hot path.
  bool specialize_shapes = true;
  uint64_t seed = 1234;
  // Probe batch extent used for artificial placeholders in define-by-run
  // builds.
  int64_t probe_batch = 2;
  std::string default_device = "/cpu:0";
  // Per-component device assignments applied to the component tree before
  // the build (longest scope prefix wins); entries: scope -> device.
  std::map<std::string, std::string> device_map;
  // Record per-API execute() latencies into the profiling registry.
  bool profiling = false;
};

// Build-time-resolved reference to one API method of one executor.
struct ApiHandle {
  int id = -1;
  bool valid() const { return id >= 0; }
};

class GraphExecutor {
 public:
  // The executor shares ownership of the root component; a component tree
  // must be built by at most one executor.
  GraphExecutor(std::shared_ptr<Component> root,
                std::map<std::string, std::vector<SpacePtr>> api_input_spaces,
                ExecutorOptions options = {});

  // Runs assembly + build (+ optimization); idempotent.
  const BuildStats& build();

  // Resolve an API name to its handle (valid after build()). Throws
  // NotFoundError for unknown names.
  ApiHandle api_handle(const std::string& api) const;

  // Serve one API request. Inputs/outputs are flattened leaf tensors in
  // space-flatten order. The string overload resolves the handle per call;
  // hot paths should resolve once and use the handle overload.
  std::vector<Tensor> execute(const std::string& api,
                              const std::vector<Tensor>& inputs = {});
  std::vector<Tensor> execute(ApiHandle handle,
                              const std::vector<Tensor>& inputs = {});

  // --- introspection ---------------------------------------------------------
  Component* root() { return root_.get(); }
  const MetaGraph& meta_graph() const { return meta_; }
  const BuildStats& stats() const { return stats_; }
  const std::map<std::string, BuiltApi>& api_registry() const {
    return api_registry_;
  }
  VariableStore& variables() { return variables_; }
  Rng& rng() { return rng_; }
  Backend backend() const { return options_.backend; }
  // Static backend: one per execute(); define-by-run: dispatch count.
  int64_t execution_calls() const { return execution_calls_; }
  // Per-API latency summaries (populated when options.profiling is set) —
  // the "hooks for summaries or profiling" of paper §4.1. When profiling is
  // on, the session's plan-compile / cache-hit / reuse counters land here
  // too.
  const MetricRegistry& profile() const { return profile_; }
  std::string profile_report() const { return profile_.report(); }
  // Readable dump of the built computation graph (static backend).
  std::string graph_dump() const;
  // The session serving static-backend calls (null on define-by-run).
  Session* session() { return session_.get(); }

  // --- weights ------------------------------------------------------------------
  // All variables whose scoped name starts with `prefix` ("" = all).
  std::map<std::string, Tensor> get_weights(const std::string& prefix = "");
  void set_weights(const std::map<std::string, Tensor>& weights);
  // Checkpoint format (magic "RLGV"); round-trips through import.
  std::vector<uint8_t> export_variables();
  void import_variables(const std::vector<uint8_t>& bytes);

  // --- int8 quantized serving ------------------------------------------------
  // Post-training quantization of one API's inference plan (static backend
  // only). Calibration runs the fp32 plan over the caller's sample inputs to
  // find per-tensor symmetric activation scales (max-abs / 127) for every
  // MatMul whose weight is a Variable read; weight scales come from the
  // current variable values. The API's graph is then rewritten through
  // quantize_inference_graph and served by its own session over the shared
  // variable store, with `<var>/int8` shadow variables holding the
  // quantized weights. Returns the number of quantized MatMuls (0 = nothing
  // eligible; no quantized plan is installed). Scales stay fixed after
  // calibration: set_weights() requantizes the shadows with the original
  // scales so the rewritten graph's attrs stay valid across weight updates.
  int enable_quantized(const std::string& api,
                       const std::vector<std::vector<Tensor>>& sample_inputs);
  // Install a quantized plan from externally supplied scales (the
  // import-weights path). `int8_weights` maps fp32 variable name -> already
  // quantized int8 tensor; missing entries are quantized from the current
  // fp32 value.
  int enable_quantized_with_scales(
      const std::string& api, const std::map<std::string, float>& act_scales,
      const std::map<std::string, float>& weight_scales,
      const std::map<std::string, Tensor>& int8_weights = {});
  bool quantized_enabled(const std::string& api) const;
  // Serve one request through the api's int8 plan (throws NotFoundError
  // when enable_quantized was not called for it).
  std::vector<Tensor> execute_quantized(const std::string& api,
                                        const std::vector<Tensor>& inputs);
  // Calibrated scales of an enabled API (for wire export).
  const std::map<std::string, float>& quantized_act_scales(
      const std::string& api) const;
  const std::map<std::string, float>& quantized_weight_scales(
      const std::string& api) const;
  // Fused composite dispatches across the main and quantized sessions.
  int64_t fused_dispatches() const;

 private:
  // Per-API state resolved at build time.
  struct ApiEntry {
    const BuiltApi* api = nullptr;
    // Static backend: the compiled plan call (fetches + feed order baked).
    std::shared_ptr<Session::PreparedCall> prepared;
    // The API's fetch/feed resolution, kept so specialized plans can be
    // compiled lazily when concrete shapes arrive.
    std::vector<Endpoint> fetches;
    std::vector<int> feed_nodes;
    // Shape-specialized plans seen so far, keyed by the encoded concrete
    // feed signature (rank then dims per input). Bounded: past the cap new
    // signatures go through the session cache without an entry here.
    std::map<std::vector<int64_t>, std::shared_ptr<Session::PreparedCall>>
        specialized;
    // Define-by-run: the contracted program once a dispatch traced it.
    FastPathProgram fast_path;
    bool traced = false;
  };

  // One API's int8 serving plan: a rewritten graph with its own session
  // (sharing the executor's variable store and RNG) plus the calibrated
  // scales, kept so weight updates can requantize the int8 shadows.
  struct QuantizedApi {
    std::shared_ptr<const GraphDef> graph;
    std::unique_ptr<Session> session;
    std::shared_ptr<Session::PreparedCall> prepared;
    std::vector<Endpoint> fetches;
    std::vector<int> feed_nodes;
    std::map<std::string, float> act_scales;     // MatMul node name -> scale
    std::map<std::string, float> weight_scales;  // variable name -> scale
    int quantized_matmuls = 0;
  };

  const QuantizedApi& quantized_api_or_throw(const std::string& api) const;

  std::vector<Tensor> execute_entry(ApiEntry& entry,
                                    const std::vector<Tensor>& inputs);
  std::vector<Tensor> execute_specialized(ApiEntry& entry,
                                          const std::vector<Tensor>& inputs);
  std::vector<Tensor> execute_imperative(ApiEntry& entry,
                                         const std::vector<Tensor>& inputs);

  std::shared_ptr<Component> root_;
  std::map<std::string, std::vector<SpacePtr>> api_input_spaces_;
  ExecutorOptions options_;
  VariableStore variables_;
  Rng rng_;

  bool built_ = false;
  MetaGraph meta_;
  BuildStats stats_;
  std::map<std::string, BuiltApi> api_registry_;
  std::map<std::string, int> handle_ids_;
  std::vector<ApiEntry> entries_;
  int64_t execution_calls_ = 0;
  MetricRegistry profile_;

  // Static backend state.
  std::shared_ptr<GraphDef> graph_;
  std::unique_ptr<Session> session_;
  std::map<std::string, std::unique_ptr<QuantizedApi>> quantized_;
};

}  // namespace rlgraph
