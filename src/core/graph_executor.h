// GraphExecutor: the execution bridge between the component graph and a
// backend (paper §4.1). Owns the variable store, drives all build phases,
// and serves execute(api, inputs) requests:
//
//  * static backend — looks up placeholders and fetch ops in the op registry
//    and batches everything into a single session call; the component graph
//    is not consulted again after the build.
//  * define-by-run backend — re-dispatches the call chain of graph functions
//    through the component graph, or replays the contracted fast-path
//    program when edge contraction succeeded.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/imperative_context.h"
#include "backend/static_context.h"
#include "core/fast_path.h"
#include "core/graph_builder.h"
#include "graph/passes.h"
#include "graph/session.h"
#include "util/metrics.h"

namespace rlgraph {

struct ExecutorOptions {
  Backend backend = Backend::kStatic;
  // Run the graph optimization passes after the static build.
  bool optimize = true;
  // Attempt fast-path edge contraction for define-by-run dispatch.
  bool fast_path = true;
  uint64_t seed = 1234;
  // Probe batch extent used for artificial placeholders in define-by-run
  // builds.
  int64_t probe_batch = 2;
  std::string default_device = "/cpu:0";
  // Per-component device assignments applied to the component tree before
  // the build (longest scope prefix wins); entries: scope -> device.
  std::map<std::string, std::string> device_map;
  // Record per-API execute() latencies into the profiling registry.
  bool profiling = false;
};

class GraphExecutor {
 public:
  // The executor shares ownership of the root component; a component tree
  // must be built by at most one executor.
  GraphExecutor(std::shared_ptr<Component> root,
                std::map<std::string, std::vector<SpacePtr>> api_input_spaces,
                ExecutorOptions options = {});

  // Runs assembly + build (+ optimization); idempotent.
  const BuildStats& build();

  // Serve one API request. Inputs/outputs are flattened leaf tensors in
  // space-flatten order.
  std::vector<Tensor> execute(const std::string& api,
                              const std::vector<Tensor>& inputs = {});

  // --- introspection ---------------------------------------------------------
  Component* root() { return root_.get(); }
  const MetaGraph& meta_graph() const { return meta_; }
  const BuildStats& stats() const { return stats_; }
  const std::map<std::string, BuiltApi>& api_registry() const {
    return api_registry_;
  }
  VariableStore& variables() { return variables_; }
  Rng& rng() { return rng_; }
  Backend backend() const { return options_.backend; }
  // Static backend: one per execute(); define-by-run: dispatch count.
  int64_t execution_calls() const { return execution_calls_; }
  // Per-API latency summaries (populated when options.profiling is set) —
  // the "hooks for summaries or profiling" of paper §4.1.
  const MetricRegistry& profile() const { return profile_; }
  std::string profile_report() const { return profile_.report(); }
  // Readable dump of the built computation graph (static backend).
  std::string graph_dump() const;

  // --- weights ------------------------------------------------------------------
  // All variables whose scoped name starts with `prefix` ("" = all).
  std::map<std::string, Tensor> get_weights(const std::string& prefix = "");
  void set_weights(const std::map<std::string, Tensor>& weights);
  // Checkpoint format (magic "RLGV"); round-trips through import.
  std::vector<uint8_t> export_variables();
  void import_variables(const std::vector<uint8_t>& bytes);

 private:
  std::vector<Tensor> execute_static(const BuiltApi& api,
                                     const std::vector<Tensor>& inputs);
  std::vector<Tensor> execute_imperative(const BuiltApi& api,
                                         const std::vector<Tensor>& inputs);

  std::shared_ptr<Component> root_;
  std::map<std::string, std::vector<SpacePtr>> api_input_spaces_;
  ExecutorOptions options_;
  VariableStore variables_;
  Rng rng_;

  bool built_ = false;
  MetaGraph meta_;
  BuildStats stats_;
  std::map<std::string, BuiltApi> api_registry_;
  int64_t execution_calls_ = 0;
  MetricRegistry profile_;

  // Static backend state.
  std::shared_ptr<GraphDef> graph_;
  std::unique_ptr<Session> session_;

  // Define-by-run state.
  std::map<std::string, FastPathProgram> fast_paths_;
};

}  // namespace rlgraph
