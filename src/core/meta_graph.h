// The component graph produced by the assembly phase: a backend-independent
// record of which components call which API methods (paper Algorithm 1).
//
// Assembly calls every root API method once with abstract op records; no
// shapes, dtypes or backend objects exist yet. The resulting MetaGraph backs
// the API registry arities, the build statistics reported in Fig. 5a, and
// the dataflow visualization (Appendix A).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rlgraph {

struct MetaGraph {
  struct CallEdge {
    std::string caller;  // component scope ("" for external API entry)
    std::string callee;  // component scope
    std::string method;
  };
  struct GraphFnCall {
    std::string component;  // component scope
    std::string name;
  };

  std::vector<CallEdge> edges;
  std::vector<GraphFnCall> graph_fns;
  // Root API method name -> number of returned op records.
  std::map<std::string, int> api_output_arity;
  int num_components = 0;
  double trace_seconds = 0.0;

  // GraphViz-style dump of the component call graph (the visualization story
  // of the paper's appendix).
  std::string to_dot() const;
};

}  // namespace rlgraph
