#include "env/catch_env.h"

#include "util/errors.h"

namespace rlgraph {

CatchEnv::CatchEnv(Config config) : config_(config), rng_(11) {
  RLG_REQUIRE(config_.height >= 3 && config_.width >= 3,
              "CatchEnv grid too small");
  state_space_ =
      FloatBox(Shape{config_.height, config_.width, 1}, 0.0, 1.0);
  action_space_ = IntBox(3);  // left, stay, right
}

std::unique_ptr<Environment> CatchEnv::from_json(const Json& spec) {
  Config c;
  c.height = spec.get_int("height", 10);
  c.width = spec.get_int("width", 8);
  c.rounds_per_episode = spec.get_int("rounds_per_episode", 21);
  return std::make_unique<CatchEnv>(c);
}

Tensor CatchEnv::observe() const {
  Tensor obs = Tensor::zeros(DType::kFloat32,
                             Shape{config_.height, config_.width, 1});
  float* p = obs.mutable_data<float>();
  p[ball_row_ * config_.width + ball_col_] = 1.0f;
  p[(config_.height - 1) * config_.width + paddle_col_] = 1.0f;
  return obs;
}

void CatchEnv::new_round() {
  ball_row_ = 0;
  ball_col_ = rng_.uniform_int(config_.width);
  paddle_col_ = config_.width / 2;
}

Tensor CatchEnv::reset() {
  rounds_done_ = 0;
  new_round();
  return observe();
}

StepResult CatchEnv::step(int64_t action) {
  RLG_REQUIRE(action >= 0 && action < 3, "CatchEnv action out of range");
  paddle_col_ = std::min(config_.width - 1,
                         std::max<int64_t>(0, paddle_col_ + (action - 1)));
  ++ball_row_;
  StepResult r;
  if (ball_row_ == config_.height - 1) {
    r.reward = ball_col_ == paddle_col_ ? 1.0 : -1.0;
    ++rounds_done_;
    if (rounds_done_ >= config_.rounds_per_episode) {
      r.terminal = true;
    } else {
      new_round();
    }
  }
  r.observation = observe();
  return r;
}

std::unique_ptr<Environment> make_catch(const Json& spec) {
  return CatchEnv::from_json(spec);
}

}  // namespace rlgraph
