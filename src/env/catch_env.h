// CatchEnv: the learnable Pong stand-in for learning-curve experiments.
//
// A ball falls from a random top column; the agent moves a paddle at the
// bottom (left / stay / right) and earns +1 for a catch, -1 for a miss. An
// episode is `rounds_per_episode` rounds (21 by default), so episode returns
// live in [-21, 21] — the same reward axis as the paper's Pong learning
// curves (Fig. 7b / 8). A small convnet or MLP solves it quickly, giving
// real learning curves on laptop-scale budgets.
#pragma once

#include "env/environment.h"
#include "util/random.h"

namespace rlgraph {

class CatchEnv : public Environment {
 public:
  struct Config {
    int64_t height = 10;
    int64_t width = 8;
    int64_t rounds_per_episode = 21;
  };

  explicit CatchEnv(Config config);
  static std::unique_ptr<Environment> from_json(const Json& spec);

  SpacePtr state_space() const override { return state_space_; }
  SpacePtr action_space() const override { return action_space_; }
  Tensor reset() override;
  StepResult step(int64_t action) override;
  void seed(uint64_t seed) override { rng_ = Rng(seed); }

 private:
  Tensor observe() const;
  void new_round();

  Config config_;
  SpacePtr state_space_;
  SpacePtr action_space_;
  int64_t ball_row_ = 0, ball_col_ = 0, paddle_col_ = 0;
  int64_t rounds_done_ = 0;
  Rng rng_;
};

}  // namespace rlgraph
