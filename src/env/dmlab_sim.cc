#include "env/dmlab_sim.h"

#include <cmath>

#include "util/errors.h"

namespace rlgraph {

DmLabSim::DmLabSim(Config config) : config_(config), rng_(17) {
  state_space_ =
      FloatBox(Shape{config_.height, config_.width, 3}, 0.0, 1.0);
  // DM-Lab-style discretized action set: look left/right, strafe left/right,
  // forward, backward.
  action_space_ = IntBox(6);
}

std::unique_ptr<Environment> DmLabSim::from_json(const Json& spec) {
  Config c;
  c.height = spec.get_int("height", 24);
  c.width = spec.get_int("width", 32);
  c.render_cost = spec.get_int("render_cost", 2000);
  c.episode_length = spec.get_int("episode_length", 300);
  c.frame_skip = static_cast<int>(spec.get_int("frame_skip", 4));
  return std::make_unique<DmLabSim>(c);
}

Tensor DmLabSim::render() {
  Tensor obs = Tensor::zeros(DType::kFloat32,
                             Shape{config_.height, config_.width, 3});
  float* p = obs.mutable_data<float>();
  // Column raycast: wall distance from a simple procedural arena.
  for (int64_t c = 0; c < config_.width; ++c) {
    double angle = heading_ + (static_cast<double>(c) / config_.width - 0.5);
    double dist =
        1.5 + std::fabs(std::sin(pos_x_ * 1.7 + angle * 3.0)) * 3.0 +
        std::fabs(std::cos(pos_y_ * 1.3 - angle * 2.0)) * 2.0;
    int64_t wall = std::clamp<int64_t>(
        static_cast<int64_t>(config_.height / dist), 1, config_.height);
    int64_t top = (config_.height - wall) / 2;
    for (int64_t r = 0; r < config_.height; ++r) {
      float* pixel = p + (r * config_.width + c) * 3;
      if (r < top) {  // sky
        pixel[2] = 0.7f;
      } else if (r < top + wall) {  // wall, shaded by distance
        float shade = static_cast<float>(1.0 / (1.0 + 0.3 * dist));
        pixel[0] = shade;
        pixel[1] = shade * 0.8f;
      } else {  // floor
        pixel[1] = 0.3f;
      }
    }
  }
  // Simulated scene complexity: extra per-frame work proportional to the
  // render budget (texture sampling, lighting, ...).
  uint64_t s = noise_state_;
  volatile double sink = 0.0;
  for (int64_t i = 0; i < config_.render_cost; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    sink = sink + std::sqrt(static_cast<double>((s >> 33) & 0xFFFF) + 1.0);
  }
  noise_state_ = s;
  return obs;
}

Tensor DmLabSim::reset() {
  steps_ = 0;
  pos_x_ = rng_.uniform(0.0, 10.0);
  pos_y_ = rng_.uniform(0.0, 10.0);
  heading_ = rng_.uniform(0.0, 6.28);
  return render();
}

StepResult DmLabSim::step(int64_t action) {
  RLG_REQUIRE(action >= 0 && action < 6, "DmLabSim action out of range");
  StepResult r;
  for (int f = 0; f < config_.frame_skip; ++f) {
    switch (action) {
      case 0: heading_ -= 0.1; break;
      case 1: heading_ += 0.1; break;
      case 2: pos_x_ += std::cos(heading_ + 1.57) * 0.1;
              pos_y_ += std::sin(heading_ + 1.57) * 0.1; break;
      case 3: pos_x_ -= std::cos(heading_ + 1.57) * 0.1;
              pos_y_ -= std::sin(heading_ + 1.57) * 0.1; break;
      case 4: pos_x_ += std::cos(heading_) * 0.15;
              pos_y_ += std::sin(heading_) * 0.15; break;
      case 5: pos_x_ -= std::cos(heading_) * 0.1;
              pos_y_ -= std::sin(heading_) * 0.1; break;
    }
  }
  ++steps_;
  // Sparse apple/lemon rewards as in seekavoid: pick up "apples" when
  // crossing procedural reward cells.
  double cell = std::sin(pos_x_ * 2.1) * std::cos(pos_y_ * 1.9);
  if (cell > 0.95) {
    r.reward = 1.0;
  } else if (cell < -0.98) {
    r.reward = -1.0;
  }
  r.observation = render();
  r.terminal = steps_ >= config_.episode_length;
  return r;
}

std::unique_ptr<Environment> make_dmlab(const Json& spec) {
  return DmLabSim::from_json(spec);
}

}  // namespace rlgraph
