// DmLabSim: a 3D-ish environment with configurable render cost, standing in
// for DeepMind Lab's seekavoid_arena_01 ("more expensive to render than
// Atari tasks", paper §5.1). A raycast-style column renderer plus a render
// budget knob make per-frame cost a first-class experimental parameter, so
// the IMPALA throughput comparison (Fig. 9) exercises the same bottleneck
// structure: actor-side rendering dominating, learner batching hidden
// behind a queue.
#pragma once

#include "env/environment.h"
#include "util/random.h"

namespace rlgraph {

class DmLabSim : public Environment {
 public:
  struct Config {
    int64_t height = 24;
    int64_t width = 32;
    // Extra busy-work iterations per frame (simulated scene complexity).
    int64_t render_cost = 2000;
    int64_t episode_length = 300;
    int frame_skip = 4;
  };

  explicit DmLabSim(Config config);
  static std::unique_ptr<Environment> from_json(const Json& spec);

  SpacePtr state_space() const override { return state_space_; }
  SpacePtr action_space() const override { return action_space_; }
  Tensor reset() override;
  StepResult step(int64_t action) override;
  void seed(uint64_t seed) override { rng_ = Rng(seed); }
  int frames_per_step() const override { return config_.frame_skip; }

 private:
  Tensor render();

  Config config_;
  SpacePtr state_space_;
  SpacePtr action_space_;
  double pos_x_ = 0, pos_y_ = 0, heading_ = 0;
  int64_t steps_ = 0;
  uint64_t noise_state_ = 0x9E3779B9u;
  Rng rng_;
};

}  // namespace rlgraph
