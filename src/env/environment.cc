#include "env/environment.h"

#include <map>

#include "util/errors.h"

namespace rlgraph {

int64_t Environment::num_actions() const {
  const auto& box = static_cast<const BoxSpace&>(*action_space());
  RLG_REQUIRE(box.num_categories() > 0,
              "environment action space is not categorical");
  return box.num_categories();
}

StepResult Environment::step_continuous(const Tensor& /*action*/) {
  throw ValueError("this environment has no continuous action interface");
}

// Built-in factories (explicit registration avoids the static-initializer
// dead-stripping problem with static libraries).
std::unique_ptr<Environment> make_grid_world(const Json&);
std::unique_ptr<Environment> make_catch(const Json&);
std::unique_ptr<Environment> make_pong(const Json&);
std::unique_ptr<Environment> make_dmlab(const Json&);
std::unique_ptr<Environment> make_pendulum(const Json&);

namespace {
using Factory = std::function<std::unique_ptr<Environment>(const Json&)>;
std::map<std::string, Factory>& factories() {
  static auto* m = new std::map<std::string, Factory>{
      {"grid_world", make_grid_world},
      {"catch", make_catch},
      {"pong", make_pong},
      {"dmlab", make_dmlab},
      {"pendulum", make_pendulum},
  };
  return *m;
}
}  // namespace

void register_environment(const std::string& type, Factory factory) {
  factories()[type] = std::move(factory);
}

std::unique_ptr<Environment> make_environment(const Json& spec) {
  const std::string type = spec.get_string("type", "");
  auto it = factories().find(type);
  if (it == factories().end()) {
    throw ConfigError("unknown environment type: '" + type + "'");
  }
  return it->second(spec);
}

}  // namespace rlgraph
