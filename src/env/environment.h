// Environment interface and registry.
//
// Environments are the synthetic stand-ins for the paper's benchmarks
// (Atari Pong via ALE, DeepMind Lab): each exposes a state space, a discrete
// action interface and step semantics with per-episode accounting. See
// DESIGN.md §1 for the substitution rationale.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "spaces/space.h"
#include "util/json.h"

namespace rlgraph {

struct StepResult {
  Tensor observation;
  double reward = 0.0;
  bool terminal = false;
};

class Environment {
 public:
  virtual ~Environment() = default;

  // Value spaces (no batch rank).
  virtual SpacePtr state_space() const = 0;
  virtual SpacePtr action_space() const = 0;
  virtual int64_t num_actions() const;

  virtual Tensor reset() = 0;
  virtual StepResult step(int64_t action) = 0;
  // Continuous-action step: `action` is a float tensor matching the action
  // space's value shape. Only continuous-control environments override this.
  virtual StepResult step_continuous(const Tensor& action);
  virtual void seed(uint64_t seed) = 0;

  // Environment frames consumed per step() (frame-skip), for the
  // frames-per-second accounting used throughout the evaluation.
  virtual int frames_per_step() const { return 1; }
};

// Factory registry; create via JSON spec {"type": "pong", ...}.
std::unique_ptr<Environment> make_environment(const Json& spec);
void register_environment(
    const std::string& type,
    std::function<std::unique_ptr<Environment>(const Json&)> factory);

}  // namespace rlgraph
