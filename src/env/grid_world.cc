#include "env/grid_world.h"

#include "util/errors.h"

namespace rlgraph {

GridWorld::GridWorld(Config config) : config_(config), rng_(7) {
  RLG_REQUIRE(config_.size >= 2, "GridWorld size must be >= 2");
  state_space_ = FloatBox(Shape{config_.size * config_.size}, 0.0, 1.0);
  action_space_ = IntBox(4);
  if (config_.with_holes && config_.size >= 4) {
    // Fixed hole layout keeps the task deterministic across seeds.
    holes_.insert({1, 1});
    holes_.insert({2, config_.size - 2});
  }
}

std::unique_ptr<Environment> GridWorld::from_json(const Json& spec) {
  Config c;
  c.size = spec.get_int("size", 4);
  c.step_penalty = spec.get_double("step_penalty", 0.01);
  c.max_steps = spec.get_int("max_steps", 100);
  c.with_holes = spec.get_bool("with_holes", true);
  return std::make_unique<GridWorld>(c);
}

Tensor GridWorld::observe() const {
  Tensor obs =
      Tensor::zeros(DType::kFloat32, Shape{config_.size * config_.size});
  obs.mutable_data<float>()[row_ * config_.size + col_] = 1.0f;
  return obs;
}

Tensor GridWorld::reset() {
  row_ = 0;
  col_ = 0;
  steps_ = 0;
  return observe();
}

StepResult GridWorld::step(int64_t action) {
  RLG_REQUIRE(action >= 0 && action < 4, "GridWorld action out of range");
  ++steps_;
  switch (action) {
    case 0: row_ = std::max<int64_t>(0, row_ - 1); break;           // up
    case 1: row_ = std::min(config_.size - 1, row_ + 1); break;     // down
    case 2: col_ = std::max<int64_t>(0, col_ - 1); break;           // left
    case 3: col_ = std::min(config_.size - 1, col_ + 1); break;     // right
  }
  StepResult r;
  r.observation = observe();
  r.reward = -config_.step_penalty;
  if (holes_.count({row_, col_}) > 0) {
    r.reward = -1.0;
    r.terminal = true;
  } else if (row_ == config_.size - 1 && col_ == config_.size - 1) {
    r.reward = 1.0;
    r.terminal = true;
  } else if (steps_ >= config_.max_steps) {
    r.terminal = true;
  }
  return r;
}

std::unique_ptr<Environment> make_grid_world(const Json& spec) {
  return GridWorld::from_json(spec);
}

}  // namespace rlgraph
