// GridWorld: a small deterministic navigation task used by the quickstart
// example and learning tests. One-hot position observation, four actions,
// step penalty, +1 at the goal, -1 in holes.
#pragma once

#include <set>

#include "env/environment.h"
#include "util/random.h"

namespace rlgraph {

class GridWorld : public Environment {
 public:
  struct Config {
    int64_t size = 4;
    double step_penalty = 0.01;
    int64_t max_steps = 100;
    bool with_holes = true;
  };

  explicit GridWorld(Config config);
  static std::unique_ptr<Environment> from_json(const Json& spec);

  SpacePtr state_space() const override { return state_space_; }
  SpacePtr action_space() const override { return action_space_; }
  Tensor reset() override;
  StepResult step(int64_t action) override;
  void seed(uint64_t seed) override { rng_ = Rng(seed); }

 private:
  Tensor observe() const;

  Config config_;
  SpacePtr state_space_;
  SpacePtr action_space_;
  int64_t row_ = 0, col_ = 0, steps_ = 0;
  std::set<std::pair<int64_t, int64_t>> holes_;
  Rng rng_;
};

}  // namespace rlgraph
