#include "env/pendulum_env.h"

#include <cmath>

#include "util/errors.h"

namespace rlgraph {

namespace {
constexpr double kPi = 3.14159265358979323846;

// Wrap an angle into [-pi, pi].
double wrap_angle(double a) {
  a = std::fmod(a + kPi, 2.0 * kPi);
  if (a < 0) a += 2.0 * kPi;
  return a - kPi;
}
}  // namespace

PendulumEnv::PendulumEnv(Config config) : config_(config), rng_(7) {
  RLG_REQUIRE(config_.max_torque > 0, "Pendulum max_torque must be > 0");
  RLG_REQUIRE(config_.torque_bins >= 2, "Pendulum torque_bins must be >= 2");
  state_space_ = FloatBox(Shape{3}, -config_.max_speed, config_.max_speed);
  action_space_ = FloatBox(Shape{1}, {-config_.max_torque},
                           {config_.max_torque});
}

std::unique_ptr<Environment> PendulumEnv::from_json(const Json& spec) {
  Config c;
  c.max_torque = spec.get_double("max_torque", 2.0);
  c.max_speed = spec.get_double("max_speed", 8.0);
  c.dt = spec.get_double("dt", 0.05);
  c.gravity = spec.get_double("gravity", 10.0);
  c.max_steps = spec.get_int("max_steps", 200);
  c.torque_bins = spec.get_int("torque_bins", 5);
  return std::make_unique<PendulumEnv>(c);
}

std::unique_ptr<Environment> make_pendulum(const Json& spec) {
  return PendulumEnv::from_json(spec);
}

Tensor PendulumEnv::observe() const {
  return Tensor::from_floats(Shape{3}, {static_cast<float>(std::cos(theta_)),
                                        static_cast<float>(std::sin(theta_)),
                                        static_cast<float>(theta_dot_)});
}

Tensor PendulumEnv::reset() {
  theta_ = rng_.uniform(-kPi, kPi);
  theta_dot_ = rng_.uniform(-1.0, 1.0);
  steps_ = 0;
  return observe();
}

StepResult PendulumEnv::apply_torque(double torque) {
  torque = std::min(config_.max_torque, std::max(-config_.max_torque, torque));
  ++steps_;

  const double g = config_.gravity, m = config_.mass, l = config_.length;
  const double dt = config_.dt;
  // Cost is computed on the pre-step state, matching the classic task.
  const double angle_err = wrap_angle(theta_);
  const double cost = angle_err * angle_err + 0.1 * theta_dot_ * theta_dot_ +
                      0.001 * torque * torque;

  // Semi-implicit Euler on  ml^2 * theta'' = 3/2 * mgl * sin(theta) + 3u.
  theta_dot_ += (3.0 * g / (2.0 * l) * std::sin(theta_) +
                 3.0 / (m * l * l) * torque) *
                dt;
  theta_dot_ = std::min(config_.max_speed,
                        std::max(-config_.max_speed, theta_dot_));
  theta_ = theta_ + theta_dot_ * dt;

  StepResult r;
  r.observation = observe();
  r.reward = -cost;
  r.terminal = steps_ >= config_.max_steps;
  return r;
}

StepResult PendulumEnv::step_continuous(const Tensor& action) {
  RLG_REQUIRE(action.dtype() == DType::kFloat32 && action.num_elements() == 1,
              "Pendulum expects one float torque, got "
                  << action.shape().to_string());
  return apply_torque(static_cast<double>(action.data<float>()[0]));
}

StepResult PendulumEnv::step(int64_t action) {
  RLG_REQUIRE(action >= 0 && action < config_.torque_bins,
              "Pendulum discrete action out of range: " << action);
  // Uniform torque grid over [-max_torque, max_torque].
  const double t = -config_.max_torque +
                   2.0 * config_.max_torque * static_cast<double>(action) /
                       static_cast<double>(config_.torque_bins - 1);
  return apply_torque(t);
}

}  // namespace rlgraph
