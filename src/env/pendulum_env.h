// PendulumEnv: the classic underactuated swing-up task, as a cheap
// deterministic continuous-control benchmark (the pendulum/reacher slot in
// the ROADMAP's scenario-diversity item).
//
// State is the pole angle theta (0 = upright) and angular velocity
// theta_dot; the observation is [cos(theta), sin(theta), theta_dot] and the
// action is a single torque in [-max_torque, max_torque]. Reward is the
// standard  -(theta^2 + 0.1*theta_dot^2 + 0.001*torque^2)  per step, so an
// episode return near 0 means the pole is balanced upright. Episodes are a
// fixed horizon (no terminal states inside an episode); reset() draws the
// initial (theta, theta_dot) from the env's own seeded Rng, so trajectories
// are bitwise reproducible given seed().
//
// step(int64_t) is also provided for discrete agents: the action id indexes
// a uniform torque grid over [-max_torque, max_torque].
#pragma once

#include "env/environment.h"
#include "util/random.h"

namespace rlgraph {

class PendulumEnv : public Environment {
 public:
  struct Config {
    double max_torque = 2.0;
    double max_speed = 8.0;
    double dt = 0.05;
    double gravity = 10.0;
    double mass = 1.0;
    double length = 1.0;
    int64_t max_steps = 200;
    // Grid resolution for the discrete step() adapter.
    int64_t torque_bins = 5;
  };

  explicit PendulumEnv(Config config);
  static std::unique_ptr<Environment> from_json(const Json& spec);

  SpacePtr state_space() const override { return state_space_; }
  SpacePtr action_space() const override { return action_space_; }
  Tensor reset() override;
  StepResult step(int64_t action) override;
  StepResult step_continuous(const Tensor& action) override;
  void seed(uint64_t seed) override { rng_ = Rng(seed); }

 private:
  Tensor observe() const;
  StepResult apply_torque(double torque);

  Config config_;
  SpacePtr state_space_;
  SpacePtr action_space_;
  double theta_ = 0.0;
  double theta_dot_ = 0.0;
  int64_t steps_ = 0;
  Rng rng_;
};

}  // namespace rlgraph
