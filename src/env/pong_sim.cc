#include "env/pong_sim.h"

#include <algorithm>
#include <cmath>

#include "util/errors.h"

namespace rlgraph {

namespace {
constexpr double kPaddleHalf = 0.12;  // paddle half-height (normalized)
constexpr double kPaddleSpeed = 0.06;
constexpr double kBallSpeed = 0.04;
}  // namespace

PongSim::PongSim(Config config) : config_(config), rng_(3) {
  RLG_REQUIRE(config_.height >= 8 && config_.width >= 8,
              "PongSim resolution too small");
  state_space_ =
      FloatBox(Shape{config_.height, config_.width, 1}, 0.0, 1.0);
  action_space_ = IntBox(3);  // up, stay, down
}

std::unique_ptr<Environment> PongSim::from_json(const Json& spec) {
  Config c;
  c.height = spec.get_int("height", 32);
  c.width = spec.get_int("width", 32);
  c.frame_skip = static_cast<int>(spec.get_int("frame_skip", 4));
  c.points_per_episode = spec.get_int("points_per_episode", 21);
  c.opponent_speed = spec.get_double("opponent_speed", 0.5);
  return std::make_unique<PongSim>(c);
}

void PongSim::new_point() {
  ball_x_ = 0.5;
  ball_y_ = 0.5;
  double angle = rng_.uniform(-0.6, 0.6);
  ball_vx_ = (rng_.bernoulli(0.5) ? 1.0 : -1.0) * kBallSpeed * std::cos(angle);
  ball_vy_ = kBallSpeed * std::sin(angle);
}

Tensor PongSim::reset() {
  agent_score_ = 0;
  opponent_score_ = 0;
  agent_y_ = 0.5;
  opponent_y_ = 0.5;
  new_point();
  return render();
}

int PongSim::advance(int64_t action) {
  // Agent paddle on the right, opponent on the left.
  agent_y_ += (action - 1) * kPaddleSpeed;
  agent_y_ = std::clamp(agent_y_, kPaddleHalf, 1.0 - kPaddleHalf);
  // Opponent tracks the ball at reduced speed.
  double target = ball_y_;
  double delta = std::clamp(target - opponent_y_,
                            -kPaddleSpeed * config_.opponent_speed,
                            kPaddleSpeed * config_.opponent_speed);
  opponent_y_ = std::clamp(opponent_y_ + delta, kPaddleHalf,
                           1.0 - kPaddleHalf);

  ball_x_ += ball_vx_;
  ball_y_ += ball_vy_;
  if (ball_y_ <= 0.0 || ball_y_ >= 1.0) {
    ball_vy_ = -ball_vy_;
    ball_y_ = std::clamp(ball_y_, 0.0, 1.0);
  }
  // Left paddle (opponent).
  if (ball_x_ <= 0.02 && ball_vx_ < 0) {
    if (std::fabs(ball_y_ - opponent_y_) <= kPaddleHalf) {
      ball_vx_ = -ball_vx_;
      ball_vy_ += (ball_y_ - opponent_y_) * 0.08;
    } else {
      return +1;  // agent scores
    }
  }
  // Right paddle (agent).
  if (ball_x_ >= 0.98 && ball_vx_ > 0) {
    if (std::fabs(ball_y_ - agent_y_) <= kPaddleHalf) {
      ball_vx_ = -ball_vx_;
      ball_vy_ += (ball_y_ - agent_y_) * 0.08;
    } else {
      return -1;  // opponent scores
    }
  }
  return 0;
}

Tensor PongSim::render() const {
  Tensor obs = Tensor::zeros(DType::kFloat32,
                             Shape{config_.height, config_.width, 1});
  float* p = obs.mutable_data<float>();
  auto put = [&](double x, double y, float v) {
    int64_t r = std::clamp<int64_t>(
        static_cast<int64_t>(y * (config_.height - 1)), 0,
        config_.height - 1);
    int64_t c = std::clamp<int64_t>(
        static_cast<int64_t>(x * (config_.width - 1)), 0, config_.width - 1);
    p[r * config_.width + c] = v;
  };
  // Paddles: vertical strips.
  for (double dy = -kPaddleHalf; dy <= kPaddleHalf; dy += 0.04) {
    put(0.0, opponent_y_ + dy, 0.5f);
    put(1.0, agent_y_ + dy, 0.5f);
  }
  put(ball_x_, ball_y_, 1.0f);
  return obs;
}

StepResult PongSim::step(int64_t action) {
  RLG_REQUIRE(action >= 0 && action < 3, "PongSim action out of range");
  StepResult result;
  int outcome = 0;
  for (int f = 0; f < config_.frame_skip && outcome == 0; ++f) {
    outcome = advance(action);
  }
  if (outcome != 0) {
    result.reward = outcome;
    if (outcome > 0) {
      ++agent_score_;
    } else {
      ++opponent_score_;
    }
    if (agent_score_ >= config_.points_per_episode ||
        opponent_score_ >= config_.points_per_episode) {
      result.terminal = true;
    } else {
      new_point();
    }
  }
  result.observation = render();
  return result;
}

std::unique_ptr<Environment> make_pong(const Json& spec) {
  return PongSim::from_json(spec);
}

}  // namespace rlgraph
