// PongSim: a dynamics-faithful Pong simulator rendered to a float image —
// the throughput stand-in for the ALE Pong environment. Two paddles (agent
// vs. a tracking opponent), ball with reflection dynamics, ±1 per point, 21
// points per episode, configurable frame skip (frame accounting matches the
// paper: reported frames include skipped frames).
#pragma once

#include "env/environment.h"
#include "util/random.h"

namespace rlgraph {

class PongSim : public Environment {
 public:
  struct Config {
    int64_t height = 32;
    int64_t width = 32;
    int frame_skip = 4;
    int64_t points_per_episode = 21;
    double opponent_speed = 0.5;  // < 1: beatable opponent
  };

  explicit PongSim(Config config);
  static std::unique_ptr<Environment> from_json(const Json& spec);

  SpacePtr state_space() const override { return state_space_; }
  SpacePtr action_space() const override { return action_space_; }
  Tensor reset() override;
  StepResult step(int64_t action) override;
  void seed(uint64_t seed) override { rng_ = Rng(seed); }
  int frames_per_step() const override { return config_.frame_skip; }

 private:
  Tensor render() const;
  // Advance one physics frame; returns point outcome (-1, 0, +1 for agent).
  int advance(int64_t action);
  void new_point();

  Config config_;
  SpacePtr state_space_;
  SpacePtr action_space_;
  double ball_x_ = 0, ball_y_ = 0, ball_vx_ = 0, ball_vy_ = 0;
  double agent_y_ = 0, opponent_y_ = 0;
  int64_t agent_score_ = 0, opponent_score_ = 0;
  Rng rng_;
};

}  // namespace rlgraph
