#include "env/vector_env.h"

#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

VectorEnv::VectorEnv(const Json& spec, int64_t num_envs, uint64_t seed) {
  RLG_REQUIRE(num_envs > 0, "VectorEnv requires at least one env");
  envs_.reserve(static_cast<size_t>(num_envs));
  for (int64_t i = 0; i < num_envs; ++i) {
    auto env = make_environment(spec);
    env->seed(seed * 7919 + static_cast<uint64_t>(i) * 104729 + 1);
    envs_.push_back(std::move(env));
  }
  episode_return_.assign(static_cast<size_t>(num_envs), 0.0);
}

Tensor VectorEnv::reset() {
  current_obs_.clear();
  for (auto& env : envs_) current_obs_.push_back(env->reset());
  std::fill(episode_return_.begin(), episode_return_.end(), 0.0);
  return kernels::stack_rows(current_obs_);
}

VectorStepResult VectorEnv::step(const Tensor& actions) {
  RLG_REQUIRE(actions.dtype() == DType::kInt32 &&
                  actions.num_elements() == num_envs(),
              "VectorEnv::step expects int32 actions of size num_envs");
  const int32_t* pa = actions.data<int32_t>();
  VectorStepResult out;
  Tensor rewards(DType::kFloat32, Shape{num_envs()});
  Tensor terminals(DType::kBool, Shape{num_envs()});
  float* pr = rewards.mutable_data<float>();
  uint8_t* pt = terminals.mutable_data<uint8_t>();
  for (int64_t i = 0; i < num_envs(); ++i) {
    StepResult r = envs_[static_cast<size_t>(i)]->step(pa[i]);
    out.env_frames += envs_[static_cast<size_t>(i)]->frames_per_step();
    episode_return_[static_cast<size_t>(i)] += r.reward;
    pr[i] = static_cast<float>(r.reward);
    pt[i] = r.terminal ? 1 : 0;
    if (r.terminal) {
      finished_returns_.push_back(episode_return_[static_cast<size_t>(i)]);
      episode_return_[static_cast<size_t>(i)] = 0.0;
      current_obs_[static_cast<size_t>(i)] =
          envs_[static_cast<size_t>(i)]->reset();
    } else {
      current_obs_[static_cast<size_t>(i)] = std::move(r.observation);
    }
  }
  total_env_frames_ += out.env_frames;
  out.observations = kernels::stack_rows(current_obs_);
  out.rewards = std::move(rewards);
  out.terminals = std::move(terminals);
  return out;
}

std::vector<double> VectorEnv::drain_episode_returns() {
  std::vector<double> out = std::move(finished_returns_);
  finished_returns_.clear();
  return out;
}

}  // namespace rlgraph
