// VectorEnv: a vector of environment copies stepped with batched actions
// (the "vectorized environment worker" of the Ape-X executor). Environments
// auto-reset on terminal; per-episode returns are accumulated for the mean-
// worker-reward metric used in the learning-curve figures.
#pragma once

#include <memory>
#include <vector>

#include "env/environment.h"

namespace rlgraph {

struct VectorStepResult {
  Tensor observations;  // [num_envs, ...state]
  Tensor rewards;       // [num_envs] float32
  Tensor terminals;     // [num_envs] bool
  int64_t env_frames = 0;
};

class VectorEnv {
 public:
  // Creates `num_envs` copies from the JSON spec, seeded distinctly.
  VectorEnv(const Json& spec, int64_t num_envs, uint64_t seed = 1);

  int64_t num_envs() const { return static_cast<int64_t>(envs_.size()); }
  SpacePtr state_space() const { return envs_[0]->state_space(); }
  SpacePtr action_space() const { return envs_[0]->action_space(); }
  int64_t num_actions() const { return envs_[0]->num_actions(); }

  // Reset all copies; returns stacked observations.
  Tensor reset();
  // Step every env with its action ([num_envs] int32); auto-resets
  // terminated envs (the returned observation is the fresh reset).
  VectorStepResult step(const Tensor& actions);

  // Returns of episodes completed since the last drain.
  std::vector<double> drain_episode_returns();
  int64_t total_env_frames() const { return total_env_frames_; }

 private:
  std::vector<std::unique_ptr<Environment>> envs_;
  std::vector<Tensor> current_obs_;
  std::vector<double> episode_return_;
  std::vector<double> finished_returns_;
  int64_t total_env_frames_ = 0;
};

}  // namespace rlgraph
