#include "execution/allreduce.h"

#include <cstring>

#include "util/errors.h"

namespace rlgraph {

RingAllReduce::RingAllReduce(int num_ranks)
    : num_ranks_(num_ranks), mailboxes_(static_cast<size_t>(num_ranks)) {
  RLG_REQUIRE(num_ranks >= 1, "RingAllReduce requires >= 1 rank");
  int steps = 2 * (num_ranks - 1);
  for (auto& box : mailboxes_) {
    box.slots.resize(static_cast<size_t>(std::max(steps, 1)));
    box.ready.assign(static_cast<size_t>(std::max(steps, 1)), false);
  }
}

void RingAllReduce::send(int to_rank, int step, std::vector<float> chunk) {
  Mailbox& box = mailboxes_[static_cast<size_t>(to_rank)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.slots[static_cast<size_t>(step)] = std::move(chunk);
    box.ready[static_cast<size_t>(step)] = true;
  }
  box.cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++messages_;
  }
}

std::vector<float> RingAllReduce::receive(int rank, int step) {
  Mailbox& box = mailboxes_[static_cast<size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  box.cv.wait(lock, [&] { return box.ready[static_cast<size_t>(step)]; });
  box.ready[static_cast<size_t>(step)] = false;
  return std::move(box.slots[static_cast<size_t>(step)]);
}

std::vector<Tensor> RingAllReduce::reduce(int rank,
                                          const std::vector<Tensor>& local) {
  RLG_REQUIRE(rank >= 0 && rank < num_ranks_, "bad rank");
  // Flatten the tensor list into one buffer split into num_ranks chunks.
  std::vector<float> flat;
  std::vector<std::pair<DType, Shape>> signatures;
  for (const Tensor& t : local) {
    check_dtype(t, DType::kFloat32, "allreduce");
    signatures.emplace_back(t.dtype(), t.shape());
    std::vector<float> values = t.to_floats();
    flat.insert(flat.end(), values.begin(), values.end());
  }

  if (num_ranks_ > 1) {
    int n = num_ranks_;
    size_t total = flat.size();
    size_t chunk_size = (total + static_cast<size_t>(n) - 1) /
                        static_cast<size_t>(n);
    auto chunk_range = [&](int c) {
      size_t begin = std::min(total, static_cast<size_t>(c) * chunk_size);
      size_t end = std::min(total, begin + chunk_size);
      return std::make_pair(begin, end);
    };
    int next = (rank + 1) % n;

    // Phase 1: reduce-scatter. At step s, rank r sends chunk (r - s) and
    // accumulates the received chunk (r - s - 1) into its buffer.
    for (int s = 0; s < n - 1; ++s) {
      int send_chunk = ((rank - s) % n + n) % n;
      auto [sb, se] = chunk_range(send_chunk);
      send(next, s, std::vector<float>(flat.begin() + sb, flat.begin() + se));
      std::vector<float> incoming = receive(rank, s);
      int recv_chunk = ((rank - s - 1) % n + n) % n;
      auto [rb, re] = chunk_range(recv_chunk);
      RLG_CHECK(incoming.size() == re - rb);
      for (size_t i = 0; i < incoming.size(); ++i) {
        flat[rb + i] += incoming[i];
      }
    }
    // Phase 2: all-gather. At step s, rank r sends its (now fully reduced)
    // chunk (r + 1 - s) and overwrites chunk (r - s).
    for (int s = 0; s < n - 1; ++s) {
      int send_chunk = ((rank + 1 - s) % n + n) % n;
      auto [sb, se] = chunk_range(send_chunk);
      send(next, n - 1 + s,
           std::vector<float>(flat.begin() + sb, flat.begin() + se));
      std::vector<float> incoming = receive(rank, n - 1 + s);
      int recv_chunk = ((rank - s) % n + n) % n;
      auto [rb, re] = chunk_range(recv_chunk);
      RLG_CHECK(incoming.size() == re - rb);
      std::memcpy(flat.data() + rb, incoming.data(),
                  incoming.size() * sizeof(float));
    }
  }

  // Mean and unflatten.
  float inv = 1.0f / static_cast<float>(num_ranks_);
  for (float& v : flat) v *= inv;
  std::vector<Tensor> out;
  size_t cursor = 0;
  for (const auto& [dtype, shape] : signatures) {
    Tensor t(dtype, shape);
    std::memcpy(t.mutable_raw(), flat.data() + cursor, t.byte_size());
    cursor += static_cast<size_t>(t.num_elements());
    out.push_back(std::move(t));
  }

  // Round barrier: make the object reusable for the next reduce().
  {
    std::unique_lock<std::mutex> lock(round_mutex_);
    int64_t my_round = round_;
    if (++arrived_ == num_ranks_) {
      arrived_ = 0;
      ++round_;
      round_cv_.notify_all();
    } else {
      round_cv_.wait(lock, [&] { return round_ != my_round; });
    }
  }
  return out;
}

}  // namespace rlgraph
