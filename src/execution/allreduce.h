// Ring all-reduce over tensor lists — the in-process analogue of the
// Horovod plugin the paper's graph executors can delegate distributed
// communication to ("plug-in third party tools such as Uber's Horovod ...
// e.g. ring all-reduce", §4.1).
//
// Participants are ranks in a logical ring; each rank contributes one
// tensor list (e.g. per-tower gradients) and every rank receives the
// element-wise mean. The implementation runs the classic two-phase ring
// (reduce-scatter over chunks, then all-gather) over an in-process channel
// so chunk traffic, neighbour-only communication and step count match the
// real algorithm: 2*(n-1) chunk sends per rank.
#pragma once

#include <condition_variable>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace rlgraph {

class RingAllReduce {
 public:
  explicit RingAllReduce(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  // Called concurrently by every rank (one thread per rank) with its local
  // tensors; blocks until the ring completes and returns the mean. All
  // ranks must pass identically-shaped lists.
  std::vector<Tensor> reduce(int rank, const std::vector<Tensor>& local);

  // Total chunk messages passed around the ring so far (2*(n-1) per
  // reduce() per rank).
  int64_t messages_sent() const { return messages_; }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // One slot per step; a rank's neighbour deposits its chunk here.
    std::vector<std::vector<float>> slots;
    std::vector<bool> ready;
  };

  void send(int to_rank, int step, std::vector<float> chunk);
  std::vector<float> receive(int rank, int step);

  int num_ranks_;
  std::vector<Mailbox> mailboxes_;
  std::mutex state_mutex_;
  int64_t messages_ = 0;
  // Generation barrier so the object can be reused across reduce() rounds.
  std::mutex round_mutex_;
  std::condition_variable round_cv_;
  int arrived_ = 0;
  int64_t round_ = 0;
};

}  // namespace rlgraph
