#include "execution/apex_executor.h"

#include <cmath>
#include <numeric>

#include "components/memories.h"
#include "core/build_context.h"
#include "execution/remote_worker.h"
#include "tensor/kernels.h"
#include "util/errors.h"
#include "util/logging.h"

namespace rlgraph {

// --- ApexWorker -----------------------------------------------------------------

ApexWorker::ApexWorker(const ApexConfig& config, int worker_index)
    : config_(config) {
  Json cfg = config.agent_config;
  // Workers never store records locally; shrink the (unused) memory.
  cfg["memory"]["capacity"] = Json(static_cast<int64_t>(16));
  cfg["seed"] = Json(static_cast<int64_t>(config.seed + 1000 +
                                          static_cast<uint64_t>(worker_index)));
  agent_ = std::make_unique<DQNAgent>(cfg, config.state_space,
                                      config.action_space);
  agent_->build();
  env_ = std::make_unique<VectorEnv>(
      config.env_spec, config.envs_per_worker,
      config.seed * 31 + static_cast<uint64_t>(worker_index));
  nstep_.resize(static_cast<size_t>(config.envs_per_worker));
}

void ApexWorker::set_weights(const std::map<std::string, Tensor>& weights) {
  agent_->set_weights(weights);
}

int64_t ApexWorker::executor_calls() {
  return agent_->executor().execution_calls();
}

SampleBatch ApexWorker::sample(int64_t num_records) {
  if (!started_) {
    current_obs_ = env_->reset();
    started_ = true;
    // Prime the preprocessed view with one act (also warms caches).
    agent_->get_actions(current_obs_);
    current_pre_ = agent_->last_preprocessed();
  }

  const int64_t E = env_->num_envs();
  const double gamma = config_.discount;
  const int n = config_.n_step;

  std::vector<Tensor> rec_s, rec_a, rec_r, rec_s2, rec_t;
  auto emit = [&](const Pending& p, const Tensor& s2_row, bool terminal) {
    rec_s.push_back(p.state);
    rec_a.push_back(p.action);
    rec_r.push_back(Tensor::from_floats(
        Shape{1}, {static_cast<float>(p.reward_acc)}));
    rec_s2.push_back(s2_row);
    rec_t.push_back(Tensor::from_bools(Shape{1}, {terminal}));
  };

  SampleBatch out;
  while (static_cast<int64_t>(rec_s.size()) < num_records) {
    // 1. Act. RLgraph: one batched executor call across the env vector.
    //    RLlib-like: one call per environment (paper §5.1: "multiple
    //    session calls", per-env accounting).
    Tensor actions;
    Tensor pre;
    if (!config_.act_per_env) {
      actions = agent_->get_actions(current_obs_);
      pre = agent_->last_preprocessed();
    } else {
      std::vector<Tensor> action_rows, pre_rows;
      for (int64_t e = 0; e < E; ++e) {
        Tensor obs_row = kernels::slice_rows(current_obs_, e, 1);
        action_rows.push_back(agent_->get_actions(obs_row));
        pre_rows.push_back(agent_->last_preprocessed());
      }
      actions = kernels::concat(action_rows, 0);
      pre = kernels::concat(pre_rows, 0);
    }

    // Aged-out n-step records resolve against the current preprocessed
    // state (s_{t+n}).
    for (int64_t e = 0; e < E; ++e) {
      auto& dq = nstep_[static_cast<size_t>(e)];
      while (!dq.empty() && dq.front().age >= n) {
        emit(dq.front(), kernels::slice_rows(pre, e, 1), false);
        dq.pop_front();
      }
    }

    // 2. Step the vectorized environment.
    VectorStepResult r = env_->step(actions);
    out.env_frames += r.env_frames;

    // 3. Accumulate n-step rewards.
    const float* pr = r.rewards.data<float>();
    const uint8_t* pt = r.terminals.data<uint8_t>();
    for (int64_t e = 0; e < E; ++e) {
      auto& dq = nstep_[static_cast<size_t>(e)];
      dq.push_back(Pending{kernels::slice_rows(pre, e, 1),
                           kernels::slice_rows(actions, e, 1), 0.0, 0});
      for (Pending& p : dq) {
        p.reward_acc += std::pow(gamma, p.age) * pr[e];
        ++p.age;
      }
      if (pt[e] != 0) {
        // Terminal: flush everything; s2 is masked by the terminal flag.
        Tensor dummy = kernels::slice_rows(pre, e, 1);
        while (!dq.empty()) {
          emit(dq.front(), dummy, true);
          dq.pop_front();
        }
      }
    }

    current_obs_ = r.observations;
    current_pre_ = pre;
  }

  for (double ret : env_->drain_episode_returns()) {
    out.episode_returns.push_back(ret);
  }
  out.num_records = static_cast<int64_t>(rec_s.size());
  out.states = kernels::concat(rec_s, 0);
  out.actions = kernels::concat(rec_a, 0);
  out.rewards = kernels::concat(rec_r, 0);
  out.next_states = kernels::concat(rec_s2, 0);
  out.terminals = kernels::concat(rec_t, 0);
  post_process(&out);
  return out;
}

void ApexWorker::post_process(SampleBatch* batch) {
  // Worker-side prioritization (Ape-X heuristic): initial priorities are the
  // worker's own TD errors.
  if (!config_.incremental_post_processing) {
    // RLgraph: one batched executor call.
    batch->priorities = agent_->compute_priorities(
        batch->states, batch->actions, batch->rewards, batch->next_states,
        batch->terminals);
    return;
  }
  // RLlib-like: incremental chunked post-processing, one executor call per
  // chunk.
  std::vector<Tensor> parts;
  int64_t total = batch->num_records;
  int64_t chunk = std::max<int64_t>(1, config_.post_process_chunk);
  for (int64_t begin = 0; begin < total; begin += chunk) {
    int64_t size = std::min(chunk, total - begin);
    parts.push_back(agent_->compute_priorities(
        kernels::slice_rows(batch->states, begin, size),
        kernels::slice_rows(batch->actions, begin, size),
        kernels::slice_rows(batch->rewards, begin, size),
        kernels::slice_rows(batch->next_states, begin, size),
        kernels::slice_rows(batch->terminals, begin, size)));
  }
  batch->priorities = kernels::concat(parts, 0);
}

// --- ReplayShard -----------------------------------------------------------------

ReplayShard::ReplayShard(const ApexConfig& config, int shard_index) {
  const Json& mem = config.agent_config.get("memory");
  auto root = std::make_shared<Component>("shard");
  auto* memory = root->add_component(std::make_shared<PrioritizedReplay>(
      "memory", mem.is_null() ? 100000 : mem.get_int("capacity", 100000),
      mem.get_double("alpha", 0.6), mem.get_double("beta", 0.4)));

  SpacePtr pre_b = config.preprocessed_space_->with_batch_rank();
  SpacePtr action_b = config.action_space->with_batch_rank();
  SpacePtr float_b = FloatBox()->with_batch_rank();
  SpacePtr bool_b = BoolBox()->with_batch_rank();
  SpacePtr record_space = Tuple({pre_b, action_b, float_b, pre_b, bool_b});

  root->register_api(
      "insert",
      [memory, record_space](BuildContext& ctx,
                             const OpRecs& inputs) -> OpRecs {
        RLG_REQUIRE(inputs.size() == 6, "insert expects 6 leaves");
        OpRec record;
        record.space = record_space;
        for (size_t i = 0; i < 5; ++i) {
          if (!inputs[i].abstract()) record.ops.push_back(inputs[i].op());
        }
        return memory->call_api(ctx, "insert_records", {record, inputs[5]});
      });
  root->register_api("sample",
                     [memory](BuildContext& ctx, const OpRecs& inputs) {
                       OpRecs out =
                           memory->call_api(ctx, "get_records", inputs);
                       if (ctx.assembling()) out.resize(7);
                       return out;
                     });
  root->register_api("update_priorities",
                     [memory](BuildContext& ctx, const OpRecs& inputs) {
                       return memory->call_api(ctx, "update_records", inputs);
                     });
  root->register_api("size",
                     [memory](BuildContext& ctx, const OpRecs& inputs) {
                       return memory->call_api(ctx, "get_size", inputs);
                     });

  ExecutorOptions opts;
  opts.seed = config.seed + 500 + static_cast<uint64_t>(shard_index);
  executor_ = std::make_unique<GraphExecutor>(
      root,
      std::map<std::string, std::vector<SpacePtr>>{
          {"insert", {pre_b, action_b, float_b, pre_b, bool_b, float_b}},
          {"sample", {IntBox(1 << 30)}},
          {"update_priorities",
           {IntBox(1 << 30)->with_batch_rank(), float_b}},
          {"size", {}},
      },
      opts);
  executor_->build();
  h_insert_ = executor_->api_handle("insert");
  h_sample_ = executor_->api_handle("sample");
  h_update_priorities_ = executor_->api_handle("update_priorities");
  h_size_ = executor_->api_handle("size");
}

void ReplayShard::insert(const SampleBatch& batch) {
  if (batch.num_records == 0) return;
  executor_->execute(h_insert_,
                     {batch.states, batch.actions, batch.rewards,
                      batch.next_states, batch.terminals, batch.priorities});
  size_ += batch.num_records;
}

std::vector<Tensor> ReplayShard::sample(int64_t n) {
  if (size() == 0) return {};
  return executor_->execute(h_sample_,
                            {Tensor::scalar_int(static_cast<int32_t>(n))});
}

void ReplayShard::update_priorities(const Tensor& indices,
                                    const Tensor& priorities) {
  executor_->execute(h_update_priorities_, {indices, priorities});
}

int64_t ReplayShard::size() {
  return static_cast<int64_t>(
      executor_->execute(h_size_, {})[0].scalar_value());
}

// --- ApexExecutor -----------------------------------------------------------------

ApexExecutor::ApexExecutor(ApexConfig config) : config_(std::move(config)) {
  // Derive spaces once on the driver.
  auto probe = make_environment(config_.env_spec);
  config_.state_space = probe->state_space();
  config_.action_space = probe->action_space();
  config_.preprocessed_space_ = preprocessed_space(
      config_.agent_config.get("preprocessor"), config_.state_space);

  param_server_.attach_metrics(&metrics_, "apex.weight_staleness");

  std::function<std::shared_ptr<raylite::FaultInjector>(int)> injectors;
  if (config_.enable_fault_injection) {
    injectors = [cfg = config_](int i) {
      raylite::FaultConfig fc = cfg.fault_config;
      fc.seed = cfg.fault_config.seed + static_cast<uint64_t>(i);
      return std::make_shared<raylite::FaultInjector>(fc);
    };
  }

  // Worker slots [0, remote_workers.size()) proxy to remote processes; the
  // rest stay in-process. Wire fault injectors are created once per slot and
  // captured by the factory, so a supervised restart of the slot keeps its
  // deterministic fault schedule instead of rewinding it.
  RLG_REQUIRE(
      config_.remote_workers.size() <=
          static_cast<size_t>(config_.num_workers),
      "more remote worker endpoints than worker slots");
  std::vector<std::shared_ptr<raylite::net::WireFaultInjector>> wire_injectors(
      config_.remote_workers.size());
  if (config_.enable_wire_fault_injection) {
    for (size_t i = 0; i < wire_injectors.size(); ++i) {
      raylite::net::WireFaultConfig wf = config_.wire_fault;
      wf.seed = config_.wire_fault.seed + static_cast<uint64_t>(i);
      wire_injectors[i] = std::make_shared<raylite::net::WireFaultInjector>(wf);
    }
  }
  spawn_workers(
      config_.num_workers,
      [cfg = config_, wire_injectors,
       metrics = &metrics_](int i) -> std::unique_ptr<ApexWorkerInterface> {
        if (static_cast<size_t>(i) < cfg.remote_workers.size()) {
          raylite::net::RpcClientOptions opts = cfg.remote_client;
          opts.seed = cfg.remote_client.seed + static_cast<uint64_t>(i);
          return std::make_unique<RemoteApexWorker>(
              cfg.remote_workers[static_cast<size_t>(i)], std::move(opts),
              metrics, wire_injectors[static_cast<size_t>(i)]);
        }
        return std::make_unique<ApexWorker>(cfg, i);
      },
      injectors);
  for (int s = 0; s < config_.num_replay_shards; ++s) {
    shards_.push_back(std::make_unique<raylite::Actor<ReplayShard>>(
        [cfg = config_, s] { return std::make_unique<ReplayShard>(cfg, s); }));
  }
}

ApexExecutor::~ApexExecutor() {
  stop_.store(true);
  if (learner_thread_.joinable()) learner_thread_.join();
  for (auto& s : shards_) s->stop();
}

void ApexExecutor::learner_loop() {
  // The learner agent is constructed on this thread (actor-style isolation).
  Json cfg = config_.agent_config;
  cfg["seed"] = Json(static_cast<int64_t>(config_.seed + 77));
  cfg["memory"]["capacity"] = Json(static_cast<int64_t>(16));
  DQNAgent learner(cfg, config_.state_space, config_.action_space);
  learner.build();
  learner.sync_target();
  param_server_.push(learner.get_weights("agent/policy"));

  size_t rr = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    auto& shard = *shards_[rr];
    rr = (rr + 1) % shards_.size();
    // A failed shard actor resolves its futures with ActorDeadError; the
    // learner skips it and keeps making progress on the remaining shards
    // (degraded throughput, never a hang).
    try {
      int64_t min_needed =
          std::max(config_.learner_batch, config_.min_shard_records);
      auto size_fut = shard.call(
          [](ReplayShard& s) { return s.size(); });
      if (size_fut.get() < min_needed) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      int64_t batch_size = config_.learner_batch;
      if (config_.replay_ratio > 0.0) {
        // Throttle: do not replay records more than replay_ratio times on
        // average; blocks learning on sample arrival (paper's sample-bound
        // regime).
        while (!stop_.load(std::memory_order_relaxed) &&
               static_cast<double>((learner_updates_.load() + 1) *
                                   batch_size) >
                   config_.replay_ratio *
                       static_cast<double>(records_inserted_.load())) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (stop_.load(std::memory_order_relaxed)) break;
      }
      auto batch_fut = shard.call([batch_size](ReplayShard& s) {
        return s.sample(batch_size);
      });
      std::vector<Tensor> batch = batch_fut.get();
      if (batch.empty()) continue;
      auto [loss, td] = learner.update_from_batch(batch[0], batch[1],
                                                  batch[2], batch[3],
                                                  batch[4], batch[6]);
      (void)loss;
      Tensor indices = batch[5];
      shard.call([indices, td = td](ReplayShard& s) {
        s.update_priorities(indices, td);
        return 0;
      });
      int64_t updates = learner_updates_.fetch_add(1) + 1;
      if (updates % config_.learner_weight_push_interval == 0) {
        auto weights = learner.get_weights("agent/policy");
        auto target = learner.get_weights("agent/target-policy");
        weights.insert(target.begin(), target.end());
        param_server_.push(std::move(weights));
      }
    } catch (const Error& e) {
      metrics_.increment("apex.learner_shard_errors");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

ApexResult ApexExecutor::run(double seconds) {
  ApexResult result;
  Stopwatch watch;

  // Supervision: heartbeat the worker pool, restart failed actors through
  // the original factory, and re-sync replacements from the parameter
  // server so they do not sample with init-time weights.
  start_supervision(config_.supervisor, [this](size_t i) {
    auto snap = param_server_.snapshot();
    if (!snap) return;
    WorkerHandle handle = worker_handle(i);
    if (!handle || handle->state() != raylite::ActorState::kRunning) return;
    std::map<std::string, Tensor> weights = *snap;
    handle->call([weights](ApexWorkerInterface& w) {
      w.set_weights(weights);
      return 0;
    });
  });

  if (config_.learner_updates) {
    learner_thread_ = std::thread([this] { learner_loop(); });
  }

  // One logical task slot per worker. A slot's task normally runs on its
  // home worker; after a failure/timeout it is reissued on the next live
  // worker (up to max_task_retries), then dropped so the slot starts fresh.
  struct TaskSlot {
    raylite::Future<SampleBatch> pending;
    WorkerHandle actor;   // the actor this task was issued on
    Stopwatch age;        // time since issue (straggler detection)
    int attempts = 0;     // issue attempts for the current logical task
    int64_t tasks_done = 0;
    int64_t weight_version = 0;
  };
  const size_t n = num_workers();
  std::vector<TaskSlot> slots(n);
  int64_t task_size = config_.worker_sample_size;

  // Issue the slot's task on its home worker if live, else the next live
  // worker; returns false when no worker can currently serve it (the slot
  // retries on a later sweep — the supervisor may revive someone).
  auto issue = [&](size_t slot_index) {
    TaskSlot& slot = slots[slot_index];
    for (size_t k = 0; k < n; ++k) {
      size_t widx = (slot_index + k) % n;
      if (!worker_running(widx)) continue;
      WorkerHandle handle = worker_handle(widx);
      // Refresh weights on the serving actor before the task if a newer
      // snapshot is available.
      if (config_.worker_weight_pull_interval > 0 &&
          slot.tasks_done % config_.worker_weight_pull_interval == 0) {
        std::map<std::string, Tensor> weights;
        int64_t version = slot.weight_version;
        if (param_server_.pull_if_newer(version, &weights, &version)) {
          slot.weight_version = version;
          handle->call([weights](ApexWorkerInterface& w) {
            w.set_weights(weights);
            return 0;
          });
        }
      }
      slot.actor = handle;
      slot.pending = handle->call(
          [task_size](ApexWorkerInterface& w) { return w.sample(task_size); });
      slot.age.reset();
      return true;
    }
    slot.actor.reset();
    slot.pending = raylite::Future<SampleBatch>();
    return false;
  };

  // A failed or timed-out attempt: retry elsewhere up to the budget, then
  // drop the task and start a counting-from-zero replacement.
  auto retry_or_drop = [&](size_t slot_index, const char* counter) {
    TaskSlot& slot = slots[slot_index];
    metrics_.increment(counter);
    ++slot.attempts;
    if (slot.attempts > config_.max_task_retries) {
      metrics_.increment("apex.tasks_dropped");
      ++result.tasks_dropped;
      slot.attempts = 0;
    } else {
      metrics_.increment("apex.task_retries");
      ++result.task_retries;
    }
    issue(slot_index);
  };

  for (size_t i = 0; i < n; ++i) issue(i);

  size_t insert_rr = 0;
  std::vector<double> recent_returns;
  while (watch.elapsed_seconds() < seconds) {
    bool any_progress = false;
    for (size_t i = 0; i < n; ++i) {
      TaskSlot& slot = slots[i];
      if (!slot.pending.valid()) {
        // No live worker last sweep; try again (supervisor may have
        // restarted one).
        if (issue(i)) any_progress = true;
        continue;
      }
      if (slot.pending.failed()) {
        ++result.task_failures;
        any_progress = true;
        retry_or_drop(i, "apex.task_failures");
        continue;
      }
      if (!slot.pending.ready()) {
        if (config_.task_timeout_ms > 0.0 &&
            slot.age.elapsed_seconds() * 1000.0 > config_.task_timeout_ms) {
          // Straggler: abandon the future (its late result is ignored) and
          // reissue; the serving actor keeps running.
          ++result.task_timeouts;
          any_progress = true;
          retry_or_drop(i, "apex.task_timeouts");
        }
        continue;
      }
      SampleBatch batch;
      try {
        batch = slot.pending.get();
      } catch (const Error&) {
        // Raced a failure between the checks above.
        ++result.task_failures;
        any_progress = true;
        retry_or_drop(i, "apex.task_failures");
        continue;
      }
      any_progress = true;
      slot.attempts = 0;
      result.env_frames += batch.env_frames;
      records_inserted_.fetch_add(batch.num_records,
                                  std::memory_order_relaxed);
      ++result.sample_tasks;
      for (double ret : batch.episode_returns) {
        recent_returns.push_back(ret);
      }
      if (!batch.episode_returns.empty()) {
        size_t keep = std::min<size_t>(recent_returns.size(), 64);
        double mean = std::accumulate(recent_returns.end() -
                                          static_cast<long>(keep),
                                      recent_returns.end(), 0.0) /
                      static_cast<double>(keep);
        result.reward_timeline.emplace_back(watch.elapsed_seconds(), mean);
      }
      // Route the batch to a replay shard (round-robin).
      auto& shard = *shards_[insert_rr];
      insert_rr = (insert_rr + 1) % shards_.size();
      shard.call([batch](ReplayShard& s) {
        s.insert(batch);
        return 0;
      });
      ++slot.tasks_done;
      issue(i);
    }
    if (!any_progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  stop_.store(true);
  if (learner_thread_.joinable()) learner_thread_.join();
  stop_supervision();
  // Drain outstanding sample tasks so actors shut down cleanly. Futures on
  // failed actors resolve errored, so the bounded wait only covers genuine
  // in-flight work.
  for (auto& slot : slots) {
    if (slot.pending.valid()) {
      slot.pending.wait_for(std::chrono::seconds(30));
    }
  }

  if (supervisor() != nullptr) {
    result.worker_restarts = supervisor()->total_restarts();
  }
  result.seconds = watch.elapsed_seconds();
  result.learner_updates = learner_updates_.load();
  result.frames_per_second =
      static_cast<double>(result.env_frames) / result.seconds;
  result.metrics_report = metrics_.report();
  return result;
}

}  // namespace rlgraph
