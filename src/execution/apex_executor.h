// Distributed prioritized experience replay (Ape-X, Horgan et al. 2018) on
// the raylite execution engine — the workload of Figs. 6 / 7a / 7b.
//
// Topology (mirroring the paper's Ray executor):
//   * N sampler actors, each with a vectorized environment worker and a
//     local acting agent (worker-side n-step post-processing and
//     prioritization, batched into single executor calls),
//   * M replay-shard actors holding prioritized memories,
//   * an asynchronous learner thread pulling batches from the shards,
//     updating, and pushing priorities + weights back,
//   * a driver coordination loop moving sample futures into shard inserts.
//
// The RLlib-like baseline (paper §5.1) runs the same topology with the
// inefficiencies the paper names: per-env (unbatched) act calls and
// incremental per-chunk post-processing executor calls instead of one
// batched call per task.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>

#include "agents/dqn_agent.h"
#include "env/vector_env.h"
#include "execution/ray_executor.h"
#include "raylite/net/rpc.h"

namespace rlgraph {

struct ApexConfig {
  Json agent_config;  // DQN/Ape-X agent config (see DQNAgent)
  Json env_spec;
  int num_workers = 4;
  int envs_per_worker = 4;
  int num_replay_shards = 4;
  int64_t worker_sample_size = 200;  // records per sample task
  int n_step = 3;
  double discount = 0.99;
  int64_t learner_batch = 32;
  int64_t min_shard_records = 200;  // per-shard warmup before learning
  int learner_weight_push_interval = 10;  // updates between weight pushes
  int worker_weight_pull_interval = 1;    // tasks between weight pulls
  // Replay-ratio throttle: cap learner record-consumption (updates x batch)
  // at `replay_ratio` x records inserted so far. 0 disables the throttle.
  // With a binding ratio, learning progress is sample-bound and tracks
  // sampling throughput — the regime of the paper's Fig. 7b.
  double replay_ratio = 0.0;
  bool learner_updates = true;  // false: pure sampling throughput mode
  uint64_t seed = 1;

  // --- Fault tolerance ----------------------------------------------------
  // Attach a deterministic fault injector to every sampler actor's mailbox
  // (worker i draws from a stream seeded with fault_config.seed + i).
  bool enable_fault_injection = false;
  raylite::FaultConfig fault_config;
  // Heartbeat/backoff/budget for the worker supervisor (always running).
  SupervisorConfig supervisor;
  // A sample task whose future fails (or times out) is reissued on another
  // live worker up to this many times, then dropped; the learner keeps
  // making progress on whatever arrives.
  int max_task_retries = 2;
  // Straggler deadline per sample task; 0 disables timeouts.
  double task_timeout_ms = 0.0;

  // Filled by ApexExecutor from env_spec (workers/shards need the spaces
  // before any environment exists on their threads).
  SpacePtr state_space;
  SpacePtr action_space;
  SpacePtr preprocessed_space_;

  // --- Cross-process workers (raylite/net) --------------------------------
  // Endpoints ("tcp:host:port" or "unix:/path") of remote sampler processes
  // (see execution/remote_worker.h: run_apex_worker_server). Worker slots
  // [0, remote_workers.size()) are RPC proxies to these endpoints; remaining
  // slots up to num_workers stay in-process. Zero call-site changes: the
  // coordination loop sees the same ApexWorkerInterface either way.
  std::vector<std::string> remote_workers;
  // Client transport tuning (heartbeats, reconnect budget, rpc timeouts).
  raylite::net::RpcClientOptions remote_client;
  // Wire-level fault injection on the driver-side client connections
  // (worker i draws from a stream seeded with wire_fault.seed + i).
  bool enable_wire_fault_injection = false;
  raylite::net::WireFaultConfig wire_fault;

  // --- RLlib-like baseline switches (both off = RLgraph behaviour) --------
  // Act one env at a time instead of one batched call across the vector.
  bool act_per_env = false;
  // Post-process (priorities) in small incremental chunks, one executor
  // call each, instead of a single batched call per task.
  bool incremental_post_processing = false;
  int64_t post_process_chunk = 16;
};

// One sampled task: flattened transition batch + metrics.
struct SampleBatch {
  Tensor states, actions, rewards, next_states, terminals, priorities;
  int64_t num_records = 0;
  int64_t env_frames = 0;
  std::vector<double> episode_returns;
};

// What the coordination loop needs from a sampler, whether it lives on an
// in-process actor thread or behind an RPC client in another OS process.
// RayExecutor<ApexWorkerInterface> hosts either implementation, so placing
// workers in separate processes requires zero call-site changes.
class ApexWorkerInterface {
 public:
  virtual ~ApexWorkerInterface() = default;
  virtual SampleBatch sample(int64_t num_records) = 0;
  virtual void set_weights(const std::map<std::string, Tensor>& weights) = 0;
  virtual int64_t executor_calls() = 0;
};

// Sampler actor body (lives on a raylite actor thread).
class ApexWorker : public ApexWorkerInterface {
 public:
  ApexWorker(const ApexConfig& config, int worker_index);

  SampleBatch sample(int64_t num_records) override;
  void set_weights(const std::map<std::string, Tensor>& weights) override;
  int64_t executor_calls() override;

 private:
  void post_process(SampleBatch* batch);

  ApexConfig config_;
  std::unique_ptr<DQNAgent> agent_;
  std::unique_ptr<VectorEnv> env_;
  Tensor current_obs_;       // raw observations [E, ...]
  Tensor current_pre_;       // preprocessed observations of the last act
  bool started_ = false;

  // Per-env n-step accumulation buffers.
  struct Pending {
    Tensor state;  // preprocessed s_t (single row)
    Tensor action;
    double reward_acc = 0.0;
    int age = 0;
  };
  std::vector<std::deque<Pending>> nstep_;
};

// Replay-shard actor body.
class ReplayShard {
 public:
  ReplayShard(const ApexConfig& config, int shard_index);

  void insert(const SampleBatch& batch);
  // Returns {s, a, r, s2, t, indices, weights}; empty if not warm.
  std::vector<Tensor> sample(int64_t n);
  void update_priorities(const Tensor& indices, const Tensor& priorities);
  int64_t size();

 private:
  std::unique_ptr<GraphExecutor> executor_;
  // Hot-path API handles, resolved once after the shard build.
  ApiHandle h_insert_, h_sample_, h_update_priorities_, h_size_;
  int64_t size_ = 0;
};

struct ApexResult {
  double seconds = 0.0;
  int64_t env_frames = 0;
  int64_t sample_tasks = 0;
  int64_t learner_updates = 0;
  double frames_per_second = 0.0;
  // (elapsed seconds, mean episode return) timeline for learning curves.
  std::vector<std::pair<double, double>> reward_timeline;
  // Fault-tolerance accounting (all zero on a fault-free run).
  int64_t worker_restarts = 0;
  int64_t task_failures = 0;
  int64_t task_timeouts = 0;
  int64_t task_retries = 0;
  int64_t tasks_dropped = 0;
  std::string metrics_report;
};

class ApexExecutor : public RayExecutor<ApexWorkerInterface> {
 public:
  explicit ApexExecutor(ApexConfig config);
  ~ApexExecutor() override;

  // Run the coordination loop for `seconds`; safe to call once.
  ApexResult run(double seconds);

 private:
  void learner_loop();

  ApexConfig config_;
  std::vector<std::unique_ptr<raylite::Actor<ReplayShard>>> shards_;
  std::thread learner_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> learner_updates_{0};
  std::atomic<int64_t> records_inserted_{0};
};

}  // namespace rlgraph
