#include "execution/device.h"

#include <algorithm>

#include "util/errors.h"

namespace rlgraph {

DeviceRegistry::DeviceRegistry(int num_accelerators) {
  devices_.push_back({"/cpu:0", false});
  for (int i = 0; i < num_accelerators; ++i) {
    devices_.push_back({"/gpu:" + std::to_string(i), true});
  }
}

std::vector<std::string> DeviceRegistry::accelerator_names() const {
  std::vector<std::string> out;
  for (const DeviceInfo& d : devices_) {
    if (d.accelerator) out.push_back(d.name);
  }
  return out;
}

bool DeviceRegistry::has_device(const std::string& name) const {
  return std::any_of(devices_.begin(), devices_.end(),
                     [&](const DeviceInfo& d) { return d.name == name; });
}

void DeviceMap::assign(const std::string& component_scope,
                       const std::string& device) {
  RLG_REQUIRE(!component_scope.empty() && !device.empty(),
              "device map assignment requires scope and device");
  assignments_.emplace_back(component_scope, device);
}

std::string DeviceMap::device_for(const std::string& component_scope) const {
  std::string best_device;
  size_t best_len = 0;
  for (const auto& [scope, device] : assignments_) {
    bool prefix = component_scope.rfind(scope, 0) == 0 &&
                  (component_scope.size() == scope.size() ||
                   component_scope[scope.size()] == '/');
    if (prefix && scope.size() >= best_len) {
      best_len = scope.size();
      best_device = device;
    }
  }
  return best_device;
}

}  // namespace rlgraph
