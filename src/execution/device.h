// Virtual device registry.
//
// The paper assigns component ops/variables to devices through explicit
// device maps read against local device information (paper §4.1). In this
// reproduction devices are virtual: "/cpu:0" plus N simulated accelerators
// "/gpu:k". Device strategies (multi_device.h) use the registry to create
// tower replicas; measured per-tower compute feeds the simulated-parallel
// wall-clock model documented in EXPERIMENTS.md (the host is single-core).
#pragma once

#include <string>
#include <vector>

namespace rlgraph {

struct DeviceInfo {
  std::string name;     // "/gpu:0"
  bool accelerator = false;
};

class DeviceRegistry {
 public:
  // `num_accelerators` simulated devices alongside the host CPU.
  explicit DeviceRegistry(int num_accelerators = 0);

  const std::vector<DeviceInfo>& devices() const { return devices_; }
  std::vector<std::string> accelerator_names() const;
  bool has_device(const std::string& name) const;

 private:
  std::vector<DeviceInfo> devices_;
};

// Per-component device assignment ("each component's ops and variables can
// be assigned separately and selectively").
class DeviceMap {
 public:
  void assign(const std::string& component_scope, const std::string& device);
  // Longest-prefix lookup: an assignment on "agent/policy" covers
  // "agent/policy/dense-0" unless overridden.
  std::string device_for(const std::string& component_scope) const;
  bool empty() const { return assignments_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> assignments_;
};

}  // namespace rlgraph
