#include "execution/impala_pipeline.h"

#include <algorithm>

#include "env/environment.h"
#include "util/logging.h"

namespace rlgraph {

ImpalaPipeline::ImpalaPipeline(ImpalaConfig config)
    : config_(std::move(config)) {
  auto probe = make_environment(config_.env_spec);
  state_space_ = probe->state_space();
  action_space_ = probe->action_space();
  queue_ = std::make_shared<SharedTensorQueue>(
      static_cast<size_t>(config_.queue_capacity));
  param_server_.attach_metrics(&metrics_, "impala.weight_staleness");
  if (config_.enable_fault_injection) {
    for (int a = 0; a < config_.num_actors; ++a) {
      raylite::FaultConfig fc = config_.fault_config;
      fc.seed = config_.fault_config.seed + static_cast<uint64_t>(a);
      injectors_.push_back(std::make_shared<raylite::FaultInjector>(fc));
    }
  }
}

ImpalaPipeline::~ImpalaPipeline() {
  stop_.store(true);
  queue_->close();
  for (auto& t : actor_threads_) {
    if (t.joinable()) t.join();
  }
}

void ImpalaPipeline::actor_loop(int actor_index, int incarnation) {
  Json cfg = config_.agent_config;
  cfg["type"] = Json("impala_actor");
  cfg["seed"] = Json(static_cast<int64_t>(
      config_.seed + 100 + static_cast<uint64_t>(actor_index) +
      1000 * static_cast<uint64_t>(incarnation)));
  cfg["redundant_assigns"] = Json(config_.redundant_assigns);
  IMPALAAgent actor(cfg, state_space_, action_space_,
                    IMPALAAgent::Mode::kActor);
  actor.set_queue(queue_);
  actor.build();
  VectorEnv env(config_.env_spec, config_.envs_per_actor,
                config_.seed * 13 + static_cast<uint64_t>(actor_index) +
                    997 * static_cast<uint64_t>(incarnation));
  actor.attach_environment(&env);

  raylite::FaultInjector* injector =
      actor_index < static_cast<int>(injectors_.size())
          ? injectors_[static_cast<size_t>(actor_index)].get()
          : nullptr;

  int64_t version = 0;
  int64_t local_rollouts = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (injector != nullptr) {
      raylite::FaultDecision d = injector->next();
      switch (d.action) {
        case raylite::FaultAction::kNone:
          break;
        case raylite::FaultAction::kDelay:
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(d.delay_ms));
          break;
        case raylite::FaultAction::kFailTask:
          // The rollout is lost in flight; the learner just sees less data.
          dropped_rollouts_.fetch_add(1, std::memory_order_relaxed);
          metrics_.increment("impala.dropped_rollouts");
          continue;
        case raylite::FaultAction::kCrashActor:
          throw InjectedFaultError("injected IMPALA actor crash");
      }
    }
    if (local_rollouts % config_.actor_weight_pull_interval == 0) {
      std::map<std::string, Tensor> weights;
      if (param_server_.pull_if_newer(version, &weights, &version)) {
        actor.set_weights(weights);
      }
    }
    env_frames_.fetch_add(actor.act_and_enqueue(),
                          std::memory_order_relaxed);
    rollouts_.fetch_add(1, std::memory_order_relaxed);
    ++local_rollouts;
  }
}

void ImpalaPipeline::supervised_actor_loop(int actor_index) {
  double backoff_ms = config_.supervisor.backoff_initial_ms;
  int restarts = 0;
  for (int incarnation = 0;; ++incarnation) {
    try {
      actor_loop(actor_index, incarnation);
      break;  // clean stop
    } catch (const std::exception& e) {
      // Queue closed during shutdown lands here; anything else is a worker
      // failure the in-thread supervisor handles.
      if (stop_.load()) break;
      metrics_.increment("impala.actor_failures");
      if (restarts >= config_.supervisor.max_restarts_per_worker) {
        metrics_.increment("impala.actors_given_up");
        RLG_LOG_WARN << "IMPALA actor " << actor_index
                     << " exceeded restart budget after: " << e.what();
        break;
      }
      ++restarts;
      actor_restarts_.fetch_add(1, std::memory_order_relaxed);
      metrics_.increment("impala.actor_restarts");
      RLG_LOG_INFO << "IMPALA actor " << actor_index << " died ("
                   << e.what() << "); restart " << restarts << " after "
                   << backoff_ms << "ms";
      // Interruptible backoff sleep.
      Stopwatch backoff_watch;
      while (!stop_.load() &&
             backoff_watch.elapsed_seconds() * 1000.0 < backoff_ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      backoff_ms = std::min(backoff_ms * config_.supervisor.backoff_multiplier,
                            config_.supervisor.backoff_max_ms);
      if (stop_.load()) break;
    }
  }
  // Last producer gone while the run is still live: close the queue so the
  // learner's dequeue fails fast instead of blocking forever (degraded
  // mode — it keeps the updates it already made).
  if (live_actors_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      !stop_.load()) {
    queue_->close();
  }
}

ImpalaResult ImpalaPipeline::run(double seconds) {
  ImpalaResult result;
  Stopwatch watch;

  live_actors_.store(config_.num_actors);
  for (int a = 0; a < config_.num_actors; ++a) {
    actor_threads_.emplace_back([this, a] { supervised_actor_loop(a); });
  }

  Json cfg = config_.agent_config;
  cfg["type"] = Json("impala_learner");
  cfg["seed"] = Json(static_cast<int64_t>(config_.seed + 7));
  cfg["unbatched_unstage"] = Json(config_.unbatched_unstage);
  IMPALAAgent learner(cfg, state_space_, action_space_,
                      IMPALAAgent::Mode::kLearner);
  learner.set_queue(queue_);
  learner.build();
  param_server_.push(learner.get_weights("agent/policy"));

  int64_t updates = 0;
  double loss = 0.0;
  while (watch.elapsed_seconds() < seconds) {
    if (config_.learner_updates) {
      if (queue_->closed() && queue_->size() == 0) {
        // All producers permanently dead and the backlog is drained:
        // nothing more to learn from.
        metrics_.increment("impala.learner_starved");
        break;
      }
      try {
        loss = learner.update();
      } catch (const Error&) {
        // Queue closed under the learner mid-dequeue (producer die-off
        // racing the check above); treat like starvation.
        metrics_.increment("impala.learner_starved");
        break;
      }
      ++updates;
      if (updates % config_.learner_weight_push_interval == 0) {
        param_server_.push(learner.get_weights("agent/policy"));
      }
    } else {
      // Pure-throughput mode: drain the queue without updating. The timed
      // pop notices producer die-off instead of blocking forever.
      auto slot = queue_->pop_for(std::chrono::milliseconds(100));
      if (!slot.has_value()) {
        if (queue_->closed()) break;
        continue;
      }
      ++updates;
    }
  }

  stop_.store(true);
  queue_->close();
  for (auto& t : actor_threads_) {
    if (t.joinable()) t.join();
  }
  actor_threads_.clear();

  result.seconds = watch.elapsed_seconds();
  result.env_frames = env_frames_.load();
  result.rollouts = rollouts_.load();
  result.learner_updates = updates;
  result.frames_per_second =
      static_cast<double>(result.env_frames) / result.seconds;
  result.final_loss = loss;
  result.actor_restarts = actor_restarts_.load();
  result.dropped_rollouts = dropped_rollouts_.load();
  result.metrics_report = metrics_.report();
  return result;
}

}  // namespace rlgraph
