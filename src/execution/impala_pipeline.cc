#include "execution/impala_pipeline.h"

#include "env/environment.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace rlgraph {

ImpalaPipeline::ImpalaPipeline(ImpalaConfig config)
    : config_(std::move(config)) {
  auto probe = make_environment(config_.env_spec);
  state_space_ = probe->state_space();
  action_space_ = probe->action_space();
  queue_ = std::make_shared<SharedTensorQueue>(
      static_cast<size_t>(config_.queue_capacity));
}

ImpalaPipeline::~ImpalaPipeline() {
  stop_.store(true);
  queue_->close();
  for (auto& t : actor_threads_) {
    if (t.joinable()) t.join();
  }
}

void ImpalaPipeline::actor_loop(int actor_index) {
  try {
    Json cfg = config_.agent_config;
    cfg["type"] = Json("impala_actor");
    cfg["seed"] = Json(static_cast<int64_t>(
        config_.seed + 100 + static_cast<uint64_t>(actor_index)));
    cfg["redundant_assigns"] = Json(config_.redundant_assigns);
    IMPALAAgent actor(cfg, state_space_, action_space_,
                      IMPALAAgent::Mode::kActor);
    actor.set_queue(queue_);
    actor.build();
    VectorEnv env(config_.env_spec, config_.envs_per_actor,
                  config_.seed * 13 + static_cast<uint64_t>(actor_index));
    actor.attach_environment(&env);

    int64_t version = 0;
    int64_t local_rollouts = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      if (local_rollouts % config_.actor_weight_pull_interval == 0) {
        std::map<std::string, Tensor> weights;
        if (param_server_.pull_if_newer(version, &weights, &version)) {
          actor.set_weights(weights);
        }
      }
      env_frames_.fetch_add(actor.act_and_enqueue(),
                            std::memory_order_relaxed);
      rollouts_.fetch_add(1, std::memory_order_relaxed);
      ++local_rollouts;
    }
  } catch (const std::exception& e) {
    // Queue closed during shutdown lands here; anything else is logged.
    if (!stop_.load()) {
      RLG_LOG_ERROR << "IMPALA actor " << actor_index << " died: "
                    << e.what();
    }
  }
}

ImpalaResult ImpalaPipeline::run(double seconds) {
  ImpalaResult result;
  Stopwatch watch;

  for (int a = 0; a < config_.num_actors; ++a) {
    actor_threads_.emplace_back([this, a] { actor_loop(a); });
  }

  Json cfg = config_.agent_config;
  cfg["type"] = Json("impala_learner");
  cfg["seed"] = Json(static_cast<int64_t>(config_.seed + 7));
  cfg["unbatched_unstage"] = Json(config_.unbatched_unstage);
  IMPALAAgent learner(cfg, state_space_, action_space_,
                      IMPALAAgent::Mode::kLearner);
  learner.set_queue(queue_);
  learner.build();
  param_server_.push(learner.get_weights("agent/policy"));

  int64_t updates = 0;
  double loss = 0.0;
  while (watch.elapsed_seconds() < seconds) {
    if (config_.learner_updates) {
      loss = learner.update();
      ++updates;
      if (updates % config_.learner_weight_push_interval == 0) {
        param_server_.push(learner.get_weights("agent/policy"));
      }
    } else {
      // Pure-throughput mode: drain the queue without updating.
      auto slot = queue_->pop();
      if (!slot.has_value()) break;
      ++updates;
    }
  }

  stop_.store(true);
  queue_->close();
  for (auto& t : actor_threads_) {
    if (t.joinable()) t.join();
  }
  actor_threads_.clear();

  result.seconds = watch.elapsed_seconds();
  result.env_frames = env_frames_.load();
  result.rollouts = rollouts_.load();
  result.learner_updates = updates;
  result.frames_per_second =
      static_cast<double>(result.env_frames) / result.seconds;
  result.final_loss = loss;
  return result;
}

}  // namespace rlgraph
