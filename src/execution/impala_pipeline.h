// IMPALA pipeline (paper §5.1, Fig. 9): N actors with graph-fused rollout
// collection feed a globally shared blocking queue; the learner dequeues,
// stages, and applies V-trace updates. Weights flow back through the
// in-process parameter server (the distributed-TF stand-in).
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "agents/impala_agent.h"
#include "execution/param_server.h"
#include "util/json.h"

namespace rlgraph {

struct ImpalaConfig {
  Json agent_config;  // network, rollout_length, discount, optimizer, ...
  Json env_spec;
  int num_actors = 4;
  int envs_per_actor = 4;
  int queue_capacity = 16;
  int actor_weight_pull_interval = 5;   // rollouts between weight pulls
  int learner_weight_push_interval = 5; // updates between weight pushes
  bool learner_updates = true;
  uint64_t seed = 1;

  // DM-reference baseline switches (paper §5.1; both off = RLgraph).
  bool redundant_assigns = false;
  bool unbatched_unstage = false;
};

struct ImpalaResult {
  double seconds = 0.0;
  int64_t env_frames = 0;
  int64_t rollouts = 0;
  int64_t learner_updates = 0;
  double frames_per_second = 0.0;
  double final_loss = 0.0;
};

class ImpalaPipeline {
 public:
  explicit ImpalaPipeline(ImpalaConfig config);
  ~ImpalaPipeline();

  ImpalaResult run(double seconds);

 private:
  void actor_loop(int actor_index);

  ImpalaConfig config_;
  SpacePtr state_space_;
  SpacePtr action_space_;
  std::shared_ptr<SharedTensorQueue> queue_;
  ParameterServer param_server_;
  std::vector<std::thread> actor_threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> env_frames_{0};
  std::atomic<int64_t> rollouts_{0};
};

}  // namespace rlgraph
