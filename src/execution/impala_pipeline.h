// IMPALA pipeline (paper §5.1, Fig. 9): N actors with graph-fused rollout
// collection feed a globally shared blocking queue; the learner dequeues,
// stages, and applies V-trace updates. Weights flow back through the
// in-process parameter server (the distributed-TF stand-in).
//
// Fault tolerance: each actor thread is wrapped in an in-thread supervisor
// that restarts it (fresh agent + environment) with exponential backoff up
// to a restart budget; a per-actor FaultInjector can deterministically drop
// rollouts, delay, or crash actors. The learner degrades gracefully — when
// every producer is permanently dead the queue is closed and the learner
// stops instead of hanging on an empty queue.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agents/impala_agent.h"
#include "execution/param_server.h"
#include "execution/supervisor.h"
#include "raylite/fault_injection.h"
#include "util/json.h"
#include "util/metrics.h"

namespace rlgraph {

struct ImpalaConfig {
  Json agent_config;  // network, rollout_length, discount, optimizer, ...
  Json env_spec;
  int num_actors = 4;
  int envs_per_actor = 4;
  int queue_capacity = 16;
  int actor_weight_pull_interval = 5;   // rollouts between weight pulls
  int learner_weight_push_interval = 5; // updates between weight pushes
  bool learner_updates = true;
  uint64_t seed = 1;

  // DM-reference baseline switches (paper §5.1; both off = RLgraph).
  bool redundant_assigns = false;
  bool unbatched_unstage = false;

  // --- Fault tolerance ----------------------------------------------------
  // Consult a deterministic fault injector once per rollout per actor
  // (actor i draws from a stream seeded with fault_config.seed + i).
  bool enable_fault_injection = false;
  raylite::FaultConfig fault_config;
  // Backoff/budget for in-thread actor restarts.
  SupervisorConfig supervisor;
};

struct ImpalaResult {
  double seconds = 0.0;
  int64_t env_frames = 0;
  int64_t rollouts = 0;
  int64_t learner_updates = 0;
  double frames_per_second = 0.0;
  double final_loss = 0.0;
  // Fault-tolerance accounting (zero on a fault-free run).
  int64_t actor_restarts = 0;
  int64_t dropped_rollouts = 0;
  std::string metrics_report;
};

class ImpalaPipeline {
 public:
  explicit ImpalaPipeline(ImpalaConfig config);
  ~ImpalaPipeline();

  ImpalaResult run(double seconds);

  MetricRegistry& metrics() { return metrics_; }

 private:
  // One full actor lifetime; throws on injected crashes / organic failures.
  void actor_loop(int actor_index, int incarnation);
  // Restart wrapper around actor_loop with backoff and budget.
  void supervised_actor_loop(int actor_index);

  ImpalaConfig config_;
  SpacePtr state_space_;
  SpacePtr action_space_;
  std::shared_ptr<SharedTensorQueue> queue_;
  ParameterServer param_server_;
  MetricRegistry metrics_;
  std::vector<std::shared_ptr<raylite::FaultInjector>> injectors_;
  std::vector<std::thread> actor_threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> env_frames_{0};
  std::atomic<int64_t> rollouts_{0};
  std::atomic<int64_t> live_actors_{0};
  std::atomic<int64_t> actor_restarts_{0};
  std::atomic<int64_t> dropped_rollouts_{0};
};

}  // namespace rlgraph
