#include "execution/multi_device.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "util/errors.h"
#include "util/metrics.h"

namespace rlgraph {

MultiDeviceSyncTrainer::MultiDeviceSyncTrainer(const Json& agent_config,
                                               SpacePtr state_space,
                                               SpacePtr action_space,
                                               int num_devices) {
  RLG_REQUIRE(num_devices >= 1, "need at least one device tower");
  DeviceRegistry registry(num_devices);
  for (int d = 0; d < num_devices; ++d) {
    Json cfg = agent_config;
    cfg["device"] = Json("/gpu:" + std::to_string(d));
    // Towers share the main tower's seed so initial weights match.
    auto tower =
        std::make_unique<DQNAgent>(cfg, state_space, action_space);
    tower->build();
    towers_.push_back(std::move(tower));
  }
  batch_size_ = towers_[0]->batch_size();
  // Align all towers to tower 0's initial weights.
  auto weights = towers_[0]->get_weights("agent/policy");
  for (size_t d = 1; d < towers_.size(); ++d) {
    towers_[d]->set_weights(weights);
    towers_[d]->sync_target();
  }
  towers_[0]->sync_target();
}

void MultiDeviceSyncTrainer::average_weights() {
  auto averaged = towers_[0]->get_weights("agent/policy");
  if (towers_.size() > 1) {
    for (size_t d = 1; d < towers_.size(); ++d) {
      auto other = towers_[d]->get_weights("agent/policy");
      for (auto& [name, value] : averaged) {
        value = kernels::add(value, other.at(name));
      }
    }
    Tensor scale = Tensor::scalar(1.0f / static_cast<float>(towers_.size()));
    for (auto& [name, value] : averaged) {
      value = kernels::mul(value, scale);
    }
    for (auto& tower : towers_) tower->set_weights(averaged);
  }
}

double MultiDeviceSyncTrainer::update() {
  DQNAgent& main = *towers_[0];
  // The update batch is SPLIT into one sub-batch per device (paper §4.1);
  // with k towers each processes batch_size/k records concurrently.
  int64_t sub = std::max<int64_t>(1, batch_size_ /
                                         static_cast<int64_t>(towers_.size()));
  int64_t total = sub * static_cast<int64_t>(towers_.size());
  if (main.memory_size() < std::max<int64_t>(total, 1)) return 0.0;

  Stopwatch total_watch;
  std::vector<Tensor> batch = main.sample_batch(total);
  // batch: s, a, r, s2, t, indices, weights.
  double loss_sum = 0.0;
  double max_tower_seconds = 0.0;
  double sum_tower_seconds = 0.0;
  std::vector<Tensor> td_parts;
  for (size_t d = 0; d < towers_.size(); ++d) {
    int64_t begin = static_cast<int64_t>(d) * sub;
    Stopwatch tower_watch;
    auto [loss, td] = towers_[d]->update_from_batch(
        kernels::slice_rows(batch[0], begin, sub),
        kernels::slice_rows(batch[1], begin, sub),
        kernels::slice_rows(batch[2], begin, sub),
        kernels::slice_rows(batch[3], begin, sub),
        kernels::slice_rows(batch[4], begin, sub),
        kernels::slice_rows(batch[6], begin, sub));
    double dt = tower_watch.elapsed_seconds();
    max_tower_seconds = std::max(max_tower_seconds, dt);
    sum_tower_seconds += dt;
    loss_sum += loss;
    td_parts.push_back(td);
  }
  average_weights();
  main.update_priorities(batch[5], kernels::concat(td_parts, 0));
  double measured = total_watch.elapsed_seconds();

  measured_seconds_ += measured;
  // Parallel-device model: the tower loop would run concurrently on real
  // accelerators, so it contributes max(tower time); sampling, weight
  // averaging and priority write-back stay serial.
  simulated_seconds_ += (measured - sum_tower_seconds) + max_tower_seconds;
  ++updates_done_;
  return loss_sum / static_cast<double>(towers_.size());
}

}  // namespace rlgraph
