// Synchronous multi-device update strategy (paper §4.1 / Fig. 8).
//
// The update batch is split into one sub-batch per device tower; towers
// compute their updates concurrently, and weights are averaged after each
// step (gradient averaging for SGD-style steps). Because this host has a
// single core, tower compute is measured per tower and the *simulated*
// parallel wall-clock (max over towers + coordination) drives the reported
// timeline — see EXPERIMENTS.md for the model.
#pragma once

#include <memory>
#include <vector>

#include "agents/dqn_agent.h"
#include "execution/device.h"

namespace rlgraph {

class MultiDeviceSyncTrainer {
 public:
  // `num_devices` towers, all built from `agent_config`. Tower 0 is the
  // "main" agent: it owns the replay memory and serves acting.
  MultiDeviceSyncTrainer(const Json& agent_config, SpacePtr state_space,
                         SpacePtr action_space, int num_devices);

  DQNAgent& main_agent() { return *towers_[0]; }
  int num_devices() const { return static_cast<int>(towers_.size()); }

  // One synchronous multi-tower update: sample batch_size * num_devices
  // records, split across towers, update each, average weights.
  // Returns the mean tower loss; 0 if the memory is not warm yet.
  double update();

  // Simulated wall-clock seconds spent in updates, under the parallel-device
  // model: sum over steps of (max tower time + coordination time).
  double simulated_update_seconds() const { return simulated_seconds_; }
  // Actual single-core seconds spent (for reference).
  double measured_update_seconds() const { return measured_seconds_; }
  int64_t updates_done() const { return updates_done_; }

 private:
  void average_weights();

  std::vector<std::unique_ptr<DQNAgent>> towers_;
  int64_t batch_size_;
  double simulated_seconds_ = 0.0;
  double measured_seconds_ = 0.0;
  int64_t updates_done_ = 0;
};

}  // namespace rlgraph
