#include "execution/param_server.h"

namespace rlgraph {

int64_t ParameterServer::push(WeightMap weights) {
  auto snapshot = std::make_shared<const WeightMap>(std::move(weights));
  std::lock_guard<std::mutex> lock(mutex_);
  weights_ = std::move(snapshot);
  return ++version_;
}

int64_t ParameterServer::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

bool ParameterServer::pull_if_newer(int64_t have_version, WeightMap* weights,
                                    int64_t* version) const {
  std::shared_ptr<const WeightMap> snapshot;
  int64_t current;
  MetricRegistry* metrics;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (version_ <= have_version) return false;
    snapshot = weights_;
    current = version_;
    metrics = metrics_;
  }
  // The copy (and the metric write) happen outside the lock: concurrent
  // pushes only swap the pointer, they never touch *snapshot.
  *weights = *snapshot;
  *version = current;
  if (metrics != nullptr) {
    metrics->set_gauge(staleness_gauge_,
                       static_cast<double>(current - have_version));
  }
  return true;
}

std::shared_ptr<const ParameterServer::WeightMap> ParameterServer::snapshot(
    int64_t* version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (version != nullptr) *version = version_;
  return weights_;
}

void ParameterServer::attach_metrics(MetricRegistry* metrics,
                                     std::string staleness_gauge) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
  staleness_gauge_ = std::move(staleness_gauge);
}

}  // namespace rlgraph
