#include "execution/param_server.h"

namespace rlgraph {

int64_t ParameterServer::push(std::map<std::string, Tensor> weights) {
  std::lock_guard<std::mutex> lock(mutex_);
  weights_ = std::move(weights);
  return ++version_;
}

int64_t ParameterServer::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

bool ParameterServer::pull_if_newer(int64_t have_version,
                                    std::map<std::string, Tensor>* weights,
                                    int64_t* version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (version_ <= have_version) return false;
  *weights = weights_;
  *version = version_;
  return true;
}

}  // namespace rlgraph
