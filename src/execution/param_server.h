// In-process parameter server: versioned weight publication with pull-based
// sync — the stand-in for distributed-TF parameter servers / the weight
// path between the Ape-X learner and its sample collectors.
//
// Snapshots are immutable and shared_ptr-published: push swaps in a new map,
// pulls grab the pointer under a short critical section and copy (or read)
// outside it, so worker pulls never serialize against learner pushes.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "tensor/tensor.h"
#include "util/metrics.h"

namespace rlgraph {

class ParameterServer {
 public:
  using WeightMap = std::map<std::string, Tensor>;

  // Publish a new weight snapshot; returns the new version number.
  int64_t push(WeightMap weights);

  // Current version (0 = nothing published yet).
  int64_t version() const;

  // Pull the snapshot if newer than `have_version`; returns true and fills
  // outputs on success, false when the caller is already up to date. The
  // map copy happens outside the server mutex.
  bool pull_if_newer(int64_t have_version, WeightMap* weights,
                     int64_t* version) const;

  // Zero-copy pull: the immutable snapshot (never mutated after publish)
  // plus its version. Null until the first push.
  std::shared_ptr<const WeightMap> snapshot(int64_t* version = nullptr) const;

  // Report pull staleness (publisher version minus puller version) into
  // `metrics` as gauge `name` on every versioned pull.
  void attach_metrics(MetricRegistry* metrics, std::string staleness_gauge);

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const WeightMap> weights_;
  int64_t version_ = 0;
  MetricRegistry* metrics_ = nullptr;
  std::string staleness_gauge_;
};

}  // namespace rlgraph
