// In-process parameter server: versioned weight publication with pull-based
// sync — the stand-in for distributed-TF parameter servers / the weight
// path between the Ape-X learner and its sample collectors.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "tensor/tensor.h"

namespace rlgraph {

class ParameterServer {
 public:
  // Publish a new weight snapshot; returns the new version number.
  int64_t push(std::map<std::string, Tensor> weights);

  // Current version (0 = nothing published yet).
  int64_t version() const;

  // Pull the snapshot if newer than `have_version`; returns true and fills
  // outputs on success, false when the caller is already up to date.
  bool pull_if_newer(int64_t have_version,
                     std::map<std::string, Tensor>* weights,
                     int64_t* version) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Tensor> weights_;
  int64_t version_ = 0;
};

}  // namespace rlgraph
