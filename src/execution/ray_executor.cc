// RayExecutor is header-only (templates); this translation unit exists to
// anchor the target and hold nothing else.
#include "execution/ray_executor.h"
