// Generic Ray-style executor scaffolding (paper §4.1: "Implementing other
// distributed semantics on Ray with RLgraph only requires extending the
// generic Ray executor to implement a coordination loop").
//
// RayExecutor owns a pool of worker actors plus shared services (parameter
// server, metrics, supervisor); subclasses implement the coordination loop
// over raylite futures. Worker slots are restartable: the original factory
// is retained so a supervisor can replace a failed actor in place, and
// slots are handed out as shared_ptr handles so a coordination loop holding
// a handle never races a concurrent restart.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "execution/param_server.h"
#include "execution/supervisor.h"
#include "raylite/actor.h"
#include "util/json.h"
#include "util/metrics.h"

namespace rlgraph {

template <typename WorkerT>
class RayExecutor {
 public:
  using WorkerActor = raylite::Actor<WorkerT>;
  using WorkerHandle = std::shared_ptr<WorkerActor>;

  virtual ~RayExecutor() { shutdown(); }

  // Spawn `n` worker actors; `factory(i)` builds worker i on its own actor
  // thread (graph executors are constructed where they are used). An
  // optional `injector_factory(i)` attaches a fault injector to worker i's
  // mailbox; the injector is shared with restarts so the injected schedule
  // continues across replacements.
  void spawn_workers(
      int n, std::function<std::unique_ptr<WorkerT>(int)> factory,
      std::function<std::shared_ptr<raylite::FaultInjector>(int)>
          injector_factory = nullptr) {
    factory_ = factory;
    std::lock_guard<std::mutex> lock(workers_mutex_);
    for (int i = 0; i < n; ++i) {
      injectors_.push_back(injector_factory ? injector_factory(i) : nullptr);
      workers_.push_back(std::make_shared<WorkerActor>(
          [factory, i] { return factory(i); }, injectors_.back()));
    }
  }

  size_t num_workers() const {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    return workers_.size();
  }

  // Snapshot of the current actor in slot i. Hold the handle for the
  // duration of a call/future round-trip; fetch a fresh one per task so a
  // restarted replacement is picked up.
  WorkerHandle worker_handle(size_t i) const {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    return workers_[i];
  }

  // Convenience accessor for tests / single-threaded use (no supervision
  // running). Prefer worker_handle() in coordination loops.
  WorkerActor& worker(size_t i) { return *worker_handle(i); }

  bool worker_failed(size_t i) const {
    WorkerHandle handle = worker_handle(i);
    return handle == nullptr ||
           handle->state() == raylite::ActorState::kFailed;
  }

  // True if the slot currently holds a live (running) actor.
  bool worker_running(size_t i) const {
    WorkerHandle handle = worker_handle(i);
    return handle != nullptr &&
           handle->state() == raylite::ActorState::kRunning;
  }

  // Replace slot i with a fresh actor built from the original factory (the
  // fault injector carries over). The old actor is stopped asynchronously
  // via its handle refcount: outstanding futures stay valid, they just
  // resolve errored. After the swap the resync hook (if any) runs so the
  // replacement pulls current weights instead of starting stale.
  bool restart_worker(size_t i) {
    RLG_REQUIRE(factory_ != nullptr, "restart_worker before spawn_workers");
    auto factory = factory_;
    int index = static_cast<int>(i);
    WorkerHandle replacement = std::make_shared<WorkerActor>(
        [factory, index] { return factory(index); }, injectors_[i]);
    WorkerHandle old;
    {
      std::lock_guard<std::mutex> lock(workers_mutex_);
      old = workers_[i];
      workers_[i] = replacement;
    }
    if (old) old->stop();
    if (resync_) resync_(i);
    return true;
  }

  // Replace slot i with a permanent tombstone: an actor whose factory throws
  // ActorLostError, so every subsequent call on the slot resolves to a typed
  // errored future (wait_for callers can distinguish "gone for good" from
  // "restarting, retry"). Used when the supervisor abandons the slot.
  void tombstone_worker(size_t i) {
    WorkerHandle tombstone = std::make_shared<WorkerActor>(
        [i]() -> std::unique_ptr<WorkerT> {
          throw ActorLostError("worker " + std::to_string(i) +
                               " exceeded its restart budget");
        });
    WorkerHandle old;
    {
      std::lock_guard<std::mutex> lock(workers_mutex_);
      old = workers_[i];
      workers_[i] = tombstone;
    }
    if (old) old->stop();
  }

  // Start a heartbeat supervisor over the worker pool. `resync(i)` runs
  // after each restart (typically: push current ParameterServer weights into
  // the replacement). A slot that exhausts its restart budget is
  // tombstoned — see tombstone_worker().
  void start_supervision(const SupervisorConfig& config,
                         std::function<void(size_t)> resync = nullptr) {
    resync_ = std::move(resync);
    supervisor_ = std::make_unique<Supervisor>(
        config, num_workers(),
        [this](size_t i) { return worker_failed(i); },
        [this](size_t i) { return restart_worker(i); }, &metrics_);
    supervisor_->set_on_give_up([this](size_t i) { tombstone_worker(i); });
    supervisor_->start();
  }

  void stop_supervision() {
    if (supervisor_) supervisor_->stop();
  }

  Supervisor* supervisor() { return supervisor_.get(); }

  ParameterServer& parameter_server() { return param_server_; }
  MetricRegistry& metrics() { return metrics_; }

  void shutdown() {
    stop_supervision();
    std::vector<WorkerHandle> workers;
    {
      std::lock_guard<std::mutex> lock(workers_mutex_);
      workers.swap(workers_);
      injectors_.clear();
    }
    for (auto& w : workers) w->stop();
  }

 protected:
  mutable std::mutex workers_mutex_;
  std::vector<WorkerHandle> workers_;
  std::vector<std::shared_ptr<raylite::FaultInjector>> injectors_;
  std::function<std::unique_ptr<WorkerT>(int)> factory_;
  std::function<void(size_t)> resync_;
  std::unique_ptr<Supervisor> supervisor_;
  ParameterServer param_server_;
  MetricRegistry metrics_;
};

}  // namespace rlgraph
