// Generic Ray-style executor scaffolding (paper §4.1: "Implementing other
// distributed semantics on Ray with RLgraph only requires extending the
// generic Ray executor to implement a coordination loop").
//
// RayExecutor owns a pool of worker actors plus shared services (parameter
// server, metrics); subclasses implement the coordination loop over raylite
// futures.
#pragma once

#include <memory>
#include <vector>

#include "execution/param_server.h"
#include "raylite/actor.h"
#include "util/json.h"
#include "util/metrics.h"

namespace rlgraph {

template <typename WorkerT>
class RayExecutor {
 public:
  virtual ~RayExecutor() { shutdown(); }

  // Spawn `n` worker actors; `factory(i)` builds worker i on its own actor
  // thread (graph executors are constructed where they are used).
  void spawn_workers(
      int n, std::function<std::unique_ptr<WorkerT>(int)> factory) {
    for (int i = 0; i < n; ++i) {
      workers_.push_back(std::make_unique<raylite::Actor<WorkerT>>(
          [factory, i] { return factory(i); }));
    }
  }

  size_t num_workers() const { return workers_.size(); }
  raylite::Actor<WorkerT>& worker(size_t i) { return *workers_[i]; }

  ParameterServer& parameter_server() { return param_server_; }
  MetricRegistry& metrics() { return metrics_; }

  void shutdown() {
    for (auto& w : workers_) w->stop();
    workers_.clear();
  }

 protected:
  std::vector<std::unique_ptr<raylite::Actor<WorkerT>>> workers_;
  ParameterServer param_server_;
  MetricRegistry metrics_;
};

}  // namespace rlgraph
