#include "execution/remote_worker.h"

#include "agents/agent.h"
#include "env/environment.h"
#include "tensor/tensor_io.h"
#include "util/logging.h"
#include "util/serialization.h"

namespace rlgraph {

namespace net = raylite::net;
using net::RpcClient;
using net::WireFaultInjector;

// --- SampleBatch codec ----------------------------------------------------

std::vector<uint8_t> encode_sample_batch(const SampleBatch& batch) {
  ByteWriter w;
  write_tensor(&w, batch.states);
  write_tensor(&w, batch.actions);
  write_tensor(&w, batch.rewards);
  write_tensor(&w, batch.next_states);
  write_tensor(&w, batch.terminals);
  write_tensor(&w, batch.priorities);
  w.write_i64(batch.num_records);
  w.write_i64(batch.env_frames);
  w.write_u32(static_cast<uint32_t>(batch.episode_returns.size()));
  for (double ret : batch.episode_returns) w.write_f64(ret);
  return w.take();
}

SampleBatch decode_sample_batch(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  SampleBatch batch;
  batch.states = read_tensor(&r);
  batch.actions = read_tensor(&r);
  batch.rewards = read_tensor(&r);
  batch.next_states = read_tensor(&r);
  batch.terminals = read_tensor(&r);
  batch.priorities = read_tensor(&r);
  batch.num_records = r.read_i64();
  batch.env_frames = r.read_i64();
  uint32_t num_returns = r.read_u32();
  batch.episode_returns.reserve(num_returns);
  for (uint32_t i = 0; i < num_returns; ++i) {
    batch.episode_returns.push_back(r.read_f64());
  }
  if (!r.at_end()) {
    throw SerializationError("sample batch has " +
                             std::to_string(r.remaining()) +
                             " trailing bytes");
  }
  return batch;
}

// --- Config round-trip ----------------------------------------------------

Json apex_worker_config_to_json(const ApexConfig& config) {
  JsonObject o;
  o["agent_config"] = config.agent_config;
  o["env_spec"] = config.env_spec;
  o["envs_per_worker"] = Json(static_cast<int64_t>(config.envs_per_worker));
  o["worker_sample_size"] = Json(config.worker_sample_size);
  o["n_step"] = Json(static_cast<int64_t>(config.n_step));
  o["discount"] = Json(config.discount);
  o["seed"] = Json(static_cast<int64_t>(config.seed));
  o["act_per_env"] = Json(config.act_per_env);
  o["incremental_post_processing"] = Json(config.incremental_post_processing);
  o["post_process_chunk"] = Json(config.post_process_chunk);
  return Json(std::move(o));
}

ApexConfig apex_worker_config_from_json(const Json& json) {
  ApexConfig config;
  config.agent_config = json.get("agent_config");
  config.env_spec = json.get("env_spec");
  config.envs_per_worker = static_cast<int>(
      json.get_int("envs_per_worker", config.envs_per_worker));
  config.worker_sample_size =
      json.get_int("worker_sample_size", config.worker_sample_size);
  config.n_step = static_cast<int>(json.get_int("n_step", config.n_step));
  config.discount = json.get_double("discount", config.discount);
  config.seed =
      static_cast<uint64_t>(json.get_int("seed", static_cast<int64_t>(config.seed)));
  config.act_per_env = json.get_bool("act_per_env", config.act_per_env);
  config.incremental_post_processing = json.get_bool(
      "incremental_post_processing", config.incremental_post_processing);
  config.post_process_chunk =
      json.get_int("post_process_chunk", config.post_process_chunk);
  return config;
}

namespace {

// Worker processes receive a config without driver-derived spaces; probe the
// environment spec to fill them in (same derivation ApexExecutor does).
ApexConfig with_derived_spaces(ApexConfig config) {
  if (config.state_space == nullptr || config.action_space == nullptr) {
    auto probe = make_environment(config.env_spec);
    config.state_space = probe->state_space();
    config.action_space = probe->action_space();
    config.preprocessed_space_ = preprocessed_space(
        config.agent_config.get("preprocessor"), config.state_space);
  }
  return config;
}

}  // namespace

// --- RemoteApexWorker -----------------------------------------------------

RemoteApexWorker::RemoteApexWorker(
    const std::string& endpoint, raylite::net::RpcClientOptions options,
    MetricRegistry* metrics, std::shared_ptr<WireFaultInjector> injector)
    : client_(std::make_unique<RpcClient>(net::Endpoint::parse(endpoint),
                                          std::move(options), metrics,
                                          std::move(injector))) {}

RemoteApexWorker::~RemoteApexWorker() = default;

SampleBatch RemoteApexWorker::sample(int64_t num_records) {
  ByteWriter w;
  w.write_i64(num_records);
  std::vector<uint8_t> response = client_->call("apex.sample", w.take()).get();
  return decode_sample_batch(response);
}

void RemoteApexWorker::set_weights(
    const std::map<std::string, Tensor>& weights) {
  client_->call("apex.set_weights", serialize_weights(weights)).get();
}

int64_t RemoteApexWorker::executor_calls() {
  std::vector<uint8_t> response =
      client_->call("apex.executor_calls", {}).get();
  ByteReader r(std::move(response));
  return r.read_i64();
}

void RemoteApexWorker::shutdown_peer() {
  client_->call("apex.shutdown", {}).get();
}

// --- ApexWorkerService ----------------------------------------------------

ApexWorkerService::ApexWorkerService(
    const ApexConfig& config, int worker_index, const std::string& endpoint,
    MetricRegistry* metrics, std::shared_ptr<WireFaultInjector> injector)
    : actor_([config = with_derived_spaces(config), worker_index] {
        return std::make_unique<ApexWorker>(config, worker_index);
      }),
      server_(net::Endpoint::parse(endpoint), net::RpcServerOptions{},
              metrics, std::move(injector)) {
  server_.register_handler(
      "apex.sample", [this](const std::vector<uint8_t>& body) {
        ByteReader r(body);
        int64_t n = r.read_i64();
        SampleBatch batch =
            actor_.call([n](ApexWorker& w) { return w.sample(n); }).get();
        return encode_sample_batch(batch);
      });
  server_.register_handler(
      "apex.set_weights", [this](const std::vector<uint8_t>& body) {
        auto weights = deserialize_weights(body);
        actor_
            .call([weights = std::move(weights)](ApexWorker& w) {
              w.set_weights(weights);
              return 0;
            })
            .get();
        return std::vector<uint8_t>{};
      });
  server_.register_handler(
      "apex.executor_calls", [this](const std::vector<uint8_t>&) {
        int64_t calls =
            actor_.call([](ApexWorker& w) { return w.executor_calls(); })
                .get();
        ByteWriter w;
        w.write_i64(calls);
        return w.take();
      });
  server_.register_handler(
      "apex.shutdown", [this](const std::vector<uint8_t>&) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          shutdown_requested_ = true;
        }
        cv_.notify_all();
        return std::vector<uint8_t>{};
      });
  server_.start();
}

ApexWorkerService::~ApexWorkerService() { stop(); }

std::string ApexWorkerService::endpoint() const {
  return server_.endpoint().to_string();
}

void ApexWorkerService::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return shutdown_requested_; });
}

void ApexWorkerService::stop() {
  server_.stop();
  actor_.stop();
}

// --- Process entry --------------------------------------------------------

void run_apex_worker_server(
    const ApexConfig& config, int worker_index, const std::string& endpoint,
    const std::function<void(const std::string&)>& on_ready) {
  ApexWorkerService service(config, worker_index, endpoint);
  RLG_LOG_INFO << "apex worker " << worker_index << " serving on "
               << service.endpoint();
  if (on_ready) on_ready(service.endpoint());
  service.wait_for_shutdown();
  service.stop();
  RLG_LOG_INFO << "apex worker " << worker_index << " shut down after "
               << service.requests_served() << " requests";
}

}  // namespace rlgraph
