// Cross-process Ape-X samplers over the raylite/net transport.
//
// The driver side (`RemoteApexWorker`) is an ApexWorkerInterface whose
// methods are RPCs, so it slots into RayExecutor<ApexWorkerInterface> with
// zero coordination-loop changes. Its failure modes map onto the in-process
// actor lifecycle:
//   * transient peer death -> calls throw ConnectionLostError (the hosting
//     actor task fails, the coordination loop retries/reroutes) while the
//     RpcClient reconnects with backoff;
//   * reconnect budget exhausted -> calls throw ActorLostError, which
//     poisons the hosting actor (raylite::Actor treats ActorDeadError
//     subclasses as fatal) so the PR 1 Supervisor restarts the slot — the
//     replacement RemoteApexWorker reconnects from scratch;
//   * the replacement's constructor failing (peer still gone) keeps the slot
//     kFailed until the supervisor's own budget runs out and the slot is
//     tombstoned with ActorLostError.
//
// The worker side (`ApexWorkerService`) hosts a real ApexWorker on a
// raylite actor thread behind an RpcServer, serializing access across
// connections. `run_apex_worker_server` is the process entry point used by
// examples/apex_multiproc and the multi-process tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "execution/apex_executor.h"
#include "raylite/net/rpc.h"

namespace rlgraph {

// SampleBatch wire codec (tensor_io framing); decode validates every tensor
// and throws SerializationError on truncation or corruption.
std::vector<uint8_t> encode_sample_batch(const SampleBatch& batch);
SampleBatch decode_sample_batch(const std::vector<uint8_t>& bytes);

// Worker-relevant ApexConfig subset <-> JSON, for handing the sampler
// configuration to another OS process (argv / config file).
Json apex_worker_config_to_json(const ApexConfig& config);
ApexConfig apex_worker_config_from_json(const Json& json);

// RPC proxy for a sampler living in another process. The constructor
// connects synchronously and throws ConnectionError if the peer is
// unreachable (so a supervised restart of the slot fails fast and retries
// after backoff instead of wedging).
class RemoteApexWorker : public ApexWorkerInterface {
 public:
  explicit RemoteApexWorker(
      const std::string& endpoint,
      raylite::net::RpcClientOptions options = {},
      MetricRegistry* metrics = nullptr,
      std::shared_ptr<raylite::net::WireFaultInjector> injector = nullptr);
  ~RemoteApexWorker() override;

  SampleBatch sample(int64_t num_records) override;
  void set_weights(const std::map<std::string, Tensor>& weights) override;
  int64_t executor_calls() override;

  // Remote-only extra: ask the peer process to shut down gracefully.
  void shutdown_peer();

  raylite::net::RpcClient& client() { return *client_; }

 private:
  std::unique_ptr<raylite::net::RpcClient> client_;
};

// Hosts an ApexWorker (on its own raylite actor thread) behind an RpcServer.
// Handlers: apex.sample, apex.set_weights, apex.executor_calls,
// apex.shutdown. Derives env spaces from env_spec if the config does not
// carry them (the usual case in a freshly-launched worker process).
class ApexWorkerService {
 public:
  ApexWorkerService(
      const ApexConfig& config, int worker_index, const std::string& endpoint,
      MetricRegistry* metrics = nullptr,
      std::shared_ptr<raylite::net::WireFaultInjector> injector = nullptr);
  ~ApexWorkerService();

  // Resolved listen endpoint (tcp:host:0 binds an ephemeral port).
  std::string endpoint() const;
  // Blocks until an apex.shutdown RPC arrives.
  void wait_for_shutdown();
  void stop();

  int64_t requests_served() const { return server_.requests_served(); }

 private:
  raylite::Actor<ApexWorker> actor_;
  raylite::net::RpcServer server_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_requested_ = false;
};

// Process entry point: serve worker `worker_index` on `endpoint` until a
// graceful shutdown RPC arrives. `on_ready` (if given) runs once the server
// is listening, with the resolved endpoint — used by launchers to signal
// readiness before the driver connects.
void run_apex_worker_server(
    const ApexConfig& config, int worker_index, const std::string& endpoint,
    const std::function<void(const std::string&)>& on_ready = nullptr);

}  // namespace rlgraph
