#include "execution/supervisor.h"

#include <algorithm>
#include <string>

#include "util/logging.h"
#include "util/trace.h"

namespace rlgraph {

Supervisor::Supervisor(SupervisorConfig config, size_t num_workers,
                       std::function<bool(size_t)> is_failed,
                       std::function<bool(size_t)> restart,
                       MetricRegistry* metrics)
    : config_(config),
      is_failed_(std::move(is_failed)),
      restart_(std::move(restart)),
      metrics_(metrics) {
  slots_.resize(num_workers);
  auto now = std::chrono::steady_clock::now();
  for (Slot& slot : slots_) {
    slot.backoff_ms = config_.backoff_initial_ms;
    slot.next_eligible = now;
  }
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] { loop(); });
}

void Supervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Supervisor::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           config_.heartbeat_interval_ms),
                 [&] { return !running_; });
    if (!running_) break;
    lock.unlock();
    poll();
    lock.lock();
  }
}

void Supervisor::poll() {
  trace::TraceSpan span("actor", "supervisor/heartbeat");
  auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < slots_.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Slot& slot = slots_[i];
      if (slot.gave_up || now < slot.next_eligible) continue;
    }
    if (!is_failed_(i)) continue;
    if (metrics_ != nullptr) {
      metrics_->increment("supervisor.worker_failures");
      metrics_->increment("supervisor.worker." + std::to_string(i) +
                          ".failures");
    }
    bool give_up = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Slot& slot = slots_[i];
      if (slot.restarts >= config_.max_restarts_per_worker) {
        slot.gave_up = true;
        give_up = true;
      } else {
        ++slot.restarts;
        slot.next_eligible =
            now + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          slot.backoff_ms));
        slot.backoff_ms = std::min(slot.backoff_ms * config_.backoff_multiplier,
                                   config_.backoff_max_ms);
      }
    }
    if (give_up) {
      if (metrics_ != nullptr) metrics_->increment("supervisor.gave_up");
      RLG_LOG_WARN << "supervisor: worker " << i
                   << " exceeded restart budget ("
                   << config_.max_restarts_per_worker << "); giving up";
      if (on_give_up_) on_give_up_(i);
      continue;
    }
    bool ok = restart_(i);
    if (metrics_ != nullptr) {
      metrics_->increment(ok ? "supervisor.restarts"
                             : "supervisor.restart_errors");
    }
    RLG_LOG_INFO << "supervisor: restarted worker " << i << " (attempt "
                 << restarts(i) << (ok ? ")" : ", spawn failed)");
  }
}

int64_t Supervisor::total_restarts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const Slot& slot : slots_) total += slot.restarts;
  return total;
}

int Supervisor::restarts(size_t worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[worker].restarts;
}

bool Supervisor::gave_up(size_t worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[worker].gave_up;
}

bool Supervisor::all_given_up() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : slots_) {
    if (!slot.gave_up) return false;
  }
  return !slots_.empty();
}

}  // namespace rlgraph
