// Worker supervision for Ray-style executors: a heartbeat thread polls
// worker health and restarts failed workers through caller-supplied hooks,
// with exponential backoff and a per-worker restart budget. Mirrors the
// supervision trees of production actor systems (Ray's max_restarts /
// Erlang-style one-for-one strategy) in-process.
//
// The supervisor is deliberately untyped: it only sees `is_failed(i)` and
// `restart(i)` callbacks, so the templated RayExecutor (and the thread-based
// IMPALA pipeline) can both use it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace rlgraph {

struct SupervisorConfig {
  double heartbeat_interval_ms = 10.0;
  // Restarts allowed per worker before the supervisor gives the slot up for
  // dead (coordination loops then reroute its work).
  int max_restarts_per_worker = 3;
  double backoff_initial_ms = 5.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 500.0;
};

class Supervisor {
 public:
  // `is_failed(i)` must be cheap and thread-safe; `restart(i)` replaces the
  // worker and returns false if the replacement could not even be spawned
  // (the slot stays failed and is retried after backoff). `metrics` may be
  // null.
  Supervisor(SupervisorConfig config, size_t num_workers,
             std::function<bool(size_t)> is_failed,
             std::function<bool(size_t)> restart, MetricRegistry* metrics);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void start();
  void stop();

  // Invoked (from the supervision thread, outside the supervisor lock) when
  // a worker exhausts its restart budget and the slot is abandoned. Callers
  // typically tombstone the slot so subsequent calls fail with a typed
  // ActorLostError instead of hanging. Set before start().
  void set_on_give_up(std::function<void(size_t)> on_give_up) {
    on_give_up_ = std::move(on_give_up);
  }

  // Single heartbeat sweep; exposed so tests and single-threaded
  // coordination loops can drive supervision without the background thread.
  void poll();

  int64_t total_restarts() const;
  int restarts(size_t worker) const;
  bool gave_up(size_t worker) const;
  // True if every supervised worker is permanently dead.
  bool all_given_up() const;

 private:
  struct Slot {
    int restarts = 0;
    bool gave_up = false;
    double backoff_ms;
    std::chrono::steady_clock::time_point next_eligible;
  };

  void loop();

  SupervisorConfig config_;
  std::function<bool(size_t)> is_failed_;
  std::function<bool(size_t)> restart_;
  std::function<void(size_t)> on_give_up_;
  MetricRegistry* metrics_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace rlgraph
