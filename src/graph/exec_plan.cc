#include "graph/exec_plan.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "graph/passes.h"
#include "util/errors.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace rlgraph {

// --- RunArena ---------------------------------------------------------------

RunArena::RunArena()
#ifdef NDEBUG
    : check_purity_(false)
#else
    : check_purity_(true)
#endif
{
}

void RunArena::begin_run(size_t num_slots) {
  slots_.assign(num_slots, std::nullopt);
  if (refs_capacity_ < num_slots) {
    refs_ = std::make_unique<std::atomic<int32_t>[]>(num_slots);
    refs_capacity_ = num_slots;
  }
  for (size_t i = 0; i < num_slots; ++i) {
    refs_[i].store(0, std::memory_order_relaxed);
  }
  live_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

void RunArena::put(int slot, Tensor value, int32_t refs) {
  if (refs <= 0) return;  // nothing will ever read it
  slots_[static_cast<size_t>(slot)].emplace(std::move(value));
  refs_[static_cast<size_t>(slot)].store(refs, std::memory_order_release);
  int64_t live = live_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

const Tensor& RunArena::get(int slot) const {
  const std::optional<Tensor>& v = slots_[static_cast<size_t>(slot)];
  RLG_CHECK_MSG(v.has_value(),
                "plan slot " << slot << " read before production or after "
                             << "release (refcount bug)");
  return *v;
}

void RunArena::unref(int slot) {
  // The last consumer (acq_rel decrement) is the only thread that touches
  // the slot afterwards, so the reset below is race-free even when several
  // consumer steps finish concurrently.
  if (refs_[static_cast<size_t>(slot)].fetch_sub(
          1, std::memory_order_acq_rel) == 1) {
    slots_[static_cast<size_t>(slot)].reset();
    live_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void RunArena::end_run() {
  slots_.assign(slots_.size(), std::nullopt);
  live_.store(0, std::memory_order_relaxed);
}

void RunArena::begin_planned(const ArenaPlan& plan) {
  const size_t needed = plan.total_bytes == 0 ? 1 : plan.total_bytes;
  // The arena block and the per-block storage handles persist across runs:
  // steady-state planned execution re-issues the same handles with zero
  // allocations. Escapes are policed per block in take_block() — a tensor
  // from a previous run that is still alive keeps that block's use_count
  // elevated, so only its block falls back to the pool, and the arena
  // itself is never reallocated. A plan change or growth invalidates the
  // cached offsets, so only then do we detach and start fresh (escaped
  // tensors keep the old block alive via their deleters).
  if (plan_block_ == nullptr || plan_capacity_ < needed ||
      planned_for_ != &plan) {
    plan_block_ = std::shared_ptr<void>(::operator new(needed),
                                        [](void* p) { ::operator delete(p); });
    plan_capacity_ = needed;
    planned_for_ = &plan;
    ++plan_block_allocs_;
    block_storage_.clear();
    block_storage_.resize(plan.blocks.size());
  }
}

std::shared_ptr<void> RunArena::take_block(int id, const ArenaPlan& plan) {
  std::shared_ptr<void>& storage = block_storage_[static_cast<size_t>(id)];
  if (storage != nullptr) {
    if (storage.use_count() > 1) {
      // The previous tenant escaped its planned lifetime (an aliasing
      // kernel — Identity, Reshape — handed its buffer to a longer-lived
      // slot). Withhold the range; the caller's allocation goes to the
      // pool and nothing ever overwrites live data.
      ++alias_fallbacks_;
      return nullptr;
    }
    return storage;
  }
  // A dedicated control block per range: the no-op deleter pins the
  // contiguous arena allocation, and use_count() tracks this range's
  // references alone (an aliased shared_ptr would share the arena's count).
  storage = std::shared_ptr<void>(
      static_cast<char*>(plan_block_.get()) + plan.blocks[static_cast<size_t>(id)].offset,
      [hold = plan_block_](void*) {});
  return storage;
}

void RunArena::end_planned() {
  // Handles stay cached for the next run (see begin_planned). Dropping
  // them here would force a control-block allocation per block per run.
}

// --- purity checking --------------------------------------------------------

namespace {

uint64_t fnv1a(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<uint64_t> checksum_inputs(const std::vector<Tensor>& inputs) {
  std::vector<uint64_t> sums;
  sums.reserve(inputs.size());
  for (const Tensor& t : inputs) sums.push_back(fnv1a(t.raw(), t.byte_size()));
  return sums;
}

}  // namespace

// --- compile from a GraphDef ------------------------------------------------

std::shared_ptr<CompiledPlan> CompiledPlan::compile(
    std::shared_ptr<const GraphDef> graph, const std::vector<Endpoint>& fetches,
    const std::vector<int>& feed_nodes, bool fuse_patterns) {
  RLG_REQUIRE(graph != nullptr, "CompiledPlan::compile requires a graph");
  if (fuse_patterns) {
    PlanFusionResult fused = fuse_plan_patterns(*graph, fetches);
    if (fused.graph != nullptr && fused.steps_saved > 0) {
      std::vector<Endpoint> new_fetches;
      new_fetches.reserve(fetches.size());
      for (const Endpoint& f : fetches) {
        new_fetches.push_back(fused.endpoint_map.at(f));
      }
      std::vector<int> new_feeds;
      new_feeds.reserve(feed_nodes.size());
      for (int id : feed_nodes) {
        new_feeds.push_back(fused.endpoint_map.at(Endpoint{id, 0}).node);
      }
      return compile(
          std::shared_ptr<const GraphDef>(std::move(fused.graph)), new_fetches,
          new_feeds, /*fuse_patterns=*/false);
    }
  }
  const int n = graph->num_nodes();

  for (int id : feed_nodes) {
    RLG_REQUIRE(id >= 0 && id < n,
                "feed targets unknown node " << id);
    RLG_REQUIRE(graph->node(id).op == "Placeholder",
                "feed target '" << graph->node(id).name
                                << "' is not a placeholder");
  }
  std::vector<uint8_t> fed(static_cast<size_t>(n), 0);
  for (int id : feed_nodes) fed[static_cast<size_t>(id)] = 1;

  // Iterative post-order DFS from the fetch roots over data + control deps.
  std::vector<int> schedule;
  std::vector<uint8_t> state(static_cast<size_t>(n),
                             0);  // 0=unvisited 1=on-stack 2=done
  std::vector<std::pair<int, size_t>> stack;  // (node, next-dep index)
  auto deps_of = [&](int id) {
    const NodeDef& node = graph->node(id);
    std::vector<int> deps;
    deps.reserve(node.inputs.size() + node.control_inputs.size());
    for (const Endpoint& e : node.inputs) deps.push_back(e.node);
    for (int c : node.control_inputs) deps.push_back(c);
    return deps;
  };
  for (const Endpoint& fetch : fetches) {
    RLG_REQUIRE(fetch.node >= 0 && fetch.node < n,
                "fetch endpoint references unknown node " << fetch.node);
    if (state[static_cast<size_t>(fetch.node)] == 2) continue;
    stack.emplace_back(fetch.node, 0);
    state[static_cast<size_t>(fetch.node)] = 1;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      std::vector<int> deps = deps_of(id);
      if (next < deps.size()) {
        int dep = deps[next++];
        uint8_t s = state[static_cast<size_t>(dep)];
        if (s == 0) {
          state[static_cast<size_t>(dep)] = 1;
          stack.emplace_back(dep, 0);
        } else {
          RLG_CHECK_MSG(s != 1, "cycle detected in graph at node "
                                    << graph->node(dep).name);
        }
      } else {
        state[static_cast<size_t>(id)] = 2;
        schedule.push_back(id);
        stack.pop_back();
      }
    }
  }

  auto plan = std::shared_ptr<CompiledPlan>(new CompiledPlan());
  plan->graph_ = graph;
  // Feeds outside the fetched subgraph get no slot; their per-run values
  // are dropped. Recorded by name so Session::run (explicit feed map, where
  // an unused feed is almost always a caller bug) can reject them, while
  // positional API calls tolerate ignored arguments.
  for (int id : feed_nodes) {
    if (state[static_cast<size_t>(id)] != 2) {
      plan->unused_feed_names_.push_back(graph->node(id).name);
    }
  }
  const OpRegistry& registry = OpRegistry::instance();

  // Dense slot layout: one slot per output of every scheduled node.
  std::vector<int> slot_base(static_cast<size_t>(n), -1);
  int next_slot = 0;
  for (int id : schedule) {
    slot_base[static_cast<size_t>(id)] = next_slot;
    next_slot += std::max(1, graph->node(id).num_outputs());
  }
  plan->num_slots_ = static_cast<size_t>(next_slot);

  std::vector<int> step_of_node(static_cast<size_t>(n), -1);
  for (int id : schedule) {
    const NodeDef& node = graph->node(id);
    if (fed[static_cast<size_t>(id)]) continue;  // value arrives per run
    if (node.op == "Const" && !node.stateful) {
      // Preload the attr tensor directly; no kernel dispatch per run.
      plan->baked_consts_.emplace_back(slot_base[static_cast<size_t>(id)],
                                       attr_tensor(node.attrs, "value"));
      continue;
    }
    const OpSchema& schema = registry.lookup(node.op);
    Step step;
    step.kernel = &schema.kernel;  // resolved once
    step.node = &node;
    step.stateful = node.stateful || schema.stateful;
    step.input_slots.reserve(node.inputs.size());
    for (const Endpoint& e : node.inputs) {
      step.input_slots.push_back(slot_base[static_cast<size_t>(e.node)] +
                                 e.index);
    }
    step.out_base = slot_base[static_cast<size_t>(id)];
    step.num_outputs = node.num_outputs();
    step_of_node[static_cast<size_t>(id)] =
        static_cast<int>(plan->steps_.size());
    if (node.op == "FusedDense" || node.op == "FusedConv2D" ||
        node.op == "FusedElementwise") {
      ++plan->fused_kernel_steps_;
    }
    plan->steps_.push_back(std::move(step));
  }

  // Control inputs are scheduling-only edges; map them onto step indices
  // for the parallel executor (a control dep on a fed/baked/unscheduled
  // node is satisfied before the first step runs).
  std::vector<std::pair<int, int>> control_edges;
  for (size_t s = 0; s < plan->steps_.size(); ++s) {
    for (int c : plan->steps_[s].node->control_inputs) {
      int from = step_of_node[static_cast<size_t>(c)];
      if (from >= 0) control_edges.emplace_back(from, static_cast<int>(s));
    }
  }

  plan->feed_slots_.reserve(feed_nodes.size());
  for (int id : feed_nodes) {
    const NodeDef& node = graph->node(id);
    plan->feed_slots_.push_back(slot_base[static_cast<size_t>(id)]);  // -1 if unused
    plan->feed_dtypes_.push_back(node.out_dtypes[0]);
    plan->feed_shapes_.push_back(node.out_shapes[0]);
    plan->feed_names_.push_back(node.name);
  }
  plan->fetch_slots_.reserve(fetches.size());
  for (const Endpoint& f : fetches) {
    plan->fetch_slots_.push_back(slot_base[static_cast<size_t>(f.node)] +
                                 f.index);
  }
  plan->finalize_schedule(control_edges);
  // Whether the leading feed dimension is a meaningful batch count: every
  // feed accepts an arbitrary leading extent AND feed 0 is actually read by
  // the fetched subgraph. Decided here, against the declared (partial)
  // signature, so it survives specialization tightening the shapes.
  plan->counts_batch_ = plan->feeds_batchable() && !plan->feed_slots_.empty() &&
                        plan->feed_slots_[0] >= 0;
  return plan;
}

std::shared_ptr<CompiledPlan> CompiledPlan::compile_specialized(
    std::shared_ptr<const GraphDef> graph, const std::vector<Endpoint>& fetches,
    const std::vector<int>& feed_nodes, const std::vector<Shape>& feed_shapes,
    bool fuse_patterns) {
  std::shared_ptr<CompiledPlan> plan =
      compile(std::move(graph), fetches, feed_nodes, fuse_patterns);
  if (feed_shapes.size() != plan->feed_slots_.size()) return nullptr;
  for (size_t i = 0; i < feed_shapes.size(); ++i) {
    if (!feed_shapes[i].fully_specified() ||
        !plan->feed_shapes_[i].matches(feed_shapes[i])) {
      return nullptr;  // caller keeps the dynamic plan
    }
  }
  plan->feed_shapes_ = feed_shapes;  // exact per-run validation from now on
  plan->specialized_ = true;
  plan->build_arena_plan();
  return plan;
}

// --- Builder (tape / fast-path lowering) ------------------------------------

int CompiledPlan::Builder::add_input() {
  int slot = num_slots_++;
  input_slots_.push_back(slot);
  ++num_inputs_;
  return slot;
}

int CompiledPlan::Builder::add_const(Tensor value) {
  int slot = num_slots_++;
  consts_.emplace_back(slot, std::move(value));
  return slot;
}

int CompiledPlan::Builder::add_step(NodeDef node,
                                    const std::vector<int>& input_slots,
                                    int num_outputs) {
  RLG_REQUIRE(num_outputs > 0, "plan step must have outputs");
  for (int s : input_slots) {
    RLG_REQUIRE(s >= 0 && s < num_slots_,
                "plan step input slot " << s << " not yet produced");
  }
  nodes_.push_back(std::move(node));
  const OpSchema& schema = OpRegistry::instance().lookup(nodes_.back().op);
  Step step;
  step.kernel = &schema.kernel;
  step.node = &nodes_.back();
  step.stateful = nodes_.back().stateful || schema.stateful;
  step.input_slots = input_slots;
  step.out_base = num_slots_;
  step.num_outputs = num_outputs;
  num_slots_ += num_outputs;
  steps_.push_back(std::move(step));
  return steps_.back().out_base;
}

void CompiledPlan::Builder::set_outputs(std::vector<int> slots) {
  for (int s : slots) {
    RLG_REQUIRE(s >= 0 && s < num_slots_, "plan output slot " << s
                                              << " was never produced");
  }
  output_slots_ = std::move(slots);
}

std::shared_ptr<CompiledPlan> CompiledPlan::Builder::finish() {
  auto plan = std::shared_ptr<CompiledPlan>(new CompiledPlan());
  plan->owned_nodes_ = std::move(nodes_);
  plan->steps_ = std::move(steps_);
  plan->baked_consts_ = std::move(consts_);
  plan->feed_slots_ = std::move(input_slots_);
  plan->fetch_slots_ = std::move(output_slots_);
  plan->num_slots_ = static_cast<size_t>(num_slots_);
  plan->finalize_schedule({});
  return plan;
}

void CompiledPlan::finalize_schedule(
    const std::vector<std::pair<int, int>>& control_edges) {
  initial_refs_.assign(num_slots_, 0);
  for (const Step& step : steps_) {
    for (int s : step.input_slots) ++initial_refs_[static_cast<size_t>(s)];
  }
  for (int s : fetch_slots_) ++initial_refs_[static_cast<size_t>(s)];

  // Inter-op dependency structure. Data edges come from the producing step
  // of each input slot; control edges are passed in; the stateful chain
  // serializes side effects (and RNG draws) in schedule order.
  std::vector<int> producer_of_slot(num_slots_, -1);
  for (size_t i = 0; i < steps_.size(); ++i) {
    for (int j = 0; j < steps_[i].num_outputs; ++j) {
      producer_of_slot[static_cast<size_t>(steps_[i].out_base + j)] =
          static_cast<int>(i);
    }
  }
  std::vector<std::set<int>> deps(steps_.size());
  for (size_t i = 0; i < steps_.size(); ++i) {
    for (int s : steps_[i].input_slots) {
      int p = producer_of_slot[static_cast<size_t>(s)];
      if (p >= 0) deps[i].insert(p);
    }
  }
  for (const auto& [from, to] : control_edges) {
    deps[static_cast<size_t>(to)].insert(from);
  }
  int prev_stateful = -1;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (!steps_[i].stateful) continue;
    if (prev_stateful >= 0) deps[i].insert(prev_stateful);
    prev_stateful = static_cast<int>(i);
  }

  initial_ready_.clear();
  for (size_t i = 0; i < steps_.size(); ++i) {
    steps_[i].successors.clear();
    steps_[i].num_deps = static_cast<int>(deps[i].size());
    if (steps_[i].num_deps == 0) initial_ready_.push_back(static_cast<int>(i));
  }
  for (size_t i = 0; i < steps_.size(); ++i) {
    for (int d : deps[i]) {
      steps_[static_cast<size_t>(d)].successors.push_back(static_cast<int>(i));
    }
  }

  // Max antichain width via levelization: the compile-time parallelism
  // bound the executor consults before paying any scheduling overhead.
  std::vector<int> level(steps_.size(), 0);
  std::vector<int> width;
  for (size_t i = 0; i < steps_.size(); ++i) {
    int lv = 0;
    for (int d : deps[i]) lv = std::max(lv, level[static_cast<size_t>(d)] + 1);
    level[i] = lv;
    if (static_cast<size_t>(lv) >= width.size()) width.resize(lv + 1, 0);
    ++width[static_cast<size_t>(lv)];
  }
  max_width_ = 1;
  for (int w : width) max_width_ = std::max(max_width_, w);
}

// --- execution --------------------------------------------------------------

std::vector<Tensor> CompiledPlan::execute(RunArena& arena,
                                          const std::vector<Tensor>& feed_values,
                                          VariableStore* variables,
                                          Rng* rng) const {
  RLG_REQUIRE(feed_values.size() == feed_slots_.size(),
              "plan expects " << feed_slots_.size() << " feed values, got "
                              << feed_values.size());
  const size_t validated =
      feed_dtypes_.empty() ? 0 : feed_values.size();  // built plans skip
  for (size_t i = 0; i < validated; ++i) {
    const Tensor& v = feed_values[i];
    // Name the declared signature (the placeholder's space) next to the
    // provided one so a bad feed is diagnosable from the message alone.
    RLG_REQUIRE(v.dtype() == feed_dtypes_[i],
                "feed for '" << feed_names_[i] << "' provides "
                             << dtype_name(v.dtype()) << v.shape().to_string()
                             << " but the feed is declared "
                             << dtype_name(feed_dtypes_[i])
                             << feed_shapes_[i].to_string());
    RLG_REQUIRE(feed_shapes_[i].matches(v.shape()),
                "feed for '" << feed_names_[i] << "' provides "
                             << dtype_name(v.dtype()) << v.shape().to_string()
                             << " but the feed is declared "
                             << dtype_name(feed_dtypes_[i])
                             << feed_shapes_[i].to_string());
  }

  trace::TraceSpan plan_span("plan", "plan/execute");
  if (plan_span.active()) {
    plan_span.set_arg("steps", static_cast<int64_t>(steps_.size()));
    if (!feed_values.empty() && feed_values[0].shape().rank() >= 1) {
      plan_span.set_arg("batch", feed_values[0].shape().dim(0));
    }
  }

  // Kernel output allocations inside this run draw from the arena's pool;
  // released intermediates recycle their buffers within the same run.
  BufferPoolScope pool_scope(&arena.pool());
  arena.begin_run(num_slots_);
  for (size_t i = 0; i < feed_values.size(); ++i) {
    if (feed_slots_[i] < 0) continue;  // feed unused by the fetched subgraph
    arena.put(feed_slots_[i], feed_values[i],
              initial_refs_[static_cast<size_t>(feed_slots_[i])]);
  }
  for (const auto& [slot, value] : baked_consts_) {
    arena.put(slot, value, initial_refs_[static_cast<size_t>(slot)]);
  }

  // Inter-op dispatch: the parallel scheduler only pays off when the step
  // DAG actually has width and the process has pool threads. max_width_ is
  // the compile-time bound, so chains (and RLGRAPH_NUM_THREADS=1) take the
  // zero-overhead serial loop. The static arena plan is valid only under
  // the serial schedule (its lifetime intervals assume steps retire in
  // order), so parallel runs of a specialized plan use the pool as before.
  const bool parallel =
      max_width_ > 1 && steps_.size() >= 4 && global_parallelism() > 1;
  const bool planned = arena_plan_ != nullptr && !parallel;
  if (planned) {
    arena.begin_planned(*arena_plan_);
    execute_planned(arena, variables, rng);
  } else if (parallel) {
    execute_parallel(arena, variables, rng);
  } else {
    execute_serial(arena, variables, rng);
  }

  std::vector<Tensor> fetched;
  fetched.reserve(fetch_slots_.size());
  for (int slot : fetch_slots_) fetched.push_back(arena.get(slot));
  arena.end_run();
  if (planned) {
    arena.end_planned();
    counters_.planned_runs.fetch_add(1, std::memory_order_relaxed);
  }

  counters_.runs.fetch_add(1, std::memory_order_relaxed);
  counters_.nodes_executed.fetch_add(static_cast<int64_t>(steps_.size()),
                                     std::memory_order_relaxed);
  if (fused_kernel_steps_ > 0) {
    counters_.fused_dispatches.fetch_add(fused_kernel_steps_,
                                         std::memory_order_relaxed);
  }
  // A "batch" is the leading extent of feed 0, but only when the plan's
  // signature makes that a batch dimension and the feed actually reaches
  // the fetched subgraph; everything else (scalar feeds, feed-less plans,
  // unused feed 0) counts as one logical element per run.
  int64_t batch = 1;
  if (counts_batch_ && !feed_values.empty() &&
      feed_values[0].shape().rank() >= 1) {
    batch = feed_values[0].shape().dim(0);
  }
  counters_.batch_elements.fetch_add(batch, std::memory_order_relaxed);
  return fetched;
}

bool CompiledPlan::feeds_batchable() const {
  if (feed_shapes_.size() != feed_slots_.size()) return false;  // built plan
  if (feed_shapes_.empty()) return false;
  for (const Shape& s : feed_shapes_) {
    if (s.rank() < 1 || s.dim(0) != kUnknownDim) return false;
  }
  return true;
}

void CompiledPlan::run_step(const Step& step, KernelContext& ctx,
                            RunArena& arena, bool check_purity) const {
  trace::TraceSpan kernel_span("kernel", step.node->op);
  ctx.node = step.node;
  ctx.inputs.clear();
  ctx.inputs.reserve(step.input_slots.size());
  for (int slot : step.input_slots) ctx.inputs.push_back(arena.get(slot));

  std::vector<uint64_t> sums;
  if (check_purity) sums = checksum_inputs(ctx.inputs);

  std::vector<Tensor> out = (*step.kernel)(ctx);

  if (kernel_span.active()) {
    kernel_span.set_detail(
        step.node->name +
        (out.empty() ? std::string() : " -> " + out[0].shape().to_string()));
  }

  if (check_purity) {
    std::vector<uint64_t> after = checksum_inputs(ctx.inputs);
    for (size_t i = 0; i < sums.size(); ++i) {
      RLG_CHECK_MSG(sums[i] == after[i],
                    "kernel for op '" << step.node->op << "' (node '"
                                      << step.node->name << "') mutated input "
                                      << i
                                      << "; in-place writes corrupt shared/"
                                         "pooled buffers");
    }
  }

  RLG_CHECK_MSG(static_cast<int>(out.size()) == step.num_outputs,
                "op " << step.node->op << " produced " << out.size()
                      << " outputs, plan expects " << step.num_outputs);
  for (int j = 0; j < step.num_outputs; ++j) {
    arena.put(step.out_base + j, std::move(out[static_cast<size_t>(j)]),
              initial_refs_[static_cast<size_t>(step.out_base + j)]);
  }
  for (int slot : step.input_slots) arena.unref(slot);
  // Release the input handles now, not on the next step's clear(): a
  // dead slot's buffer must be reference-free before the planned path
  // stages it for the next tenant (and the pool path recycles sooner too).
  ctx.inputs.clear();
}

void CompiledPlan::execute_serial(RunArena& arena, VariableStore* variables,
                                  Rng* rng) const {
  const bool check_purity = arena.check_kernel_purity();
  KernelContext ctx;  // reused across steps: one inputs allocation per run
  ctx.variables = variables;
  ctx.rng = rng;
  for (const Step& step : steps_) run_step(step, ctx, arena, check_purity);
}

void CompiledPlan::execute_planned(RunArena& arena, VariableStore* variables,
                                   Rng* rng) const {
  const ArenaPlan& plan = *arena_plan_;
  const bool check_purity = arena.check_kernel_purity();
  KernelContext ctx;
  ctx.variables = variables;
  ctx.rng = rng;
  // One scope for the whole run: reset() per step keeps the entry vector's
  // capacity, so steady state stages ranges without allocating.
  PlannedAllocScope scope;
  for (size_t i = 0; i < steps_.size(); ++i) {
    scope.reset();  // stale ranges must never leak into the next step
    const int begin = plan.step_begin[i];
    const int end = plan.step_begin[i + 1];
    // Stage this step's preplanned ranges; the kernel's output allocations
    // consume them by exact byte size. Ranges a hazard check withholds (or
    // that the kernel never requests — e.g. an aliasing kernel returning
    // its input) are simply dropped at the next reset.
    for (int a = begin; a < end; ++a) {
      const ArenaPlan::StepAlloc& alloc =
          plan.step_allocs[static_cast<size_t>(a)];
      if (std::shared_ptr<void> storage = arena.take_block(alloc.block, plan)) {
        scope.add(alloc.bytes, std::move(storage));
      }
    }
    run_step(steps_[i], ctx, arena, check_purity);
  }
}

// Shape-specialization pass + lifetime-interval arena planner.
//
// Pass 1 propagates the concrete feed shapes through the step DAG with each
// op's registered shape function. Resolution is best-effort: an op whose
// shape function throws (value-dependent shapes), an unregistered custom
// op, or any not-fully-specified result leaves that step's outputs unknown,
// and downstream steps consuming them stay unknown too.
//
// Pass 2 assigns every output of a fully resolved step a byte range inside
// one contiguous arena. Ranges are recycled by exact byte size — the same
// key the allocator hook matches on — and a range is reusable once the
// producing step runs strictly after the previous tenant's last consumer.
// Outputs of equal size within a single step are interchangeable (kernels
// allocate outputs in unspecified order), so their reuse point is the
// latest last-use of the group. Steps with ANY unresolved output get no
// planned ranges at all: a planned range could otherwise be stolen by an
// unplanned same-size allocation and outlive its interval.
void CompiledPlan::build_arena_plan() {
  arena_plan_.reset();
  if (steps_.empty()) return;

  struct SlotInfo {
    DType dtype = DType::kFloat32;
    Shape shape;
    bool known = false;     // concrete dtype+shape available
    bool external = false;  // storage arrives from outside (feed/const)
  };
  std::vector<SlotInfo> slots(num_slots_);
  for (size_t i = 0; i < feed_slots_.size(); ++i) {
    if (feed_slots_[i] < 0) continue;
    SlotInfo& s = slots[static_cast<size_t>(feed_slots_[i])];
    s.dtype = feed_dtypes_[i];
    s.shape = feed_shapes_[i];
    s.known = s.shape.fully_specified();
    s.external = true;
  }
  for (const auto& [slot, value] : baked_consts_) {
    SlotInfo& s = slots[static_cast<size_t>(slot)];
    s.dtype = value.dtype();
    s.shape = value.shape();
    s.known = true;
    s.external = true;
  }

  const OpRegistry& registry = OpRegistry::instance();
  std::vector<uint8_t> step_resolved(steps_.size(), 0);
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    ShapeInferenceContext ctx;
    ctx.node = step.node;
    bool inputs_known = true;
    for (int s : step.input_slots) {
      const SlotInfo& in = slots[static_cast<size_t>(s)];
      if (!in.known) {
        inputs_known = false;
        break;
      }
      ctx.input_dtypes.push_back(in.dtype);
      ctx.input_shapes.push_back(in.shape);
    }
    if (!inputs_known || !registry.contains(step.node->op)) continue;
    OpSignature sig;
    try {
      sig = registry.lookup(step.node->op).shape_fn(ctx);
    } catch (const std::exception&) {
      continue;  // value-dependent or unsupported: outputs stay unknown
    }
    if (static_cast<int>(sig.shapes.size()) != step.num_outputs) continue;
    bool all_specified = true;
    for (const Shape& s : sig.shapes) {
      if (!s.fully_specified()) all_specified = false;
    }
    if (!all_specified) continue;
    for (int j = 0; j < step.num_outputs; ++j) {
      SlotInfo& out = slots[static_cast<size_t>(step.out_base + j)];
      out.dtype = sig.dtypes[static_cast<size_t>(j)];
      out.shape = sig.shapes[static_cast<size_t>(j)];
      out.known = true;
      out.external = false;
    }
    step_resolved[i] = 1;
  }

  // Lifetime intervals: a slot lives from its producing step to its last
  // consuming step; fetched slots live past the final step (their storage
  // leaves the run, so their ranges are never recycled within it).
  std::vector<int> last_use(num_slots_, -1);
  for (size_t i = 0; i < steps_.size(); ++i) {
    for (int s : steps_[i].input_slots) {
      last_use[static_cast<size_t>(s)] =
          std::max(last_use[static_cast<size_t>(s)], static_cast<int>(i));
    }
  }
  for (int s : fetch_slots_) {
    last_use[static_cast<size_t>(s)] = static_cast<int>(steps_.size());
  }

  auto plan = std::make_unique<ArenaPlan>();
  plan->step_begin.assign(steps_.size() + 1, 0);
  struct BlockState {
    size_t bytes = 0;
    int free_after = -1;  // last step index that may read the block
  };
  std::vector<BlockState> block_states;
  constexpr size_t kAlign = 64;
  for (size_t i = 0; i < steps_.size(); ++i) {
    plan->step_begin[i] = static_cast<int>(plan->step_allocs.size());
    if (!step_resolved[i]) continue;
    const Step& step = steps_[i];
    // Interchangeability: equal-size outputs of this step share the latest
    // last-use of the group (see the function comment).
    std::map<size_t, int> group_end;
    std::vector<size_t> out_bytes(static_cast<size_t>(step.num_outputs));
    for (int j = 0; j < step.num_outputs; ++j) {
      const SlotInfo& out = slots[static_cast<size_t>(step.out_base + j)];
      size_t bytes = static_cast<size_t>(out.shape.num_elements()) *
                     dtype_size(out.dtype);
      if (bytes == 0) bytes = 1;  // mirror the allocator's 0-byte clamp
      out_bytes[static_cast<size_t>(j)] = bytes;
      int end = last_use[static_cast<size_t>(step.out_base + j)];
      if (end < static_cast<int>(i)) end = static_cast<int>(i);  // unconsumed
      auto [it, inserted] = group_end.emplace(bytes, end);
      if (!inserted) it->second = std::max(it->second, end);
    }
    for (int j = 0; j < step.num_outputs; ++j) {
      const size_t bytes = out_bytes[static_cast<size_t>(j)];
      const int end = group_end[bytes];
      int id = -1;
      for (size_t b = 0; b < block_states.size(); ++b) {
        if (block_states[b].bytes == bytes &&
            block_states[b].free_after < static_cast<int>(i)) {
          id = static_cast<int>(b);
          break;
        }
      }
      if (id < 0) {
        id = static_cast<int>(block_states.size());
        block_states.push_back(BlockState{bytes, -1});
        plan->blocks.push_back(ArenaPlan::Block{plan->total_bytes, bytes});
        plan->total_bytes += (bytes + kAlign - 1) / kAlign * kAlign;
      }
      block_states[static_cast<size_t>(id)].free_after = end;
      plan->step_allocs.push_back(ArenaPlan::StepAlloc{id, bytes});
      ++plan->planned_slots;
    }
  }
  plan->step_begin[steps_.size()] = static_cast<int>(plan->step_allocs.size());
  if (plan->planned_slots == 0) return;  // nothing resolved: stay dynamic
  arena_plan_ = std::move(plan);
}

// Shared state of one parallel plan run. Pool helpers hold it via
// shared_ptr: a helper scheduled late (after the run completed or failed)
// locks the mutex, sees no ready work, and returns without touching the
// arena — so the caller can safely reuse the arena for the next run.
struct CompiledPlan::Scheduler {
  const CompiledPlan* plan;
  RunArena* arena;
  VariableStore* variables;
  Rng* rng;
  BufferPool* pool;
  bool check_purity;

  // Per-step dependency counters; finishing predecessors race on these
  // without the mutex (atomic decrement), only ready-list pushes lock.
  std::vector<std::atomic<int>> deps;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> ready;
  size_t remaining;
  int executing = 0;
  std::exception_ptr error;  // first failure wins

  Scheduler(const CompiledPlan* p, RunArena* a, VariableStore* v, Rng* r)
      : plan(p),
        arena(a),
        variables(v),
        rng(r),
        pool(&a->pool()),
        check_purity(a->check_kernel_purity()),
        deps(p->steps_.size()),
        remaining(p->steps_.size()) {
    for (size_t i = 0; i < p->steps_.size(); ++i) {
      deps[i].store(p->steps_[i].num_deps, std::memory_order_relaxed);
    }
    ready = p->initial_ready_;
  }

  // Run ready steps until none remain (or the run failed). Called by the
  // submitting thread and by pool helper tasks; `self` lets a drain spawn
  // additional helpers when one finished step unblocks several successors.
  void drain(const std::shared_ptr<Scheduler>& self) {
    std::unique_lock<std::mutex> lock(mutex);
    while (!error && !ready.empty()) {
      int idx = ready.back();
      ready.pop_back();
      ++executing;
      lock.unlock();

      std::exception_ptr err;
      std::vector<int> fresh;  // successors this step unblocked
      try {
        // Helpers run on pool threads whose thread-local pool binding is
        // whatever ran there last; rebind to this run's arena pool.
        BufferPoolScope scope(pool);
        KernelContext ctx;
        ctx.variables = variables;
        ctx.rng = rng;
        plan->run_step(plan->steps_[static_cast<size_t>(idx)], ctx, *arena,
                       check_purity);
      } catch (...) {
        err = std::current_exception();
      }
      if (!err) {
        for (int succ : plan->steps_[static_cast<size_t>(idx)].successors) {
          if (deps[static_cast<size_t>(succ)].fetch_sub(
                  1, std::memory_order_acq_rel) == 1) {
            fresh.push_back(succ);
          }
        }
      }

      size_t spawn = 0;
      lock.lock();
      --executing;
      if (err) {
        if (!error) error = err;
      } else {
        --remaining;
        for (int f : fresh) ready.push_back(f);
        // This thread continues with one ready step; extra ones need
        // helpers (over-posting is harmless: an idle helper exits fast).
        if (fresh.size() > 1) spawn = fresh.size() - 1;
      }
      if ((remaining == 0 || error) && executing == 0) cv.notify_all();
      if (spawn > 0) {
        lock.unlock();
        ThreadPool& pool_threads = global_pool();
        spawn = std::min(spawn, pool_threads.size());
        for (size_t i = 0; i < spawn; ++i) {
          pool_threads.post([self] { self->drain(self); });
        }
        lock.lock();
      }
    }
  }
};

void CompiledPlan::execute_parallel(RunArena& arena, VariableStore* variables,
                                    Rng* rng) const {
  auto sched = std::make_shared<Scheduler>(this, &arena, variables, rng);
  ThreadPool& pool = global_pool();
  const size_t helpers = std::min(
      pool.size(),
      sched->ready.size() > 1 ? sched->ready.size() - 1 : size_t{0});
  for (size_t i = 0; i < helpers; ++i) {
    pool.post([sched] { sched->drain(sched); });
  }
  sched->drain(sched);  // the caller participates: never waits on idle workers

  std::unique_lock<std::mutex> lock(sched->mutex);
  sched->cv.wait(lock, [&] {
    return (sched->remaining == 0 || sched->error) && sched->executing == 0;
  });
  if (sched->error) std::rethrow_exception(sched->error);
}

}  // namespace rlgraph
