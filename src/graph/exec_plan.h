// Compiled execution plans: the one executable-graph layer shared by the
// Session (static backend) and the fast-path (define-by-run backend).
//
// The paper's build process amortizes per-call overhead into a one-time
// compilation step. A CompiledPlan is that step's output: every scheduled
// node's kernel is resolved to a function pointer once, the dependency
// structure is flattened into dense value-slot indices (no per-run maps or
// registry lookups), and per-slot last-use refcounts let intermediates be
// released eagerly. Steady-state execution walks a flat step array against a
// reusable RunArena whose buffer pool recycles tensor storage, so a run does
// zero schedule work and minimal allocation.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph_def.h"
#include "graph/op_schema.h"
#include "tensor/buffer_pool.h"

namespace rlgraph {

// Static memory plan for a shape-specialized CompiledPlan: once every
// value slot's concrete shape is known at compile time, each kernel output
// is assigned a byte range inside one contiguous per-arena block, computed
// from last-use lifetime intervals (two slots share a range only when the
// producer of the second runs strictly after the last consumer of the
// first). Steady-state execution then serves output allocations by handing
// out preplanned ranges (see PlannedAllocScope) — no BufferPool traffic on
// the hot path. Blocks are matched to allocations by exact byte size, the
// same key the pool's free lists use.
struct ArenaPlan {
  struct Block {
    size_t offset = 0;
    size_t bytes = 0;  // exact allocation size (the alloc-request match key)
  };
  struct StepAlloc {
    int block = -1;
    size_t bytes = 0;  // == blocks[block].bytes
  };
  std::vector<Block> blocks;
  // Planned outputs flattened across steps; step s owns the half-open range
  // [step_begin[s], step_begin[s+1]). Steps with any output whose shape
  // could not be resolved get an empty range (their outputs use the pool).
  std::vector<StepAlloc> step_allocs;
  std::vector<int> step_begin;
  size_t total_bytes = 0;
  // How many value slots received a planned range (stats/tests).
  size_t planned_slots = 0;
};

// Reusable per-run state for one plan: the dense value-slot table, live
// refcounts, and the buffer pool serving kernel allocations. An arena is
// used by at most one run at a time (Session keeps a small pool per plan),
// but within that run the parallel inter-op scheduler may produce/consume
// slots from several pool threads: refcounts are atomic, and distinct slots
// are only ever touched by the steps that the dependency edges order.
class RunArena {
 public:
  RunArena();

  BufferPool& pool() { return pool_; }

  void begin_run(size_t num_slots);
  // Store a produced value. refs == 0 drops the value immediately (an
  // output nothing consumes); the slot still counts toward the peak.
  void put(int slot, Tensor value, int32_t refs);
  const Tensor& get(int slot) const;
  // Consume one reference; the slot's tensor is released at zero so its
  // buffer can return to the pool mid-run.
  void unref(int slot);
  void end_run();

  // --- planned-arena state (shape-specialized plans) ------------------------
  // Ensure the contiguous block backing `plan` exists and is exclusively
  // ours. Escaped references from a previous run — fetched tensors or
  // variable/component snapshots still alive somewhere — force a fresh
  // block (the old one frees when its last reference dies), so reuse is
  // always safe no matter how long a caller holds a fetched tensor.
  void begin_planned(const ArenaPlan& plan);
  // Hand out planned block `id` for the current run. Returns nullptr (and
  // counts an alias fallback) when the block's previous tenant is still
  // referenced — e.g. an Identity/Reshape kernel aliased it into a
  // longer-lived value — in which case the caller simply lets the
  // allocation fall through to the pool.
  std::shared_ptr<void> take_block(int id, const ArenaPlan& plan);
  // End-of-run hook. Handles persist across runs (steady state re-issues
  // them allocation-free); escaped tensors keep their block flagged via
  // use_count until they die.
  void end_planned();
  // Fresh contiguous-block allocations (1 on first use; more only when a
  // prior run's values escaped or the plan grew).
  int64_t arena_block_allocs() const { return plan_block_allocs_; }
  // Planned ranges withheld because a previous tenant was still alive.
  int64_t arena_alias_fallbacks() const { return alias_fallbacks_; }

  int64_t live_slots() const { return live_.load(std::memory_order_relaxed); }
  // High-water mark of simultaneously live slots in the most recent
  // (or current) run — what the eager-release tests assert on.
  int64_t peak_live_slots() const {
    return peak_.load(std::memory_order_relaxed);
  }

  // Debug invariant: verify kernels never mutate their input tensors (a
  // mutated input would silently corrupt pooled/shared buffers). Defaults
  // to on in debug builds (NDEBUG not defined), off otherwise.
  void set_check_kernel_purity(bool on) { check_purity_ = on; }
  bool check_kernel_purity() const { return check_purity_; }

 private:
  std::vector<std::optional<Tensor>> slots_;
  std::unique_ptr<std::atomic<int32_t>[]> refs_;
  size_t refs_capacity_ = 0;
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> peak_{0};
  bool check_purity_;
  BufferPool pool_;

  // Planned-arena backing. Each block id gets its own shared_ptr control
  // block whose deleter pins `plan_block_`, so use_count() tracks that
  // block's live references alone — the within-run alias-hazard check and
  // the across-run escape check both read it.
  std::shared_ptr<void> plan_block_;
  size_t plan_capacity_ = 0;
  const ArenaPlan* planned_for_ = nullptr;  // offsets cached for this plan
  std::vector<std::shared_ptr<void>> block_storage_;
  int64_t plan_block_allocs_ = 0;
  int64_t alias_fallbacks_ = 0;
};

class CompiledPlan {
 public:
  struct Step {
    const KernelFn* kernel = nullptr;  // resolved once at compile time
    const NodeDef* node = nullptr;     // attrs/name for the KernelContext
    std::vector<int> input_slots;
    int out_base = 0;
    int num_outputs = 0;
    // Stateful steps (variable reads/writes, RNG, component state) execute
    // in schedule order even under the parallel scheduler: each one carries
    // an implicit edge from its predecessor in the stateful chain, which
    // both serializes side effects and pins the RNG consumption order.
    bool stateful = false;
    // Inter-op scheduling, precomputed at compile time: the steps this one
    // unblocks, and how many predecessor steps must finish first.
    std::vector<int> successors;
    int num_deps = 0;
  };

  struct Counters {
    std::atomic<int64_t> runs{0};
    std::atomic<int64_t> nodes_executed{0};
    // Sum of the leading feed dimension over all runs (a feed-less or
    // scalar-fed run counts 1): total logical elements served through this
    // plan — runs with a varying dynamic batch divide this by `runs` for
    // the mean effective batch size. Only counted when the plan is
    // batchable and feed 0 is actually consumed by the fetched subgraph.
    std::atomic<int64_t> batch_elements{0};
    // Runs that executed through the static arena plan (serial path of a
    // shape-specialized plan); runs - planned_runs took the dynamic
    // pool-allocating path.
    std::atomic<int64_t> planned_runs{0};
    // Fused-composite kernel dispatches (FusedDense / FusedConv2D /
    // FusedElementwise steps) accumulated over all runs.
    std::atomic<int64_t> fused_dispatches{0};
  };

  // Compile the transitive closure of `fetches` over `graph`. `feed_nodes`
  // lists the placeholder nodes whose values arrive per run (in the
  // positional order execute() expects). Throws ValueError if a feed
  // targets a non-placeholder node. A feed outside the fetched subgraph is
  // tolerated (its value is dropped; APIs may legitimately ignore an
  // argument) but recorded in unused_feed_names() so callers that consider
  // it a bug — Session::run with an explicit feed map — can reject it.
  //
  // With `fuse_patterns` set, fuse_plan_patterns() runs over the fetched
  // closure first; when it matches (inference-only closures), compilation
  // proceeds on the rewritten graph with fetches/feeds remapped, so the
  // plan dispatches the fused composite kernels instead of the op-per-node
  // sequence. Fetched values are bitwise identical either way.
  static std::shared_ptr<CompiledPlan> compile(
      std::shared_ptr<const GraphDef> graph,
      const std::vector<Endpoint>& fetches, const std::vector<int>& feed_nodes,
      bool fuse_patterns = false);

  // Compile specialized on concrete feed shapes (one shape per feed node,
  // fully specified — in particular a concrete leading batch dimension N).
  // The feed signature is tightened to the exact shapes, a shape-inference
  // pass propagates them through the step DAG, and every resolved kernel
  // output gets a static arena range (see ArenaPlan) so steady-state serial
  // runs bypass the BufferPool entirely. Returns nullptr when the shapes do
  // not match the plan's declared feed signature — the caller falls back to
  // the dynamic plan. Shape inference failing for part of the DAG is not an
  // error: unresolved steps simply keep allocating from the pool.
  static std::shared_ptr<CompiledPlan> compile_specialized(
      std::shared_ptr<const GraphDef> graph,
      const std::vector<Endpoint>& fetches, const std::vector<int>& feed_nodes,
      const std::vector<Shape>& feed_shapes, bool fuse_patterns = false);

  // Assembles a plan directly from lowered steps (the fast-path recorder's
  // route into this layer; also used by tests).
  class Builder {
   public:
    // Next positional plan input; returns its slot.
    int add_input();
    // A constant preloaded into its slot each run (shared handle, no
    // kernel call). Returns the slot.
    int add_const(Tensor value);
    // A step running `node.op`'s registered kernel (or the node's custom
    // kernel via the CustomStateful schema). Returns the base output slot.
    int add_step(NodeDef node, const std::vector<int>& input_slots,
                 int num_outputs);
    void set_outputs(std::vector<int> slots);
    std::shared_ptr<CompiledPlan> finish();

   private:
    friend class CompiledPlan;
    int num_slots_ = 0;
    int num_inputs_ = 0;
    std::deque<NodeDef> nodes_;  // stable addresses for Step::node
    std::vector<Step> steps_;
    std::vector<std::pair<int, Tensor>> consts_;
    std::vector<int> input_slots_;
    std::vector<int> output_slots_;
  };

  // Run the plan. `feed_values` are positional (feed_nodes order for
  // graph-compiled plans, add_input order for built plans). Per-run feed
  // dtype/shape validation happens here; a scheduled placeholder that was
  // not fed throws when its kernel executes.
  std::vector<Tensor> execute(RunArena& arena,
                              const std::vector<Tensor>& feed_values,
                              VariableStore* variables, Rng* rng) const;

  size_t num_steps() const { return steps_.size(); }
  size_t num_slots() const { return num_slots_; }
  // Widest antichain of the step DAG (1 = a pure chain): the compile-time
  // bound on inter-op parallelism. execute() stays on the serial path when
  // it is 1 or the process runs with RLGRAPH_NUM_THREADS=1.
  int max_parallel_width() const { return max_width_; }
  size_t num_feeds() const { return feed_slots_.size(); }
  size_t num_outputs() const { return fetch_slots_.size(); }
  // True iff every feed placeholder accepts any leading extent (rank >= 1
  // with an unknown first dim): one cached schedule then serves every
  // request batch size, which is what the serving batcher relies on when it
  // coalesces requests along the leading dimension. Conservatively false
  // for Builder-assembled plans, which carry no feed signatures.
  bool feeds_batchable() const;
  // True for plans compiled via compile_specialized: the feed signature is
  // exact (concrete shapes), so runs validate against the specialized
  // shapes and a mismatching batch throws instead of silently running.
  bool specialized() const { return specialized_; }
  // Non-null when specialization produced a static memory plan; serial
  // runs then place kernel outputs at the preplanned arena offsets.
  const ArenaPlan* arena_plan() const { return arena_plan_.get(); }
  // Feed placeholders not reachable from the fetches (values are dropped).
  const std::vector<std::string>& unused_feed_names() const {
    return unused_feed_names_;
  }
  const Counters& counters() const { return counters_; }
  // Steps dispatching a fused composite kernel (0 for unfused plans).
  int fused_kernel_steps() const { return fused_kernel_steps_; }

 private:
  CompiledPlan() = default;

  struct Scheduler;

  // Shared by compile()/Builder::finish(): compute per-slot refcounts from
  // step inputs + fetches, then the inter-op dependency structure
  // (successor lists, dep counts, stateful chain, max width).
  // `control_edges` carries extra (from_step, to_step) scheduling-only
  // edges — graph control inputs — that are not visible in input_slots.
  void finalize_schedule(
      const std::vector<std::pair<int, int>>& control_edges);

  // Execute one step against the arena (kernel call, purity check, output
  // placement, input unref). `ctx` is caller-owned scratch (variables/rng
  // preset) so the serial loop reuses one allocation. Thread-safe across
  // distinct steps when each thread brings its own ctx.
  void run_step(const Step& step, KernelContext& ctx, RunArena& arena,
                bool check_purity) const;

  void execute_serial(RunArena& arena, VariableStore* variables,
                      Rng* rng) const;
  void execute_parallel(RunArena& arena, VariableStore* variables,
                        Rng* rng) const;
  // Serial loop with the arena plan active: each step's planned output
  // ranges are installed in a PlannedAllocScope before its kernel runs.
  void execute_planned(RunArena& arena, VariableStore* variables,
                       Rng* rng) const;

  // Shape-specialization pass: propagate the (now concrete) feed shapes
  // through the step DAG via each op's registered shape function, then run
  // the lifetime-interval planner over every fully resolved slot. Partial
  // resolution is fine; a failed pass just leaves arena_plan_ null.
  void build_arena_plan();

  std::shared_ptr<const GraphDef> graph_;  // keeps Step::node alive
  std::deque<NodeDef> owned_nodes_;        // Builder-made plans own theirs
  std::vector<Step> steps_;
  std::vector<std::pair<int, Tensor>> baked_consts_;
  std::vector<int> feed_slots_;
  // Expected feed signatures (graph-compiled plans; empty for built plans).
  std::vector<DType> feed_dtypes_;
  std::vector<Shape> feed_shapes_;
  std::vector<std::string> feed_names_;
  std::vector<std::string> unused_feed_names_;
  std::vector<int> fetch_slots_;
  std::vector<int32_t> initial_refs_;
  std::vector<int> initial_ready_;  // steps with num_deps == 0
  int max_width_ = 1;
  size_t num_slots_ = 0;
  int fused_kernel_steps_ = 0;
  bool specialized_ = false;
  // Whether the leading dim of feed 0 is a batch count worth accumulating
  // into Counters::batch_elements (decided against the declared signature
  // at compile time, before specialization makes the shapes concrete).
  bool counts_batch_ = false;
  std::unique_ptr<ArenaPlan> arena_plan_;
  mutable Counters counters_;
};

}  // namespace rlgraph
