#include "graph/graph_def.h"

#include <sstream>

#include "util/errors.h"

namespace rlgraph {

namespace {
template <typename T>
const T* find_attr(const AttrMap& attrs, const std::string& key) {
  auto it = attrs.find(key);
  if (it == attrs.end()) return nullptr;
  const T* v = std::get_if<T>(&it->second);
  RLG_REQUIRE(v != nullptr, "attr '" << key << "' has wrong type");
  return v;
}
}  // namespace

int64_t attr_int(const AttrMap& attrs, const std::string& key) {
  const auto* v = find_attr<int64_t>(attrs, key);
  RLG_REQUIRE(v != nullptr, "missing int attr '" << key << "'");
  return *v;
}

int64_t attr_int(const AttrMap& attrs, const std::string& key, int64_t def) {
  const auto* v = find_attr<int64_t>(attrs, key);
  return v != nullptr ? *v : def;
}

double attr_double(const AttrMap& attrs, const std::string& key) {
  const auto* v = find_attr<double>(attrs, key);
  RLG_REQUIRE(v != nullptr, "missing double attr '" << key << "'");
  return *v;
}

double attr_double(const AttrMap& attrs, const std::string& key, double def) {
  const auto* v = find_attr<double>(attrs, key);
  return v != nullptr ? *v : def;
}

bool attr_bool(const AttrMap& attrs, const std::string& key, bool def) {
  const auto* v = find_attr<bool>(attrs, key);
  return v != nullptr ? *v : def;
}

const std::string& attr_string(const AttrMap& attrs, const std::string& key) {
  const auto* v = find_attr<std::string>(attrs, key);
  RLG_REQUIRE(v != nullptr, "missing string attr '" << key << "'");
  return *v;
}

std::vector<int64_t> attr_ints(const AttrMap& attrs, const std::string& key) {
  const auto* v = find_attr<std::vector<int64_t>>(attrs, key);
  RLG_REQUIRE(v != nullptr, "missing int-list attr '" << key << "'");
  return *v;
}

DType attr_dtype(const AttrMap& attrs, const std::string& key) {
  const auto* v = find_attr<DType>(attrs, key);
  RLG_REQUIRE(v != nullptr, "missing dtype attr '" << key << "'");
  return *v;
}

Shape attr_shape(const AttrMap& attrs, const std::string& key) {
  const auto* v = find_attr<Shape>(attrs, key);
  RLG_REQUIRE(v != nullptr, "missing shape attr '" << key << "'");
  return *v;
}

const Tensor& attr_tensor(const AttrMap& attrs, const std::string& key) {
  const auto* v = find_attr<Tensor>(attrs, key);
  RLG_REQUIRE(v != nullptr, "missing tensor attr '" << key << "'");
  return *v;
}

int GraphDef::add_node(NodeDef node) {
  node.id = static_cast<int>(nodes_.size());
  if (node.name.empty()) node.name = node.op;
  // Uniquify the name by suffixing _N if needed.
  std::string base = node.name;
  int suffix = 1;
  while (by_name_.count(node.name) > 0) {
    node.name = base + "_" + std::to_string(suffix++);
  }
  for (const Endpoint& in : node.inputs) {
    RLG_REQUIRE(in.node >= 0 && in.node < node.id,
                "node '" << node.name << "' has invalid input node "
                         << in.node);
    RLG_REQUIRE(in.index >= 0 && in.index < nodes_[static_cast<size_t>(in.node)]
                                                .num_outputs(),
                "node '" << node.name << "' input index out of range");
  }
  by_name_[node.name] = node.id;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

const NodeDef& GraphDef::node(int id) const {
  RLG_REQUIRE(id >= 0 && id < num_nodes(), "node id " << id << " out of range");
  return nodes_[static_cast<size_t>(id)];
}

NodeDef& GraphDef::mutable_node(int id) {
  RLG_REQUIRE(id >= 0 && id < num_nodes(), "node id " << id << " out of range");
  return nodes_[static_cast<size_t>(id)];
}

DType GraphDef::dtype_of(const Endpoint& e) const {
  const NodeDef& n = node(e.node);
  RLG_REQUIRE(e.index >= 0 && e.index < n.num_outputs(),
              "endpoint index out of range for node " << n.name);
  return n.out_dtypes[static_cast<size_t>(e.index)];
}

const Shape& GraphDef::shape_of(const Endpoint& e) const {
  const NodeDef& n = node(e.node);
  RLG_REQUIRE(e.index >= 0 && e.index < n.num_outputs(),
              "endpoint index out of range for node " << n.name);
  return n.out_shapes[static_cast<size_t>(e.index)];
}

int GraphDef::node_by_name(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) throw NotFoundError("no node named '" + name + "'");
  return it->second;
}

bool GraphDef::has_node_name(const std::string& name) const {
  return by_name_.count(name) > 0;
}

std::string GraphDef::to_string() const {
  std::ostringstream os;
  for (const NodeDef& n : nodes_) {
    os << n.id << ": " << n.name << " = " << n.op << "(";
    for (size_t i = 0; i < n.inputs.size(); ++i) {
      if (i > 0) os << ", ";
      os << n.inputs[i].node << ":" << n.inputs[i].index;
    }
    os << ")";
    if (!n.control_inputs.empty()) {
      os << " ctrl=[";
      for (size_t i = 0; i < n.control_inputs.size(); ++i) {
        if (i > 0) os << ",";
        os << n.control_inputs[i];
      }
      os << "]";
    }
    os << " -> ";
    for (int i = 0; i < n.num_outputs(); ++i) {
      if (i > 0) os << ", ";
      os << dtype_name(n.out_dtypes[static_cast<size_t>(i)])
         << n.out_shapes[static_cast<size_t>(i)].to_string();
    }
    if (!n.device.empty()) os << " @" << n.device;
    os << "\n";
  }
  return os.str();
}

}  // namespace rlgraph
