// The computation graph container produced by the build phases.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/node.h"

namespace rlgraph {

class GraphDef {
 public:
  // Adds a node; fills in id and uniquifies name. Returns the node id.
  int add_node(NodeDef node);

  const NodeDef& node(int id) const;
  NodeDef& mutable_node(int id);
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<NodeDef>& nodes() const { return nodes_; }

  DType dtype_of(const Endpoint& e) const;
  const Shape& shape_of(const Endpoint& e) const;

  // Look up a node by (unique) name; throws NotFoundError.
  int node_by_name(const std::string& name) const;
  bool has_node_name(const std::string& name) const;

  // Human-readable dump (one line per node), for debugging and the
  // visualization story of the paper's appendix.
  std::string to_string() const;

 private:
  std::vector<NodeDef> nodes_;
  std::map<std::string, int> by_name_;
};

}  // namespace rlgraph
