// Dataflow IR node definitions.
//
// A GraphDef is a flat list of NodeDefs. Nodes are multi-output: an Endpoint
// names one output of one node, and node inputs are Endpoints. Stateful
// component operations (memory insert/sample, segment-tree updates) carry a
// custom kernel closure registered by the owning component at build time —
// the C++ analogue of TF variables + control-flow heavy update ops, kept
// behind the same graph-function boundary the paper prescribes.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "tensor/tensor.h"

namespace rlgraph {

// One output of one node.
struct Endpoint {
  int node = -1;
  int index = 0;

  bool valid() const { return node >= 0; }
  bool operator==(const Endpoint& other) const {
    return node == other.node && index == other.index;
  }
  bool operator<(const Endpoint& other) const {
    return node != other.node ? node < other.node : index < other.index;
  }
};

using AttrValue = std::variant<int64_t, double, bool, std::string,
                               std::vector<int64_t>, DType, Shape, Tensor>;
using AttrMap = std::map<std::string, AttrValue>;

// Typed attr access with clear error messages.
int64_t attr_int(const AttrMap& attrs, const std::string& key);
int64_t attr_int(const AttrMap& attrs, const std::string& key, int64_t def);
double attr_double(const AttrMap& attrs, const std::string& key);
double attr_double(const AttrMap& attrs, const std::string& key, double def);
bool attr_bool(const AttrMap& attrs, const std::string& key, bool def);
const std::string& attr_string(const AttrMap& attrs, const std::string& key);
std::vector<int64_t> attr_ints(const AttrMap& attrs, const std::string& key);
DType attr_dtype(const AttrMap& attrs, const std::string& key);
Shape attr_shape(const AttrMap& attrs, const std::string& key);
const Tensor& attr_tensor(const AttrMap& attrs, const std::string& key);

// Signature of a custom (component-registered) kernel: inputs -> outputs.
using CustomKernel =
    std::function<std::vector<Tensor>(const std::vector<Tensor>&)>;

struct NodeDef {
  int id = -1;
  std::string name;  // unique within the graph, scoped ("agent/policy/MatMul")
  std::string op;
  std::vector<Endpoint> inputs;
  std::vector<int> control_inputs;  // node ids that must run first
  AttrMap attrs;
  // Inferred output signature (shapes may contain kUnknownDim).
  std::vector<DType> out_dtypes;
  std::vector<Shape> out_shapes;
  std::string device;  // e.g. "/cpu:0"; empty = unassigned
  // Non-null only for component-stateful ops ("CustomStateful").
  CustomKernel custom_kernel;
  // Stateful nodes are re-executed on every session run, never folded/CSE'd.
  bool stateful = false;

  int num_outputs() const { return static_cast<int>(out_dtypes.size()); }
};

}  // namespace rlgraph
