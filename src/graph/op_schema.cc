#include "graph/op_schema.h"

#include "util/errors.h"

namespace rlgraph {

void VariableStore::create(const std::string& name, Tensor initial) {
  RLG_REQUIRE(values_.count(name) == 0,
              "variable '" << name << "' already exists");
  values_.emplace(name, std::move(initial));
}

bool VariableStore::exists(const std::string& name) const {
  return values_.count(name) > 0;
}

const Tensor& VariableStore::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw NotFoundError("variable '" + name + "' not found");
  }
  return it->second;
}

void VariableStore::set(const std::string& name, Tensor value) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw NotFoundError("variable '" + name + "' not found");
  }
  RLG_REQUIRE(it->second.dtype() == value.dtype() &&
                  it->second.shape() == value.shape(),
              "variable '" << name << "' assignment changes signature from "
                           << it->second.shape().to_string() << " to "
                           << value.shape().to_string());
  it->second = std::move(value);
}

std::vector<std::string> VariableStore::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, _] : values_) out.push_back(name);
  return out;
}

// Defined in ops_standard.cc; registers the built-in op set.
void register_standard_ops(OpRegistry& registry);

OpRegistry& OpRegistry::instance() {
  static OpRegistry* registry = new OpRegistry();
  return *registry;
}

OpRegistry::OpRegistry() { register_standard_ops(*this); }

void OpRegistry::register_op(OpSchema schema) {
  RLG_REQUIRE(ops_.count(schema.name) == 0,
              "op '" << schema.name << "' already registered");
  ops_.emplace(schema.name, std::move(schema));
}

const OpSchema& OpRegistry::lookup(const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) throw NotFoundError("unknown op type '" + name + "'");
  return it->second;
}

bool OpRegistry::contains(const std::string& name) const {
  return ops_.count(name) > 0;
}

std::vector<std::string> OpRegistry::op_names() const {
  std::vector<std::string> out;
  out.reserve(ops_.size());
  for (const auto& [name, _] : ops_) out.push_back(name);
  return out;
}

OpSignature single(DType dtype, Shape shape) {
  return OpSignature{{dtype}, {std::move(shape)}};
}

}  // namespace rlgraph
