// Operation schema registry: per-op shape inference and kernels.
//
// Every op type used by either backend is registered here once. Gradient
// (vjp) rules live in backend/grad_rules.cc because they are expressed in
// terms of the backend-independent OpContext.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/node.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace rlgraph {

// Persistent storage for graph variables (network weights, counters).
// Variables are identified by their fully scoped name. The store is owned by
// the graph executor; both backends read/write through it so weight
// import/export and synchronization are backend-independent.
class VariableStore {
 public:
  void create(const std::string& name, Tensor initial);
  bool exists(const std::string& name) const;
  const Tensor& get(const std::string& name) const;
  void set(const std::string& name, Tensor value);
  std::vector<std::string> names() const;
  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, Tensor> values_;
};

// Everything a kernel may touch at execution time.
struct KernelContext {
  const NodeDef* node = nullptr;
  std::vector<Tensor> inputs;
  VariableStore* variables = nullptr;
  Rng* rng = nullptr;
};

// Shape inference input: dtypes/shapes of the node inputs plus attrs.
struct ShapeInferenceContext {
  const NodeDef* node = nullptr;
  std::vector<DType> input_dtypes;
  std::vector<Shape> input_shapes;
};

struct OpSignature {
  std::vector<DType> dtypes;
  std::vector<Shape> shapes;
};

using ShapeFn = std::function<OpSignature(const ShapeInferenceContext&)>;
using KernelFn = std::function<std::vector<Tensor>(KernelContext&)>;

struct OpSchema {
  std::string name;
  ShapeFn shape_fn;
  KernelFn kernel;
  // Stateful ops have side effects (variable writes, RNG, component state);
  // they run on every session invocation and are exempt from folding/CSE.
  bool stateful = false;
};

class OpRegistry {
 public:
  static OpRegistry& instance();

  void register_op(OpSchema schema);
  const OpSchema& lookup(const std::string& name) const;
  bool contains(const std::string& name) const;
  std::vector<std::string> op_names() const;

 private:
  OpRegistry();
  std::map<std::string, OpSchema> ops_;
};

// Convenience single-output signature.
OpSignature single(DType dtype, Shape shape);

}  // namespace rlgraph
