// Registration of the built-in op set shared by both backends.
//
// Each op gets a shape-inference function (works on possibly-partial shapes,
// used during the graph build) and a kernel (works on concrete tensors, used
// by the session and the define-by-run backend). Gradient rules are
// registered separately in backend/grad_rules.cc.
#include "graph/op_schema.h"
#include "tensor/kernels.h"
#include "util/errors.h"

namespace rlgraph {

namespace {

using SIC = ShapeInferenceContext;

// --- shape helpers ----------------------------------------------------------

OpSignature same_as_input(const SIC& c, size_t i = 0) {
  RLG_REQUIRE(c.input_shapes.size() > i, c.node->op << ": missing input " << i);
  return single(c.input_dtypes[i], c.input_shapes[i]);
}

OpSignature broadcast_sig(const SIC& c) {
  RLG_REQUIRE(c.input_shapes.size() == 2, c.node->op << " expects 2 inputs");
  RLG_REQUIRE(c.input_dtypes[0] == c.input_dtypes[1],
              c.node->op << ": dtype mismatch "
                         << dtype_name(c.input_dtypes[0]) << " vs "
                         << dtype_name(c.input_dtypes[1]));
  return single(c.input_dtypes[0],
                broadcast_shapes(c.input_shapes[0], c.input_shapes[1]));
}

OpSignature compare_sig(const SIC& c) {
  RLG_REQUIRE(c.input_shapes.size() == 2, c.node->op << " expects 2 inputs");
  return single(DType::kBool,
                broadcast_shapes(c.input_shapes[0], c.input_shapes[1]));
}

OpSignature float_unary_sig(const SIC& c) {
  RLG_REQUIRE(c.input_dtypes[0] == DType::kFloat32,
              c.node->op << " requires float32 input");
  return single(DType::kFloat32, c.input_shapes[0]);
}

// Kernel adapters.
KernelFn unary(Tensor (*fn)(const Tensor&)) {
  return [fn](KernelContext& k) { return std::vector<Tensor>{fn(k.inputs[0])}; };
}

KernelFn binary(Tensor (*fn)(const Tensor&, const Tensor&)) {
  return [fn](KernelContext& k) {
    return std::vector<Tensor>{fn(k.inputs[0], k.inputs[1])};
  };
}

void reg(OpRegistry& r, std::string name, ShapeFn shape_fn, KernelFn kernel,
         bool stateful = false) {
  r.register_op(OpSchema{std::move(name), std::move(shape_fn),
                         std::move(kernel), stateful});
}

// --- op registrations -------------------------------------------------------

void register_io_ops(OpRegistry& r) {
  // Placeholder: fed by the session; executing its kernel means a missing
  // feed.
  reg(
      r, "Placeholder",
      [](const SIC& c) {
        return single(attr_dtype(c.node->attrs, "dtype"),
                      attr_shape(c.node->attrs, "shape"));
      },
      [](KernelContext& k) -> std::vector<Tensor> {
        throw ValueError("placeholder '" + k.node->name +
                         "' was not fed for this execution");
      });

  reg(
      r, "Const",
      [](const SIC& c) {
        const Tensor& v = attr_tensor(c.node->attrs, "value");
        return single(v.dtype(), v.shape());
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{attr_tensor(k.node->attrs, "value")};
      });

  // Variable read.
  reg(
      r, "Variable",
      [](const SIC& c) {
        return single(attr_dtype(c.node->attrs, "dtype"),
                      attr_shape(c.node->attrs, "shape"));
      },
      [](KernelContext& k) {
        const std::string& name = attr_string(k.node->attrs, "var_name");
        return std::vector<Tensor>{k.variables->get(name)};
      },
      /*stateful=*/true);

  // Assign(value) -> value; writes the variable.
  reg(
      r, "Assign", [](const SIC& c) { return same_as_input(c); },
      [](KernelContext& k) {
        const std::string& name = attr_string(k.node->attrs, "var_name");
        k.variables->set(name, k.inputs[0].clone());
        return std::vector<Tensor>{k.inputs[0]};
      },
      /*stateful=*/true);

  // AssignAdd(delta) -> new value.
  reg(
      r, "AssignAdd", [](const SIC& c) { return same_as_input(c); },
      [](KernelContext& k) {
        const std::string& name = attr_string(k.node->attrs, "var_name");
        Tensor updated = kernels::add(k.variables->get(name), k.inputs[0]);
        k.variables->set(name, updated);
        return std::vector<Tensor>{updated};
      },
      /*stateful=*/true);

  reg(r, "Identity", [](const SIC& c) { return same_as_input(c); },
      [](KernelContext& k) { return std::vector<Tensor>{k.inputs[0]}; });

  reg(r, "StopGradient", [](const SIC& c) { return same_as_input(c); },
      [](KernelContext& k) { return std::vector<Tensor>{k.inputs[0]}; });

  // Group: synchronization point over any number of inputs; returns the
  // number of grouped inputs as an int scalar.
  reg(
      r, "Group",
      [](const SIC&) { return single(DType::kInt32, Shape{}); },
      [](KernelContext& k) {
        return std::vector<Tensor>{
            Tensor::scalar_int(static_cast<int32_t>(k.inputs.size()))};
      },
      /*stateful=*/true);

  // Custom stateful component op; kernel and output signature are attached
  // to the node directly by the build context.
  reg(
      r, "CustomStateful",
      [](const SIC& c) -> OpSignature {
        // Signature is set explicitly when the node is created.
        OpSignature sig;
        sig.dtypes = c.node->out_dtypes;
        sig.shapes = c.node->out_shapes;
        RLG_REQUIRE(!sig.dtypes.empty(),
                    "CustomStateful node missing explicit signature");
        return sig;
      },
      [](KernelContext& k) {
        RLG_REQUIRE(k.node->custom_kernel != nullptr,
                    "CustomStateful node '" << k.node->name
                                            << "' has no kernel");
        return k.node->custom_kernel(k.inputs);
      },
      /*stateful=*/true);
}

void register_math_ops(OpRegistry& r) {
  reg(r, "Add", broadcast_sig, binary(&kernels::add));
  reg(r, "Sub", broadcast_sig, binary(&kernels::sub));
  reg(r, "Mul", broadcast_sig, binary(&kernels::mul));
  reg(r, "Div", broadcast_sig, binary(&kernels::div));
  reg(r, "Minimum", broadcast_sig, binary(&kernels::minimum));
  reg(r, "Maximum", broadcast_sig, binary(&kernels::maximum));
  reg(r, "Equal", compare_sig, binary(&kernels::equal));
  reg(r, "Greater", compare_sig, binary(&kernels::greater));
  reg(r, "Less", compare_sig, binary(&kernels::less));
  reg(r, "LogicalAnd", compare_sig, binary(&kernels::logical_and));
  reg(r, "LogicalOr", compare_sig, binary(&kernels::logical_or));
  reg(r, "LogicalNot", [](const SIC& c) { return same_as_input(c); },
      unary(&kernels::logical_not));

  reg(r, "Neg", float_unary_sig, unary(&kernels::neg));
  reg(r, "Exp", float_unary_sig, unary(&kernels::exp));
  reg(r, "Log", float_unary_sig, unary(&kernels::log));
  reg(r, "Sqrt", float_unary_sig, unary(&kernels::sqrt));
  reg(r, "Square", float_unary_sig, unary(&kernels::square));
  reg(r, "Abs", float_unary_sig, unary(&kernels::abs));
  reg(r, "Relu", float_unary_sig, unary(&kernels::relu));
  reg(r, "Sigmoid", float_unary_sig, unary(&kernels::sigmoid));
  reg(r, "Tanh", float_unary_sig, unary(&kernels::tanh));
  reg(r, "Softplus", float_unary_sig, unary(&kernels::softplus));

  reg(
      r, "Clip", float_unary_sig,
      [](KernelContext& k) {
        return std::vector<Tensor>{
            kernels::clip(k.inputs[0], attr_double(k.node->attrs, "lo"),
                          attr_double(k.node->attrs, "hi"))};
      });

  reg(
      r, "Where",
      [](const SIC& c) {
        RLG_REQUIRE(c.input_shapes.size() == 3, "Where expects 3 inputs");
        return single(c.input_dtypes[1], c.input_shapes[1]);
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{
            kernels::where(k.inputs[0], k.inputs[1], k.inputs[2])};
      });

  // AddN: sum of >= 1 same-shaped tensors.
  reg(
      r, "AddN", [](const SIC& c) { return same_as_input(c); },
      [](KernelContext& k) {
        Tensor acc = k.inputs[0];
        for (size_t i = 1; i < k.inputs.size(); ++i) {
          acc = kernels::add(acc, k.inputs[i]);
        }
        return std::vector<Tensor>{acc};
      });

  // FusedElementwise: chain of parameter-free float elementwise ops applied
  // in a single pass (produced by the fusion passes). The "ops" attr is a
  // comma-separated list; each entry is either a unary op name ("Relu") or a
  // binary op with a side marker ("Add:l" = running chain value is the LEFT
  // operand, "Add:r" = right). Binary entries consume the node's extra
  // inputs (inputs[1..]) in order of appearance; extras broadcast into the
  // chain shape.
  reg(
      r, "FusedElementwise", float_unary_sig,
      [](KernelContext& k) {
        const std::string& chain = attr_string(k.node->attrs, "ops");
        std::vector<kernels::EwiseLink> links;
        int next_extra = 0;
        size_t pos = 0;
        while (pos < chain.size()) {
          size_t comma = chain.find(',', pos);
          std::string entry = chain.substr(
              pos, comma == std::string::npos ? std::string::npos : comma - pos);
          pos = comma == std::string::npos ? chain.size() : comma + 1;
          kernels::EwiseLink link;
          size_t colon = entry.find(':');
          if (colon == std::string::npos) {
            link.op = entry;
          } else {
            link.op = entry.substr(0, colon);
            std::string side = entry.substr(colon + 1);
            RLG_REQUIRE(side == "l" || side == "r",
                        "FusedElementwise: bad side marker in \"" << entry
                                                                  << "\"");
            link.binary = true;
            link.chain_left = side == "l";
            link.extra = next_extra++;
          }
          links.push_back(std::move(link));
        }
        RLG_REQUIRE(
            k.inputs.size() == static_cast<size_t>(next_extra) + 1,
            "FusedElementwise: chain needs " << next_extra + 1 << " inputs, got "
                                             << k.inputs.size());
        std::vector<Tensor> extras(k.inputs.begin() + 1, k.inputs.end());
        return std::vector<Tensor>{
            kernels::fused_elementwise(k.inputs[0], extras, links)};
      });

  // Int8 quantization ops (produced by quantize_inference_graph).
  reg(
      r, "QuantizeLinear",
      [](const SIC& c) {
        RLG_REQUIRE(c.input_dtypes[0] == DType::kFloat32,
                    "QuantizeLinear requires float32 input");
        return single(DType::kInt8, c.input_shapes[0]);
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::quantize_linear(
            k.inputs[0],
            static_cast<float>(attr_double(k.node->attrs, "scale")))};
      });

  reg(
      r, "DequantizeLinear",
      [](const SIC& c) {
        RLG_REQUIRE(c.input_dtypes[0] == DType::kInt8,
                    "DequantizeLinear requires int8 input");
        return single(DType::kFloat32, c.input_shapes[0]);
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::dequantize_linear(
            k.inputs[0],
            static_cast<float>(attr_double(k.node->attrs, "scale")))};
      });
}

void register_linalg_ops(OpRegistry& r) {
  reg(
      r, "MatMul",
      [](const SIC& c) {
        const Shape& a = c.input_shapes[0];
        const Shape& b = c.input_shapes[1];
        RLG_REQUIRE(a.rank() == 2 && b.rank() == 2,
                    "MatMul requires rank-2 inputs, got " << a.to_string()
                                                          << " x "
                                                          << b.to_string());
        if (a.dim(1) != kUnknownDim && b.dim(0) != kUnknownDim) {
          RLG_REQUIRE(a.dim(1) == b.dim(0), "MatMul inner dim mismatch: "
                                                << a.to_string() << " x "
                                                << b.to_string());
        }
        return single(DType::kFloat32, Shape{a.dim(0), b.dim(1)});
      },
      binary(&kernels::matmul));

  // FusedDense: act(x @ w + bias), one dispatch. Produced by the plan-level
  // pattern-fusion pass; has no gradient rule by design (fusion only runs on
  // inference plans).
  reg(
      r, "FusedDense",
      [](const SIC& c) {
        RLG_REQUIRE(c.input_shapes.size() == 3, "FusedDense expects 3 inputs");
        const Shape& a = c.input_shapes[0];
        const Shape& b = c.input_shapes[1];
        const Shape& bias = c.input_shapes[2];
        RLG_REQUIRE(a.rank() == 2 && b.rank() == 2,
                    "FusedDense requires rank-2 x/w, got "
                        << a.to_string() << " x " << b.to_string());
        if (a.dim(1) != kUnknownDim && b.dim(0) != kUnknownDim) {
          RLG_REQUIRE(a.dim(1) == b.dim(0), "FusedDense inner dim mismatch: "
                                                << a.to_string() << " x "
                                                << b.to_string());
        }
        RLG_REQUIRE(bias.rank() == 1, "FusedDense bias must be rank 1");
        if (bias.dim(0) != kUnknownDim && b.dim(1) != kUnknownDim) {
          RLG_REQUIRE(bias.dim(0) == b.dim(1),
                      "FusedDense bias dim mismatch: " << bias.to_string());
        }
        return single(DType::kFloat32, Shape{a.dim(0), b.dim(1)});
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::fused_dense(
            k.inputs[0], k.inputs[1], k.inputs[2],
            kernels::fused_activation_from_string(
                attr_string(k.node->attrs, "activation")))};
      });

  // MatMulInt8: int8 x int8 -> float32 with int32 accumulation and a single
  // output rescale (= input scale * weight scale).
  reg(
      r, "MatMulInt8",
      [](const SIC& c) {
        RLG_REQUIRE(c.input_shapes.size() == 2, "MatMulInt8 expects 2 inputs");
        RLG_REQUIRE(c.input_dtypes[0] == DType::kInt8 &&
                        c.input_dtypes[1] == DType::kInt8,
                    "MatMulInt8 requires int8 inputs");
        const Shape& a = c.input_shapes[0];
        const Shape& b = c.input_shapes[1];
        RLG_REQUIRE(a.rank() == 2 && b.rank() == 2,
                    "MatMulInt8 requires rank-2 inputs, got "
                        << a.to_string() << " x " << b.to_string());
        if (a.dim(1) != kUnknownDim && b.dim(0) != kUnknownDim) {
          RLG_REQUIRE(a.dim(1) == b.dim(0), "MatMulInt8 inner dim mismatch: "
                                                << a.to_string() << " x "
                                                << b.to_string());
        }
        return single(DType::kFloat32, Shape{a.dim(0), b.dim(1)});
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::matmul_int8(
            k.inputs[0], k.inputs[1],
            static_cast<float>(attr_double(k.node->attrs, "rescale")))};
      });

  reg(
      r, "Transpose2D",
      [](const SIC& c) {
        const Shape& a = c.input_shapes[0];
        RLG_REQUIRE(a.rank() == 2, "Transpose2D requires rank 2");
        return single(DType::kFloat32, Shape{a.dim(1), a.dim(0)});
      },
      unary(&kernels::transpose2d));

  reg(
      r, "Conv2D",
      [](const SIC& c) {
        const Shape& in = c.input_shapes[0];
        const Shape& f = c.input_shapes[1];
        RLG_REQUIRE(in.rank() == 4 && f.rank() == 4,
                    "Conv2D expects NHWC x [kh,kw,cin,cout]");
        int64_t stride = attr_int(c.node->attrs, "stride");
        bool same = attr_bool(c.node->attrs, "same_padding", false);
        int64_t h = in.dim(1), w = in.dim(2);
        RLG_REQUIRE(h != kUnknownDim && w != kUnknownDim,
                    "Conv2D spatial dims must be known at build time");
        int64_t oh, ow;
        if (same) {
          oh = (h + stride - 1) / stride;
          ow = (w + stride - 1) / stride;
        } else {
          oh = (h - f.dim(0)) / stride + 1;
          ow = (w - f.dim(1)) / stride + 1;
        }
        return single(DType::kFloat32, Shape{in.dim(0), oh, ow, f.dim(3)});
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::conv2d(
            k.inputs[0], k.inputs[1],
            static_cast<int>(attr_int(k.node->attrs, "stride")),
            attr_bool(k.node->attrs, "same_padding", false))};
      });

  // FusedConv2D: act(conv2d(x, f) + bias[Cout]), one dispatch. Inference-only
  // (no gradient rule), like FusedDense.
  reg(
      r, "FusedConv2D",
      [](const SIC& c) {
        RLG_REQUIRE(c.input_shapes.size() == 3, "FusedConv2D expects 3 inputs");
        const Shape& in = c.input_shapes[0];
        const Shape& f = c.input_shapes[1];
        const Shape& bias = c.input_shapes[2];
        RLG_REQUIRE(in.rank() == 4 && f.rank() == 4,
                    "FusedConv2D expects NHWC x [kh,kw,cin,cout]");
        RLG_REQUIRE(bias.rank() == 1, "FusedConv2D bias must be rank 1");
        if (bias.dim(0) != kUnknownDim && f.dim(3) != kUnknownDim) {
          RLG_REQUIRE(bias.dim(0) == f.dim(3),
                      "FusedConv2D bias dim mismatch: " << bias.to_string());
        }
        int64_t stride = attr_int(c.node->attrs, "stride");
        bool same = attr_bool(c.node->attrs, "same_padding", false);
        int64_t h = in.dim(1), w = in.dim(2);
        RLG_REQUIRE(h != kUnknownDim && w != kUnknownDim,
                    "FusedConv2D spatial dims must be known at build time");
        int64_t oh, ow;
        if (same) {
          oh = (h + stride - 1) / stride;
          ow = (w + stride - 1) / stride;
        } else {
          oh = (h - f.dim(0)) / stride + 1;
          ow = (w - f.dim(1)) / stride + 1;
        }
        return single(DType::kFloat32, Shape{in.dim(0), oh, ow, f.dim(3)});
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::fused_conv2d(
            k.inputs[0], k.inputs[1], k.inputs[2],
            static_cast<int>(attr_int(k.node->attrs, "stride")),
            attr_bool(k.node->attrs, "same_padding", false),
            kernels::fused_activation_from_string(
                attr_string(k.node->attrs, "activation")))};
      });

  // Gradient kernels exposed as ops so the autodiff graph stays uniform.
  reg(
      r, "Conv2DBackpropInput",
      [](const SIC& c) {
        return single(DType::kFloat32, attr_shape(c.node->attrs, "input_shape"));
      },
      [](KernelContext& k) {
        Shape in_shape = attr_shape(k.node->attrs, "input_shape");
        // The symbolic input shape may have an unknown batch; take it from
        // the gradient tensor at runtime.
        if (in_shape.rank() > 0 && in_shape.dim(0) == kUnknownDim) {
          in_shape = in_shape.with_dim(0, k.inputs[1].shape().dim(0));
        }
        return std::vector<Tensor>{kernels::conv2d_backprop_input(
            in_shape, k.inputs[0], k.inputs[1],
            static_cast<int>(attr_int(k.node->attrs, "stride")),
            attr_bool(k.node->attrs, "same_padding", false))};
      });

  reg(
      r, "Conv2DBackpropFilter",
      [](const SIC& c) {
        return single(DType::kFloat32,
                      attr_shape(c.node->attrs, "filter_shape"));
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::conv2d_backprop_filter(
            k.inputs[0], attr_shape(k.node->attrs, "filter_shape"),
            k.inputs[1], static_cast<int>(attr_int(k.node->attrs, "stride")),
            attr_bool(k.node->attrs, "same_padding", false))};
      });
}

Shape reduce_shape(const Shape& in, int64_t axis, bool keep_dims) {
  if (axis == -1) {
    if (!keep_dims) return Shape{};
    std::vector<int64_t> dims(static_cast<size_t>(in.rank()), 1);
    return Shape(dims);
  }
  std::vector<int64_t> dims;
  for (int i = 0; i < in.rank(); ++i) {
    if (i == axis) {
      if (keep_dims) dims.push_back(1);
    } else {
      dims.push_back(in.dim(i));
    }
  }
  return Shape(dims);
}

void register_reduce_ops(OpRegistry& r) {
  auto make = [&r](const std::string& name,
                   Tensor (*fn)(const Tensor&, int, bool)) {
    reg(
        r, name,
        [](const SIC& c) {
          return single(DType::kFloat32,
                        reduce_shape(c.input_shapes[0],
                                     attr_int(c.node->attrs, "axis", -1),
                                     attr_bool(c.node->attrs, "keep_dims",
                                               false)));
        },
        [fn](KernelContext& k) {
          return std::vector<Tensor>{
              fn(k.inputs[0],
                 static_cast<int>(attr_int(k.node->attrs, "axis", -1)),
                 attr_bool(k.node->attrs, "keep_dims", false))};
        });
  };
  make("ReduceSum", &kernels::reduce_sum);
  make("ReduceMean", &kernels::reduce_mean);
  make("ReduceMax", &kernels::reduce_max);

  // SumToShape: gradient helper reducing a broadcast result to a target
  // (possibly partial; unknown dims resolved at runtime from the input).
  reg(
      r, "SumToShape",
      [](const SIC& c) {
        return single(DType::kFloat32, attr_shape(c.node->attrs, "target"));
      },
      [](KernelContext& k) {
        Shape target = attr_shape(k.node->attrs, "target");
        // Resolve unknown dims from the runtime input shape (aligned right).
        const Shape& in = k.inputs[0].shape();
        std::vector<int64_t> dims = target.dims();
        int off = in.rank() - target.rank();
        for (size_t i = 0; i < dims.size(); ++i) {
          if (dims[i] == kUnknownDim) {
            dims[i] = in.dim(static_cast<int>(i) + off);
          }
        }
        return std::vector<Tensor>{
            kernels::sum_to_shape(k.inputs[0], Shape(dims))};
      });

  reg(r, "Softmax", float_unary_sig, unary(&kernels::softmax));
  reg(r, "LogSoftmax", float_unary_sig, unary(&kernels::log_softmax));
}

void register_index_ops(OpRegistry& r) {
  reg(
      r, "ArgMax",
      [](const SIC& c) {
        const Shape& in = c.input_shapes[0];
        RLG_REQUIRE(in.rank() >= 1, "ArgMax requires rank >= 1");
        std::vector<int64_t> dims(in.dims().begin(), in.dims().end() - 1);
        return single(DType::kInt32, Shape(dims));
      },
      unary(&kernels::argmax));

  reg(
      r, "OneHot",
      [](const SIC& c) {
        int64_t depth = attr_int(c.node->attrs, "depth");
        return single(DType::kFloat32,
                      c.input_shapes[0].concat(Shape{depth}));
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{
            kernels::one_hot(k.inputs[0], attr_int(k.node->attrs, "depth"))};
      });

  reg(
      r, "GatherRows",
      [](const SIC& c) {
        return single(c.input_dtypes[0],
                      Shape{c.input_shapes[1].dim(0)}.concat(
                          c.input_shapes[0].drop_front(1)));
      },
      binary(&kernels::gather_rows));

  reg(
      r, "SelectColumns",
      [](const SIC& c) {
        return single(DType::kFloat32, Shape{c.input_shapes[0].dim(0)});
      },
      binary(&kernels::select_columns));
}

void register_shape_ops(OpRegistry& r) {
  // Reshape: target shape attr; at most one -1 dim inferred at runtime.
  reg(
      r, "Reshape",
      [](const SIC& c) {
        Shape target = attr_shape(c.node->attrs, "shape");
        // If the input element count and all-but-one target dims are known,
        // we could resolve -1 here; leave it unknown for the build, the
        // kernel resolves at runtime.
        return single(c.input_dtypes[0], target);
      },
      [](KernelContext& k) {
        Shape target = attr_shape(k.node->attrs, "shape");
        std::vector<int64_t> dims = target.dims();
        int64_t known = 1;
        int unknown_at = -1;
        for (size_t i = 0; i < dims.size(); ++i) {
          if (dims[i] == kUnknownDim) {
            RLG_REQUIRE(unknown_at < 0, "Reshape: more than one -1 dim");
            unknown_at = static_cast<int>(i);
          } else {
            known *= dims[i];
          }
        }
        if (unknown_at >= 0) {
          RLG_REQUIRE(known > 0 && k.inputs[0].num_elements() % known == 0,
                      "Reshape: cannot infer -1 dim");
          dims[static_cast<size_t>(unknown_at)] =
              k.inputs[0].num_elements() / known;
        }
        return std::vector<Tensor>{k.inputs[0].reshaped(Shape(dims))};
      });

  reg(
      r, "ExpandDims",
      [](const SIC& c) {
        int64_t axis = attr_int(c.node->attrs, "axis");
        const Shape& in = c.input_shapes[0];
        RLG_REQUIRE(axis >= 0 && axis <= in.rank(), "ExpandDims axis range");
        std::vector<int64_t> dims = in.dims();
        dims.insert(dims.begin() + axis, 1);
        return single(c.input_dtypes[0], Shape(dims));
      },
      [](KernelContext& k) {
        int64_t axis = attr_int(k.node->attrs, "axis");
        std::vector<int64_t> dims = k.inputs[0].shape().dims();
        dims.insert(dims.begin() + axis, 1);
        return std::vector<Tensor>{k.inputs[0].reshaped(Shape(dims))};
      });

  reg(
      r, "Squeeze",
      [](const SIC& c) {
        int64_t axis = attr_int(c.node->attrs, "axis");
        const Shape& in = c.input_shapes[0];
        RLG_REQUIRE(axis >= 0 && axis < in.rank() &&
                        (in.dim(static_cast<int>(axis)) == 1 ||
                         in.dim(static_cast<int>(axis)) == kUnknownDim),
                    "Squeeze axis must be size 1");
        std::vector<int64_t> dims = in.dims();
        dims.erase(dims.begin() + axis);
        return single(c.input_dtypes[0], Shape(dims));
      },
      [](KernelContext& k) {
        int64_t axis = attr_int(k.node->attrs, "axis");
        std::vector<int64_t> dims = k.inputs[0].shape().dims();
        RLG_REQUIRE(dims[static_cast<size_t>(axis)] == 1,
                    "Squeeze axis not of size 1 at runtime");
        dims.erase(dims.begin() + axis);
        return std::vector<Tensor>{k.inputs[0].reshaped(Shape(dims))};
      });

  reg(
      r, "Concat",
      [](const SIC& c) {
        int axis = static_cast<int>(attr_int(c.node->attrs, "axis"));
        Shape out = c.input_shapes[0];
        int64_t total = 0;
        for (const Shape& s : c.input_shapes) {
          if (s.dim(axis) == kUnknownDim || total == kUnknownDim) {
            total = kUnknownDim;
          } else {
            total += s.dim(axis);
          }
        }
        return single(c.input_dtypes[0], out.with_dim(axis, total));
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::concat(
            k.inputs, static_cast<int>(attr_int(k.node->attrs, "axis")))};
      });

  reg(
      r, "Split",
      [](const SIC& c) {
        int axis = static_cast<int>(attr_int(c.node->attrs, "axis"));
        std::vector<int64_t> sizes = attr_ints(c.node->attrs, "sizes");
        OpSignature sig;
        for (int64_t s : sizes) {
          sig.dtypes.push_back(c.input_dtypes[0]);
          sig.shapes.push_back(c.input_shapes[0].with_dim(axis, s));
        }
        return sig;
      },
      [](KernelContext& k) {
        return kernels::split(
            k.inputs[0], static_cast<int>(attr_int(k.node->attrs, "axis")),
            attr_ints(k.node->attrs, "sizes"));
      });

  reg(
      r, "SliceRows",
      [](const SIC& c) {
        int64_t size = attr_int(c.node->attrs, "size");
        return single(c.input_dtypes[0],
                      Shape{size}.concat(c.input_shapes[0].drop_front(1)));
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::slice_rows(
            k.inputs[0], attr_int(k.node->attrs, "begin"),
            attr_int(k.node->attrs, "size"))};
      });

  // Size(x): number of elements as a float scalar (used by mean gradients
  // when the batch extent is only known at runtime).
  reg(
      r, "Size",
      [](const SIC&) { return single(DType::kFloat32, Shape{}); },
      [](KernelContext& k) {
        return std::vector<Tensor>{
            Tensor::scalar(static_cast<float>(k.inputs[0].num_elements()))};
      });

  // ReshapeLike(x, ref): reshape x to ref's runtime shape.
  reg(
      r, "ReshapeLike",
      [](const SIC& c) { return single(c.input_dtypes[0], c.input_shapes[1]); },
      [](KernelContext& k) {
        return std::vector<Tensor>{
            k.inputs[0].reshaped(k.inputs[1].shape())};
      });

  reg(
      r, "Cast",
      [](const SIC& c) {
        return single(attr_dtype(c.node->attrs, "dtype"), c.input_shapes[0]);
      },
      [](KernelContext& k) {
        return std::vector<Tensor>{
            k.inputs[0].cast(attr_dtype(k.node->attrs, "dtype"))};
      });
}

void register_random_ops(OpRegistry& r) {
  // RandomUniformLike(x): uniform floats with x's runtime shape.
  reg(
      r, "RandomUniformLike",
      [](const SIC& c) { return single(DType::kFloat32, c.input_shapes[0]); },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::random_uniform(
            k.inputs[0].shape(), attr_double(k.node->attrs, "lo", 0.0),
            attr_double(k.node->attrs, "hi", 1.0), *k.rng)};
      },
      /*stateful=*/true);

  // RandomNormalLike(x): Gaussian floats with x's runtime shape. Stateful —
  // pinned to the serial RNG chain by the scheduler, so sampled traces are
  // bitwise identical at any thread count.
  reg(
      r, "RandomNormalLike",
      [](const SIC& c) { return single(DType::kFloat32, c.input_shapes[0]); },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::random_normal(
            k.inputs[0].shape(), attr_double(k.node->attrs, "mean", 0.0),
            attr_double(k.node->attrs, "stddev", 1.0), *k.rng)};
      },
      /*stateful=*/true);

  // RandomIntLike(x, n): int32 uniform in [0, n) with x's runtime shape.
  reg(
      r, "RandomIntLike",
      [](const SIC& c) { return single(DType::kInt32, c.input_shapes[0]); },
      [](KernelContext& k) {
        return std::vector<Tensor>{kernels::random_int(
            k.inputs[0].shape(), attr_int(k.node->attrs, "n"), *k.rng)};
      },
      /*stateful=*/true);
}

}  // namespace

void register_standard_ops(OpRegistry& r) {
  register_io_ops(r);
  register_math_ops(r);
  register_linalg_ops(r);
  register_reduce_ops(r);
  register_index_ops(r);
  register_shape_ops(r);
  register_random_ops(r);
}

}  // namespace rlgraph
