#include "graph/passes.h"

#include <algorithm>
#include <set>

#include "graph/op_schema.h"
#include "util/errors.h"
#include "util/logging.h"

namespace rlgraph {

namespace {

bool is_fusable_unary(const std::string& op) {
  static const std::set<std::string> kFusable = {
      "Neg", "Exp", "Log", "Sqrt", "Square", "Abs", "Relu", "Sigmoid", "Tanh"};
  return kFusable.count(op) > 0;
}

}  // namespace

namespace {
OptimizeResult optimize_once(const GraphDef& graph,
                             const std::vector<Endpoint>& roots,
                             const OptimizeOptions& options);
}  // namespace

OptimizeResult optimize_graph(const GraphDef& graph,
                              const std::vector<Endpoint>& roots,
                              const OptimizeOptions& options) {
  // First pass folds/fuses; a second DCE-only pass drops constants orphaned
  // by the rewrites.
  OptimizeResult first = optimize_once(graph, roots, options);
  std::vector<Endpoint> remapped_roots;
  remapped_roots.reserve(roots.size());
  for (const Endpoint& r : roots) {
    remapped_roots.push_back(first.endpoint_map.at(r));
  }
  OptimizeOptions dce_only;
  dce_only.constant_folding = false;
  dce_only.elementwise_fusion = false;
  OptimizeResult second =
      optimize_once(*first.graph, remapped_roots, dce_only);
  OptimizeResult result;
  result.graph = second.graph;
  result.nodes_before = graph.num_nodes();
  result.nodes_after = second.nodes_after;
  result.folded = first.folded;
  result.fused_chains = first.fused_chains;
  for (const auto& [old_ep, mid_ep] : first.endpoint_map) {
    auto it = second.endpoint_map.find(mid_ep);
    if (it != second.endpoint_map.end()) {
      result.endpoint_map[old_ep] = it->second;
    }
  }
  return result;
}

namespace {
OptimizeResult optimize_once(const GraphDef& graph,
                             const std::vector<Endpoint>& roots,
                             const OptimizeOptions& options) {
  OptimizeResult result;
  result.nodes_before = graph.num_nodes();

  // --- liveness: nodes reachable from roots through data + control deps ---
  std::vector<uint8_t> live(static_cast<size_t>(graph.num_nodes()), 0);
  std::vector<int> worklist;
  std::set<int> root_nodes;
  for (const Endpoint& r : roots) {
    root_nodes.insert(r.node);
    if (!live[static_cast<size_t>(r.node)]) {
      live[static_cast<size_t>(r.node)] = 1;
      worklist.push_back(r.node);
    }
  }
  while (!worklist.empty()) {
    int id = worklist.back();
    worklist.pop_back();
    const NodeDef& n = graph.node(id);
    auto visit = [&](int dep) {
      if (!live[static_cast<size_t>(dep)]) {
        live[static_cast<size_t>(dep)] = 1;
        worklist.push_back(dep);
      }
    };
    for (const Endpoint& e : n.inputs) visit(e.node);
    for (int c : n.control_inputs) visit(c);
  }

  // --- per-node data consumer count among live nodes --------------------
  std::vector<int> consumers(static_cast<size_t>(graph.num_nodes()), 0);
  for (const NodeDef& n : graph.nodes()) {
    if (!live[static_cast<size_t>(n.id)]) continue;
    for (const Endpoint& e : n.inputs) {
      ++consumers[static_cast<size_t>(e.node)];
    }
  }

  // --- decide fusion chains ---------------------------------------------
  // fused_into[x] = id of the chain-terminating node that absorbs x.
  std::vector<int> fused_into(static_cast<size_t>(graph.num_nodes()), -1);
  // chain_start[t] = first op node of the chain terminating at t.
  std::map<int, std::vector<int>> chain_nodes;  // terminator -> interior+self
  if (options.elementwise_fusion) {
    for (int id = 0; id < graph.num_nodes(); ++id) {
      if (!live[static_cast<size_t>(id)]) continue;
      const NodeDef& n = graph.node(id);
      if (!is_fusable_unary(n.op) || !n.control_inputs.empty()) continue;
      // Is this node a chain terminator? Yes unless its single consumer is a
      // fusable unary that will absorb it.
      // Walk upward collecting absorbable predecessors.
      std::vector<int> chain{id};
      int cur = id;
      while (true) {
        const NodeDef& c = graph.node(cur);
        int prev = c.inputs[0].node;
        const NodeDef& p = graph.node(prev);
        if (!is_fusable_unary(p.op) || !p.control_inputs.empty()) break;
        if (consumers[static_cast<size_t>(prev)] != 1) break;
        if (root_nodes.count(prev) > 0) break;
        chain.push_back(prev);
        cur = prev;
      }
      if (chain.size() < 2) continue;
      // Only record if `id` itself is not going to be absorbed upward; check
      // the same conditions from the consumer side later. Simplest: record
      // tentatively; a node that is itself absorbable into its consumer will
      // be overwritten below.
      chain_nodes[id] = chain;
    }
    // Remove chains whose terminator is interior to a longer chain.
    std::set<int> interior;
    for (const auto& [term, chain] : chain_nodes) {
      for (size_t i = 1; i < chain.size(); ++i) interior.insert(chain[i]);
    }
    for (auto it = chain_nodes.begin(); it != chain_nodes.end();) {
      if (interior.count(it->first) > 0) {
        it = chain_nodes.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [term, chain] : chain_nodes) {
      for (size_t i = 1; i < chain.size(); ++i) {
        fused_into[static_cast<size_t>(chain[i])] = term;
      }
    }
  }

  // --- rebuild -------------------------------------------------------------
  auto new_graph = std::make_shared<GraphDef>();
  const OpRegistry& registry = OpRegistry::instance();
  std::map<int, int> node_map;  // old id -> new id
  auto map_endpoint = [&](const Endpoint& e) {
    auto it = node_map.find(e.node);
    RLG_CHECK_MSG(it != node_map.end(),
                  "pass ordering bug: input not yet emitted");
    return Endpoint{it->second, e.index};
  };

  for (int id = 0; id < graph.num_nodes(); ++id) {
    if (!live[static_cast<size_t>(id)]) continue;
    if (fused_into[static_cast<size_t>(id)] >= 0) continue;  // emitted later
    const NodeDef& n = graph.node(id);

    auto chain_it = chain_nodes.find(id);
    if (chain_it != chain_nodes.end()) {
      // Emit a FusedElementwise node for the whole chain. The chain vector
      // is ordered terminator-first; execution order is the reverse.
      const std::vector<int>& chain = chain_it->second;
      std::string ops;
      for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
        if (!ops.empty()) ops += ",";
        ops += graph.node(*rit).op;
      }
      const NodeDef& first = graph.node(chain.back());
      NodeDef fused;
      fused.name = n.name + "_fused";
      fused.op = "FusedElementwise";
      fused.inputs = {map_endpoint(first.inputs[0])};
      fused.attrs["ops"] = ops;
      fused.out_dtypes = n.out_dtypes;
      fused.out_shapes = n.out_shapes;
      fused.device = n.device;
      int new_id = new_graph->add_node(std::move(fused));
      for (int member : chain) node_map[member] = new_id;
      ++result.fused_chains;
      continue;
    }

    // Constant folding: stateless op, all data inputs are Consts in the new
    // graph, no control inputs.
    const OpSchema& schema = registry.lookup(n.op);
    bool foldable = options.constant_folding && !schema.stateful &&
                    n.op != "Const" && n.op != "Placeholder" &&
                    n.control_inputs.empty() && !n.inputs.empty();
    if (foldable) {
      for (const Endpoint& e : n.inputs) {
        const NodeDef& src = new_graph->node(map_endpoint(e).node);
        if (src.op != "Const") {
          foldable = false;
          break;
        }
      }
    }
    if (foldable) {
      KernelContext ctx;
      ctx.node = &n;
      ctx.inputs.reserve(n.inputs.size());
      for (const Endpoint& e : n.inputs) {
        const NodeDef& src = new_graph->node(map_endpoint(e).node);
        ctx.inputs.push_back(attr_tensor(src.attrs, "value"));
      }
      std::vector<Tensor> values = schema.kernel(ctx);
      // Multi-output folding would need one Const per output; fold only
      // single-output nodes to keep the endpoint map simple.
      if (values.size() == 1) {
        NodeDef cn;
        cn.name = n.name + "_folded";
        cn.op = "Const";
        cn.attrs["value"] = values[0];
        cn.out_dtypes = {values[0].dtype()};
        cn.out_shapes = {values[0].shape()};
        cn.device = n.device;
        node_map[id] = new_graph->add_node(std::move(cn));
        ++result.folded;
        continue;
      }
    }

    // Plain copy with remapped deps.
    NodeDef copy = n;
    copy.id = -1;
    for (Endpoint& e : copy.inputs) e = map_endpoint(e);
    for (int& c : copy.control_inputs) c = node_map.at(c);
    node_map[id] = new_graph->add_node(std::move(copy));
  }

  for (const auto& [old_id, new_id] : node_map) {
    const NodeDef& nn = new_graph->node(new_id);
    for (int i = 0; i < nn.num_outputs(); ++i) {
      result.endpoint_map[Endpoint{old_id, i}] = Endpoint{new_id, i};
    }
    // Fused interior nodes map to output 0 of the fused node; they have no
    // external consumers by construction.
    if (nn.num_outputs() == 0) {
      result.endpoint_map[Endpoint{old_id, 0}] = Endpoint{new_id, 0};
    }
  }

  result.graph = std::move(new_graph);
  result.nodes_after = result.graph->num_nodes();
  RLG_LOG_DEBUG << "optimize_once: " << result.nodes_before << " -> "
                << result.nodes_after << " nodes (" << result.folded
                << " folded, " << result.fused_chains << " chains fused)";
  return result;
}
}  // namespace

}  // namespace rlgraph
