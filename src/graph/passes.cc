#include "graph/passes.h"

#include <algorithm>
#include <set>

#include "graph/op_schema.h"
#include "util/errors.h"
#include "util/logging.h"

namespace rlgraph {

namespace {

bool is_fusable_unary(const std::string& op) {
  static const std::set<std::string> kFusable = {
      "Neg", "Exp", "Log", "Sqrt", "Square", "Abs", "Relu", "Sigmoid", "Tanh"};
  return kFusable.count(op) > 0;
}

bool is_fusable_binary(const std::string& op) {
  static const std::set<std::string> kFusable = {"Add",     "Sub", "Mul",
                                                 "Div",     "Minimum",
                                                 "Maximum"};
  return kFusable.count(op) > 0;
}

// Activation ops a dense/conv pattern can absorb, as the fused kernel's
// activation attr.
const char* pattern_activation(const std::string& op) {
  if (op == "Relu") return "relu";
  if (op == "Tanh") return "tanh";
  if (op == "Sigmoid") return "sigmoid";
  return nullptr;
}

}  // namespace

namespace {
OptimizeResult optimize_once(const GraphDef& graph,
                             const std::vector<Endpoint>& roots,
                             const OptimizeOptions& options);
}  // namespace

OptimizeResult optimize_graph(const GraphDef& graph,
                              const std::vector<Endpoint>& roots,
                              const OptimizeOptions& options) {
  // First pass folds/fuses; a second DCE-only pass drops constants orphaned
  // by the rewrites.
  OptimizeResult first = optimize_once(graph, roots, options);
  std::vector<Endpoint> remapped_roots;
  remapped_roots.reserve(roots.size());
  for (const Endpoint& r : roots) {
    remapped_roots.push_back(first.endpoint_map.at(r));
  }
  OptimizeOptions dce_only;
  dce_only.constant_folding = false;
  dce_only.elementwise_fusion = false;
  OptimizeResult second =
      optimize_once(*first.graph, remapped_roots, dce_only);
  OptimizeResult result;
  result.graph = second.graph;
  result.nodes_before = graph.num_nodes();
  result.nodes_after = second.nodes_after;
  result.folded = first.folded;
  result.fused_chains = first.fused_chains;
  for (const auto& [old_ep, mid_ep] : first.endpoint_map) {
    auto it = second.endpoint_map.find(mid_ep);
    if (it != second.endpoint_map.end()) {
      result.endpoint_map[old_ep] = it->second;
    }
  }
  return result;
}

namespace {
OptimizeResult optimize_once(const GraphDef& graph,
                             const std::vector<Endpoint>& roots,
                             const OptimizeOptions& options) {
  OptimizeResult result;
  result.nodes_before = graph.num_nodes();

  // --- liveness: nodes reachable from roots through data + control deps ---
  std::vector<uint8_t> live(static_cast<size_t>(graph.num_nodes()), 0);
  std::vector<int> worklist;
  std::set<int> root_nodes;
  for (const Endpoint& r : roots) {
    root_nodes.insert(r.node);
    if (!live[static_cast<size_t>(r.node)]) {
      live[static_cast<size_t>(r.node)] = 1;
      worklist.push_back(r.node);
    }
  }
  while (!worklist.empty()) {
    int id = worklist.back();
    worklist.pop_back();
    const NodeDef& n = graph.node(id);
    auto visit = [&](int dep) {
      if (!live[static_cast<size_t>(dep)]) {
        live[static_cast<size_t>(dep)] = 1;
        worklist.push_back(dep);
      }
    };
    for (const Endpoint& e : n.inputs) visit(e.node);
    for (int c : n.control_inputs) visit(c);
  }

  // --- per-node data consumer count among live nodes --------------------
  std::vector<int> consumers(static_cast<size_t>(graph.num_nodes()), 0);
  for (const NodeDef& n : graph.nodes()) {
    if (!live[static_cast<size_t>(n.id)]) continue;
    for (const Endpoint& e : n.inputs) {
      ++consumers[static_cast<size_t>(e.node)];
    }
  }

  // --- decide fusion chains ---------------------------------------------
  // fused_into[x] = id of the chain-terminating node that absorbs x.
  std::vector<int> fused_into(static_cast<size_t>(graph.num_nodes()), -1);
  // chain_start[t] = first op node of the chain terminating at t.
  std::map<int, std::vector<int>> chain_nodes;  // terminator -> interior+self
  if (options.elementwise_fusion) {
    for (int id = 0; id < graph.num_nodes(); ++id) {
      if (!live[static_cast<size_t>(id)]) continue;
      const NodeDef& n = graph.node(id);
      if (!is_fusable_unary(n.op) || !n.control_inputs.empty()) continue;
      // Is this node a chain terminator? Yes unless its single consumer is a
      // fusable unary that will absorb it.
      // Walk upward collecting absorbable predecessors.
      std::vector<int> chain{id};
      int cur = id;
      while (true) {
        const NodeDef& c = graph.node(cur);
        int prev = c.inputs[0].node;
        const NodeDef& p = graph.node(prev);
        if (!is_fusable_unary(p.op) || !p.control_inputs.empty()) break;
        if (consumers[static_cast<size_t>(prev)] != 1) break;
        if (root_nodes.count(prev) > 0) break;
        chain.push_back(prev);
        cur = prev;
      }
      if (chain.size() < 2) continue;
      // Only record if `id` itself is not going to be absorbed upward; check
      // the same conditions from the consumer side later. Simplest: record
      // tentatively; a node that is itself absorbable into its consumer will
      // be overwritten below.
      chain_nodes[id] = chain;
    }
    // Remove chains whose terminator is interior to a longer chain.
    std::set<int> interior;
    for (const auto& [term, chain] : chain_nodes) {
      for (size_t i = 1; i < chain.size(); ++i) interior.insert(chain[i]);
    }
    for (auto it = chain_nodes.begin(); it != chain_nodes.end();) {
      if (interior.count(it->first) > 0) {
        it = chain_nodes.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [term, chain] : chain_nodes) {
      for (size_t i = 1; i < chain.size(); ++i) {
        fused_into[static_cast<size_t>(chain[i])] = term;
      }
    }
  }

  // --- rebuild -------------------------------------------------------------
  auto new_graph = std::make_shared<GraphDef>();
  const OpRegistry& registry = OpRegistry::instance();
  std::map<int, int> node_map;  // old id -> new id
  auto map_endpoint = [&](const Endpoint& e) {
    auto it = node_map.find(e.node);
    RLG_CHECK_MSG(it != node_map.end(),
                  "pass ordering bug: input not yet emitted");
    return Endpoint{it->second, e.index};
  };

  for (int id = 0; id < graph.num_nodes(); ++id) {
    if (!live[static_cast<size_t>(id)]) continue;
    if (fused_into[static_cast<size_t>(id)] >= 0) continue;  // emitted later
    const NodeDef& n = graph.node(id);

    auto chain_it = chain_nodes.find(id);
    if (chain_it != chain_nodes.end()) {
      // Emit a FusedElementwise node for the whole chain. The chain vector
      // is ordered terminator-first; execution order is the reverse.
      const std::vector<int>& chain = chain_it->second;
      std::string ops;
      for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
        if (!ops.empty()) ops += ",";
        ops += graph.node(*rit).op;
      }
      const NodeDef& first = graph.node(chain.back());
      NodeDef fused;
      fused.name = n.name + "_fused";
      fused.op = "FusedElementwise";
      fused.inputs = {map_endpoint(first.inputs[0])};
      fused.attrs["ops"] = ops;
      fused.out_dtypes = n.out_dtypes;
      fused.out_shapes = n.out_shapes;
      fused.device = n.device;
      int new_id = new_graph->add_node(std::move(fused));
      for (int member : chain) node_map[member] = new_id;
      ++result.fused_chains;
      continue;
    }

    // Constant folding: stateless op, all data inputs are Consts in the new
    // graph, no control inputs.
    const OpSchema& schema = registry.lookup(n.op);
    bool foldable = options.constant_folding && !schema.stateful &&
                    n.op != "Const" && n.op != "Placeholder" &&
                    n.control_inputs.empty() && !n.inputs.empty();
    if (foldable) {
      for (const Endpoint& e : n.inputs) {
        const NodeDef& src = new_graph->node(map_endpoint(e).node);
        if (src.op != "Const") {
          foldable = false;
          break;
        }
      }
    }
    if (foldable) {
      KernelContext ctx;
      ctx.node = &n;
      ctx.inputs.reserve(n.inputs.size());
      for (const Endpoint& e : n.inputs) {
        const NodeDef& src = new_graph->node(map_endpoint(e).node);
        ctx.inputs.push_back(attr_tensor(src.attrs, "value"));
      }
      std::vector<Tensor> values = schema.kernel(ctx);
      // Multi-output folding would need one Const per output; fold only
      // single-output nodes to keep the endpoint map simple.
      if (values.size() == 1) {
        NodeDef cn;
        cn.name = n.name + "_folded";
        cn.op = "Const";
        cn.attrs["value"] = values[0];
        cn.out_dtypes = {values[0].dtype()};
        cn.out_shapes = {values[0].shape()};
        cn.device = n.device;
        node_map[id] = new_graph->add_node(std::move(cn));
        ++result.folded;
        continue;
      }
    }

    // Plain copy with remapped deps.
    NodeDef copy = n;
    copy.id = -1;
    for (Endpoint& e : copy.inputs) e = map_endpoint(e);
    for (int& c : copy.control_inputs) c = node_map.at(c);
    node_map[id] = new_graph->add_node(std::move(copy));
  }

  for (const auto& [old_id, new_id] : node_map) {
    const NodeDef& nn = new_graph->node(new_id);
    for (int i = 0; i < nn.num_outputs(); ++i) {
      result.endpoint_map[Endpoint{old_id, i}] = Endpoint{new_id, i};
    }
    // Fused interior nodes map to output 0 of the fused node; they have no
    // external consumers by construction.
    if (nn.num_outputs() == 0) {
      result.endpoint_map[Endpoint{old_id, 0}] = Endpoint{new_id, 0};
    }
  }

  result.graph = std::move(new_graph);
  result.nodes_after = result.graph->num_nodes();
  RLG_LOG_DEBUG << "optimize_once: " << result.nodes_before << " -> "
                << result.nodes_after << " nodes (" << result.folded
                << " folded, " << result.fused_chains << " chains fused)";
  return result;
}
}  // namespace

// --- per-plan pattern fusion -------------------------------------------------

namespace {

// The extra operand of a fused binary link must broadcast *into* the chain
// shape: fully specified, rank <= out rank, and (right-aligned) every dim is
// 1 or equals a known output dim. Then broadcast(chain, extra) == chain at
// runtime and the fused per-element walk matches the unfused loops exactly.
bool extra_broadcasts_into(const Shape& extra, const Shape& out) {
  if (!extra.fully_specified()) return false;
  if (extra.rank() > out.rank()) return false;
  for (int i = 0; i < extra.rank(); ++i) {
    int64_t ed = extra.dim(extra.rank() - 1 - i);
    int64_t od = out.dim(out.rank() - 1 - i);
    if (ed == 1) continue;
    if (od == kUnknownDim || ed != od) return false;
  }
  return true;
}

}  // namespace

PlanFusionResult fuse_plan_patterns(const GraphDef& graph,
                                    const std::vector<Endpoint>& keep) {
  PlanFusionResult result;
  const int n = graph.num_nodes();
  const OpRegistry& registry = OpRegistry::instance();

  // --- closure of `keep` over data + control deps ------------------------
  std::vector<uint8_t> live(static_cast<size_t>(n), 0);
  std::set<int> keep_nodes;
  std::vector<int> worklist;
  for (const Endpoint& k : keep) {
    keep_nodes.insert(k.node);
    if (!live[static_cast<size_t>(k.node)]) {
      live[static_cast<size_t>(k.node)] = 1;
      worklist.push_back(k.node);
    }
  }
  while (!worklist.empty()) {
    int id = worklist.back();
    worklist.pop_back();
    const NodeDef& nd = graph.node(id);
    auto visit = [&](int dep) {
      if (!live[static_cast<size_t>(dep)]) {
        live[static_cast<size_t>(dep)] = 1;
        worklist.push_back(dep);
      }
    };
    for (const Endpoint& e : nd.inputs) visit(e.node);
    for (int c : nd.control_inputs) visit(c);
  }

  // --- gate: inference plans only ----------------------------------------
  // A closure containing any state writer or RNG draw is a training/acting
  // plan; decline so autodiff-expanded graphs keep their unfused nodes.
  for (int id = 0; id < n; ++id) {
    if (!live[static_cast<size_t>(id)]) continue;
    const NodeDef& nd = graph.node(id);
    bool stateful =
        nd.stateful || (registry.contains(nd.op) && registry.lookup(nd.op).stateful);
    if (stateful && nd.op != "Variable") return result;  // graph stays null
  }

  // --- consumer structure over ALL nodes (conservative) ------------------
  std::vector<int> consumers(static_cast<size_t>(n), 0);
  std::vector<int> last_consumer(static_cast<size_t>(n), -1);
  std::vector<int> control_consumers(static_cast<size_t>(n), 0);
  for (const NodeDef& nd : graph.nodes()) {
    for (const Endpoint& e : nd.inputs) {
      ++consumers[static_cast<size_t>(e.node)];
      last_consumer[static_cast<size_t>(e.node)] = nd.id;
    }
    for (int c : nd.control_inputs) {
      ++control_consumers[static_cast<size_t>(c)];
    }
  }
  // A node absorbed into a fused op disappears from the graph; anything
  // hanging a control edge off it would dangle.
  auto absorbable = [&](int id) {
    return live[static_cast<size_t>(id)] &&
           consumers[static_cast<size_t>(id)] == 1 &&
           control_consumers[static_cast<size_t>(id)] == 0 &&
           keep_nodes.count(id) == 0;
  };

  std::vector<uint8_t> claimed(static_cast<size_t>(n), 0);

  // --- dense / conv patterns ---------------------------------------------
  struct Pattern {
    int terminator = -1;
    std::vector<int> members;  // core, add[, activation]
    std::string op;            // FusedDense | FusedConv2D
    Endpoint x, w, bias;
    std::string activation = "none";
    const NodeDef* core = nullptr;  // MatMul / Conv2D node (attr source)
  };
  std::map<int, Pattern> patterns;  // terminator id -> pattern

  for (int id = 0; id < n; ++id) {
    if (!live[static_cast<size_t>(id)] || claimed[static_cast<size_t>(id)]) {
      continue;
    }
    const NodeDef& add = graph.node(id);
    if (add.op != "Add" || add.inputs.size() != 2 ||
        !add.control_inputs.empty()) {
      continue;
    }
    for (int side = 0; side < 2 && !claimed[static_cast<size_t>(id)]; ++side) {
      Endpoint core_ep = add.inputs[static_cast<size_t>(side)];
      Endpoint bias_ep = add.inputs[static_cast<size_t>(1 - side)];
      if (core_ep.index != 0) continue;
      const NodeDef& core = graph.node(core_ep.node);
      bool is_dense = core.op == "MatMul";
      bool is_conv = core.op == "Conv2D";
      if (!is_dense && !is_conv) continue;
      if (claimed[static_cast<size_t>(core_ep.node)] ||
          !absorbable(core_ep.node) || !core.control_inputs.empty()) {
        continue;
      }
      // Bias must be a rank-1 float vector of known extent matching the
      // output channel dim (the fused kernel indexes it directly; a size-1
      // broadcast bias would read out of range).
      if (graph.dtype_of(bias_ep) != DType::kFloat32) continue;
      const Shape& bshape = graph.shape_of(bias_ep);
      const Shape& oshape = core.out_shapes[0];
      if (bshape.rank() != 1 || bshape.dim(0) == kUnknownDim) continue;
      int64_t channels = oshape.dim(oshape.rank() - 1);
      if (channels == kUnknownDim || channels != bshape.dim(0)) continue;

      Pattern p;
      p.terminator = id;
      p.members = {core_ep.node, id};
      p.op = is_dense ? "FusedDense" : "FusedConv2D";
      p.x = core.inputs[0];
      p.w = core.inputs[1];
      p.bias = bias_ep;
      p.core = &core;
      // Absorb a sole-consumer activation on top of the Add.
      if (absorbable(id)) {
        int cid = last_consumer[static_cast<size_t>(id)];
        const NodeDef& act = graph.node(cid);
        const char* act_name = pattern_activation(act.op);
        if (act_name != nullptr && act.control_inputs.empty() &&
            act.inputs.size() == 1 && act.inputs[0] == Endpoint{id, 0} &&
            live[static_cast<size_t>(cid)] &&
            !claimed[static_cast<size_t>(cid)]) {
          p.terminator = cid;
          p.activation = act_name;
          p.members.push_back(cid);
        }
      }
      for (int m : p.members) claimed[static_cast<size_t>(m)] = 1;
      ++result.fused_patterns;
      result.steps_saved += static_cast<int>(p.members.size()) - 1;
      patterns[p.terminator] = std::move(p);
    }
  }

  // --- elementwise chains (unary + binary with broadcast extras) ---------
  // member_kind: -2 = not a chain member; 0/1 = binary with the running
  // value on that input side; 2 = unary.
  auto member_kind = [&](int id) -> int {
    if (!live[static_cast<size_t>(id)] || claimed[static_cast<size_t>(id)]) {
      return -2;
    }
    const NodeDef& nd = graph.node(id);
    if (!nd.control_inputs.empty() || nd.num_outputs() != 1 ||
        nd.out_dtypes[0] != DType::kFloat32) {
      return -2;
    }
    if (is_fusable_unary(nd.op)) return 2;
    if (!is_fusable_binary(nd.op) || nd.inputs.size() != 2) return -2;
    if (graph.dtype_of(nd.inputs[0]) != DType::kFloat32 ||
        graph.dtype_of(nd.inputs[1]) != DType::kFloat32) {
      return -2;
    }
    const Shape& out = nd.out_shapes[0];
    for (int s = 0; s < 2; ++s) {
      const Shape& cin = graph.shape_of(nd.inputs[static_cast<size_t>(s)]);
      const Shape& ext = graph.shape_of(nd.inputs[static_cast<size_t>(1 - s)]);
      if (cin.rank() != out.rank()) continue;
      if (!extra_broadcasts_into(ext, out)) continue;
      // Every output dim must come from the chain side: either the extra
      // dim broadcasts (1 / absent, so out == chain symbolically) or the
      // chain dim is known and equal to the known extra dim.
      bool ok = true;
      for (int i = 0; i < out.rank() && ok; ++i) {
        int ei = ext.rank() - out.rank() + i;
        int64_t ed = ei >= 0 ? ext.dim(ei) : 1;
        if (ed == 1) continue;
        int64_t cd = cin.dim(i);
        if (cd == kUnknownDim || cd != ed) ok = false;
      }
      if (ok) return s;
    }
    return -2;
  };

  struct Chain {
    std::vector<int> nodes;   // terminator first
    std::map<int, int> kind;  // node id -> member_kind
  };
  std::map<int, Chain> chain_candidates;
  for (int id = 0; id < n; ++id) {
    int k0 = member_kind(id);
    if (k0 == -2) continue;
    Chain chain;
    chain.nodes.push_back(id);
    chain.kind[id] = k0;
    int cur = id;
    while (true) {
      const NodeDef& c = graph.node(cur);
      int kc = chain.kind[cur];
      Endpoint prev_ep = kc == 2 ? c.inputs[0]
                                 : c.inputs[static_cast<size_t>(kc)];
      if (prev_ep.index != 0) break;
      int prev = prev_ep.node;
      int kp = member_kind(prev);
      if (kp == -2 || !absorbable(prev)) break;
      chain.nodes.push_back(prev);
      chain.kind[prev] = kp;
      cur = prev;
    }
    if (chain.nodes.size() < 2) continue;
    chain_candidates[id] = std::move(chain);
  }
  // Drop chains whose terminator is interior to a longer chain.
  {
    std::set<int> interior;
    for (const auto& [term, chain] : chain_candidates) {
      for (size_t i = 1; i < chain.nodes.size(); ++i) {
        interior.insert(chain.nodes[i]);
      }
    }
    for (auto it = chain_candidates.begin(); it != chain_candidates.end();) {
      if (interior.count(it->first) > 0) {
        it = chain_candidates.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [term, chain] : chain_candidates) {
    for (int m : chain.nodes) claimed[static_cast<size_t>(m)] = 1;
    ++result.fused_chains;
    result.steps_saved += static_cast<int>(chain.nodes.size()) - 1;
  }

  if (result.fused_patterns == 0 && result.fused_chains == 0) {
    result.graph = nullptr;  // nothing to do: caller keeps the original
    return result;
  }

  // --- rebuild (every node survives; absorbed ones fold into terminators) -
  std::vector<uint8_t> absorbed(static_cast<size_t>(n), 0);
  for (const auto& [term, p] : patterns) {
    for (int m : p.members) {
      if (m != term) absorbed[static_cast<size_t>(m)] = 1;
    }
  }
  for (const auto& [term, chain] : chain_candidates) {
    for (int m : chain.nodes) {
      if (m != term) absorbed[static_cast<size_t>(m)] = 1;
    }
  }

  auto new_graph = std::make_shared<GraphDef>();
  std::map<int, int> node_map;
  auto map_endpoint = [&](const Endpoint& e) {
    auto it = node_map.find(e.node);
    RLG_CHECK_MSG(it != node_map.end(),
                  "fusion pass ordering bug: input not yet emitted");
    return Endpoint{it->second, e.index};
  };

  for (int id = 0; id < n; ++id) {
    if (absorbed[static_cast<size_t>(id)]) continue;  // emitted at terminator
    const NodeDef& nd = graph.node(id);

    auto pit = patterns.find(id);
    if (pit != patterns.end()) {
      const Pattern& p = pit->second;
      NodeDef fused;
      fused.name = nd.name + "_fused";
      fused.op = p.op;
      fused.inputs = {map_endpoint(p.x), map_endpoint(p.w),
                      map_endpoint(p.bias)};
      fused.attrs["activation"] = p.activation;
      if (p.op == "FusedConv2D") {
        fused.attrs["stride"] = attr_int(p.core->attrs, "stride", 1);
        fused.attrs["same_padding"] =
            attr_bool(p.core->attrs, "same_padding", false);
      }
      fused.out_dtypes = nd.out_dtypes;
      fused.out_shapes = nd.out_shapes;
      fused.device = nd.device;
      int new_id = new_graph->add_node(std::move(fused));
      for (int m : p.members) node_map[m] = new_id;
      continue;
    }

    auto cit = chain_candidates.find(id);
    if (cit != chain_candidates.end()) {
      const Chain& chain = cit->second;
      const NodeDef& start = graph.node(chain.nodes.back());
      int ks = chain.kind.at(chain.nodes.back());
      Endpoint x = ks == 2 ? start.inputs[0]
                           : start.inputs[static_cast<size_t>(ks)];
      NodeDef fused;
      fused.name = nd.name + "_fused";
      fused.op = "FusedElementwise";
      fused.inputs = {map_endpoint(x)};
      std::string ops;
      for (auto rit = chain.nodes.rbegin(); rit != chain.nodes.rend(); ++rit) {
        const NodeDef& m = graph.node(*rit);
        int km = chain.kind.at(*rit);
        if (!ops.empty()) ops += ",";
        ops += m.op;
        if (km != 2) {
          ops += km == 0 ? ":l" : ":r";
          fused.inputs.push_back(
              map_endpoint(m.inputs[static_cast<size_t>(1 - km)]));
        }
      }
      fused.attrs["ops"] = ops;
      fused.out_dtypes = nd.out_dtypes;
      fused.out_shapes = nd.out_shapes;
      fused.device = nd.device;
      int new_id = new_graph->add_node(std::move(fused));
      for (int m : chain.nodes) node_map[m] = new_id;
      continue;
    }

    NodeDef copy = nd;
    copy.id = -1;
    for (Endpoint& e : copy.inputs) e = map_endpoint(e);
    for (int& c : copy.control_inputs) c = node_map.at(c);
    node_map[id] = new_graph->add_node(std::move(copy));
  }

  for (const auto& [old_id, new_id] : node_map) {
    const NodeDef& nn = new_graph->node(new_id);
    for (int i = 0; i < nn.num_outputs(); ++i) {
      result.endpoint_map[Endpoint{old_id, i}] = Endpoint{new_id, i};
    }
    if (nn.num_outputs() == 0) {
      result.endpoint_map[Endpoint{old_id, 0}] = Endpoint{new_id, 0};
    }
  }
  result.graph = std::move(new_graph);
  RLG_LOG_DEBUG << "fuse_plan_patterns: " << result.fused_patterns
                << " patterns, " << result.fused_chains << " chains, "
                << result.steps_saved << " dispatches saved";
  return result;
}

// --- int8 post-training quantization ----------------------------------------

QuantizeGraphResult quantize_inference_graph(
    const GraphDef& graph, const std::map<std::string, float>& act_scales,
    const std::map<std::string, float>& weight_scales) {
  QuantizeGraphResult result;
  const int n = graph.num_nodes();
  auto new_graph = std::make_shared<GraphDef>();
  std::map<int, int> node_map;
  auto map_endpoint = [&](const Endpoint& e) {
    auto it = node_map.find(e.node);
    RLG_CHECK_MSG(it != node_map.end(),
                  "quantize pass ordering bug: input not yet emitted");
    return Endpoint{it->second, e.index};
  };

  for (int id = 0; id < n; ++id) {
    const NodeDef& nd = graph.node(id);
    if (nd.op == "MatMul" && nd.control_inputs.empty() &&
        nd.inputs.size() == 2 && nd.inputs[1].index == 0) {
      auto ait = act_scales.find(nd.name);
      const NodeDef& wnode = graph.node(nd.inputs[1].node);
      if (ait != act_scales.end() && wnode.op == "Variable") {
        const std::string& wname = attr_string(wnode.attrs, "var_name");
        auto wit = weight_scales.find(wname);
        if (wit != weight_scales.end()) {
          NodeDef q;
          q.name = nd.name + "/quantize_in";
          q.op = "QuantizeLinear";
          q.inputs = {map_endpoint(nd.inputs[0])};
          q.attrs["scale"] = static_cast<double>(ait->second);
          q.out_dtypes = {DType::kInt8};
          q.out_shapes = {graph.shape_of(nd.inputs[0])};
          q.device = nd.device;
          int qid = new_graph->add_node(std::move(q));

          NodeDef wq;
          wq.name = wnode.name + "/int8";
          wq.op = "Variable";
          wq.attrs["var_name"] = wname + "/int8";
          wq.attrs["dtype"] = DType::kInt8;
          wq.attrs["shape"] = wnode.out_shapes[0];
          wq.out_dtypes = {DType::kInt8};
          wq.out_shapes = {wnode.out_shapes[0]};
          wq.device = wnode.device;
          wq.stateful = true;
          int wid = new_graph->add_node(std::move(wq));

          NodeDef mm;
          mm.name = nd.name + "/int8";
          mm.op = "MatMulInt8";
          mm.inputs = {Endpoint{qid, 0}, Endpoint{wid, 0}};
          mm.attrs["rescale"] =
              static_cast<double>(ait->second) * static_cast<double>(wit->second);
          mm.out_dtypes = {DType::kFloat32};
          mm.out_shapes = nd.out_shapes;
          mm.device = nd.device;
          node_map[id] = new_graph->add_node(std::move(mm));
          ++result.quantized_matmuls;
          continue;
        }
      }
    }
    NodeDef copy = nd;
    copy.id = -1;
    for (Endpoint& e : copy.inputs) e = map_endpoint(e);
    for (int& c : copy.control_inputs) c = node_map.at(c);
    node_map[id] = new_graph->add_node(std::move(copy));
  }

  if (result.quantized_matmuls == 0) {
    result.graph = nullptr;
    return result;
  }
  for (const auto& [old_id, new_id] : node_map) {
    const NodeDef& nn = new_graph->node(new_id);
    for (int i = 0; i < nn.num_outputs(); ++i) {
      result.endpoint_map[Endpoint{old_id, i}] = Endpoint{new_id, i};
    }
    if (nn.num_outputs() == 0) {
      result.endpoint_map[Endpoint{old_id, 0}] = Endpoint{new_id, 0};
    }
  }
  result.graph = std::move(new_graph);
  return result;
}

}  // namespace rlgraph
