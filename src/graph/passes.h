// Graph optimization passes run by the static-graph executor after the
// component-graph build (paper §4.2: "RLgraph's separation of concerns opens
// up opportunities for optimization at all stages ... integrated at the graph
// build stage").
//
// Implemented passes:
//  * dead-node elimination relative to the API registry's root endpoints,
//  * constant folding of stateless ops with all-constant inputs,
//  * fusion of chains of parameter-free elementwise ops into a single
//    FusedElementwise node.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "graph/graph_def.h"

namespace rlgraph {

struct OptimizeOptions {
  bool constant_folding = true;
  bool elementwise_fusion = true;
  // DCE always runs; it is what keeps rebuilt graphs minimal.
};

struct OptimizeResult {
  std::shared_ptr<GraphDef> graph;
  // Mapping from old endpoints to new endpoints for every live node.
  std::map<Endpoint, Endpoint> endpoint_map;
  int nodes_before = 0;
  int nodes_after = 0;
  int folded = 0;
  int fused_chains = 0;
};

// `roots` are the endpoints that must stay addressable (API registry outputs
// and placeholders are kept implicitly as they appear in live node inputs).
OptimizeResult optimize_graph(const GraphDef& graph,
                              const std::vector<Endpoint>& roots,
                              const OptimizeOptions& options = {});

}  // namespace rlgraph
