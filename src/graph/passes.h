// Graph optimization passes run by the static-graph executor after the
// component-graph build (paper §4.2: "RLgraph's separation of concerns opens
// up opportunities for optimization at all stages ... integrated at the graph
// build stage").
//
// Implemented passes:
//  * dead-node elimination relative to the API registry's root endpoints,
//  * constant folding of stateless ops with all-constant inputs,
//  * fusion of chains of parameter-free elementwise ops into a single
//    FusedElementwise node.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "graph/graph_def.h"

namespace rlgraph {

struct OptimizeOptions {
  bool constant_folding = true;
  bool elementwise_fusion = true;
  // DCE always runs; it is what keeps rebuilt graphs minimal.
};

struct OptimizeResult {
  std::shared_ptr<GraphDef> graph;
  // Mapping from old endpoints to new endpoints for every live node.
  std::map<Endpoint, Endpoint> endpoint_map;
  int nodes_before = 0;
  int nodes_after = 0;
  int folded = 0;
  int fused_chains = 0;
};

// `roots` are the endpoints that must stay addressable (API registry outputs
// and placeholders are kept implicitly as they appear in live node inputs).
OptimizeResult optimize_graph(const GraphDef& graph,
                              const std::vector<Endpoint>& roots,
                              const OptimizeOptions& options = {});

// --- per-plan pattern fusion -------------------------------------------------
//
// Runs at plan-compile time on inference (fetch-only) plans, the way an NPU
// compiler fuses its lowered IR: MatMul+AddBias(+activation) -> FusedDense,
// Conv2D+AddBias(+activation) -> FusedConv2D, and elementwise chains
// including binary ops with broadcast extras -> FusedElementwise. Training
// plans are left untouched: if the fetched closure contains any stateful
// node other than a Variable read (Assign, RNG draws, component state), the
// pass declines so autodiff-expanded update graphs keep their unfused nodes.
struct PlanFusionResult {
  // Null when nothing was fused (stateful closure, or no pattern matched);
  // callers then keep the original graph.
  std::shared_ptr<GraphDef> graph;
  // Total over every node of the input graph (absorbed nodes map to their
  // fused replacement's output 0).
  std::map<Endpoint, Endpoint> endpoint_map;
  int fused_patterns = 0;  // FusedDense + FusedConv2D matches
  int fused_chains = 0;    // elementwise chains (unary and binary links)
  int steps_saved = 0;     // kernel dispatches eliminated per run
};

// `keep` endpoints (the plan's fetches) are never absorbed into a fused
// node, so fetch slots survive with their values bitwise unchanged.
PlanFusionResult fuse_plan_patterns(const GraphDef& graph,
                                    const std::vector<Endpoint>& keep);

// --- int8 post-training quantization ----------------------------------------
//
// Rewrites every MatMul whose weight operand is a Variable read into
// QuantizeLinear(x) -> MatMulInt8(xq, <var>/int8) with an int32 accumulator
// rescaled to float32 (scale_x * scale_w) at the output. Per-tensor
// symmetric scales: `act_scales` maps MatMul node name -> calibrated input
// activation scale, `weight_scales` maps variable name -> weight scale. The
// caller is responsible for materializing the `<name>/int8` shadow
// variables before the rewritten graph runs. MatMuls without both scales
// are copied unchanged.
struct QuantizeGraphResult {
  std::shared_ptr<GraphDef> graph;  // null when no MatMul qualified
  std::map<Endpoint, Endpoint> endpoint_map;
  int quantized_matmuls = 0;
};

QuantizeGraphResult quantize_inference_graph(
    const GraphDef& graph, const std::map<std::string, float>& act_scales,
    const std::map<std::string, float>& weight_scales);

}  // namespace rlgraph
