#include "graph/session.h"

#include <utility>

#include "util/errors.h"
#include "util/trace.h"

namespace rlgraph {

Session::Session(std::shared_ptr<const GraphDef> graph,
                 VariableStore* variables, Rng* rng)
    : graph_(std::move(graph)), variables_(variables), rng_(rng) {
  RLG_REQUIRE(graph_ != nullptr, "Session requires a graph");
}

std::vector<Tensor> Session::PreparedCall::run(
    const std::vector<Tensor>& feed_values) {
  trace::TraceSpan span("session", "session/execute");
  // Check an arena out of the free list; concurrent runs of the same plan
  // each get their own slot table.
  std::unique_ptr<RunArena> arena;
  {
    std::lock_guard<std::mutex> lock(arenas_mutex_);
    if (!free_arenas_.empty()) {
      arena = std::move(free_arenas_.back());
      free_arenas_.pop_back();
    }
  }
  if (arena == nullptr) {
    arena = std::make_unique<RunArena>();
    ++num_arenas_;
  }

  std::vector<Tensor> out;
  try {
    out = plan_->execute(*arena, feed_values, session_->variables_,
                         session_->rng_);
  } catch (...) {
    arena->end_run();
    {
      std::lock_guard<std::mutex> lock(arenas_mutex_);
      free_arenas_.push_back(std::move(arena));
    }
    throw;
  }
  last_peak_.store(arena->peak_live_slots(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(arenas_mutex_);
    free_arenas_.push_back(std::move(arena));
  }
  session_->record_run(*this);
  return out;
}

int64_t Session::PreparedCall::bytes_reused() const {
  std::lock_guard<std::mutex> lock(arenas_mutex_);
  int64_t total = 0;
  for (const auto& arena : free_arenas_) total += arena->pool().bytes_reused();
  return total;
}

void Session::PreparedCall::set_check_kernel_purity(bool on) {
  std::lock_guard<std::mutex> lock(arenas_mutex_);
  for (auto& arena : free_arenas_) arena->set_check_kernel_purity(on);
  // Arenas created later inherit the build-type default; callers that need
  // the invariant everywhere run single-threaded (tests), where the free
  // list holds every arena between runs.
}

std::shared_ptr<Session::PreparedCall> Session::prepare(
    const std::vector<Endpoint>& fetches, const std::vector<int>& feed_nodes) {
  PlanKey key{fetches, feed_nodes};
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      trace::TraceSpan span("session", "session/cache_hit");
      plan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) metrics_->increment("session/plan_cache_hits");
      return it->second;
    }
  }
  // Compile outside the lock (may be slow); last writer wins on a race.
  trace::TraceSpan compile_span("session", "session/compile");
  std::shared_ptr<CompiledPlan> plan =
      CompiledPlan::compile(graph_, fetches, feed_nodes);
  auto call = std::make_shared<PreparedCall>();
  call->session_ = this;
  call->plan_ = std::move(plan);
  plan_compiles_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->increment("session/plan_compiles");
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto [it, inserted] = plan_cache_.emplace(std::move(key), std::move(call));
  return it->second;
}

std::vector<Tensor> Session::run(const std::vector<Endpoint>& fetches,
                                 const FeedMap& feeds) {
  trace::TraceSpan span("session", "session/run");
  std::vector<int> feed_nodes;
  std::vector<Tensor> feed_values;
  feed_nodes.reserve(feeds.size());
  feed_values.reserve(feeds.size());
  for (const auto& [node_id, value] : feeds) {
    feed_nodes.push_back(node_id);
    feed_values.push_back(value);
  }
  std::shared_ptr<PreparedCall> call = prepare(fetches, feed_nodes);
  // An explicit feed map naming placeholders the fetched subgraph never
  // reads was previously ignored silently; it is almost always a caller
  // bug, so name the offenders. (Positional API calls via prepare() keep
  // tolerating ignored arguments.)
  const std::vector<std::string>& unused = call->plan().unused_feed_names();
  if (!unused.empty()) {
    std::string names;
    for (const std::string& u : unused) {
      if (!names.empty()) names += ", ";
      names += "'" + u + "'";
    }
    throw ValueError(
        "feeds target placeholders not used by the fetched subgraph: " +
        names);
  }
  return call->run(feed_values);
}

void Session::record_run(const PreparedCall& call) {
  num_runs_.fetch_add(1, std::memory_order_relaxed);
  nodes_executed_.fetch_add(static_cast<int64_t>(call.plan().num_steps()),
                            std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->increment("session/runs");
    metrics_->increment("session/nodes_executed",
                        static_cast<int64_t>(call.plan().num_steps()));
    metrics_->set_gauge("session/bytes_reused",
                        static_cast<double>(bytes_reused()));
  }
}

int64_t Session::bytes_reused() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  int64_t total = 0;
  for (const auto& [key, call] : plan_cache_) {
    total += call->bytes_reused();
  }
  return total;
}

}  // namespace rlgraph
