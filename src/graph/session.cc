#include "graph/session.h"

#include <set>
#include <utility>

#include "util/errors.h"
#include "util/trace.h"

namespace rlgraph {

Session::Session(std::shared_ptr<const GraphDef> graph,
                 VariableStore* variables, Rng* rng)
    : graph_(std::move(graph)), variables_(variables), rng_(rng) {
  RLG_REQUIRE(graph_ != nullptr, "Session requires a graph");
}

std::vector<Tensor> Session::PreparedCall::run(
    const std::vector<Tensor>& feed_values) {
  trace::TraceSpan span("session", "session/execute");
  // Check an arena out of the free list; concurrent runs of the same plan
  // each get their own slot table.
  std::unique_ptr<RunArena> arena;
  {
    std::lock_guard<std::mutex> lock(arenas_mutex_);
    if (!free_arenas_.empty()) {
      arena = std::move(free_arenas_.back());
      free_arenas_.pop_back();
    }
  }
  if (arena == nullptr) {
    arena = std::make_unique<RunArena>();
    ++num_arenas_;
  }

  std::vector<Tensor> out;
  try {
    out = plan_->execute(*arena, feed_values, session_->variables_,
                         session_->rng_);
  } catch (...) {
    arena->end_run();
    {
      std::lock_guard<std::mutex> lock(arenas_mutex_);
      free_arenas_.push_back(std::move(arena));
    }
    throw;
  }
  last_peak_.store(arena->peak_live_slots(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(arenas_mutex_);
    free_arenas_.push_back(std::move(arena));
  }
  session_->record_run(*this);
  return out;
}

int64_t Session::PreparedCall::bytes_reused() const {
  std::lock_guard<std::mutex> lock(arenas_mutex_);
  int64_t total = 0;
  for (const auto& arena : free_arenas_) total += arena->pool().bytes_reused();
  return total;
}

int64_t Session::PreparedCall::bytes_allocated() const {
  std::lock_guard<std::mutex> lock(arenas_mutex_);
  int64_t total = 0;
  for (const auto& arena : free_arenas_) {
    total += arena->pool().bytes_allocated();
  }
  return total;
}

int64_t Session::PreparedCall::arena_block_allocs() const {
  std::lock_guard<std::mutex> lock(arenas_mutex_);
  int64_t total = 0;
  for (const auto& arena : free_arenas_) total += arena->arena_block_allocs();
  return total;
}

int64_t Session::PreparedCall::arena_alias_fallbacks() const {
  std::lock_guard<std::mutex> lock(arenas_mutex_);
  int64_t total = 0;
  for (const auto& arena : free_arenas_) {
    total += arena->arena_alias_fallbacks();
  }
  return total;
}

void Session::PreparedCall::set_check_kernel_purity(bool on) {
  std::lock_guard<std::mutex> lock(arenas_mutex_);
  for (auto& arena : free_arenas_) arena->set_check_kernel_purity(on);
  // Arenas created later inherit the build-type default; callers that need
  // the invariant everywhere run single-threaded (tests), where the free
  // list holds every arena between runs.
}

std::shared_ptr<Session::PreparedCall> Session::cache_lookup(
    const PlanKey& key) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch: most recent
  trace::TraceSpan span("session", "session/cache_hit");
  plan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->increment("session/plan_cache_hits");
  return it->second.call;
}

void Session::cache_insert(PlanKey key, std::shared_ptr<PreparedCall> call) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) return;  // lost a compile race: keep the first
  lru_.push_front(key);
  plan_cache_.emplace(std::move(key), CacheEntry{std::move(call), lru_.begin()});
  while (plan_cache_.size() > plan_cache_capacity_ && !lru_.empty()) {
    plan_cache_.erase(lru_.back());  // callers holding the shared_ptr keep it
    lru_.pop_back();
    plan_cache_evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->increment("session/plan_cache_evictions");
    }
  }
}

void Session::set_plan_cache_capacity(size_t cap) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  plan_cache_capacity_ = cap == 0 ? 1 : cap;
  while (plan_cache_.size() > plan_cache_capacity_ && !lru_.empty()) {
    plan_cache_.erase(lru_.back());
    lru_.pop_back();
    plan_cache_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t Session::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return plan_cache_.size();
}

std::shared_ptr<Session::PreparedCall> Session::prepare(
    const std::vector<Endpoint>& fetches, const std::vector<int>& feed_nodes) {
  PlanKey key{fetches, feed_nodes, {}};
  if (std::shared_ptr<PreparedCall> hit = cache_lookup(key)) return hit;
  // Compile outside the lock (may be slow); first writer wins on a race.
  trace::TraceSpan compile_span("session", "session/compile");
  std::shared_ptr<CompiledPlan> plan =
      CompiledPlan::compile(graph_, fetches, feed_nodes, pattern_fusion_);
  auto call = std::make_shared<PreparedCall>();
  call->session_ = this;
  call->plan_ = std::move(plan);
  plan_compiles_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->increment("session/plan_compiles");
  cache_insert(std::move(key), call);
  return call;
}

std::shared_ptr<Session::PreparedCall> Session::prepare_specialized(
    const std::vector<Endpoint>& fetches, const std::vector<int>& feed_nodes,
    const std::vector<Shape>& feed_shapes) {
  std::vector<int64_t> shape_key;
  for (const Shape& s : feed_shapes) {
    shape_key.push_back(s.rank());
    for (int d = 0; d < s.rank(); ++d) shape_key.push_back(s.dim(d));
  }
  // An empty shape component is the dynamic key; keep the namespaces
  // disjoint even for zero-feed calls.
  shape_key.push_back(static_cast<int64_t>(feed_shapes.size()));
  PlanKey key{fetches, feed_nodes, std::move(shape_key)};
  if (std::shared_ptr<PreparedCall> hit = cache_lookup(key)) return hit;

  trace::TraceSpan compile_span("session", "session/compile_specialized");
  std::shared_ptr<CompiledPlan> plan =
      CompiledPlan::compile_specialized(graph_, fetches, feed_nodes,
                                        feed_shapes, pattern_fusion_);
  if (plan == nullptr) {
    // Shapes don't match the declared signature: serve the dynamic plan,
    // and remember that under the specialized key so the next call with
    // these shapes is a plain cache hit rather than a failed recompile.
    std::shared_ptr<PreparedCall> dynamic = prepare(fetches, feed_nodes);
    cache_insert(std::move(key), dynamic);
    return dynamic;
  }
  auto call = std::make_shared<PreparedCall>();
  call->session_ = this;
  call->plan_ = std::move(plan);
  plan_compiles_.fetch_add(1, std::memory_order_relaxed);
  plan_specializations_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->increment("session/plan_compiles");
    metrics_->increment("session/plan_specializations");
  }
  cache_insert(std::move(key), call);
  return call;
}

std::vector<Tensor> Session::run(const std::vector<Endpoint>& fetches,
                                 const FeedMap& feeds) {
  trace::TraceSpan span("session", "session/run");
  std::vector<int> feed_nodes;
  std::vector<Tensor> feed_values;
  feed_nodes.reserve(feeds.size());
  feed_values.reserve(feeds.size());
  for (const auto& [node_id, value] : feeds) {
    feed_nodes.push_back(node_id);
    feed_values.push_back(value);
  }
  std::shared_ptr<PreparedCall> call = prepare(fetches, feed_nodes);
  // An explicit feed map naming placeholders the fetched subgraph never
  // reads was previously ignored silently; it is almost always a caller
  // bug, so name the offenders. (Positional API calls via prepare() keep
  // tolerating ignored arguments.)
  const std::vector<std::string>& unused = call->plan().unused_feed_names();
  if (!unused.empty()) {
    std::string names;
    for (const std::string& u : unused) {
      if (!names.empty()) names += ", ";
      names += "'" + u + "'";
    }
    throw ValueError(
        "feeds target placeholders not used by the fetched subgraph: " +
        names);
  }
  return call->run(feed_values);
}

void Session::record_run(const PreparedCall& call) {
  num_runs_.fetch_add(1, std::memory_order_relaxed);
  nodes_executed_.fetch_add(static_cast<int64_t>(call.plan().num_steps()),
                            std::memory_order_relaxed);
  int fused = call.plan().fused_kernel_steps();
  if (fused > 0) fused_dispatches_.fetch_add(fused, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->increment("session/runs");
    metrics_->increment("session/nodes_executed",
                        static_cast<int64_t>(call.plan().num_steps()));
    if (fused > 0) metrics_->increment("session/fused_dispatches", fused);
    metrics_->set_gauge("session/bytes_reused",
                        static_cast<double>(bytes_reused()));
  }
}

int64_t Session::bytes_reused() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  int64_t total = 0;
  std::set<const PreparedCall*> seen;  // fallback entries alias dynamic ones
  for (const auto& [key, entry] : plan_cache_) {
    if (!seen.insert(entry.call.get()).second) continue;
    total += entry.call->bytes_reused();
  }
  return total;
}

}  // namespace rlgraph
