#include "graph/session.h"

#include <algorithm>

#include "util/errors.h"

namespace rlgraph {

Session::Session(std::shared_ptr<const GraphDef> graph,
                 VariableStore* variables, Rng* rng)
    : graph_(std::move(graph)), variables_(variables), rng_(rng) {
  RLG_REQUIRE(graph_ != nullptr, "Session requires a graph");
}

const Session::Plan& Session::plan_for(const std::vector<Endpoint>& fetches) {
  auto it = plan_cache_.find(fetches);
  if (it != plan_cache_.end()) return it->second;

  // Iterative post-order DFS from the fetch roots over data + control deps.
  Plan plan;
  std::vector<uint8_t> state(static_cast<size_t>(graph_->num_nodes()),
                             0);  // 0=unvisited 1=on-stack 2=done
  std::vector<std::pair<int, size_t>> stack;  // (node, next-dep index)
  auto deps_of = [&](int id) {
    const NodeDef& n = graph_->node(id);
    std::vector<int> deps;
    deps.reserve(n.inputs.size() + n.control_inputs.size());
    for (const Endpoint& e : n.inputs) deps.push_back(e.node);
    for (int c : n.control_inputs) deps.push_back(c);
    return deps;
  };
  for (const Endpoint& fetch : fetches) {
    RLG_REQUIRE(fetch.node >= 0 && fetch.node < graph_->num_nodes(),
                "fetch endpoint references unknown node " << fetch.node);
    if (state[static_cast<size_t>(fetch.node)] == 2) continue;
    stack.emplace_back(fetch.node, 0);
    state[static_cast<size_t>(fetch.node)] = 1;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      std::vector<int> deps = deps_of(id);
      if (next < deps.size()) {
        int dep = deps[next++];
        uint8_t s = state[static_cast<size_t>(dep)];
        if (s == 0) {
          state[static_cast<size_t>(dep)] = 1;
          stack.emplace_back(dep, 0);
        } else {
          RLG_CHECK_MSG(s != 1, "cycle detected in graph at node "
                                    << graph_->node(dep).name);
        }
      } else {
        state[static_cast<size_t>(id)] = 2;
        plan.schedule.push_back(id);
        stack.pop_back();
      }
    }
  }
  return plan_cache_.emplace(fetches, std::move(plan)).first->second;
}

std::vector<Tensor> Session::run(const std::vector<Endpoint>& fetches,
                                 const FeedMap& feeds) {
  ++num_runs_;
  const Plan& plan = plan_for(fetches);
  const OpRegistry& registry = OpRegistry::instance();

  // Per-run output table: node id -> outputs.
  std::map<int, std::vector<Tensor>> results;
  for (const auto& [node_id, value] : feeds) {
    const NodeDef& n = graph_->node(node_id);
    RLG_REQUIRE(n.op == "Placeholder",
                "feed target '" << n.name << "' is not a placeholder");
    RLG_REQUIRE(n.out_dtypes[0] == value.dtype(),
                "feed for '" << n.name << "' has dtype "
                             << dtype_name(value.dtype()) << ", expected "
                             << dtype_name(n.out_dtypes[0]));
    RLG_REQUIRE(n.out_shapes[0].matches(value.shape()),
                "feed for '" << n.name << "' has shape "
                             << value.shape().to_string() << ", expected "
                             << n.out_shapes[0].to_string());
    results[node_id] = {value};
  }

  for (int id : plan.schedule) {
    if (results.count(id) > 0) continue;  // fed placeholder
    const NodeDef& n = graph_->node(id);
    const OpSchema& schema = registry.lookup(n.op);
    KernelContext ctx;
    ctx.node = &n;
    ctx.variables = variables_;
    ctx.rng = rng_;
    ctx.inputs.reserve(n.inputs.size());
    for (const Endpoint& e : n.inputs) {
      auto it = results.find(e.node);
      RLG_CHECK_MSG(it != results.end(),
                    "dependency not evaluated for node " << n.name);
      ctx.inputs.push_back(it->second[static_cast<size_t>(e.index)]);
    }
    std::vector<Tensor> out = schema.kernel(ctx);
    RLG_CHECK_MSG(static_cast<int>(out.size()) == n.num_outputs(),
                  "op " << n.op << " produced " << out.size()
                        << " outputs, node declares " << n.num_outputs());
    ++nodes_executed_;
    results[id] = std::move(out);
  }

  std::vector<Tensor> fetched;
  fetched.reserve(fetches.size());
  for (const Endpoint& f : fetches) {
    fetched.push_back(results.at(f.node)[static_cast<size_t>(f.index)]);
  }
  return fetched;
}

}  // namespace rlgraph
