// Session: executes fetches against a GraphDef with feeds, the static-graph
// backend's runtime (the TF-session analogue).
//
// The session is a thin cache of CompiledPlans keyed by (fetches, feed
// signature). A plan resolves kernels, flattens dependencies into dense
// value slots and precomputes last-use refcounts once; steady-state runs do
// zero schedule work (see graph/exec_plan.h). Callers on a hot path can
// prepare() a call once and skip even the cache lookup — this is what makes
// batching multiple logical operations into one session call profitable,
// the effect the paper's Ape-X comparison measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "graph/exec_plan.h"
#include "graph/graph_def.h"
#include "graph/op_schema.h"
#include "util/metrics.h"

namespace rlgraph {

using FeedMap = std::map<int, Tensor>;  // placeholder node id -> value

class Session {
 public:
  // A (fetches, feed set) resolved to its compiled plan plus reusable run
  // arenas. Obtained once via Session::prepare; run() is the per-call hot
  // path: no maps, no key comparisons, one arena checkout.
  class PreparedCall {
   public:
    std::vector<Tensor> run(const std::vector<Tensor>& feed_values);
    const CompiledPlan& plan() const { return *plan_; }
    // Aggregate pool stats over this call's arenas.
    int64_t bytes_reused() const;
    int64_t bytes_allocated() const;
    // Planned-arena stats (non-zero only for shape-specialized plans):
    // contiguous-block allocations and alias-hazard pool fallbacks.
    int64_t arena_block_allocs() const;
    int64_t arena_alias_fallbacks() const;
    // Peak simultaneously-live value slots of the most recent run.
    int64_t last_peak_live_slots() const { return last_peak_; }
    void set_check_kernel_purity(bool on);

   private:
    friend class Session;
    Session* session_ = nullptr;
    std::shared_ptr<CompiledPlan> plan_;
    mutable std::mutex arenas_mutex_;
    std::vector<std::unique_ptr<RunArena>> free_arenas_;
    size_t num_arenas_ = 0;
    std::atomic<int64_t> last_peak_{0};
  };

  // The session borrows the graph/store/rng; the graph executor owns them.
  Session(std::shared_ptr<const GraphDef> graph, VariableStore* variables,
          Rng* rng);

  // Evaluate the fetches given feeds. Fetch order defines result order.
  // Feeds must target placeholder nodes inside the fetched subgraph;
  // unused feeds are an error naming the offending placeholders.
  std::vector<Tensor> run(const std::vector<Endpoint>& fetches,
                          const FeedMap& feeds);

  // Compile (or fetch from cache) the plan for a fetch set + feed node
  // list; feed values are later passed positionally in `feed_nodes` order.
  std::shared_ptr<PreparedCall> prepare(const std::vector<Endpoint>& fetches,
                                        const std::vector<int>& feed_nodes);

  // Like prepare(), but specialized on concrete feed shapes (one per feed,
  // typically a concrete leading batch dimension N). Cached under a key
  // that additionally encodes the shapes, so each distinct N compiles once.
  // When the shapes cannot specialize the plan (signature mismatch), the
  // dynamic plan is cached under the specialized key — repeat callers pay
  // one lookup, never a recompile.
  std::shared_ptr<PreparedCall> prepare_specialized(
      const std::vector<Endpoint>& fetches, const std::vector<int>& feed_nodes,
      const std::vector<Shape>& feed_shapes);

  // Bound on cached plans; exceeding it evicts the least recently used
  // entry. Generous by default — shape-specialized callers add one entry
  // per distinct batch size, which bucketing keeps small, but an unbucketed
  // caller feeding arbitrary N must not grow the cache without bound.
  void set_plan_cache_capacity(size_t cap);
  size_t plan_cache_size() const;

  // Per-plan counters are aggregated into `metrics` (compiles, cache hits,
  // nodes executed, bytes reused) when set.
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }

  // Compile-time pattern fusion (see fuse_plan_patterns): inference-only
  // plans dispatch FusedDense/FusedConv2D/FusedElementwise composites
  // instead of the op-per-node sequence, bitwise identically. Off by
  // default; the graph executor turns it on under its `optimize` option.
  // Set before the first prepare() — cached plans are not recompiled.
  void set_pattern_fusion(bool on) { pattern_fusion_ = on; }
  bool pattern_fusion() const { return pattern_fusion_; }

  int64_t num_runs() const { return num_runs_.load(); }
  int64_t nodes_executed() const { return nodes_executed_.load(); }
  int64_t plan_compiles() const { return plan_compiles_.load(); }
  int64_t plan_cache_hits() const { return plan_cache_hits_.load(); }
  int64_t plan_cache_evictions() const { return plan_cache_evictions_.load(); }
  // Successful shape-specialized compiles (subset of plan_compiles).
  int64_t plan_specializations() const { return plan_specializations_.load(); }
  // Fused composite kernel dispatches accumulated over all runs.
  int64_t fused_dispatches() const { return fused_dispatches_.load(); }
  int64_t bytes_reused() const;

 private:
  friend class PreparedCall;

  void record_run(const PreparedCall& call);

  std::shared_ptr<const GraphDef> graph_;
  VariableStore* variables_;
  Rng* rng_;

  // (fetches, feed nodes, encoded feed shapes). The shape component is
  // empty for dynamic plans; specialized plans append rank-then-dims per
  // feed so each concrete signature caches independently.
  using PlanKey = std::tuple<std::vector<Endpoint>, std::vector<int>,
                             std::vector<int64_t>>;
  struct CacheEntry {
    std::shared_ptr<PreparedCall> call;
    std::list<PlanKey>::iterator lru_it;
  };
  // Cache lookup/insert/evict under cache_mutex_; lru_ front = most recent.
  std::shared_ptr<PreparedCall> cache_lookup(const PlanKey& key);
  void cache_insert(PlanKey key, std::shared_ptr<PreparedCall> call);

  mutable std::mutex cache_mutex_;
  std::map<PlanKey, CacheEntry> plan_cache_;
  std::list<PlanKey> lru_;
  size_t plan_cache_capacity_ = 256;

  std::atomic<int64_t> num_runs_{0};
  std::atomic<int64_t> nodes_executed_{0};
  std::atomic<int64_t> plan_compiles_{0};
  std::atomic<int64_t> plan_cache_hits_{0};
  std::atomic<int64_t> plan_cache_evictions_{0};
  std::atomic<int64_t> plan_specializations_{0};
  std::atomic<int64_t> fused_dispatches_{0};
  bool pattern_fusion_ = false;
  MetricRegistry* metrics_ = nullptr;
};

}  // namespace rlgraph
