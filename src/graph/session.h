// Session: executes fetches against a GraphDef with feeds, the static-graph
// backend's runtime (the TF-session analogue).
//
// The session is a thin cache of CompiledPlans keyed by (fetches, feed
// signature). A plan resolves kernels, flattens dependencies into dense
// value slots and precomputes last-use refcounts once; steady-state runs do
// zero schedule work (see graph/exec_plan.h). Callers on a hot path can
// prepare() a call once and skip even the cache lookup — this is what makes
// batching multiple logical operations into one session call profitable,
// the effect the paper's Ape-X comparison measures.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/exec_plan.h"
#include "graph/graph_def.h"
#include "graph/op_schema.h"
#include "util/metrics.h"

namespace rlgraph {

using FeedMap = std::map<int, Tensor>;  // placeholder node id -> value

class Session {
 public:
  // A (fetches, feed set) resolved to its compiled plan plus reusable run
  // arenas. Obtained once via Session::prepare; run() is the per-call hot
  // path: no maps, no key comparisons, one arena checkout.
  class PreparedCall {
   public:
    std::vector<Tensor> run(const std::vector<Tensor>& feed_values);
    const CompiledPlan& plan() const { return *plan_; }
    // Aggregate pool stats over this call's arenas.
    int64_t bytes_reused() const;
    // Peak simultaneously-live value slots of the most recent run.
    int64_t last_peak_live_slots() const { return last_peak_; }
    void set_check_kernel_purity(bool on);

   private:
    friend class Session;
    Session* session_ = nullptr;
    std::shared_ptr<CompiledPlan> plan_;
    mutable std::mutex arenas_mutex_;
    std::vector<std::unique_ptr<RunArena>> free_arenas_;
    size_t num_arenas_ = 0;
    std::atomic<int64_t> last_peak_{0};
  };

  // The session borrows the graph/store/rng; the graph executor owns them.
  Session(std::shared_ptr<const GraphDef> graph, VariableStore* variables,
          Rng* rng);

  // Evaluate the fetches given feeds. Fetch order defines result order.
  // Feeds must target placeholder nodes inside the fetched subgraph;
  // unused feeds are an error naming the offending placeholders.
  std::vector<Tensor> run(const std::vector<Endpoint>& fetches,
                          const FeedMap& feeds);

  // Compile (or fetch from cache) the plan for a fetch set + feed node
  // list; feed values are later passed positionally in `feed_nodes` order.
  std::shared_ptr<PreparedCall> prepare(const std::vector<Endpoint>& fetches,
                                        const std::vector<int>& feed_nodes);

  // Per-plan counters are aggregated into `metrics` (compiles, cache hits,
  // nodes executed, bytes reused) when set.
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }

  int64_t num_runs() const { return num_runs_.load(); }
  int64_t nodes_executed() const { return nodes_executed_.load(); }
  int64_t plan_compiles() const { return plan_compiles_.load(); }
  int64_t plan_cache_hits() const { return plan_cache_hits_.load(); }
  int64_t bytes_reused() const;

 private:
  friend class PreparedCall;

  void record_run(const PreparedCall& call);

  std::shared_ptr<const GraphDef> graph_;
  VariableStore* variables_;
  Rng* rng_;

  using PlanKey = std::pair<std::vector<Endpoint>, std::vector<int>>;
  mutable std::mutex cache_mutex_;
  std::map<PlanKey, std::shared_ptr<PreparedCall>> plan_cache_;

  std::atomic<int64_t> num_runs_{0};
  std::atomic<int64_t> nodes_executed_{0};
  std::atomic<int64_t> plan_compiles_{0};
  std::atomic<int64_t> plan_cache_hits_{0};
  MetricRegistry* metrics_ = nullptr;
};

}  // namespace rlgraph
