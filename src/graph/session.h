// Session: executes fetches against a GraphDef with feeds, the static-graph
// backend's runtime (the TF-session analogue).
//
// Each run evaluates the transitive closure of the fetched endpoints in
// topological order. Stateless node results are memoized within a run;
// stateful nodes (variables, assigns, random, component kernels) execute at
// most once per run but never across runs. Execution plans (the node
// schedule for a fetch set) are cached across runs, so steady-state act/
// update calls pay only dispatch cost — this is what makes batching multiple
// logical operations into one session call profitable, the effect the
// paper's Ape-X comparison measures.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "graph/graph_def.h"
#include "graph/op_schema.h"
#include "util/metrics.h"

namespace rlgraph {

using FeedMap = std::map<int, Tensor>;  // placeholder node id -> value

class Session {
 public:
  // The session borrows the graph/store/rng; the graph executor owns them.
  Session(std::shared_ptr<const GraphDef> graph, VariableStore* variables,
          Rng* rng);

  // Evaluate the fetches given feeds. Fetch order defines result order.
  std::vector<Tensor> run(const std::vector<Endpoint>& fetches,
                          const FeedMap& feeds);

  int64_t num_runs() const { return num_runs_; }
  int64_t nodes_executed() const { return nodes_executed_; }

 private:
  struct Plan {
    std::vector<int> schedule;  // node ids in execution order
  };

  const Plan& plan_for(const std::vector<Endpoint>& fetches);

  std::shared_ptr<const GraphDef> graph_;
  VariableStore* variables_;
  Rng* rng_;
  std::map<std::vector<Endpoint>, Plan> plan_cache_;
  int64_t num_runs_ = 0;
  int64_t nodes_executed_ = 0;
};

}  // namespace rlgraph
