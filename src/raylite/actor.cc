#include "raylite/actor.h"

namespace rlgraph {
namespace raylite {

std::vector<size_t> wait(const std::vector<UntypedFuture>& futures,
                         size_t num_returns) {
  num_returns = std::min(num_returns, futures.size());
  std::vector<size_t> ready;
  if (futures.empty()) return ready;
  while (true) {
    ready.clear();
    for (size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].ready()) ready.push_back(i);
    }
    if (ready.size() >= num_returns) return ready;
    // Park briefly on the first unready future rather than spinning.
    for (const UntypedFuture& f : futures) {
      if (!f.ready()) {
        // wait_for with a short timeout to re-check the whole set.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        break;
      }
    }
  }
}

}  // namespace raylite
}  // namespace rlgraph
