#include "raylite/actor.h"

#include <algorithm>

namespace rlgraph {
namespace raylite {

const char* to_string(ActorState state) {
  switch (state) {
    case ActorState::kRunning:
      return "running";
    case ActorState::kFailed:
      return "failed";
    case ActorState::kStopped:
      return "stopped";
  }
  return "unknown";
}

namespace {

// Registers one WaitSet with every future; returns it. Invalid futures are
// counted as permanently unready (they can never resolve).
std::shared_ptr<detail::WaitSet> register_wait_set(
    const std::vector<UntypedFuture>& futures) {
  auto ws = std::make_shared<detail::WaitSet>();
  for (const UntypedFuture& f : futures) {
    if (f.valid()) f.internal_state()->add_waiter(ws);
  }
  return ws;
}

std::vector<size_t> collect_ready(const std::vector<UntypedFuture>& futures) {
  std::vector<size_t> ready;
  for (size_t i = 0; i < futures.size(); ++i) {
    if (futures[i].ready()) ready.push_back(i);
  }
  return ready;
}

size_t clamp_num_returns(const std::vector<UntypedFuture>& futures,
                         size_t num_returns) {
  size_t resolvable = 0;
  for (const UntypedFuture& f : futures) {
    if (f.valid()) ++resolvable;
  }
  return std::min(num_returns, resolvable);
}

}  // namespace

std::vector<size_t> wait(const std::vector<UntypedFuture>& futures,
                         size_t num_returns) {
  num_returns = clamp_num_returns(futures, num_returns);
  if (futures.empty() || num_returns == 0) return collect_ready(futures);
  auto ws = register_wait_set(futures);
  std::unique_lock<std::mutex> lock(ws->mutex);
  ws->cv.wait(lock, [&] { return ws->ready_count >= num_returns; });
  lock.unlock();
  return collect_ready(futures);
}

std::vector<size_t> wait_for(const std::vector<UntypedFuture>& futures,
                             size_t num_returns,
                             std::chrono::milliseconds timeout) {
  num_returns = clamp_num_returns(futures, num_returns);
  if (futures.empty() || num_returns == 0) return collect_ready(futures);
  auto ws = register_wait_set(futures);
  std::unique_lock<std::mutex> lock(ws->mutex);
  ws->cv.wait_for(lock, timeout,
                  [&] { return ws->ready_count >= num_returns; });
  lock.unlock();
  return collect_ready(futures);
}

}  // namespace raylite
}  // namespace rlgraph
