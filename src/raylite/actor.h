// raylite actors: each actor instance lives on its own mailbox thread;
// method calls enqueue closures and return futures. Mirrors Ray's
// actor.method.remote() -> future pattern with in-process threads.
//
// Fault-tolerance model (mirroring Ray's actor semantics):
//   * Futures carry an explicit error state: a task that throws marks its
//     future errored and get() rethrows the original exception type.
//   * Actors have a health state (kRunning/kFailed/kStopped). A throwing
//     factory or an injected crash marks the actor kFailed and fails all
//     queued calls with ActorDeadError instead of tearing down the process;
//     supervisors (execution/supervisor.h) observe the state and restart.
//   * A per-actor FaultInjector (fault_injection.h) can deterministically
//     inject task failures, delays, and crashes for chaos testing.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "raylite/fault_injection.h"
#include "util/errors.h"
#include "util/queues.h"
#include "util/trace.h"

namespace rlgraph {
namespace raylite {

namespace detail {

// Shared notification target for wait(): futures signal it as they resolve,
// so multi-future waits park on one condition variable instead of polling.
struct WaitSet {
  std::mutex mutex;
  std::condition_variable cv;
  size_t ready_count = 0;

  void notify() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++ready_count;
    }
    cv.notify_all();
  }
};

// Manually managed future state (instead of std::shared_future) so futures
// can report failure without consuming the result, support timed waits, and
// fan out readiness to WaitSets.
struct FutureState {
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  std::shared_ptr<void> value;
  std::exception_ptr error;
  bool ready = false;
  std::vector<std::shared_ptr<WaitSet>> waiters;

  void resolve(std::shared_ptr<void> v, std::exception_ptr e) {
    std::vector<std::shared_ptr<WaitSet>> to_notify;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (ready) return;  // first resolution wins
      value = std::move(v);
      error = std::move(e);
      ready = true;
      to_notify.swap(waiters);
    }
    cv.notify_all();
    for (auto& w : to_notify) w->notify();
  }

  void set_value(std::shared_ptr<void> v) { resolve(std::move(v), nullptr); }
  void set_error(std::exception_ptr e) { resolve(nullptr, std::move(e)); }

  bool is_ready() const {
    std::lock_guard<std::mutex> lock(mutex);
    return ready;
  }

  bool is_failed() const {
    std::lock_guard<std::mutex> lock(mutex);
    return ready && error != nullptr;
  }

  void wait() const {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return ready; });
  }

  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return ready; });
  }

  // Rethrows the task's exception or returns the value; blocks until ready.
  std::shared_ptr<void> get() const {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return ready; });
    if (error) std::rethrow_exception(error);
    return value;
  }

  // Registers `w` to be notified on resolution (immediately if already
  // resolved).
  void add_waiter(std::shared_ptr<WaitSet> w) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!ready) {
        waiters.push_back(std::move(w));
        return;
      }
    }
    w->notify();
  }
};

}  // namespace detail

// Type-erased future used by wait(); Future<T> wraps it with typed get().
class UntypedFuture {
 public:
  UntypedFuture() = default;
  explicit UntypedFuture(std::shared_ptr<detail::FutureState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->is_ready(); }
  // True once the call resolved with an exception (task threw, actor died,
  // or a fault was injected). ready() is also true in that case.
  bool failed() const { return state_ && state_->is_failed(); }
  void wait() const { state_->wait(); }
  // Returns true if the future resolved within `timeout`.
  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    return state_->wait_for(timeout);
  }
  std::shared_ptr<void> get_raw() const { return state_->get(); }

  std::shared_ptr<detail::FutureState> internal_state() const {
    return state_;
  }

 protected:
  std::shared_ptr<detail::FutureState> state_;
};

template <typename R>
class Future : public UntypedFuture {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::FutureState> state)
      : UntypedFuture(std::move(state)) {}

  // Blocks; rethrows the actor-side exception if the call failed.
  R get() const {
    std::shared_ptr<void> raw = state_->get();
    return *std::static_pointer_cast<R>(raw);
  }

  // Non-blocking: nullopt while pending; rethrows if the call failed.
  std::optional<R> try_get() const {
    if (!ready()) return std::nullopt;
    return get();
  }

  // Blocks up to `timeout`; throws TimeoutError if the call has not
  // resolved by then (the task keeps running — the result is not lost).
  template <typename Rep, typename Period>
  R get_for(std::chrono::duration<Rep, Period> timeout) const {
    if (!state_->wait_for(timeout)) {
      throw TimeoutError("future not ready within timeout");
    }
    return get();
  }
};

// Future<void> needs distinct getters.
template <>
class Future<void> : public UntypedFuture {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::FutureState> state)
      : UntypedFuture(std::move(state)) {}
  void get() const { state_->get(); }
  template <typename Rep, typename Period>
  void get_for(std::chrono::duration<Rep, Period> timeout) const {
    if (!state_->wait_for(timeout)) {
      throw TimeoutError("future not ready within timeout");
    }
    get();
  }
};

// Builds an already-errored future (calls on dead actors resolve this way).
template <typename R>
Future<R> make_errored_future(std::exception_ptr error) {
  auto state = std::make_shared<detail::FutureState>();
  state->set_error(std::move(error));
  return Future<R>(std::move(state));
}

// Blocks until at least num_returns of the futures are ready (or all
// remaining), mirroring ray.wait(). Returns indices of ready futures
// (errored futures count as ready). Parks on a condition variable — no
// polling.
std::vector<size_t> wait(const std::vector<UntypedFuture>& futures,
                         size_t num_returns);

// Timed variant: returns the indices ready once num_returns resolved or the
// timeout expired, whichever comes first (possibly fewer than num_returns).
std::vector<size_t> wait_for(const std::vector<UntypedFuture>& futures,
                             size_t num_returns,
                             std::chrono::milliseconds timeout);

// Actor lifecycle: kRunning serves calls; kFailed means the factory threw or
// a crash was injected (queued calls fail with ActorDeadError; a supervisor
// may build a replacement); kStopped is a clean drain-and-join shutdown.
enum class ActorState { kRunning, kFailed, kStopped };

const char* to_string(ActorState state);

// Hosts an instance of T on a dedicated thread. The instance is constructed
// on the actor thread (via the factory), used only there, and destroyed
// there — so non-thread-safe state (graph executors!) is safe inside.
template <typename T>
class Actor {
 public:
  // Spawn with a factory executed on the actor thread. An optional fault
  // injector is consulted once per dequeued task (chaos testing).
  explicit Actor(std::function<std::unique_ptr<T>()> factory,
                 std::shared_ptr<FaultInjector> injector = nullptr)
      : injector_(std::move(injector)) {
    thread_ = std::thread([this, factory = std::move(factory)] {
      run_loop(factory);
    });
  }

  ~Actor() { stop(); }

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  // Enqueue a call; fn runs on the actor thread with exclusive access.
  // Calling a kFailed actor returns an already-errored future (so
  // coordination loops handle dead workers uniformly through the future
  // error path); calling a kStopped actor throws.
  //
  // A task that throws ActorDeadError (or a subclass) is declaring the
  // actor's backing resource permanently unusable — e.g. a remote proxy
  // whose transport exhausted its reconnect budget. The actor transitions
  // to kFailed ("poisoned") so the supervisor's restart path takes over,
  // instead of healthy-looking futures failing forever.
  template <typename Fn,
            typename R = std::invoke_result_t<Fn, T&>>
  Future<R> call(Fn fn) {
    auto state = std::make_shared<detail::FutureState>();
    Future<R> fut(state);
    Task task;
    task.state = state;
    task.run = [state,
                fn = std::move(fn)](T& instance) mutable -> std::exception_ptr {
      try {
        if constexpr (std::is_void_v<R>) {
          fn(instance);
          state->set_value(std::make_shared<int>(0));
        } else {
          state->set_value(std::make_shared<R>(fn(instance)));
        }
      } catch (const ActorDeadError&) {
        std::exception_ptr poison = std::current_exception();
        state->set_error(poison);
        return poison;
      } catch (...) {
        state->set_error(std::current_exception());
      }
      return nullptr;
    };
    bool ok = mailbox_.push(std::move(task));
    if (!ok) {
      if (state_.load() == ActorState::kFailed) {
        state->set_error(failure_error());
        return fut;
      }
      RLG_REQUIRE(false, "call on stopped actor");
    }
    return fut;
  }

  // Graceful shutdown: drain outstanding calls, then join.
  void stop() {
    mailbox_.close();
    if (thread_.joinable()) thread_.join();
    ActorState expected = ActorState::kRunning;
    state_.compare_exchange_strong(expected, ActorState::kStopped);
  }

  ActorState state() const { return state_.load(std::memory_order_acquire); }
  bool failed() const { return state() == ActorState::kFailed; }

  // The exception that killed the actor (null while healthy).
  std::exception_ptr failure() const {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    return failure_;
  }

  size_t pending_calls() const { return mailbox_.size(); }
  int64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    // Returns non-null when the task poisoned the actor (threw
    // ActorDeadError); the run loop then fails the actor with it.
    std::function<std::exception_ptr(T&)> run;
    std::shared_ptr<detail::FutureState> state;
  };

  void run_loop(const std::function<std::unique_ptr<T>()>& factory) {
    std::unique_ptr<T> instance;
    try {
      instance = factory();
    } catch (...) {
      fail(std::current_exception());
      return;
    }
    while (true) {
      auto task = mailbox_.pop();
      if (!task.has_value()) break;
      if (injector_) {
        FaultDecision d = injector_->next();
        switch (d.action) {
          case FaultAction::kNone:
            break;
          case FaultAction::kDelay:
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                d.delay_ms));
            break;
          case FaultAction::kFailTask:
            task->state->set_error(std::make_exception_ptr(
                InjectedFaultError("injected task failure")));
            continue;
          case FaultAction::kCrashActor:
            // Flip to kFailed before resolving the doomed future so anyone
            // woken by it already observes the actor as dead.
            fail(std::make_exception_ptr(
                InjectedFaultError("injected actor crash")));
            task->state->set_error(std::make_exception_ptr(
                InjectedFaultError("injected actor crash")));
            return;
        }
      }
      std::exception_ptr poison;
      {
        trace::TraceSpan span("actor", "actor/task");
        span.set_arg("pending", static_cast<int64_t>(mailbox_.size()));
        poison = task->run(*instance);
      }
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      if (poison) {
        fail(poison);
        return;
      }
    }
  }

  // Marks the actor dead and fails every queued call; never touches the
  // hosting process. Runs on the actor thread.
  void fail(std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(failure_mutex_);
      failure_ = error;
    }
    state_.store(ActorState::kFailed, std::memory_order_release);
    mailbox_.close();
    while (auto task = mailbox_.try_pop()) {
      task->state->set_error(failure_error());
    }
  }

  std::exception_ptr failure_error() const {
    std::string why = "actor is dead";
    bool lost = false;
    {
      std::lock_guard<std::mutex> lock(failure_mutex_);
      if (failure_) {
        try {
          std::rethrow_exception(failure_);
        } catch (const ActorLostError& e) {
          // Permanent loss (restart budget exhausted) keeps its type so
          // wait_for/get callers can stop waiting for a replacement.
          why = std::string("actor is lost: ") + e.what();
          lost = true;
        } catch (const std::exception& e) {
          why = std::string("actor is dead: ") + e.what();
        } catch (...) {
        }
      }
    }
    if (lost) return std::make_exception_ptr(ActorLostError(why));
    return std::make_exception_ptr(ActorDeadError(why));
  }

  BlockingQueue<Task> mailbox_;
  std::shared_ptr<FaultInjector> injector_;
  std::atomic<ActorState> state_{ActorState::kRunning};
  std::atomic<int64_t> tasks_executed_{0};
  mutable std::mutex failure_mutex_;
  std::exception_ptr failure_;
  std::thread thread_;
};

}  // namespace raylite
}  // namespace rlgraph
