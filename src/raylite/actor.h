// raylite actors: each actor instance lives on its own mailbox thread;
// method calls enqueue closures and return futures. Mirrors Ray's
// actor.method.remote() -> future pattern with in-process threads.
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/errors.h"
#include "util/queues.h"

namespace rlgraph {
namespace raylite {

// Type-erased future used by wait(); Future<T> wraps it with typed get().
class UntypedFuture {
 public:
  UntypedFuture() = default;
  explicit UntypedFuture(std::shared_future<std::shared_ptr<void>> fut)
      : fut_(std::move(fut)) {}

  bool valid() const { return fut_.valid(); }
  bool ready() const {
    return fut_.valid() &&
           fut_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
  }
  void wait() const { fut_.wait(); }
  std::shared_ptr<void> get_raw() const { return fut_.get(); }

 protected:
  std::shared_future<std::shared_ptr<void>> fut_;
};

template <typename R>
class Future : public UntypedFuture {
 public:
  Future() = default;
  explicit Future(std::shared_future<std::shared_ptr<void>> fut)
      : UntypedFuture(std::move(fut)) {}

  // Blocks; rethrows the actor-side exception if the call failed.
  R get() const {
    std::shared_ptr<void> raw = fut_.get();
    return *std::static_pointer_cast<R>(raw);
  }
};

// Blocks until at least num_returns of the futures are ready (or all
// remaining), mirroring ray.wait(). Returns indices of ready futures.
std::vector<size_t> wait(const std::vector<UntypedFuture>& futures,
                         size_t num_returns);

// Hosts an instance of T on a dedicated thread. The instance is constructed
// on the actor thread (via the factory), used only there, and destroyed
// there — so non-thread-safe state (graph executors!) is safe inside.
template <typename T>
class Actor {
 public:
  // Spawn with a factory executed on the actor thread.
  explicit Actor(std::function<std::unique_ptr<T>()> factory) {
    thread_ = std::thread([this, factory = std::move(factory)] {
      std::unique_ptr<T> instance = factory();
      while (true) {
        auto task = mailbox_.pop();
        if (!task.has_value()) break;
        (*task)(*instance);
      }
    });
  }

  ~Actor() { stop(); }

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  // Enqueue a call; fn runs on the actor thread with exclusive access.
  template <typename Fn,
            typename R = std::invoke_result_t<Fn, T&>>
  Future<R> call(Fn fn) {
    auto promise = std::make_shared<std::promise<std::shared_ptr<void>>>();
    Future<R> fut(promise->get_future().share());
    bool ok = mailbox_.push([promise, fn = std::move(fn)](T& instance) mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn(instance);
          promise->set_value(std::make_shared<int>(0));
        } else {
          promise->set_value(
              std::make_shared<R>(fn(instance)));
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    RLG_REQUIRE(ok, "call on stopped actor");
    return fut;
  }

  // Graceful shutdown: drain outstanding calls, then join.
  void stop() {
    mailbox_.close();
    if (thread_.joinable()) thread_.join();
  }

  size_t pending_calls() const { return mailbox_.size(); }

 private:
  BlockingQueue<std::function<void(T&)>> mailbox_;
  std::thread thread_;
};

// Future<void> needs a distinct get().
template <>
class Future<void> : public UntypedFuture {
 public:
  Future() = default;
  explicit Future(std::shared_future<std::shared_ptr<void>> fut)
      : UntypedFuture(std::move(fut)) {}
  void get() const { fut_.get(); }
};

}  // namespace raylite
}  // namespace rlgraph
