#include "raylite/fault_injection.h"

namespace rlgraph {
namespace raylite {

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_(config.seed) {}

FaultDecision FaultInjector::next() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++decisions_;
  FaultDecision d;
  if (decisions_ <= config_.warmup_tasks) return d;
  // Exactly-once deterministic crash after N completed tasks (N == 0 kills
  // the very first task): a replacement actor sharing this injector
  // continues with the probabilistic schedule instead of dying again.
  if (config_.crash_after_tasks >= 0 &&
      decisions_ == config_.crash_after_tasks + 1) {
    d.action = FaultAction::kCrashActor;
    ++crashes_;
    return d;
  }
  double u = rng_.uniform();
  if (u < config_.crash_prob) {
    d.action = FaultAction::kCrashActor;
    ++crashes_;
  } else if (u < config_.crash_prob + config_.task_failure_prob) {
    d.action = FaultAction::kFailTask;
    ++task_failures_;
  } else if (u < config_.crash_prob + config_.task_failure_prob +
                     config_.delay_prob) {
    d.action = FaultAction::kDelay;
    d.delay_ms = rng_.uniform(config_.delay_min_ms, config_.delay_max_ms);
    ++delays_;
  }
  return d;
}

int64_t FaultInjector::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

int64_t FaultInjector::injected_task_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return task_failures_;
}

int64_t FaultInjector::injected_delays() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delays_;
}

int64_t FaultInjector::injected_crashes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashes_;
}

}  // namespace raylite
}  // namespace rlgraph
