// Deterministic fault injection for the raylite actor engine.
//
// A FaultInjector is threaded into an actor's mailbox loop and consulted once
// per dequeued task; it decides — from a seeded Rng stream, so the schedule
// is reproducible — whether to run the task normally, fail it, delay it
// (straggler simulation), or crash the whole actor. Chaos tests drive the
// Ape-X / IMPALA executors through injectors to prove the supervision and
// degraded-mode coordination paths without real process faults.
#pragma once

#include <cstdint>
#include <mutex>

#include "util/random.h"

namespace rlgraph {
namespace raylite {

struct FaultConfig {
  // Per-task probabilities; evaluated in crash > task-failure > delay order
  // from a single uniform draw (their sum should stay <= 1).
  double crash_prob = 0.0;
  double task_failure_prob = 0.0;
  double delay_prob = 0.0;
  // Injected delay duration, uniform in [delay_min_ms, delay_max_ms).
  double delay_min_ms = 1.0;
  double delay_max_ms = 5.0;
  // No injection for the first `warmup_tasks` decisions (lets workers build
  // and produce some data before chaos starts).
  int64_t warmup_tasks = 0;
  // Deterministic crash after this many completed tasks (0 kills the very
  // first task); < 0 disables. Used by tests that must observe >= 1 crash.
  int64_t crash_after_tasks = -1;
  uint64_t seed = 0;
};

enum class FaultAction { kNone, kFailTask, kDelay, kCrashActor };

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  double delay_ms = 0.0;

  bool operator==(const FaultDecision& other) const {
    return action == other.action && delay_ms == other.delay_ms;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  // Draws the next decision from the seeded schedule. Thread-safe; with a
  // single consumer (one actor), the decision sequence depends only on the
  // seed and config.
  FaultDecision next();

  const FaultConfig& config() const { return config_; }
  int64_t decisions() const;
  int64_t injected_task_failures() const;
  int64_t injected_delays() const;
  int64_t injected_crashes() const;

 private:
  FaultConfig config_;
  Rng rng_;
  mutable std::mutex mutex_;
  int64_t decisions_ = 0;
  int64_t task_failures_ = 0;
  int64_t delays_ = 0;
  int64_t crashes_ = 0;
};

}  // namespace raylite
}  // namespace rlgraph
