#include "raylite/net/connection.h"

#include "util/trace.h"

namespace rlgraph {
namespace raylite {
namespace net {

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool is_data_frame(FrameType type) {
  return type == FrameType::kRequest || type == FrameType::kResponse ||
         type == FrameType::kError;
}

}  // namespace

Connection::Connection(Socket socket, ConnectionOptions options,
                       FrameHandler on_frame, DownHandler on_down,
                       std::shared_ptr<WireFaultInjector> injector,
                       MetricRegistry* metrics, std::string metric_prefix)
    : socket_(std::move(socket)),
      options_(options),
      on_frame_(std::move(on_frame)),
      on_down_(std::move(on_down)),
      injector_(std::move(injector)),
      metrics_(metrics),
      metric_prefix_(std::move(metric_prefix)) {
  // Bound blocking writes: if the peer stalls (stops reading without
  // closing), the socket buffer fills and send_all would otherwise block
  // forever — the writer could then neither ping nor trip the heartbeat
  // timeout. With the timeout, the blocked send fails and becomes a fault.
  socket_.set_send_timeout(options_.heartbeat_timeout_ms);
  last_recv_ns_.store(now_ns());
  reader_ = std::thread([this] { reader_loop(); });
  writer_ = std::thread([this] { writer_loop(); });
}

Connection::~Connection() {
  close_hard();
  if (reader_.joinable()) reader_.join();
  if (writer_.joinable()) writer_.join();
}

bool Connection::send(Frame frame) {
  if (down_.load(std::memory_order_acquire)) return false;
  return outbound_.push(std::move(frame));
}

void Connection::close_graceful(double drain_timeout_ms) {
  Frame goodbye;
  goodbye.type = FrameType::kGoodbye;
  outbound_.push(std::move(goodbye));
  // Closing the queue lets the writer drain what is already enqueued
  // (including the goodbye) and then exit, which hard-closes the socket and
  // unblocks the reader.
  outbound_.close();
  // Wait for the writer to finish the drain (it marks the connection down
  // once everything incl. the goodbye hit the wire). Returning earlier would
  // let the owner destroy us and hard-cut the socket under the writer, so
  // the peer would see EOF mid-stream instead of a drained goodbye.
  std::unique_lock<std::mutex> lock(down_mutex_);
  down_cv_.wait_for(
      lock, std::chrono::duration<double, std::milli>(drain_timeout_ms),
      [this] { return down_.load(std::memory_order_acquire); });
}

void Connection::close_hard() { become_down(true, "closed by owner"); }

void Connection::become_down(bool graceful, const std::string& reason) {
  bool expected = false;
  if (!down_.compare_exchange_strong(expected, true)) return;
  {
    // Pair the flag flip with the lock so a close_graceful() waiter can't
    // miss the notify between its predicate check and its wait.
    std::lock_guard<std::mutex> lock(down_mutex_);
  }
  down_cv_.notify_all();
  outbound_.close();
  socket_.shutdown_both();  // unblocks both threads' blocking I/O
  if (metrics_ != nullptr && !graceful) {
    metrics_->increment(metric_prefix_ + ".faulted");
  }
  if (on_down_) on_down_(graceful, reason);
}

void Connection::reader_loop() {
  while (!down_.load(std::memory_order_acquire)) {
    Frame frame;
    bool ok;
    try {
      ok = read_frame(socket_, &frame);
    } catch (const SerializationError& e) {
      become_down(false, std::string("corrupt stream: ") + e.what());
      return;
    }
    if (!ok) {
      become_down(peer_said_goodbye_.load(), "connection cut (EOF/reset)");
      return;
    }
    last_recv_ns_.store(now_ns(), std::memory_order_release);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    switch (frame.type) {
      case FrameType::kPing: {
        Frame pong;
        pong.type = FrameType::kPong;
        send(pong);
        break;
      }
      case FrameType::kPong:
        break;  // liveness clock already refreshed
      case FrameType::kGoodbye:
        peer_said_goodbye_.store(true);
        become_down(true, "peer said goodbye");
        return;
      default: {
        trace::TraceSpan span("net", "net/recv");
        span.set_arg("bytes", static_cast<int64_t>(frame.payload.size()));
        if (on_frame_) on_frame_(std::move(frame));
        break;
      }
    }
  }
}

bool Connection::send_now(const Frame& frame, std::string* down_reason) {
  WireFaultDecision decision;
  if (injector_ != nullptr && is_data_frame(frame.type)) {
    decision = injector_->next();
  }
  switch (decision.action) {
    case WireFaultAction::kDisconnect:
      *down_reason = "injected disconnect";
      return false;
    case WireFaultAction::kDrop:
      if (metrics_ != nullptr) {
        metrics_->increment(metric_prefix_ + ".frames_dropped");
      }
      return true;  // silently lost; the connection itself lives on
    case WireFaultAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(decision.delay_ms));
      break;
    default:
      break;
  }
  std::vector<uint8_t> bytes = encode_frame(frame);
  if (decision.action == WireFaultAction::kTruncate) {
    // Cut mid-frame: the peer reads a short payload and treats the stream as
    // dead — exactly what a crash between write() calls looks like.
    size_t prefix = bytes.size() > 1 ? bytes.size() / 2 : 1;
    socket_.send_all(bytes.data(), prefix);
    *down_reason = "injected truncation";
    return false;
  }
  {
    trace::TraceSpan span("net", "net/send");
    span.set_arg("bytes", static_cast<int64_t>(bytes.size()));
    int copies = decision.action == WireFaultAction::kDuplicate ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      if (!socket_.send_all(bytes.data(), bytes.size())) {
        *down_reason = "send failed (peer gone)";
        return false;
      }
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return true;
}

void Connection::writer_loop() {
  const auto idle_wait = std::chrono::duration<double, std::milli>(
      options_.heartbeat_interval_ms);
  const double timeout_ns = options_.heartbeat_timeout_ms * 1e6;
  while (!down_.load(std::memory_order_acquire)) {
    // Check peer silence on EVERY iteration, not just idle ticks — under
    // sustained outbound traffic pop_for never times out, and a stalled
    // (reading nothing, sending nothing) peer must still be declared dead.
    double silent_ns = static_cast<double>(
        now_ns() - last_recv_ns_.load(std::memory_order_acquire));
    if (silent_ns > timeout_ns) {
      if (metrics_ != nullptr) {
        metrics_->increment(metric_prefix_ + ".heartbeat_timeouts");
      }
      become_down(false, "heartbeat timeout (peer silent for " +
                             std::to_string(silent_ns / 1e6) + "ms)");
      return;
    }
    std::optional<Frame> frame = outbound_.pop_for(idle_wait);
    std::string down_reason;
    if (frame.has_value()) {
      if (!send_now(*frame, &down_reason)) {
        become_down(false, down_reason);
        return;
      }
      continue;
    }
    if (outbound_.closed()) {
      // close_graceful(): everything (incl. the goodbye) is flushed.
      become_down(true, "drained and closed");
      return;
    }
    // Idle: probe the peer.
    Frame ping;
    ping.type = FrameType::kPing;
    if (!send_now(ping, &down_reason)) {
      become_down(false, down_reason);
      return;
    }
  }
}

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
