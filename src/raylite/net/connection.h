// A framed, heartbeat-monitored, fault-injectable connection.
//
// Connection owns an established Socket plus two threads:
//   * the reader thread parses frames off the wire, answers kPing with
//     kPong, refreshes the liveness clock on every frame, and hands
//     request/response/error frames to the owner's on_frame callback;
//   * the writer thread drains the outbound queue, injects wire faults on
//     data frames (see wire_fault.h), emits a kPing whenever the link has
//     been idle for heartbeat_interval_ms, and declares the peer dead when
//     nothing has been received for heartbeat_timeout_ms.
//
// Death (EOF, reset, parse error, heartbeat timeout, injected cut) is
// funneled through a single on_down(graceful, reason) callback that fires
// exactly once. on_down runs on the reader or writer thread: it must signal
// the owner, never destroy the Connection. The owner destroys the
// Connection from outside those threads (the destructor joins them).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <memory>
#include <string>
#include <thread>

#include "raylite/net/frame.h"
#include "raylite/net/wire_fault.h"
#include "util/metrics.h"
#include "util/queues.h"

namespace rlgraph {
namespace raylite {
namespace net {

struct ConnectionOptions {
  // Send a kPing after this much outbound idleness; expect *some* frame from
  // the peer at least every heartbeat_timeout_ms (checked on every writer
  // iteration, so sustained outbound traffic cannot starve the check). The
  // timeout also bounds each blocking socket write (SO_SNDTIMEO), so a peer
  // that stops reading fails the send instead of wedging the writer. It must
  // comfortably exceed the interval (and sanitizer slowdowns): the defaults
  // tolerate a 20x stall before declaring death.
  double heartbeat_interval_ms = 50.0;
  double heartbeat_timeout_ms = 1000.0;
};

class Connection {
 public:
  using FrameHandler = std::function<void(Frame&&)>;
  // graceful=true means the peer said kGoodbye (drained shutdown); false is
  // a fault (EOF, reset, corrupt stream, heartbeat timeout, injected cut).
  using DownHandler = std::function<void(bool graceful,
                                         const std::string& reason)>;

  Connection(Socket socket, ConnectionOptions options, FrameHandler on_frame,
             DownHandler on_down,
             std::shared_ptr<WireFaultInjector> injector = nullptr,
             MetricRegistry* metrics = nullptr,
             std::string metric_prefix = "net.conn");
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Enqueue a frame for the writer thread; false once closing/closed.
  bool send(Frame frame);

  // Graceful shutdown: flush everything already enqueued, then a kGoodbye,
  // then close. Peer observes a drained close, not a fault. Blocks (up to
  // drain_timeout_ms) until the writer has actually flushed — without the
  // wait, a Connection destroyed right after this call would hard-cut the
  // socket under the writer and the peer would see a fault instead of the
  // drained goodbye.
  void close_graceful(double drain_timeout_ms = 2000.0);
  // Hard shutdown: cut the socket now (pending outbound frames are lost).
  void close_hard();

  bool alive() const { return !down_.load(std::memory_order_acquire); }
  int64_t frames_sent() const { return frames_sent_.load(); }
  int64_t frames_received() const { return frames_received_.load(); }

 private:
  void reader_loop();
  void writer_loop();
  // Sends one frame through the fault injector; returns false if the
  // connection must come down (send failure or injected cut).
  bool send_now(const Frame& frame, std::string* down_reason);
  void become_down(bool graceful, const std::string& reason);

  Socket socket_;
  ConnectionOptions options_;
  FrameHandler on_frame_;
  DownHandler on_down_;
  std::shared_ptr<WireFaultInjector> injector_;
  MetricRegistry* metrics_;
  std::string metric_prefix_;

  BlockingQueue<Frame> outbound_;
  std::mutex down_mutex_;
  std::condition_variable down_cv_;
  std::atomic<bool> down_{false};
  std::atomic<bool> peer_said_goodbye_{false};
  std::atomic<int64_t> last_recv_ns_{0};
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> frames_received_{0};
  std::thread reader_;
  std::thread writer_;
};

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
