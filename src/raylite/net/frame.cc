#include "raylite/net/frame.h"

#include <cstring>

namespace rlgraph {
namespace raylite {
namespace net {

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kRequest:
      return "request";
    case FrameType::kResponse:
      return "response";
    case FrameType::kError:
      return "error";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kGoodbye:
      return "goodbye";
  }
  return "unknown";
}

std::vector<uint8_t> encode_frame(const Frame& frame) {
  RLG_CHECK_MSG(frame.payload.size() <= kMaxFramePayload,
                "frame payload " << frame.payload.size()
                                 << " bytes exceeds wire cap");
  ByteWriter w;
  w.write_u32(kFrameMagic);
  w.write_u8(static_cast<uint8_t>(frame.type));
  w.write_u8(0);  // flags
  w.write_u8(0);  // reserved
  w.write_u8(0);  // reserved
  w.write_u64(frame.request_id);
  w.write_u32(static_cast<uint32_t>(frame.payload.size()));
  w.write_bytes(frame.payload.data(), frame.payload.size());
  std::vector<uint8_t> bytes = w.take();
  RLG_CHECK(bytes.size() == kFrameHeaderBytes + frame.payload.size());
  return bytes;
}

bool read_frame(Socket& socket, Frame* out) {
  uint8_t header[kFrameHeaderBytes];
  if (!socket.recv_all(header, sizeof(header))) return false;
  uint32_t magic;
  std::memcpy(&magic, header, 4);
  if (magic != kFrameMagic) {
    throw SerializationError("net frame: bad magic 0x" +
                             std::to_string(magic) +
                             " (stream corrupt or peer is not raylite)");
  }
  uint8_t type = header[4];
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kGoodbye)) {
    throw SerializationError("net frame: unknown frame type " +
                             std::to_string(type));
  }
  if (header[5] != 0 || header[6] != 0 || header[7] != 0) {
    throw SerializationError(
        "net frame: nonzero flags/reserved header bytes (stream corrupt)");
  }
  uint64_t request_id;
  std::memcpy(&request_id, header + 8, 8);
  uint32_t payload_size;
  std::memcpy(&payload_size, header + 16, 4);
  if (payload_size > kMaxFramePayload) {
    throw SerializationError("net frame: payload size " +
                             std::to_string(payload_size) +
                             " exceeds wire cap");
  }
  out->type = static_cast<FrameType>(type);
  out->request_id = request_id;
  out->payload.resize(payload_size);
  if (payload_size > 0 && !socket.recv_all(out->payload.data(), payload_size)) {
    return false;  // cut mid-frame (peer death or injected truncation)
  }
  return true;
}

std::vector<uint8_t> encode_request_payload(const std::string& method,
                                            const std::vector<uint8_t>& body) {
  ByteWriter w;
  w.write_string(method);
  w.write_bytes(body.data(), body.size());
  return w.take();
}

void decode_request_payload(const std::vector<uint8_t>& payload,
                            std::string* method, std::vector<uint8_t>* body) {
  ByteReader r(payload);
  *method = r.read_string();
  *body = r.read_remaining();
}

std::vector<uint8_t> encode_error_payload(const std::string& error_type,
                                          const std::string& message) {
  ByteWriter w;
  w.write_string(error_type);
  w.write_string(message);
  return w.take();
}

void decode_error_payload(const std::vector<uint8_t>& payload,
                          std::string* error_type, std::string* message) {
  ByteReader r(payload);
  *error_type = r.read_string();
  *message = r.read_string();
}

void throw_remote_error(const std::string& error_type,
                        const std::string& message) {
  // Keep in sync with RpcServer's error_type_name(). Unknown types degrade
  // to the base Error, never to a silent success.
  if (error_type == "ValueError") throw ValueError(message);
  if (error_type == "NotFoundError") throw NotFoundError(message);
  if (error_type == "SerializationError") throw SerializationError(message);
  if (error_type == "TimeoutError") throw TimeoutError(message);
  if (error_type == "OverloadedError") throw OverloadedError(message);
  if (error_type == "ActorLostError") throw ActorLostError(message);
  if (error_type == "ActorDeadError") throw ActorDeadError(message);
  if (error_type == "InjectedFaultError") throw InjectedFaultError(message);
  if (error_type == "ConnectionLostError") throw ConnectionLostError(message);
  if (error_type == "ConnectionError") throw ConnectionError(message);
  if (error_type == "BuildError") throw BuildError(message);
  if (error_type == "ConfigError") throw ConfigError(message);
  throw Error(error_type + ": " + message);
}

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
