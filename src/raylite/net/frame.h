// Wire protocol for the raylite socket transport.
//
// Every message on a connection is one length-prefixed frame (little-endian,
// the same byte conventions as the "RLGW" weight snapshot format in
// util/serialization):
//
//   u32 magic        "RLGN" (0x4E474C52 little-endian on the wire)
//   u8  type         FrameType
//   u8  flags        reserved, must be 0
//   u16 reserved     must be 0
//   u64 request_id   correlates kResponse/kError with kRequest; 0 otherwise
//   u32 payload_size bytes following the 20-byte header (capped)
//   ... payload
//
// kRequest payloads are `string method` + opaque body bytes; kError payloads
// are `string error_type` + `string message` so typed rlgraph errors survive
// the wire. Anything that fails to parse (bad magic, oversized payload,
// short read — e.g. an injected truncation) kills the connection: framing
// never resynchronizes on a corrupt stream, it reconnects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "raylite/net/socket.h"
#include "util/serialization.h"

namespace rlgraph {
namespace raylite {
namespace net {

constexpr uint32_t kFrameMagic = 0x4E474C52;  // "RLGN"
constexpr uint32_t kFrameHeaderBytes = 20;
// Frames above this size indicate a corrupt stream (or a caller bug), not a
// legitimate payload. SampleBatches and weight snapshots are well under it.
constexpr uint32_t kMaxFramePayload = 1u << 30;

enum class FrameType : uint8_t {
  kRequest = 1,   // RPC call: payload = method string + body
  kResponse = 2,  // RPC success: payload = result body
  kError = 3,     // RPC failure: payload = error_type string + message string
  kPing = 4,      // heartbeat probe (any received frame refreshes liveness)
  kPong = 5,      // heartbeat reply
  kGoodbye = 6,   // graceful close: peer drained and is going away
};

const char* to_string(FrameType type);

struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

// Header + payload as one contiguous buffer, ready for send_all.
std::vector<uint8_t> encode_frame(const Frame& frame);

// Blocking read of exactly one frame. Returns false on EOF / reset /
// shutdown (connection is then unusable); throws SerializationError on a
// corrupt header (bad magic / oversized payload / nonzero reserved bits).
bool read_frame(Socket& socket, Frame* out);

// Request/error payload helpers.
std::vector<uint8_t> encode_request_payload(const std::string& method,
                                            const std::vector<uint8_t>& body);
void decode_request_payload(const std::vector<uint8_t>& payload,
                            std::string* method, std::vector<uint8_t>* body);
std::vector<uint8_t> encode_error_payload(const std::string& error_type,
                                          const std::string& message);
void decode_error_payload(const std::vector<uint8_t>& payload,
                          std::string* error_type, std::string* message);

// Rebuilds a typed rlgraph exception from a wire error payload so remote
// failures rethrow as the same type the handler threw locally.
[[noreturn]] void throw_remote_error(const std::string& error_type,
                                     const std::string& message);

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
