#include "raylite/net/remote_store.h"

namespace rlgraph {
namespace raylite {
namespace net {

void register_object_store_handlers(RpcServer* server, ObjectStore* store) {
  server->register_handler(
      "store.put", [store](const std::vector<uint8_t>& body) {
        ObjectId id = store->put(body);
        ByteWriter w;
        w.write_u64(id.value);
        return w.take();
      });
  server->register_handler(
      "store.get", [store](const std::vector<uint8_t>& body) {
        ByteReader r(body);
        ObjectId id{r.read_u64()};
        std::shared_ptr<const std::vector<uint8_t>> bytes =
            store->get<std::vector<uint8_t>>(id);
        return *bytes;
      });
  server->register_handler(
      "store.erase", [store](const std::vector<uint8_t>& body) {
        ByteReader r(body);
        store->erase(ObjectId{r.read_u64()});
        return std::vector<uint8_t>();
      });
}

ObjectId RemoteObjectStore::put(const std::vector<uint8_t>& bytes) {
  std::vector<uint8_t> reply = client_->call("store.put", bytes).get();
  ByteReader r(reply);
  return ObjectId{r.read_u64()};
}

std::vector<uint8_t> RemoteObjectStore::get(ObjectId id) {
  return get_async(id).get();
}

Future<std::vector<uint8_t>> RemoteObjectStore::get_async(ObjectId id) {
  ByteWriter w;
  w.write_u64(id.value);
  return client_->call("store.get", w.take());
}

void RemoteObjectStore::erase(ObjectId id) {
  ByteWriter w;
  w.write_u64(id.value);
  client_->call("store.erase", w.take()).get();
}

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
