// The raylite object store over the wire.
//
// ObjectStoreServer exposes a process-local ObjectStore's byte payloads via
// three RPC methods ("store.put" / "store.get" / "store.erase");
// RemoteObjectStore is the client view: put() ships bytes to the hosting
// process and returns the ObjectId, get() fetches them back. Payloads are
// raw byte blobs — higher layers serialize (weight snapshots and sample
// batches already have wire codecs), which keeps the store type-safe at the
// boundary where type erasure cannot cross a process.
#pragma once

#include <memory>
#include <vector>

#include "raylite/net/rpc.h"
#include "raylite/object_store.h"

namespace rlgraph {
namespace raylite {
namespace net {

// Registers object-store handlers on an RpcServer. The store must outlive
// the server. Multiple services (e.g. an actor service and the store) can
// share one server/port.
void register_object_store_handlers(RpcServer* server, ObjectStore* store);

class RemoteObjectStore {
 public:
  // Shares an existing client (typical: the same connection as actor RPCs).
  explicit RemoteObjectStore(RpcClient* client) : client_(client) {}

  // Ships the bytes to the remote store; returns its id there.
  ObjectId put(const std::vector<uint8_t>& bytes);
  // Fetches a remote object's bytes; throws NotFoundError if absent.
  std::vector<uint8_t> get(ObjectId id);
  void erase(ObjectId id);

  // Async variants resolved through raylite futures.
  Future<std::vector<uint8_t>> get_async(ObjectId id);

 private:
  RpcClient* client_;
};

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
