#include "raylite/net/rpc.h"

#include <algorithm>

#include "util/logging.h"
#include "util/trace.h"

namespace rlgraph {
namespace raylite {
namespace net {

namespace {

// Most-derived first so remote rethrow reconstructs the exact type.
std::string error_type_name(const std::exception& e) {
  if (dynamic_cast<const ActorLostError*>(&e)) return "ActorLostError";
  if (dynamic_cast<const ActorDeadError*>(&e)) return "ActorDeadError";
  if (dynamic_cast<const InjectedFaultError*>(&e)) return "InjectedFaultError";
  if (dynamic_cast<const ConnectionLostError*>(&e)) {
    return "ConnectionLostError";
  }
  if (dynamic_cast<const ConnectionError*>(&e)) return "ConnectionError";
  if (dynamic_cast<const SerializationError*>(&e)) return "SerializationError";
  if (dynamic_cast<const TimeoutError*>(&e)) return "TimeoutError";
  if (dynamic_cast<const OverloadedError*>(&e)) return "OverloadedError";
  if (dynamic_cast<const NotFoundError*>(&e)) return "NotFoundError";
  if (dynamic_cast<const BuildError*>(&e)) return "BuildError";
  if (dynamic_cast<const ConfigError*>(&e)) return "ConfigError";
  if (dynamic_cast<const ValueError*>(&e)) return "ValueError";
  return "Error";
}

}  // namespace

const char* to_string(RpcClientState state) {
  switch (state) {
    case RpcClientState::kConnected:
      return "connected";
    case RpcClientState::kReconnecting:
      return "reconnecting";
    case RpcClientState::kDown:
      return "down";
  }
  return "unknown";
}

// --- RpcClient -------------------------------------------------------------

RpcClient::RpcClient(const Endpoint& endpoint, RpcClientOptions options,
                     MetricRegistry* metrics,
                     std::shared_ptr<WireFaultInjector> injector)
    : endpoint_(endpoint),
      options_(options),
      metrics_(metrics),
      injector_(std::move(injector)),
      backoff_rng_(options.seed ^ 0x9E3779B97F4A7C15ULL),
      backoff_ms_(options.backoff_initial_ms) {
  Socket socket = Socket::connect(endpoint_, options_.connect_timeout_ms);
  conn_ = make_connection(std::move(socket));
  keeper_ = std::thread([this] { keeper_loop(); });
}

RpcClient::~RpcClient() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    state_ = RpcClientState::kDown;
  }
  cv_.notify_all();
  if (keeper_.joinable()) keeper_.join();
  std::vector<InFlight> doomed;
  std::unique_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fail_all_in_flight_locked(&doomed, "client destroyed");
    conn = std::move(conn_);
  }
  for (InFlight& f : doomed) {
    f.state->set_error(std::make_exception_ptr(
        ConnectionLostError("rpc client destroyed with call in flight")));
  }
  conn.reset();  // joins the connection threads
}

std::unique_ptr<Connection> RpcClient::make_connection(Socket socket) {
  return std::make_unique<Connection>(
      std::move(socket), options_.connection,
      [this](Frame&& frame) { on_frame(std::move(frame)); },
      [this](bool graceful, const std::string& reason) {
        on_down(graceful, reason);
      },
      injector_, metrics_, "net.client");
}

Future<std::vector<uint8_t>> RpcClient::call(const std::string& method,
                                             std::vector<uint8_t> body) {
  trace::TraceSpan span("net", "net/rpc");
  auto state = std::make_shared<detail::FutureState>();
  Future<std::vector<uint8_t>> future(state);
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.payload = encode_request_payload(method, body);
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == RpcClientState::kDown) {
      state->set_error(std::make_exception_ptr(ActorLostError(
          "rpc endpoint " + endpoint_.to_string() +
          " is permanently down (reconnect budget exhausted)")));
      return future;
    }
    if (state_ == RpcClientState::kReconnecting || conn_ == nullptr) {
      state->set_error(std::make_exception_ptr(ConnectionLostError(
          "rpc endpoint " + endpoint_.to_string() +
          " is unreachable (reconnecting)")));
      return future;
    }
    uint64_t id = next_id_++;
    frame.request_id = id;
    InFlight entry;
    entry.state = state;
    entry.method = method;
    entry.body = std::move(body);
    entry.issued = std::chrono::steady_clock::now();
    in_flight_.emplace(id, std::move(entry));
    if (metrics_ != nullptr) metrics_->increment("net.client.calls");
    // send() only enqueues on the connection's unbounded outbound queue, so
    // holding mutex_ across it is cheap — and necessary: keeper_loop moves
    // conn_ out and destroys it under this same lock when reconnecting, so a
    // raw Connection* used after unlock could be freed mid-send.
    sent = conn_->send(std::move(frame));
    if (!sent) {
      // Raced the connection going down; on_down may or may not have seen
      // our entry. Resolving twice is safe (first resolution wins).
      in_flight_.erase(id);
    }
  }
  if (!sent) {
    state->set_error(std::make_exception_ptr(ConnectionLostError(
        "rpc endpoint " + endpoint_.to_string() + " went down mid-call")));
  }
  return future;
}

void RpcClient::on_frame(Frame&& frame) {
  std::shared_ptr<detail::FutureState> state;
  std::exception_ptr error;
  std::shared_ptr<void> value;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(frame.request_id);
    if (it == in_flight_.end()) {
      // Duplicate response (injected duplication or retransmit overlap) or a
      // response that raced a timeout. Drop it.
      if (metrics_ != nullptr) {
        metrics_->increment("net.client.stray_responses");
      }
      return;
    }
    state = it->second.state;
    in_flight_.erase(it);
  }
  if (frame.type == FrameType::kResponse) {
    value = std::make_shared<std::vector<uint8_t>>(std::move(frame.payload));
  } else if (frame.type == FrameType::kError) {
    std::string type, message;
    try {
      decode_error_payload(frame.payload, &type, &message);
      throw_remote_error(type, message);
    } catch (...) {
      error = std::current_exception();
    }
  } else {
    error = std::make_exception_ptr(
        Error("unexpected frame type on rpc client"));
  }
  if (error) {
    state->set_error(error);
  } else {
    state->set_value(std::move(value));
  }
  cv_.notify_all();  // wake drain_and_close waiters
}

void RpcClient::fail_all_in_flight_locked(std::vector<InFlight>* out,
                                          const std::string& reason) {
  (void)reason;
  out->reserve(out->size() + in_flight_.size());
  for (auto& [id, entry] : in_flight_) {
    out->push_back(std::move(entry));
  }
  in_flight_.clear();
}

void RpcClient::on_down(bool graceful, const std::string& reason) {
  std::vector<InFlight> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      if (graceful || !options_.reconnect) {
        state_ = RpcClientState::kDown;
      } else if (state_ == RpcClientState::kConnected) {
        state_ = RpcClientState::kReconnecting;
        backoff_ms_ = options_.backoff_initial_ms;
        next_attempt_ = std::chrono::steady_clock::now();
      }
    }
    fail_all_in_flight_locked(&doomed, reason);
    if (metrics_ != nullptr) {
      metrics_->increment("net.client.connections_lost");
    }
  }
  for (InFlight& f : doomed) {
    f.state->set_error(std::make_exception_ptr(ConnectionLostError(
        "connection to " + endpoint_.to_string() + " lost: " + reason)));
  }
  cv_.notify_all();
}

void RpcClient::keeper_loop() {
  const auto tick = std::chrono::milliseconds(5);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, tick);
    if (stopping_) break;

    // 1. Reconnect state machine.
    if (state_ == RpcClientState::kReconnecting &&
        std::chrono::steady_clock::now() >= next_attempt_) {
      std::unique_ptr<Connection> dead = std::move(conn_);
      lock.unlock();
      dead.reset();  // join the dead connection's threads
      Socket socket;
      bool ok = false;
      try {
        socket = Socket::connect(endpoint_, options_.connect_timeout_ms);
        ok = true;
      } catch (const ConnectionError&) {
      }
      lock.lock();
      if (stopping_) break;
      if (ok) {
        conn_ = make_connection(std::move(socket));
        state_ = RpcClientState::kConnected;
        consecutive_failures_ = 0;
        backoff_ms_ = options_.backoff_initial_ms;
        ++reconnects_;
        if (metrics_ != nullptr) metrics_->increment("net.client.reconnects");
        RLG_LOG_INFO << "rpc client reconnected to " << endpoint_.to_string();
      } else {
        ++consecutive_failures_;
        if (metrics_ != nullptr) {
          metrics_->increment("net.client.reconnect_failures");
        }
        if (options_.max_reconnects >= 0 &&
            consecutive_failures_ > options_.max_reconnects) {
          state_ = RpcClientState::kDown;
          if (metrics_ != nullptr) metrics_->increment("net.client.down");
          RLG_LOG_WARN << "rpc client to " << endpoint_.to_string()
                       << " giving up after " << consecutive_failures_
                       << " failed reconnects";
        } else {
          // Exponential backoff with seeded +/- jitter so a fleet of
          // clients does not reconnect in lockstep.
          double jitter = 1.0 + options_.backoff_jitter *
                                    backoff_rng_.uniform(-1.0, 1.0);
          double wait_ms = std::max(0.1, backoff_ms_ * jitter);
          next_attempt_ = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double, std::milli>(
                                  wait_ms));
          backoff_ms_ = std::min(backoff_ms_ * options_.backoff_multiplier,
                                 options_.backoff_max_ms);
        }
      }
    }

    // 2. Per-call timeout scan (timeouts disabled when rpc_timeout_ms == 0).
    if (options_.rpc_timeout_ms <= 0.0) continue;
    auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<detail::FutureState>> timed_out;
    std::vector<Frame> retransmit;
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      double age_ms = std::chrono::duration<double, std::milli>(
                          now - it->second.issued)
                          .count();
      if (age_ms < options_.rpc_timeout_ms) {
        ++it;
        continue;
      }
      if (it->second.retransmits < options_.max_rpc_retransmits &&
          state_ == RpcClientState::kConnected && conn_ != nullptr) {
        ++it->second.retransmits;
        it->second.issued = now;
        Frame frame;
        frame.type = FrameType::kRequest;
        frame.request_id = it->first;
        frame.payload =
            encode_request_payload(it->second.method, it->second.body);
        retransmit.push_back(std::move(frame));
        if (metrics_ != nullptr) {
          metrics_->increment("net.client.retransmits");
        }
        ++it;
      } else {
        timed_out.push_back(it->second.state);
        it = in_flight_.erase(it);
        if (metrics_ != nullptr) {
          metrics_->increment("net.client.rpc_timeouts");
        }
      }
    }
    // Retransmit under the lock (send only enqueues, see call()); resolving
    // timed-out futures drops it since continuations may re-enter the client.
    for (Frame& frame : retransmit) {
      if (conn_ != nullptr) conn_->send(std::move(frame));
    }
    if (!timed_out.empty()) {
      lock.unlock();
      for (auto& state : timed_out) {
        state->set_error(std::make_exception_ptr(TimeoutError(
            "rpc to " + endpoint_.to_string() + " timed out after " +
            std::to_string(options_.rpc_timeout_ms) + "ms")));
      }
      lock.lock();
    }
  }
}

RpcClientState RpcClient::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int64_t RpcClient::reconnects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reconnects_;
}

size_t RpcClient::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_.size();
}

bool RpcClient::drain_and_close(double timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  bool drained = cv_.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [&] { return in_flight_.empty() || state_ != RpcClientState::kConnected; });
  drained = drained && in_flight_.empty();
  stopping_ = true;
  state_ = RpcClientState::kDown;
  Connection* conn = conn_.get();
  lock.unlock();
  cv_.notify_all();
  if (conn != nullptr && conn->alive()) conn->close_graceful();
  if (keeper_.joinable()) keeper_.join();
  return drained;
}

// --- RpcServer -------------------------------------------------------------

RpcServer::RpcServer(const Endpoint& endpoint, RpcServerOptions options,
                     MetricRegistry* metrics,
                     std::shared_ptr<WireFaultInjector> injector)
    : options_(options),
      metrics_(metrics),
      injector_(std::move(injector)),
      listener_(endpoint) {}

RpcServer::~RpcServer() { stop(); }

void RpcServer::register_handler(const std::string& method,
                                 RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[method] = std::move(handler);
}

void RpcServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void RpcServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Peer>> peers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    peers.swap(peers_);
  }
  for (auto& peer : peers) {
    // Let the dispatcher drain queued requests, then say goodbye.
    peer->requests.close();
    if (peer->dispatcher.joinable()) peer->dispatcher.join();
    if (peer->conn && peer->conn->alive()) peer->conn->close_graceful();
    peer->conn.reset();
  }
}

void RpcServer::accept_loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!running_) return;
    }
    Socket socket = listener_.accept(options_.accept_tick_ms);
    reap_finished_peers();
    if (!socket.valid()) continue;
    auto peer = std::make_unique<Peer>();
    Peer* raw = peer.get();
    peer->conn = std::make_unique<Connection>(
        std::move(socket), options_.connection,
        [raw](Frame&& frame) { raw->requests.push(std::move(frame)); },
        [raw](bool, const std::string&) { raw->requests.close(); },
        injector_, metrics_, "net.server");
    peer->dispatcher = std::thread([this, raw] { dispatch_loop(raw); });
    if (metrics_ != nullptr) {
      metrics_->increment("net.server.connections_accepted");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    peers_.push_back(std::move(peer));
  }
}

void RpcServer::reap_finished_peers() {
  std::vector<std::unique_ptr<Peer>> dead;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = peers_.begin(); it != peers_.end();) {
      if ((*it)->conn != nullptr && !(*it)->conn->alive()) {
        dead.push_back(std::move(*it));
        it = peers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& peer : dead) {
    peer->requests.close();
    if (peer->dispatcher.joinable()) peer->dispatcher.join();
    peer->conn.reset();
  }
}

void RpcServer::dispatch_loop(Peer* peer) {
  while (true) {
    std::optional<Frame> request = peer->requests.pop();
    if (!request.has_value()) return;  // queue closed and drained
    if (request->type != FrameType::kRequest) continue;
    const uint64_t id = request->request_id;

    // Dedup: a duplicated or retransmitted request re-sends the cached
    // response; the handler runs at most once per id per connection.
    auto seen = peer->responded.find(id);
    if (seen != peer->responded.end()) {
      duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->increment("net.server.duplicates_suppressed");
      }
      peer->conn->send(seen->second);
      continue;
    }

    Frame response;
    response.request_id = id;
    std::string method;
    std::vector<uint8_t> body;
    try {
      decode_request_payload(request->payload, &method, &body);
      RpcHandler handler;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = handlers_.find(method);
        if (it == handlers_.end()) {
          throw NotFoundError("no rpc handler registered for method '" +
                              method + "'");
        }
        handler = it->second;
      }
      trace::TraceSpan span("net", "net/handler");
      response.payload = handler(body);
      response.type = FrameType::kResponse;
    } catch (const std::exception& e) {
      response.type = FrameType::kError;
      response.payload = encode_error_payload(error_type_name(e), e.what());
      if (metrics_ != nullptr) {
        metrics_->increment("net.server.handler_errors");
      }
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);

    peer->responded_bytes += response.payload.size();
    peer->responded.emplace(id, response);
    peer->responded_order.push_back(id);
    // Evict oldest-first until within both the entry and byte budgets,
    // always keeping the newest entry (an oversized response may briefly
    // exceed the byte budget alone, but never accumulates).
    while (peer->responded_order.size() > 1 &&
           (peer->responded_order.size() > options_.dedup_cache_size ||
            peer->responded_bytes > options_.dedup_cache_bytes)) {
      auto evict = peer->responded.find(peer->responded_order.front());
      peer->responded_bytes -= evict->second.payload.size();
      peer->responded.erase(evict);
      peer->responded_order.pop_front();
    }
    peer->conn->send(std::move(response));
  }
}

size_t RpcServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t alive = 0;
  for (const auto& peer : peers_) {
    if (peer->conn != nullptr && peer->conn->alive()) ++alive;
  }
  return alive;
}

int64_t RpcServer::requests_served() const {
  return requests_served_.load(std::memory_order_relaxed);
}

int64_t RpcServer::duplicates_suppressed() const {
  return duplicates_suppressed_.load(std::memory_order_relaxed);
}

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
