// RPC over the framed transport, resolved through raylite futures.
//
// RpcClient::call() returns the same raylite::Future the in-process actor
// engine uses, so coordination loops (and raylite::wait / wait_for) treat a
// remote call exactly like a mailbox call:
//   * a response resolves the future with the payload bytes;
//   * a remote handler exception resolves it errored with the same typed
//     rlgraph exception (see frame.h);
//   * peer death (EOF, heartbeat timeout, injected cut) resolves every
//     in-flight future with ConnectionLostError — the error-state path PR 1
//     supervision already consumes;
//   * an expired per-call timeout retransmits (same request id; the server
//     dedups) up to max_rpc_retransmits, then resolves TimeoutError.
//
// The client reconnects on its own: exponential backoff with seeded jitter
// and a consecutive-failure budget. While reconnecting, calls fail fast
// with ConnectionLostError so callers reroute; once the budget is exhausted
// the client is permanently kDown and calls fail with ActorLostError —
// feeding the supervisor's give-up machinery.
//
// RpcServer dispatches each connection's requests on a dedicated thread
// (handlers may block without stalling heartbeats) and keeps a bounded
// (request id -> response) cache per connection, so duplicated or
// retransmitted frames re-send the cached response instead of re-executing
// the handler: at-most-once execution per connection.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "raylite/actor.h"
#include "raylite/net/connection.h"

namespace rlgraph {
namespace raylite {
namespace net {

struct RpcClientOptions {
  ConnectionOptions connection;
  double connect_timeout_ms = 2000.0;
  // 0 disables per-call timeouts (futures then only resolve on response or
  // connection death).
  double rpc_timeout_ms = 0.0;
  // Timed-out calls are re-sent with the same request id this many times
  // before resolving TimeoutError (recovers injected frame drops).
  int max_rpc_retransmits = 0;
  // Reconnect policy: exponential backoff with +/- jitter, and a budget of
  // consecutive failed attempts before the client goes permanently kDown
  // (< 0 retries forever).
  bool reconnect = true;
  int max_reconnects = 5;
  double backoff_initial_ms = 25.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 1000.0;
  double backoff_jitter = 0.2;  // fraction of the backoff, uniform +/-
  uint64_t seed = 0;
};

enum class RpcClientState { kConnected, kReconnecting, kDown };

const char* to_string(RpcClientState state);

class RpcClient {
 public:
  // Connects synchronously; throws ConnectionError if the peer cannot be
  // reached within connect_timeout_ms (supervised restart paths rely on the
  // constructor failing fast).
  RpcClient(const Endpoint& endpoint, RpcClientOptions options,
            MetricRegistry* metrics = nullptr,
            std::shared_ptr<WireFaultInjector> injector = nullptr);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  Future<std::vector<uint8_t>> call(const std::string& method,
                                    std::vector<uint8_t> body);

  RpcClientState state() const;
  bool connected() const { return state() == RpcClientState::kConnected; }
  const Endpoint& endpoint() const { return endpoint_; }

  // Waits up to timeout_ms for in-flight calls to resolve, then closes with
  // a goodbye. Returns true if the drain completed (false: timed out and
  // remaining futures were failed). The client is kDown afterwards.
  bool drain_and_close(double timeout_ms);

  int64_t reconnects() const;
  size_t in_flight() const;

 private:
  struct InFlight {
    std::shared_ptr<detail::FutureState> state;
    std::string method;
    std::vector<uint8_t> body;  // retained for retransmission
    std::chrono::steady_clock::time_point issued;
    int retransmits = 0;
  };

  void on_frame(Frame&& frame);
  void on_down(bool graceful, const std::string& reason);
  void keeper_loop();
  void fail_all_in_flight_locked(std::vector<InFlight>* out,
                                 const std::string& reason);
  std::unique_ptr<Connection> make_connection(Socket socket);

  const Endpoint endpoint_;
  const RpcClientOptions options_;
  MetricRegistry* metrics_;
  std::shared_ptr<WireFaultInjector> injector_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unique_ptr<Connection> conn_;
  RpcClientState state_ = RpcClientState::kConnected;
  bool stopping_ = false;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, InFlight> in_flight_;
  Rng backoff_rng_;
  double backoff_ms_;
  int consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point next_attempt_;
  int64_t reconnects_ = 0;
  std::thread keeper_;
};

using RpcHandler =
    std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

struct RpcServerOptions {
  ConnectionOptions connection;
  // Recent (request id -> response) entries kept per connection for dedup /
  // retransmission, bounded both by entry count and by total payload bytes
  // (large responses — e.g. encoded SampleBatches — would otherwise pin
  // hundreds of MB per peer). The most recent response is always retained so
  // an immediate retransmit still hits the cache.
  size_t dedup_cache_size = 256;
  size_t dedup_cache_bytes = 8u << 20;
  double accept_tick_ms = 50.0;
};

class RpcServer {
 public:
  // Binds and listens immediately (so tcp:host:0 resolves a port); start()
  // begins accepting. A shared injector applies to every accepted
  // connection's send path.
  RpcServer(const Endpoint& endpoint, RpcServerOptions options = {},
            MetricRegistry* metrics = nullptr,
            std::shared_ptr<WireFaultInjector> injector = nullptr);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void register_handler(const std::string& method, RpcHandler handler);
  void start();
  // Graceful: stop accepting, drain each connection's queued requests, send
  // goodbyes, join everything. Idempotent.
  void stop();

  const Endpoint& endpoint() const { return listener_.endpoint(); }
  size_t active_connections() const;
  int64_t requests_served() const;
  int64_t duplicates_suppressed() const;

 private:
  struct Peer {
    std::unique_ptr<Connection> conn;
    BlockingQueue<Frame> requests;
    std::thread dispatcher;
    // Bounded request-id dedup with cached responses.
    std::unordered_map<uint64_t, Frame> responded;
    std::deque<uint64_t> responded_order;
    size_t responded_bytes = 0;
  };

  void accept_loop();
  void dispatch_loop(Peer* peer);
  void reap_finished_peers();

  RpcServerOptions options_;
  MetricRegistry* metrics_;
  std::shared_ptr<WireFaultInjector> injector_;
  Listener listener_;

  mutable std::mutex mutex_;
  std::map<std::string, RpcHandler> handlers_;
  std::vector<std::unique_ptr<Peer>> peers_;
  bool running_ = false;
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> duplicates_suppressed_{0};
  std::thread accept_thread_;
};

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
