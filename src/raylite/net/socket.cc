#include "raylite/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace rlgraph {
namespace raylite {
namespace net {

namespace {

std::string errno_string() { return std::string(strerror(errno)); }

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// sockaddr builders. Unix paths longer than sun_path cannot be represented.
socklen_t fill_sockaddr(const Endpoint& endpoint, sockaddr_storage* storage) {
  std::memset(storage, 0, sizeof(*storage));
  if (endpoint.kind == Endpoint::Kind::kTcp) {
    auto* addr = reinterpret_cast<sockaddr_in*>(storage);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(endpoint.port);
    const char* host = endpoint.host.empty() ? "127.0.0.1"
                                             : endpoint.host.c_str();
    if (::inet_pton(AF_INET, host, &addr->sin_addr) != 1) {
      throw ConnectionError("cannot parse IPv4 address '" + endpoint.host +
                            "' (hostnames are not resolved; use an IP)");
    }
    return sizeof(sockaddr_in);
  }
  auto* addr = reinterpret_cast<sockaddr_un*>(storage);
  addr->sun_family = AF_UNIX;
  if (endpoint.path.size() + 1 > sizeof(addr->sun_path)) {
    throw ConnectionError("unix socket path too long: " + endpoint.path);
  }
  std::strncpy(addr->sun_path, endpoint.path.c_str(),
               sizeof(addr->sun_path) - 1);
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                endpoint.path.size() + 1);
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint e;
  if (spec.rfind("unix:", 0) == 0) {
    e.kind = Kind::kUnix;
    e.path = spec.substr(5);
    RLG_REQUIRE(!e.path.empty(), "empty unix socket path in '" << spec << "'");
    return e;
  }
  std::string rest = spec;
  if (spec.rfind("tcp:", 0) == 0) rest = spec.substr(4);
  size_t colon = rest.rfind(':');
  RLG_REQUIRE(colon != std::string::npos,
              "endpoint '" << spec << "' is not tcp:host:port or unix:path");
  e.kind = Kind::kTcp;
  e.host = rest.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(rest.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  RLG_REQUIRE(port >= 0 && port <= 65535,
              "bad port in endpoint '" << spec << "'");
  e.port = static_cast<uint16_t>(port);
  return e;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? "127.0.0.1" : host) + ":" +
         std::to_string(port);
}

Socket Socket::connect(const Endpoint& endpoint, double timeout_ms) {
  int family = endpoint.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) throw ConnectionError("socket(): " + errno_string());
  Socket sock(fd);

  sockaddr_storage storage;
  socklen_t len = fill_sockaddr(endpoint, &storage);

  // Non-blocking connect + poll so a dead peer resolves in timeout_ms, not
  // the kernel's multi-minute TCP default.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), len);
  if (rc != 0 && errno != EINPROGRESS) {
    throw ConnectionError("connect to " + endpoint.to_string() + ": " +
                          errno_string());
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) {
      throw ConnectionError("connect to " + endpoint.to_string() +
                            " timed out after " + std::to_string(timeout_ms) +
                            "ms");
    }
    int err = 0;
    socklen_t errlen = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
    if (err != 0) {
      throw ConnectionError("connect to " + endpoint.to_string() + ": " +
                            std::string(strerror(err)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  if (endpoint.kind == Endpoint::Kind::kTcp) set_nodelay(fd);
  return sock;
}

void Socket::set_send_timeout(double timeout_ms) {
  int fd = fd_.load();
  if (fd < 0 || timeout_ms <= 0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool Socket::send_all(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    int fd = fd_.load();
    if (fd < 0) return false;
    ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN when a SO_SNDTIMEO-bounded write expires
    }
    if (sent == 0) return false;
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

bool Socket::recv_all(void* data, size_t n) {
  auto* p = static_cast<uint8_t*>(data);
  while (n > 0) {
    int fd = fd_.load();
    if (fd < 0) return false;
    ssize_t got = ::recv(fd, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // orderly EOF
    p += got;
    n -= static_cast<size_t>(got);
  }
  return true;
}

void Socket::shutdown_both() {
  int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Socket::close() {
  int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

Listener::Listener(const Endpoint& endpoint) : endpoint_(endpoint) {
  int family = endpoint.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) throw ConnectionError("socket(): " + errno_string());
  if (endpoint.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    // A stale path from a crashed previous process would fail bind().
    ::unlink(endpoint.path.c_str());
  }
  sockaddr_storage storage;
  socklen_t len = fill_sockaddr(endpoint, &storage);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0) {
    std::string err = errno_string();
    ::close(fd);
    throw ConnectionError("bind " + endpoint.to_string() + ": " + err);
  }
  if (::listen(fd, 64) != 0) {
    std::string err = errno_string();
    ::close(fd);
    throw ConnectionError("listen " + endpoint.to_string() + ": " + err);
  }
  if (endpoint.kind == Endpoint::Kind::kTcp && endpoint.port == 0) {
    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    endpoint_.port = ntohs(bound.sin_port);
  }
  fd_.store(fd);
}

Listener::~Listener() { close(); }

Socket Listener::accept(double timeout_ms) {
  int fd = fd_.load();
  if (fd < 0) return Socket();
  pollfd pfd{fd, POLLIN, 0};
  int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (ready <= 0) return Socket();
  int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) return Socket();
  if (endpoint_.kind == Endpoint::Kind::kTcp) set_nodelay(client);
  return Socket(client);
}

void Listener::close() {
  int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
}

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
