// POSIX socket primitives for the raylite cross-process transport.
//
// Endpoint parses the "tcp:host:port" / "unix:path" addresses used across
// configs and CLIs; Socket is a thin RAII wrapper over a connected stream
// socket (TCP with TCP_NODELAY, or Unix domain) with all-or-nothing
// send/recv helpers; Listener accepts with a poll timeout so accept loops
// can observe shutdown flags. All blocking reads can be broken from another
// thread via shutdown_both() — the transport relies on that to tear down
// reader threads without signals.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/errors.h"

namespace rlgraph {
namespace raylite {
namespace net {

struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;    // tcp only
  uint16_t port = 0;   // tcp only; 0 lets the OS pick (see Listener::endpoint)
  std::string path;    // unix only

  // Accepts "tcp:host:port" and "unix:/some/path".
  static Endpoint parse(const std::string& spec);
  std::string to_string() const;
};

// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_.store(other.fd_.exchange(-1));
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Connect to `endpoint`, waiting up to `timeout_ms` for the handshake.
  // Throws ConnectionError on refusal/timeout.
  static Socket connect(const Endpoint& endpoint, double timeout_ms);

  bool valid() const { return fd_.load() >= 0; }
  int fd() const { return fd_.load(); }

  // Write exactly `n` bytes; returns false if the peer is gone (EPIPE,
  // reset, or local shutdown) or a single blocking write exceeded the
  // send timeout (see set_send_timeout).
  bool send_all(const void* data, size_t n);

  // Bound each blocking write (SO_SNDTIMEO): a peer that stops reading can
  // stall a write at most this long before send_all fails instead of
  // blocking forever on a full socket buffer. <= 0 leaves writes unbounded.
  void set_send_timeout(double timeout_ms);
  // Read exactly `n` bytes; returns false on EOF/reset/local shutdown.
  bool recv_all(void* data, size_t n);

  // Break any blocked send/recv from another thread (fd stays open so no
  // descriptor reuse race; close() happens in the owner's destructor).
  void shutdown_both();
  void close();

 private:
  std::atomic<int> fd_{-1};
};

// A listening socket. For tcp:host:0 the kernel-assigned port is reported
// back through endpoint().
class Listener {
 public:
  explicit Listener(const Endpoint& endpoint);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Wait up to `timeout_ms` for a connection; an invalid Socket on timeout
  // or after close(). Safe to call in a loop with a shutdown flag.
  Socket accept(double timeout_ms);

  // The bound address (with the resolved port for tcp:host:0).
  const Endpoint& endpoint() const { return endpoint_; }

  void close();

 private:
  Endpoint endpoint_;
  std::atomic<int> fd_{-1};
};

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
