#include "raylite/net/wire_fault.h"

namespace rlgraph {
namespace raylite {
namespace net {

const char* to_string(WireFaultAction action) {
  switch (action) {
    case WireFaultAction::kNone:
      return "none";
    case WireFaultAction::kDrop:
      return "drop";
    case WireFaultAction::kDelay:
      return "delay";
    case WireFaultAction::kDuplicate:
      return "duplicate";
    case WireFaultAction::kTruncate:
      return "truncate";
    case WireFaultAction::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

WireFaultInjector::WireFaultInjector(WireFaultConfig config)
    : config_(config), rng_(config.seed) {}

WireFaultDecision WireFaultInjector::next() {
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t index = decisions_++;
  // Draw unconditionally so the stream position is a pure function of the
  // decision index, independent of warmup / deterministic overrides.
  const double u = rng_.uniform();
  const double delay_span =
      rng_.uniform(config_.delay_min_ms, config_.delay_max_ms);

  if (config_.disconnect_after_frames >= 0 &&
      index >= config_.disconnect_after_frames) {
    // One-shot: subsequent decisions fall through to the probabilistic
    // schedule (the connection that consumed this decision is gone anyway;
    // a successor connection starts from the next index).
    config_.disconnect_after_frames = -1;
    ++disconnects_;
    return {WireFaultAction::kDisconnect, 0.0};
  }
  if (index < config_.warmup_frames) return {WireFaultAction::kNone, 0.0};

  double edge = config_.disconnect_prob;
  if (u < edge) {
    ++disconnects_;
    return {WireFaultAction::kDisconnect, 0.0};
  }
  edge += config_.truncate_prob;
  if (u < edge) {
    ++truncates_;
    return {WireFaultAction::kTruncate, 0.0};
  }
  edge += config_.drop_prob;
  if (u < edge) {
    ++drops_;
    return {WireFaultAction::kDrop, 0.0};
  }
  edge += config_.duplicate_prob;
  if (u < edge) {
    ++duplicates_;
    return {WireFaultAction::kDuplicate, 0.0};
  }
  edge += config_.delay_prob;
  if (u < edge) {
    ++delays_;
    return {WireFaultAction::kDelay, delay_span};
  }
  return {WireFaultAction::kNone, 0.0};
}

int64_t WireFaultInjector::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}
int64_t WireFaultInjector::injected_drops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drops_;
}
int64_t WireFaultInjector::injected_delays() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delays_;
}
int64_t WireFaultInjector::injected_duplicates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return duplicates_;
}
int64_t WireFaultInjector::injected_truncates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return truncates_;
}
int64_t WireFaultInjector::injected_disconnects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disconnects_;
}

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
