// Deterministic wire-level fault injection for the socket transport.
//
// The frame-granularity counterpart of raylite::FaultInjector: a
// WireFaultInjector sits on a connection's send path and decides — from a
// seeded Rng stream, so the schedule is a pure function of (seed, config,
// frame index) — whether each outgoing data frame is sent normally, dropped,
// delayed, duplicated, truncated mid-frame (cutting the connection), or
// preceded by a hard disconnect. Chaos tests drive the transport through
// injectors to prove heartbeat detection, reconnect/backoff, request dedup,
// and error-state future resolution without real network faults.
//
// Only kRequest/kResponse/kError frames consult the injector; heartbeats and
// goodbyes are exempt so an injected schedule perturbs *traffic*
// deterministically rather than racing the liveness probes.
#pragma once

#include <cstdint>
#include <mutex>

#include "util/random.h"

namespace rlgraph {
namespace raylite {
namespace net {

struct WireFaultConfig {
  // Per-frame probabilities; evaluated in disconnect > truncate > drop >
  // duplicate > delay order from a single uniform draw (sum should stay
  // <= 1).
  double disconnect_prob = 0.0;
  double truncate_prob = 0.0;
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  // Injected delay duration, uniform in [delay_min_ms, delay_max_ms).
  double delay_min_ms = 1.0;
  double delay_max_ms = 5.0;
  // No injection for the first `warmup_frames` decisions (lets a topology
  // connect and exchange some traffic before chaos starts).
  int64_t warmup_frames = 0;
  // Deterministic disconnect after this many decided frames (0 cuts the very
  // first data frame); < 0 disables. For tests that must observe >= 1 drop
  // of a specific connection.
  int64_t disconnect_after_frames = -1;
  uint64_t seed = 0;
};

enum class WireFaultAction {
  kNone,
  kDrop,        // frame silently not sent
  kDelay,       // frame sent after delay_ms (stalls the writer: congestion)
  kDuplicate,   // frame sent twice back to back
  kTruncate,    // only a prefix of the frame's bytes sent, then hard close
  kDisconnect,  // connection hard-closed before the frame is sent
};

const char* to_string(WireFaultAction action);

struct WireFaultDecision {
  WireFaultAction action = WireFaultAction::kNone;
  double delay_ms = 0.0;

  bool operator==(const WireFaultDecision& other) const {
    return action == other.action && delay_ms == other.delay_ms;
  }
};

class WireFaultInjector {
 public:
  explicit WireFaultInjector(WireFaultConfig config);

  // Draws the next decision from the seeded schedule. Thread-safe; with a
  // single consumer (one connection's writer thread) the sequence depends
  // only on the seed and config. A shared injector survives reconnects, so
  // the schedule continues across replacement connections.
  WireFaultDecision next();

  const WireFaultConfig& config() const { return config_; }
  int64_t decisions() const;
  int64_t injected_drops() const;
  int64_t injected_delays() const;
  int64_t injected_duplicates() const;
  int64_t injected_truncates() const;
  int64_t injected_disconnects() const;

 private:
  WireFaultConfig config_;
  Rng rng_;
  mutable std::mutex mutex_;
  int64_t decisions_ = 0;
  int64_t drops_ = 0;
  int64_t delays_ = 0;
  int64_t duplicates_ = 0;
  int64_t truncates_ = 0;
  int64_t disconnects_ = 0;
};

}  // namespace net
}  // namespace raylite
}  // namespace rlgraph
