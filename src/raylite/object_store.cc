#include "raylite/object_store.h"

namespace rlgraph {
namespace raylite {

void ObjectStore::erase(ObjectId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  objects_.erase(id);
}

size_t ObjectStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.size();
}

}  // namespace raylite
}  // namespace rlgraph
