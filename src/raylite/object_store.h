// raylite: a thread-based actor execution engine standing in for Ray.
//
// The paper's Ape-X executor runs on Ray's centralized execution model:
// remote actors (samplers, replay shards) produce futures, a driver loop
// schedules work with ray.wait, and large objects move through an object
// store. raylite reproduces those primitives in-process: each actor owns a
// mailbox thread, calls return futures, and the object store holds shared
// immutable values by id.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "util/errors.h"

namespace rlgraph {
namespace raylite {

struct ObjectId {
  uint64_t value = 0;
  bool operator<(const ObjectId& o) const { return value < o.value; }
  bool operator==(const ObjectId& o) const { return value == o.value; }
};

// Shared, immutable object storage. Values are stored type-erased; get()
// checks the requested type.
class ObjectStore {
 public:
  template <typename T>
  ObjectId put(T value) {
    auto holder = std::make_shared<std::any>(std::move(value));
    std::lock_guard<std::mutex> lock(mutex_);
    ObjectId id{next_id_++};
    objects_[id] = std::move(holder);
    return id;
  }

  template <typename T>
  std::shared_ptr<const T> get(ObjectId id) const {
    std::shared_ptr<std::any> holder;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = objects_.find(id);
      if (it == objects_.end()) {
        throw NotFoundError("object id " + std::to_string(id.value) +
                            " not in store");
      }
      holder = it->second;
    }
    const T* value = std::any_cast<T>(holder.get());
    RLG_REQUIRE(value != nullptr, "object store type mismatch for id "
                                      << id.value);
    // Alias the any holder so the value stays alive while referenced.
    return std::shared_ptr<const T>(holder, value);
  }

  void erase(ObjectId id);
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<ObjectId, std::shared_ptr<std::any>> objects_;
  uint64_t next_id_ = 1;
};

}  // namespace raylite
}  // namespace rlgraph
