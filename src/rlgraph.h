// Umbrella header for the RLgraph-cpp public API.
//
// Pull in everything a downstream application typically needs: spaces,
// agents, environments, the component/executor core and the distributed
// executors. Individual headers remain includable for finer-grained builds.
#pragma once

// Core abstractions (paper §3): components, build phases, executors.
#include "core/component.h"
#include "core/build_context.h"
#include "core/component_test.h"
#include "core/graph_executor.h"

// Spaces and tensors.
#include "spaces/nested.h"
#include "spaces/space.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

// Off-the-shelf component library.
#include "components/exploration.h"
#include "components/layers.h"
#include "components/losses.h"
#include "components/memories.h"
#include "components/neural_network.h"
#include "components/optimizers.h"
#include "components/policy.h"
#include "components/preprocessors.h"
#include "components/queue_staging.h"
#include "components/splitter_merger.h"
#include "components/synchronizer.h"
#include "components/vtrace.h"

// Agents (paper §3.4).
#include "agents/actor_critic_agent.h"
#include "agents/agent.h"
#include "agents/dqn_agent.h"
#include "agents/impala_agent.h"
#include "agents/ppo_agent.h"

// Environments.
#include "env/catch_env.h"
#include "env/dmlab_sim.h"
#include "env/environment.h"
#include "env/grid_world.h"
#include "env/pong_sim.h"
#include "env/vector_env.h"

// raylite actor engine.
#include "raylite/actor.h"
#include "raylite/object_store.h"

// Execution (paper §4): devices, distributed executors, sync plugins.
#include "execution/allreduce.h"
#include "execution/apex_executor.h"
#include "execution/device.h"
#include "execution/impala_pipeline.h"
#include "execution/multi_device.h"
#include "execution/param_server.h"
#include "execution/ray_executor.h"

// Policy serving: dynamic batching, versioned hot-swappable weights,
// admission control.
#include "serve/batcher.h"
#include "serve/policy_server.h"
#include "serve/policy_store.h"
