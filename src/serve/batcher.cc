#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "util/trace.h"

namespace rlgraph {
namespace serve {

Precision precision_from_string(const std::string& s) {
  if (s == "fp32") return Precision::kFp32;
  if (s == "int8") return Precision::kInt8;
  throw ValueError("unknown serving precision '" + s +
                   "' (expected \"fp32\" or \"int8\")");
}

const char* precision_name(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

DynamicBatcher::DynamicBatcher(BatcherConfig config, MetricRegistry* metrics,
                               TenantRegistry* tenants)
    : config_(config), metrics_(metrics), tenants_(tenants) {
  RLG_REQUIRE(config_.max_batch_size >= 1,
              "batcher max_batch_size must be >= 1, got "
                  << config_.max_batch_size);
  RLG_REQUIRE(config_.queue_capacity >= 1,
              "batcher queue_capacity must be >= 1");
  flush_buckets_ = config_.flush_buckets;
  std::sort(flush_buckets_.begin(), flush_buckets_.end());
  flush_buckets_.erase(
      std::unique(flush_buckets_.begin(), flush_buckets_.end()),
      flush_buckets_.end());
  for (int64_t b : flush_buckets_) {
    RLG_REQUIRE(b >= 1, "batcher flush buckets must be >= 1, got " << b);
  }
  if (metrics_ != nullptr) {
    batch_size_hist_ = &metrics_->histogram("serve/batch_size");
    queue_delay_hist_ = &metrics_->histogram("serve/queue_delay_seconds");
  }
}

bool DynamicBatcher::at_flush_bucket(size_t n) const {
  const int64_t sn = static_cast<int64_t>(n);
  return std::binary_search(flush_buckets_.begin(), flush_buckets_.end(), sn);
}

DynamicBatcher::SubQueue& DynamicBatcher::sub_queue_locked(
    const std::string& tenant) {
  auto it = queues_.find(tenant);
  if (it == queues_.end()) {
    SubQueue sq;
    if (tenants_ != nullptr) {
      const TenantConfig tc = tenants_->config(tenant);
      sq.weight = std::max<uint64_t>(tc.weight, 1);
      sq.capacity = tc.queue_capacity != 0 ? tc.queue_capacity
                                           : config_.tenant_queue_capacity;
    } else {
      sq.capacity = config_.tenant_queue_capacity;
    }
    it = queues_.emplace(tenant, std::move(sq)).first;
  }
  return it->second;
}

ServeClock::time_point DynamicBatcher::oldest_enqueued_locked() const {
  // One front per tenant; the tenant count is small (it is a config-time
  // quantity), so a linear scan beats maintaining a cross-queue heap.
  ServeClock::time_point oldest = ServeClock::time_point::max();
  for (const auto& [tenant, sq] : queues_) {
    if (!sq.q.empty() && sq.q.front().enqueued < oldest) {
      oldest = sq.q.front().enqueued;
    }
  }
  return oldest;
}

void DynamicBatcher::count_shed(const char* reason, int64_t n) {
  if (metrics_ == nullptr) return;
  metrics_->increment(std::string("serve/shed_total{reason=") + reason + "}",
                      n);
}

DynamicBatcher::~DynamicBatcher() {
  close();
  shed_all("batcher destroyed");
}

std::future<ActResult> DynamicBatcher::submit(Tensor obs,
                                              ServeClock::time_point deadline,
                                              Precision precision,
                                              const std::string& tenant,
                                              uint64_t request_id) {
  trace::TraceSpan span("serve", "serve/admit");
  ActRequest req;
  req.obs = std::move(obs);
  req.enqueued = ServeClock::now();
  req.deadline = deadline;
  req.precision = precision;
  req.tenant = tenant;
  req.request_id = request_id;
  std::future<ActResult> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      throw OverloadedError("policy server is shutting down",
                            OverloadedError::Scope::kGlobal, tenant);
    }
    // Tenant-scoped admission first: a tenant over its quota or sub-queue
    // bound is shed at its own gate with a tenant-scoped error, before it
    // can contribute to (or be blamed on) global pressure.
    if (tenants_ != nullptr && !tenants_->try_admit(tenant, req.enqueued)) {
      count_shed("tenant_quota");
      if (metrics_ != nullptr) {
        metrics_->increment("serve/tenant_shed{tenant=" + tenant + "}");
      }
      throw OverloadedError(
          "tenant '" + tenant + "' is over its admission quota (" +
              std::to_string(tenants_->config(tenant).quota_qps) +
              " req/s); back off and retry",
          OverloadedError::Scope::kTenant, tenant);
    }
    SubQueue& sq = sub_queue_locked(tenant);
    if (sq.capacity != 0 && sq.q.size() >= sq.capacity) {
      count_shed("tenant_queue");
      if (metrics_ != nullptr) {
        metrics_->increment("serve/tenant_shed{tenant=" + tenant + "}");
      }
      throw OverloadedError(
          "tenant '" + tenant + "' sub-queue at capacity (depth " +
              std::to_string(sq.q.size()) + "/" +
              std::to_string(sq.capacity) + "); back off and retry",
          OverloadedError::Scope::kTenant, tenant);
    }
    if (total_pending_ >= config_.queue_capacity) {
      if (metrics_ != nullptr) metrics_->increment("serve/shed_overload");
      count_shed("overload");
      throw OverloadedError(
          "serving queue at capacity (depth " +
              std::to_string(total_pending_) + "/" +
              std::to_string(config_.queue_capacity) +
              " requests waiting); back off and retry",
          OverloadedError::Scope::kGlobal, tenant);
    }
    sq.q.push_back(std::move(req));
    if (!sq.active) {
      active_.push_back(tenant);
      sq.active = true;
    }
    ++total_pending_;
    // A sleeping worker only needs waking when a flush condition changes:
    // the first request arriving (it anchors the flush deadline), the batch
    // filling up, or the queue landing exactly on a flush bucket.
    // Intermediate arrivals just join the pending batch — skipping their
    // notify avoids a wakeup storm on the serving shard.
    if (total_pending_ != 1 &&
        total_pending_ < static_cast<size_t>(config_.max_batch_size) &&
        !at_flush_bucket(total_pending_)) {
      return fut;
    }
  }
  ready_cv_.notify_one();
  return fut;
}

std::vector<ActRequest> DynamicBatcher::next_batch() {
  const size_t max_batch = static_cast<size_t>(config_.max_batch_size);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    ready_cv_.wait(lock, [&] { return closed_ || total_pending_ > 0; });
    if (total_pending_ == 0) return {};  // closed and drained
    // Wait out the flush window of the OLDEST request — later arrivals do
    // not extend it — unless a full batch accumulates (or close) first.
    // Bucket-aware early out: the moment the queue sits exactly on a flush
    // bucket the batch dispatches padding-free instead of waiting out the
    // delay window only to be padded up to that same bucket anyway.
    ServeClock::time_point flush_at =
        oldest_enqueued_locked() + config_.max_queue_delay;
    while (!closed_ && total_pending_ < max_batch &&
           !at_flush_bucket(total_pending_) && ServeClock::now() < flush_at) {
      ready_cv_.wait_until(lock, flush_at);
      // Another worker may have drained the queue while we slept (then the
      // window re-anchors on whatever request is oldest now).
      if (total_pending_ == 0) break;
      flush_at = oldest_enqueued_locked() + config_.max_queue_delay;
    }
    if (total_pending_ == 0) continue;
    if (metrics_ != nullptr && total_pending_ < max_batch &&
        at_flush_bucket(total_pending_) && ServeClock::now() < flush_at) {
      metrics_->increment("serve/bucket_flushes");
    }

    const ServeClock::time_point now = ServeClock::now();
    trace::TraceSpan assembly_span("serve", "serve/batch_assembly");
    std::vector<ActRequest> batch;
    std::vector<ActRequest> expired;
    // Deficit round robin across tenant sub-queues: the front tenant of the
    // rotation earns its quantum (weight) and places up to that many
    // requests; exhausting the quantum rotates it to the back, emptying its
    // queue retires it from the rotation. Deadline-expired requests are
    // shed without spending deficit — a shed is not service.
    while (total_pending_ > 0 && batch.size() < max_batch) {
      const std::string tenant = active_.front();
      SubQueue& sq = queues_.at(tenant);
      if (sq.deficit < 1) sq.deficit += sq.weight;  // new round: earn quantum
      while (sq.deficit >= 1 && !sq.q.empty() && batch.size() < max_batch) {
        ActRequest req = std::move(sq.q.front());
        sq.q.pop_front();
        --total_pending_;
        if (req.deadline < now) {
          expired.push_back(std::move(req));
        } else {
          batch.push_back(std::move(req));
          --sq.deficit;
        }
      }
      if (sq.q.empty()) {
        sq.deficit = 0;
        sq.active = false;
        active_.pop_front();
      } else if (sq.deficit < 1) {
        active_.pop_front();
        active_.push_back(tenant);
      } else {
        // Batch filled mid-quantum: the tenant keeps its place and its
        // unspent deficit; the next assembly resumes here without earning
        // a fresh quantum on top.
        break;
      }
    }
    lock.unlock();

    for (ActRequest& req : expired) {
      req.promise.set_exception(std::make_exception_ptr(TimeoutError(
          "request deadline expired after " +
          std::to_string(std::chrono::duration<double>(now - req.enqueued)
                             .count()) +
          "s in the serving queue")));
    }
    if (metrics_ != nullptr && !expired.empty()) {
      metrics_->increment("serve/shed_deadline",
                          static_cast<int64_t>(expired.size()));
      count_shed("deadline", static_cast<int64_t>(expired.size()));
    }
    if (batch.empty()) {
      // Everything in the window had expired; go back to waiting.
      lock.lock();
      continue;
    }
    ServeClock::time_point batch_oldest = batch.front().enqueued;
    for (const ActRequest& req : batch) {
      if (req.enqueued < batch_oldest) batch_oldest = req.enqueued;
    }
    if (metrics_ != nullptr) {
      batch_size_hist_->record(static_cast<double>(batch.size()));
      for (const ActRequest& req : batch) {
        queue_delay_hist_->record(
            std::chrono::duration<double>(now - req.enqueued).count());
      }
    }
    // One queue-wait span per dispatched batch, anchored at the oldest
    // request's enqueue: the flush-policy wait made visible in the trace.
    trace::record_span("serve", "serve/queue_wait", batch_oldest, now,
                       "batch", static_cast<int64_t>(batch.size()));
    return batch;
  }
}

void DynamicBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_cv_.notify_all();
}

bool DynamicBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void DynamicBatcher::shed_all(const char* reason) {
  std::vector<ActRequest> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [tenant, sq] : queues_) {
      for (ActRequest& req : sq.q) orphaned.push_back(std::move(req));
      sq.q.clear();
      sq.deficit = 0;
      sq.active = false;
    }
    active_.clear();
    total_pending_ = 0;
  }
  for (ActRequest& req : orphaned) {
    req.promise.set_exception(std::make_exception_ptr(OverloadedError(
        reason, OverloadedError::Scope::kGlobal, req.tenant)));
  }
  if (metrics_ != nullptr && !orphaned.empty()) {
    metrics_->increment("serve/shed_overload",
                        static_cast<int64_t>(orphaned.size()));
    count_shed("overload", static_cast<int64_t>(orphaned.size()));
  }
}

size_t DynamicBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_pending_;
}

size_t DynamicBatcher::pending(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second.q.size();
}

}  // namespace serve
}  // namespace rlgraph
