#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "util/trace.h"

namespace rlgraph {
namespace serve {

Precision precision_from_string(const std::string& s) {
  if (s == "fp32") return Precision::kFp32;
  if (s == "int8") return Precision::kInt8;
  throw ValueError("unknown serving precision '" + s +
                   "' (expected \"fp32\" or \"int8\")");
}

const char* precision_name(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

DynamicBatcher::DynamicBatcher(BatcherConfig config, MetricRegistry* metrics)
    : config_(config), metrics_(metrics) {
  RLG_REQUIRE(config_.max_batch_size >= 1,
              "batcher max_batch_size must be >= 1, got "
                  << config_.max_batch_size);
  RLG_REQUIRE(config_.queue_capacity >= 1,
              "batcher queue_capacity must be >= 1");
  flush_buckets_ = config_.flush_buckets;
  std::sort(flush_buckets_.begin(), flush_buckets_.end());
  flush_buckets_.erase(
      std::unique(flush_buckets_.begin(), flush_buckets_.end()),
      flush_buckets_.end());
  for (int64_t b : flush_buckets_) {
    RLG_REQUIRE(b >= 1, "batcher flush buckets must be >= 1, got " << b);
  }
  if (metrics_ != nullptr) {
    batch_size_hist_ = &metrics_->histogram("serve/batch_size");
    queue_delay_hist_ = &metrics_->histogram("serve/queue_delay_seconds");
  }
}

bool DynamicBatcher::at_flush_bucket(size_t n) const {
  const int64_t sn = static_cast<int64_t>(n);
  return std::binary_search(flush_buckets_.begin(), flush_buckets_.end(), sn);
}

DynamicBatcher::~DynamicBatcher() {
  close();
  shed_all("batcher destroyed");
}

std::future<ActResult> DynamicBatcher::submit(Tensor obs,
                                              ServeClock::time_point deadline,
                                              Precision precision) {
  trace::TraceSpan span("serve", "serve/admit");
  ActRequest req;
  req.obs = std::move(obs);
  req.enqueued = ServeClock::now();
  req.deadline = deadline;
  req.precision = precision;
  std::future<ActResult> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      throw OverloadedError("policy server is shutting down");
    }
    if (queue_.size() >= config_.queue_capacity) {
      if (metrics_ != nullptr) metrics_->increment("serve/shed_overload");
      throw OverloadedError(
          "serving queue at capacity (" + std::to_string(config_.queue_capacity) +
          " requests waiting); back off and retry");
    }
    queue_.push_back(std::move(req));
    // A sleeping worker only needs waking when a flush condition changes:
    // the first request arriving (it anchors the flush deadline), the batch
    // filling up, or the queue landing exactly on a flush bucket.
    // Intermediate arrivals just join the pending batch — skipping their
    // notify avoids a wakeup storm on the serving shard.
    if (queue_.size() != 1 &&
        queue_.size() < static_cast<size_t>(config_.max_batch_size) &&
        !at_flush_bucket(queue_.size())) {
      return fut;
    }
  }
  ready_cv_.notify_one();
  return fut;
}

std::vector<ActRequest> DynamicBatcher::next_batch() {
  const size_t max_batch = static_cast<size_t>(config_.max_batch_size);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    ready_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // closed and drained
    // Wait out the flush window of the OLDEST request — later arrivals do
    // not extend it — unless a full batch accumulates (or close) first.
    // Bucket-aware early out: the moment the queue sits exactly on a flush
    // bucket the batch dispatches padding-free instead of waiting out the
    // delay window only to be padded up to that same bucket anyway.
    const ServeClock::time_point flush_at =
        queue_.front().enqueued + config_.max_queue_delay;
    while (!closed_ && queue_.size() < max_batch &&
           !at_flush_bucket(queue_.size()) && ServeClock::now() < flush_at) {
      ready_cv_.wait_until(lock, flush_at);
      // Another worker may have drained the queue while we slept.
      if (queue_.empty()) break;
    }
    if (queue_.empty()) continue;
    if (metrics_ != nullptr && queue_.size() < max_batch &&
        at_flush_bucket(queue_.size()) && ServeClock::now() < flush_at) {
      metrics_->increment("serve/bucket_flushes");
    }

    const ServeClock::time_point now = ServeClock::now();
    trace::TraceSpan assembly_span("serve", "serve/batch_assembly");
    std::vector<ActRequest> batch;
    std::vector<ActRequest> expired;
    while (!queue_.empty() && batch.size() < max_batch) {
      ActRequest req = std::move(queue_.front());
      queue_.pop_front();
      if (req.deadline < now) {
        expired.push_back(std::move(req));
      } else {
        batch.push_back(std::move(req));
      }
    }
    lock.unlock();

    for (ActRequest& req : expired) {
      req.promise.set_exception(std::make_exception_ptr(TimeoutError(
          "request deadline expired after " +
          std::to_string(std::chrono::duration<double>(now - req.enqueued)
                             .count()) +
          "s in the serving queue")));
    }
    if (metrics_ != nullptr && !expired.empty()) {
      metrics_->increment("serve/shed_deadline",
                          static_cast<int64_t>(expired.size()));
    }
    if (batch.empty()) {
      // Everything in the window had expired; go back to waiting.
      lock.lock();
      continue;
    }
    if (metrics_ != nullptr) {
      batch_size_hist_->record(static_cast<double>(batch.size()));
      for (const ActRequest& req : batch) {
        queue_delay_hist_->record(
            std::chrono::duration<double>(now - req.enqueued).count());
      }
    }
    // One queue-wait span per dispatched batch, anchored at the oldest
    // request's enqueue: the flush-policy wait made visible in the trace.
    trace::record_span("serve", "serve/queue_wait", batch.front().enqueued,
                       now, "batch", static_cast<int64_t>(batch.size()));
    return batch;
  }
}

void DynamicBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_cv_.notify_all();
}

bool DynamicBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void DynamicBatcher::shed_all(const char* reason) {
  std::deque<ActRequest> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphaned.swap(queue_);
  }
  for (ActRequest& req : orphaned) {
    req.promise.set_exception(
        std::make_exception_ptr(OverloadedError(reason)));
  }
  if (metrics_ != nullptr && !orphaned.empty()) {
    metrics_->increment("serve/shed_overload",
                        static_cast<int64_t>(orphaned.size()));
  }
}

size_t DynamicBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace serve
}  // namespace rlgraph
