// Dynamic request batching for policy serving (Clipper / TF-Serving style).
//
// Many client threads submit single-observation act requests; serving shards
// pull coalesced batches. The flush policy is the classic two-knob one: a
// batch is dispatched as soon as max_batch_size requests are waiting, or as
// soon as the OLDEST waiting request has queued for max_queue_delay —
// arrivals never extend the deadline of requests already waiting, so the
// p99 latency is bounded by max_queue_delay plus one forward pass. The
// request queue is the admission-control point: it is bounded, submits
// beyond capacity shed immediately with a typed OverloadedError, and
// requests whose per-request deadline expires while queued are shed before
// dispatch (TimeoutError) instead of wasting a batch slot.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/errors.h"
#include "util/metrics.h"

namespace rlgraph {
namespace serve {

using ServeClock = std::chrono::steady_clock;

// No deadline: the request waits as long as the queue holds it.
inline constexpr ServeClock::time_point kNoDeadline =
    ServeClock::time_point::max();

// Numeric precision a request asks to be served at. kInt8 requests route
// through the engine's quantized plan when one is loaded; servers fall back
// to fp32 (and count the fallback) when it is not.
enum class Precision { kFp32 = 0, kInt8 = 1 };

// Parse "fp32" | "int8" (throws ValueError otherwise).
Precision precision_from_string(const std::string& s);
const char* precision_name(Precision p);

// What a client gets back: the action for its observation plus the policy
// version that computed it (all requests of one batch share a version).
struct ActResult {
  Tensor action;
  int64_t policy_version = 0;
  // The precision the request was actually served at (an int8 request can
  // come back kFp32 when no quantized variant was available).
  Precision served_precision = Precision::kFp32;
};

struct ActRequest {
  Tensor obs;  // single observation, no batch rank
  ServeClock::time_point enqueued;
  ServeClock::time_point deadline = kNoDeadline;
  Precision precision = Precision::kFp32;
  std::promise<ActResult> promise;
};

struct BatcherConfig {
  int64_t max_batch_size = 32;
  std::chrono::microseconds max_queue_delay{2000};
  // Bounded request queue (admission control); submits beyond this shed.
  size_t queue_capacity = 1024;
  // Bucket-aware flushing: when non-empty (ascending sizes), a batch is
  // dispatched the moment the queue reaches a bucket boundary instead of
  // waiting out max_queue_delay — the flush lands exactly on a padding
  // bucket, so bucketed servers pad nothing for it. Empty keeps the classic
  // two-knob policy (full batch or oldest-request delay).
  std::vector<int64_t> flush_buckets;
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherConfig config,
                          MetricRegistry* metrics = nullptr);

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;
  ~DynamicBatcher();

  // Enqueue one observation; the future resolves with the action (or the
  // shed/engine error). Throws OverloadedError when the queue is at
  // capacity or the batcher is closed.
  std::future<ActResult> submit(Tensor obs,
                                ServeClock::time_point deadline = kNoDeadline,
                                Precision precision = Precision::kFp32);

  // Worker side: block until a batch is ready per the flush policy and
  // return it (never empty while open). More waiting requests than
  // max_batch_size simply split across successive calls. Deadline-expired
  // requests are shed here, before dispatch. Returns an empty vector only
  // once the batcher is closed AND drained — the worker's exit signal.
  std::vector<ActRequest> next_batch();

  // Graceful shutdown: subsequent submits are rejected, queued requests are
  // still handed to workers via next_batch().
  void close();
  bool closed() const;

  // Fail every queued request with OverloadedError (used after workers have
  // exited, when nothing will drain the queue anymore).
  void shed_all(const char* reason);

  size_t pending() const;

 private:
  // True when `n` pending requests sit exactly on a configured flush
  // bucket. Queue growth is +1 per submit, so every boundary crossing is
  // observed — no bucket can be jumped over.
  bool at_flush_bucket(size_t n) const;

  const BatcherConfig config_;
  std::vector<int64_t> flush_buckets_;  // validated ascending, deduplicated
  MetricRegistry* metrics_;             // may be null
  Histogram* batch_size_hist_ = nullptr;
  Histogram* queue_delay_hist_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::deque<ActRequest> queue_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace rlgraph
