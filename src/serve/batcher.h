// Dynamic request batching for policy serving (Clipper / TF-Serving style),
// with multi-tenant fair queueing.
//
// Many client threads submit single-observation act requests; serving shards
// pull coalesced batches. The flush policy is the classic two-knob one: a
// batch is dispatched as soon as max_batch_size requests are waiting, or as
// soon as the OLDEST waiting request has queued for max_queue_delay —
// arrivals never extend the deadline of requests already waiting, so the
// p99 latency is bounded by max_queue_delay plus one forward pass.
//
// Admission control is layered (checked in this order at submit()):
//   1. a closed batcher rejects everything (shutdown);
//   2. the tenant's token bucket (TenantRegistry) sheds requests over the
//      tenant's admission quota — tenant-scoped OverloadedError;
//   3. the tenant's bounded sub-queue sheds when that tenant alone has
//      filled its backlog allowance — tenant-scoped OverloadedError;
//   4. the global queue bound sheds when the box as a whole is saturated —
//      global-scoped OverloadedError.
// Every shed is counted under serve/shed_total{reason=...} so operators can
// tell deadline sheds from global overload from per-tenant quota sheds.
//
// Requests queue per tenant and batches are assembled by deficit round
// robin: each tenant with queued work is visited in rotation and may place
// `weight` requests (its quantum) into the assembling batch per round.
// A tenant that floods its sub-queue therefore cannot starve the others —
// they are visited just as often and their requests age no differently than
// if the hot tenant were idle. Single-tenant callers see the old FIFO
// behaviour exactly (one sub-queue, rotation of one).
//
// Requests whose per-request deadline expires while queued are shed before
// dispatch (TimeoutError) instead of wasting a batch slot.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/tenant.h"
#include "tensor/tensor.h"
#include "util/errors.h"
#include "util/metrics.h"

namespace rlgraph {
namespace serve {

// Numeric precision a request asks to be served at. kInt8 requests route
// through the engine's quantized plan when one is loaded; servers fall back
// to fp32 (and count the fallback) when it is not.
enum class Precision { kFp32 = 0, kInt8 = 1 };

// Parse "fp32" | "int8" (throws ValueError otherwise).
Precision precision_from_string(const std::string& s);
const char* precision_name(Precision p);

// What a client gets back: the action for its observation plus the policy
// version that computed it (all requests of one batch share a version).
struct ActResult {
  Tensor action;
  int64_t policy_version = 0;
  // The precision the request was actually served at (an int8 request can
  // come back kFp32 when no quantized variant was available).
  Precision served_precision = Precision::kFp32;
  // Echo of the submitted request id (canary routing key).
  uint64_t request_id = 0;
};

struct ActRequest {
  Tensor obs;  // single observation, no batch rank
  ServeClock::time_point enqueued;
  ServeClock::time_point deadline = kNoDeadline;
  Precision precision = Precision::kFp32;
  std::string tenant;       // kDefaultTenant when the caller named none
  uint64_t request_id = 0;  // deterministic canary-routing key
  std::promise<ActResult> promise;
};

struct BatcherConfig {
  int64_t max_batch_size = 32;
  std::chrono::microseconds max_queue_delay{2000};
  // Bounded request queue (admission control); submits beyond this shed.
  // This is the GLOBAL bound across all tenant sub-queues.
  size_t queue_capacity = 1024;
  // Default per-tenant sub-queue bound for tenants whose TenantConfig sets
  // none; 0 = no per-tenant bound (only the global bound applies).
  size_t tenant_queue_capacity = 0;
  // Bucket-aware flushing: when non-empty (ascending sizes), a batch is
  // dispatched the moment the queue reaches a bucket boundary instead of
  // waiting out max_queue_delay — the flush lands exactly on a padding
  // bucket, so bucketed servers pad nothing for it. Empty keeps the classic
  // two-knob policy (full batch or oldest-request delay).
  std::vector<int64_t> flush_buckets;
};

class DynamicBatcher {
 public:
  // `tenants` (optional, not owned, must outlive the batcher) supplies
  // per-tenant quotas/weights/bounds; without one, every tenant shares the
  // default config (unlimited quota, weight 1).
  explicit DynamicBatcher(BatcherConfig config,
                          MetricRegistry* metrics = nullptr,
                          TenantRegistry* tenants = nullptr);

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;
  ~DynamicBatcher();

  // Enqueue one observation; the future resolves with the action (or the
  // shed/engine error). Throws OverloadedError when admission control sheds
  // the request (see the layering above; the error carries the tenant and
  // global-vs-tenant scope) or the batcher is closed.
  std::future<ActResult> submit(Tensor obs,
                                ServeClock::time_point deadline = kNoDeadline,
                                Precision precision = Precision::kFp32,
                                const std::string& tenant = kDefaultTenant,
                                uint64_t request_id = 0);

  // Worker side: block until a batch is ready per the flush policy and
  // return it (never empty while open). More waiting requests than
  // max_batch_size simply split across successive calls; the batch is
  // assembled by deficit round robin across tenant sub-queues. Deadline-
  // expired requests are shed here, before dispatch. Returns an empty
  // vector only once the batcher is closed AND drained — the worker's exit
  // signal.
  std::vector<ActRequest> next_batch();

  // Graceful shutdown: subsequent submits are rejected, queued requests are
  // still handed to workers via next_batch().
  void close();
  bool closed() const;

  // Fail every queued request with OverloadedError (used after workers have
  // exited, when nothing will drain the queue anymore).
  void shed_all(const char* reason);

  size_t pending() const;
  size_t pending(const std::string& tenant) const;

 private:
  // One tenant's bounded FIFO plus its deficit-round-robin state.
  struct SubQueue {
    std::deque<ActRequest> q;
    uint64_t weight = 1;   // DRR quantum, captured from the registry
    uint64_t deficit = 0;  // unspent quantum from the current round
    size_t capacity = 0;   // 0 = unbounded (global bound still applies)
    bool active = false;   // currently in the active_ rotation
  };

  // True when `n` pending requests sit exactly on a configured flush
  // bucket. Queue growth is +1 per submit, so every boundary crossing is
  // observed — no bucket can be jumped over.
  bool at_flush_bucket(size_t n) const;
  // Must hold mutex_. Sub-queue for `tenant`, created (and its weight/
  // capacity captured from the registry) on first sight.
  SubQueue& sub_queue_locked(const std::string& tenant);
  // Must hold mutex_ and total_pending_ > 0: earliest front-of-queue
  // enqueue time across tenants (the request anchoring the flush window).
  ServeClock::time_point oldest_enqueued_locked() const;
  void count_shed(const char* reason, int64_t n = 1);

  const BatcherConfig config_;
  std::vector<int64_t> flush_buckets_;  // validated ascending, deduplicated
  MetricRegistry* metrics_;             // may be null
  TenantRegistry* tenants_;             // may be null
  Histogram* batch_size_hist_ = nullptr;
  Histogram* queue_delay_hist_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::string, SubQueue> queues_;
  // DRR rotation: tenants with queued work, visited front-to-back. The
  // front tenant keeps its place while it still has unspent deficit (a
  // batch filled up mid-quantum); otherwise it rotates to the back.
  std::deque<std::string> active_;
  size_t total_pending_ = 0;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace rlgraph
