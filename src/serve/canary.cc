#include "serve/canary.h"

#include <sstream>

#include "util/errors.h"

namespace rlgraph {
namespace serve {

const char* canary_state_name(CanaryState s) {
  switch (s) {
    case CanaryState::kIdle: return "idle";
    case CanaryState::kCanarying: return "canarying";
    case CanaryState::kPromoted: return "promoted";
    case CanaryState::kRolledBack: return "rolled_back";
  }
  return "?";
}

CanaryController::CanaryController(CanaryConfig config, MetricRegistry* metrics)
    : config_(config), metrics_(metrics) {
  RLG_REQUIRE(config_.weight >= 0.0 && config_.weight <= 1.0,
              "canary weight must be in [0, 1], got " << config_.weight);
  RLG_REQUIRE(config_.p99_ratio_guardband >= 1.0,
              "canary p99_ratio_guardband must be >= 1");
  RLG_REQUIRE(config_.error_rate_guardband >= 0.0,
              "canary error_rate_guardband must be >= 0");
  RLG_REQUIRE(config_.min_samples >= 1, "canary min_samples must be >= 1");
}

uint64_t CanaryController::hash_request_id(uint64_t id) {
  // splitmix64: full-avalanche, constant-everywhere, no state. The routing
  // split is therefore a pure function of the request id.
  uint64_t z = id + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void CanaryController::set_state_locked(CanaryState s) {
  state_ = s;
  if (metrics_ != nullptr) {
    metrics_->set_gauge("serve/canary_state", static_cast<double>(s));
    metrics_->set_gauge("serve/canary_rolled_back",
                        s == CanaryState::kRolledBack ? 1.0 : 0.0);
  }
}

void CanaryController::start(int64_t baseline_version,
                             int64_t candidate_version) {
  RLG_REQUIRE(candidate_version != baseline_version,
              "canary candidate must differ from the baseline version");
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_version_ = baseline_version;
  candidate_version_ = candidate_version;
  route_threshold_ =
      static_cast<uint64_t>(config_.weight * 4294967296.0);  // weight * 2^32
  // Fresh epoch: consume whatever the histograms accumulated so stale
  // outcomes from a previous rollout cannot leak into this one's windows.
  (void)baseline_latency_.snapshot_window();
  (void)canary_latency_.snapshot_window();
  baseline_samples_epoch_ = baseline_samples_.load();
  canary_samples_epoch_ = canary_samples_.load();
  baseline_errors_epoch_ = baseline_errors_.load();
  canary_errors_epoch_ = canary_errors_.load();
  last_epoch_ = EpochStats{};
  set_state_locked(CanaryState::kCanarying);
  if (metrics_ != nullptr) {
    metrics_->set_gauge("serve/canary_weight", config_.weight);
    metrics_->set_gauge("serve/canary_baseline_version",
                        static_cast<double>(baseline_version_));
    metrics_->set_gauge("serve/canary_candidate_version",
                        static_cast<double>(candidate_version_));
  }
}

void CanaryController::end() {
  std::lock_guard<std::mutex> lock(mutex_);
  set_state_locked(CanaryState::kIdle);
  if (metrics_ != nullptr) metrics_->set_gauge("serve/canary_weight", 0.0);
}

CanaryState CanaryController::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int64_t CanaryController::baseline_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return baseline_version_;
}

int64_t CanaryController::candidate_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return candidate_version_;
}

double CanaryController::weight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == CanaryState::kCanarying ? config_.weight : 0.0;
}

RouteKind CanaryController::route(uint64_t request_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case CanaryState::kCanarying:
      // Upper 32 hash bits vs the 32-bit threshold: an exact-integer
      // comparison, so a given (request_id, weight) pair routes identically
      // forever.
      return (hash_request_id(request_id) >> 32) < route_threshold_
                 ? RouteKind::kCanary
                 : RouteKind::kBaseline;
    case CanaryState::kPromoted:
      return RouteKind::kCanary;
    case CanaryState::kIdle:
    case CanaryState::kRolledBack:
      return RouteKind::kBaseline;
  }
  return RouteKind::kBaseline;
}

int64_t CanaryController::routed_version(uint64_t request_id) const {
  return route(request_id) == RouteKind::kCanary ? candidate_version()
                                                 : baseline_version();
}

int64_t CanaryController::serving_version(int64_t newest_version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case CanaryState::kIdle: return newest_version;
    case CanaryState::kCanarying:
    case CanaryState::kRolledBack: return baseline_version_;
    case CanaryState::kPromoted: return candidate_version_;
  }
  return newest_version;
}

void CanaryController::record(RouteKind side, double latency_seconds,
                              bool error) {
  if (side == RouteKind::kCanary) {
    canary_samples_.fetch_add(1, std::memory_order_relaxed);
    if (error) {
      canary_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {
      canary_latency_.record(latency_seconds);
    }
  } else {
    baseline_samples_.fetch_add(1, std::memory_order_relaxed);
    if (error) {
      baseline_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {
      baseline_latency_.record(latency_seconds);
    }
  }
}

CanaryState CanaryController::evaluate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != CanaryState::kCanarying) return state_;

  const int64_t base_n = baseline_samples_.load(std::memory_order_relaxed) -
                         baseline_samples_epoch_;
  const int64_t can_n = canary_samples_.load(std::memory_order_relaxed) -
                        canary_samples_epoch_;
  if (base_n < config_.min_samples || can_n < config_.min_samples) {
    return state_;  // epoch still filling; no decision yet
  }

  // Consume the decision epoch: windowed latency snapshots plus the error/
  // sample deltas since the previous decision.
  HistogramSnapshot base_lat = baseline_latency_.snapshot_window();
  HistogramSnapshot can_lat = canary_latency_.snapshot_window();
  const int64_t base_err = baseline_errors_.load(std::memory_order_relaxed) -
                           baseline_errors_epoch_;
  const int64_t can_err = canary_errors_.load(std::memory_order_relaxed) -
                          canary_errors_epoch_;
  baseline_samples_epoch_ += base_n;
  canary_samples_epoch_ += can_n;
  baseline_errors_epoch_ += base_err;
  canary_errors_epoch_ += can_err;

  EpochStats epoch;
  epoch.baseline_count = base_n;
  epoch.canary_count = can_n;
  epoch.baseline_p99 = base_lat.p99();
  epoch.canary_p99 = can_lat.p99();
  epoch.baseline_error_rate =
      static_cast<double>(base_err) / static_cast<double>(base_n);
  epoch.canary_error_rate =
      static_cast<double>(can_err) / static_cast<double>(can_n);
  last_epoch_ = epoch;

  const bool error_breach =
      epoch.canary_error_rate >
      epoch.baseline_error_rate + config_.error_rate_guardband;
  const bool p99_breach =
      epoch.canary_p99 >
      epoch.baseline_p99 * config_.p99_ratio_guardband +
          config_.p99_slack_seconds;
  if (error_breach || p99_breach) {
    set_state_locked(CanaryState::kRolledBack);
    if (metrics_ != nullptr) {
      metrics_->increment("serve/canary_rollbacks");
      metrics_->increment(error_breach ? "serve/canary_rollbacks_error_rate"
                                       : "serve/canary_rollbacks_p99");
      metrics_->set_gauge("serve/canary_weight", 0.0);
    }
    return state_;
  }
  if (config_.promote_after_samples > 0 &&
      canary_samples_epoch_ >= config_.promote_after_samples) {
    set_state_locked(CanaryState::kPromoted);
    if (metrics_ != nullptr) metrics_->increment("serve/canary_promotions");
  }
  return state_;
}

CanaryController::EpochStats CanaryController::last_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_epoch_;
}

std::string CanaryController::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "canary state=" << canary_state_name(state_)
     << " baseline=v" << baseline_version_
     << " candidate=v" << candidate_version_;
  if (last_epoch_.baseline_count > 0 || last_epoch_.canary_count > 0) {
    os << " | last epoch: baseline p99=" << last_epoch_.baseline_p99 * 1e3
       << "ms err=" << last_epoch_.baseline_error_rate
       << " (n=" << last_epoch_.baseline_count << ")"
       << ", canary p99=" << last_epoch_.canary_p99 * 1e3
       << "ms err=" << last_epoch_.canary_error_rate
       << " (n=" << last_epoch_.canary_count << ")";
  }
  return os.str();
}

}  // namespace serve
}  // namespace rlgraph
