// Canary rollout with automatic rollback, on top of the versioned
// PolicyStore.
//
// A rollout routes a configured fraction of traffic to a candidate policy
// version while the pinned baseline version keeps serving the rest. Routing
// is a pure function of the request id — a splitmix64 hash compared against
// a threshold precomputed from the canary weight — so the same request ids
// always take the same path: no RNG, bitwise-replayable in tests and across
// processes.
//
// Outcomes (latency, error) are recorded per side into windowed histograms.
// evaluate() makes decisions on DECISION EPOCHS: once both sides have
// accumulated min_samples since the previous decision, the window is
// consumed (Histogram::snapshot_window) and the canary's windowed p99 and
// error rate are compared against the baseline's from the SAME window —
// never against all-time history, so a regression is judged against what
// the baseline is doing right now under the same load. A breach latches
// kRolledBack: the weight is effectively zero from that instant, every
// subsequent route() returns the baseline, and no amount of later healthy
// traffic un-latches it (no flapping); only an explicit start()/end() moves
// the state again. Rollback itself fails no requests — it only flips
// routing for requests not yet routed.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/metrics.h"

namespace rlgraph {
namespace serve {

struct CanaryConfig {
  // Fraction of traffic routed to the candidate while canarying, in [0, 1].
  double weight = 0.05;
  // Rollback when canary_p99 > baseline_p99 * p99_ratio_guardband +
  // p99_slack_seconds (the additive slack keeps microsecond-scale baselines
  // from tripping the ratio on scheduler noise).
  double p99_ratio_guardband = 1.5;
  double p99_slack_seconds = 500e-6;
  // Rollback when canary error rate exceeds baseline error rate by more
  // than this (absolute, per window).
  double error_rate_guardband = 0.02;
  // Both sides must accumulate this many outcomes since the last decision
  // before a new decision is made (one "decision epoch").
  int64_t min_samples = 50;
  // Auto-promote after this many cumulative healthy canary outcomes;
  // 0 = never auto-promote (the operator promotes via end()).
  int64_t promote_after_samples = 0;
};

enum class CanaryState { kIdle, kCanarying, kPromoted, kRolledBack };
const char* canary_state_name(CanaryState s);

// Which side a request is routed to / an outcome belongs to.
enum class RouteKind { kBaseline, kCanary };

class CanaryController {
 public:
  explicit CanaryController(CanaryConfig config,
                            MetricRegistry* metrics = nullptr);

  // Begin a rollout: pin `baseline_version` as stable, route
  // config.weight of traffic to `candidate_version`. Clears any previous
  // rollback latch (this is a NEW candidate attempt). State -> kCanarying.
  void start(int64_t baseline_version, int64_t candidate_version);
  // End the rollout and return to kIdle (newest-version-wins serving).
  // Called after a promote (candidate is the newest version anyway), after
  // acting on a rollback, or to abort.
  void end();

  CanaryState state() const;
  bool active() const { return state() == CanaryState::kCanarying; }
  int64_t baseline_version() const;
  int64_t candidate_version() const;
  double weight() const;

  // Deterministic routing: pure in (request_id, weight threshold fixed at
  // start()). kCanarying -> hash split; kPromoted -> always candidate;
  // kIdle/kRolledBack -> always baseline.
  RouteKind route(uint64_t request_id) const;
  int64_t routed_version(uint64_t request_id) const;

  // The version the stable serving path should run, given the store's
  // newest published version: the pinned baseline while a rollout is in
  // flight or rolled back, the candidate once promoted, newest when idle.
  int64_t serving_version(int64_t newest_version) const;

  // Record one served outcome. Latency lands in the side's windowed
  // histogram (successes only — an error's latency says nothing about the
  // version's speed); errors bump the side's windowed error count.
  void record(RouteKind side, double latency_seconds, bool error);

  // Run the guardband check; returns the (possibly new) state. Cheap when
  // the current epoch has not accumulated min_samples yet.
  CanaryState evaluate();

  // splitmix64 — the deterministic routing hash, exposed for replay tests.
  static uint64_t hash_request_id(uint64_t id);

  // Latest consumed decision-epoch stats (zeroed until the first decision).
  struct EpochStats {
    int64_t baseline_count = 0, canary_count = 0;
    double baseline_p99 = 0.0, canary_p99 = 0.0;
    double baseline_error_rate = 0.0, canary_error_rate = 0.0;
  };
  EpochStats last_epoch() const;

  std::string report() const;

 private:
  void set_state_locked(CanaryState s);

  const CanaryConfig config_;
  MetricRegistry* metrics_;  // may be null

  mutable std::mutex mutex_;
  CanaryState state_ = CanaryState::kIdle;
  int64_t baseline_version_ = 0;
  int64_t candidate_version_ = 0;
  // weight quantized to a 32-bit threshold at start(): route is then an
  // integer compare, identical on every platform.
  uint64_t route_threshold_ = 0;
  EpochStats last_epoch_;

  // Per-side outcome accounting. Histograms window via snapshot_window();
  // sample/error counts window via the *_epoch_ baselines consumed at each
  // decision.
  Histogram baseline_latency_;
  Histogram canary_latency_;
  std::atomic<int64_t> baseline_samples_{0}, canary_samples_{0};
  std::atomic<int64_t> baseline_errors_{0}, canary_errors_{0};
  int64_t baseline_samples_epoch_ = 0, canary_samples_epoch_ = 0;
  int64_t baseline_errors_epoch_ = 0, canary_errors_epoch_ = 0;
};

}  // namespace serve
}  // namespace rlgraph
